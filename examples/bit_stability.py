#!/usr/bin/env python
"""Bit stability: why deterministic scheduling matters (§4.4).

Hash-based SpGEMM accumulates each output value in whatever order the
hardware scheduler interleaves the inserts, so floating-point rounding
differs from run to run — results are *not* bit-stable.  AC-SpGEMM's
completely deterministic schedule (stable sort + global chunk order)
returns byte-identical results every time.

This example runs AC-SpGEMM and the nsparse-style hash baseline several
times under different modelled hardware schedules and compares results
bitwise, then shows how run-to-run noise is amplified by an
ill-conditioned summation — the reason reproducible kernels matter for
debugging and for convergent iterative solvers.

Run:  python examples/bit_stability.py
"""

from __future__ import annotations

import numpy as np

from repro import CSRMatrix
from repro.baselines import make_algorithm
from repro.matrices import random_uniform


def hexdigest(m: CSRMatrix) -> str:
    import hashlib

    h = hashlib.sha256()
    h.update(m.row_ptr.tobytes())
    h.update(m.col_idx.tobytes())
    h.update(m.values.tobytes())
    return h.hexdigest()[:16]


def main() -> None:
    a = random_uniform(1200, 1200, 10, seed=7)
    print(f"A: {a.shape}, nnz={a.nnz}")

    print("\nresult digests over 4 runs (different hardware schedules):")
    for name in ("ac-spgemm", "nsparse"):
        alg = make_algorithm(name)
        digests = [
            hexdigest(alg.multiply(a, a, scheduler_seed=s).matrix)
            for s in range(4)
        ]
        stable = len(set(digests)) == 1
        print(f"  {name:10s} bit-stable={str(stable):5s}  {digests}")
        assert stable == alg.bit_stable

    # magnitude of the nondeterminism
    alg = make_algorithm("nsparse")
    r0 = alg.multiply(a, a, scheduler_seed=0).matrix
    r1 = alg.multiply(a, a, scheduler_seed=1).matrix
    dev = np.abs(r0.values - r1.values)
    print(f"\nnsparse run-to-run deviation: max {dev.max():.3e}, "
          f"{int((dev > 0).sum())} of {r0.nnz} values differ in the last ulps")

    # an ill-conditioned case: values of hugely different magnitude make
    # the accumulation-order noise visible far above the last ulp
    rng = np.random.default_rng(0)
    n = 400
    dense = (rng.random((n, n)) < 0.1) * np.exp(rng.uniform(-20, 20, (n, n)))
    bad = CSRMatrix.from_dense(dense)
    r0 = alg.multiply(bad, bad, scheduler_seed=0).matrix
    r1 = alg.multiply(bad, bad, scheduler_seed=1).matrix
    rel = np.abs(r0.values - r1.values) / np.maximum(np.abs(r0.values), 1e-300)
    print(f"ill-conditioned values: max relative run-to-run deviation "
          f"{rel.max():.3e}")

    ac = make_algorithm("ac-spgemm")
    s0 = ac.multiply(bad, bad, scheduler_seed=0).matrix
    s1 = ac.multiply(bad, bad, scheduler_seed=1).matrix
    assert s0.exactly_equal(s1)
    print("AC-SpGEMM remains bitwise identical on the same input")


if __name__ == "__main__":
    main()

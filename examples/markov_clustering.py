#!/usr/bin/env python
"""Markov clustering (MCL): an iterated-SpGEMM application.

MCL detects graph communities by alternating

* **expansion** — squaring the column-stochastic transition matrix
  (``M = M @ M``, the SpGEMM step that dominates runtime), and
* **inflation** — raising entries to a power, renormalising columns and
  pruning tiny values (which keeps the matrix sparse).

The matrix is re-squared many times, which is exactly the repeated
SpGEMM regime the paper's bit-stability argument targets: with a
non-deterministic kernel, the pruning threshold can flip entries
between runs and the clustering itself becomes irreproducible.  Every
expansion here goes through the **adaptive backend selector**, so the
flight recorder sees the chained workload shrink as pruning bites, and
each squaring is dispatched per its current structure.

The final section expands one iterate on a 4-device SUMMA node: the
merged pattern is byte-identical to the single-device expansion, values
agree to close tolerance (stochastic matrices are genuinely float, see
the contract in ``repro.multi.summa``), and the multi-device run itself
is byte-reproducible run to run.

Run:  python examples/markov_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import AcSpgemmOptions, CSRMatrix
from repro.backends import run_backend
from repro.multi import NodeConfig, summa_spgemm
from repro.obs.flight import get_flight_recorder
from repro.sparse import COOMatrix, prune_explicit_zeros, transpose


def planted_partition(
    n_clusters: int, size: int, p_in: float, p_out: float, seed: int
) -> CSRMatrix:
    """Undirected graph with planted communities."""
    rng = np.random.default_rng(seed)
    n = n_clusters * size
    dense = (rng.random((n, n)) < p_out).astype(float)
    for c in range(n_clusters):
        lo, hi = c * size, (c + 1) * size
        dense[lo:hi, lo:hi] = (rng.random((size, size)) < p_in).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 1.0)  # self loops stabilise MCL
    return CSRMatrix.from_dense(dense)


def column_normalise(m: CSRMatrix) -> CSRMatrix:
    """Make the matrix column-stochastic."""
    col_sums = np.zeros(m.cols)
    np.add.at(col_sums, m.col_idx, m.values)
    out = m.copy()
    out.values = out.values / col_sums[out.col_idx]
    return out


def inflate(m: CSRMatrix, power: float, prune_tol: float) -> CSRMatrix:
    out = m.copy()
    out.values = out.values**power
    out = prune_explicit_zeros(out, tol=prune_tol)
    return column_normalise(out)


def expand(m: CSRMatrix, opts: AcSpgemmOptions):
    """One MCL expansion through the adaptive selector."""
    return run_backend("adaptive", m, m, opts)


def clusters_from_attractors(m: CSRMatrix) -> list[set[int]]:
    """Read clusters off the converged MCL matrix: each row with mass
    attracts the columns it dominates."""
    owner = {}
    t = transpose(m)  # column-major access
    for col in range(t.rows):
        rows, vals = t.row_slice(col)
        if rows.shape[0]:
            owner[col] = int(rows[np.argmax(vals)])
    groups: dict[int, set[int]] = {}
    for node, attractor in owner.items():
        groups.setdefault(attractor, set()).add(node)
    return sorted(groups.values(), key=min)


def main() -> None:
    n_clusters, size = 4, 30
    adj = planted_partition(n_clusters, size, p_in=0.45, p_out=0.01, seed=5)
    print(f"graph: {adj.rows} vertices, {adj.nnz} entries, "
          f"{n_clusters} planted communities of {size}")

    opts = AcSpgemmOptions()
    flight = get_flight_recorder()
    seen_before = flight.recorded
    m = column_normalise(adj)
    total_spgemm_s = 0.0
    routed = []
    for it in range(12):
        res = expand(m, opts)  # expansion
        total_spgemm_s += res.seconds
        routed.append(res.dispatched_to)
        m = inflate(res.matrix, power=2.0, prune_tol=1e-6)  # inflation
        if it >= 3 and res.matrix.nnz == m.nnz:
            converged_check = expand(m, opts).matrix
            if converged_check.allclose(m, rtol=1e-6, atol=1e-9):
                print(f"converged after {it + 1} iterations")
                break

    # every chained expansion went through the selector's flight recorder
    chained = [e for e in flight.events() if e["seq"] > seen_before]
    assert len(chained) >= len(routed), (len(chained), len(routed))
    print(f"routing per iteration: {routed}")
    print(f"flight recorder captured {len(chained)} chained dispatches, "
          f"mean rel. prediction error {flight.prediction_error():.3f}")

    clusters = [c for c in clusters_from_attractors(m) if len(c) > 1]
    print(f"found {len(clusters)} clusters, sizes {[len(c) for c in clusters]}")
    print(f"total simulated SpGEMM time: {total_spgemm_s * 1e3:.3f} ms")

    # verify the planted structure was recovered: every recovered
    # cluster lies within one planted block
    pure = 0
    for c in clusters:
        blocks = {node // size for node in c}
        pure += len(blocks) == 1
    print(f"{pure}/{len(clusters)} clusters are pure subsets of planted blocks")
    assert pure == len(clusters), "MCL failed to recover the partition"

    # reproducibility: run the whole pipeline again, byte-compare
    m2 = column_normalise(adj)
    for _ in range(4):
        m2 = inflate(expand(m2, opts).matrix, 2.0, 1e-6)
    m3 = column_normalise(adj)
    for _ in range(4):
        m3 = inflate(expand(m3, opts).matrix, 2.0, 1e-6)
    assert m2.exactly_equal(m3)
    print("4-iteration MCL pipeline is byte-reproducible end to end")

    # ---------------------------------------------------------- multi-device
    # one expansion on a 4-device SUMMA node: pattern byte-identical to
    # the single-device product, values allclose (stochastic floats),
    # and the node run itself byte-reproducible
    single = expand(m2, opts)
    node = NodeConfig(devices=4)
    s1 = summa_spgemm(m2, m2, node, opts, backend="adaptive")
    s2 = summa_spgemm(m2, m2, node, opts, backend="adaptive")
    s1.reconcile()
    assert s1.matrix.exactly_equal(s2.matrix)
    assert s1.matrix.row_ptr.tobytes() == single.matrix.row_ptr.tobytes()
    assert s1.matrix.col_idx.tobytes() == single.matrix.col_idx.tobytes()
    assert s1.matrix.allclose(single.matrix, rtol=1e-12)
    print(f"4-device SUMMA expansion: pattern byte-identical to one device, "
          f"values allclose, run-to-run byte-identical "
          f"({s1.overlap_saved_cycles:.0f} cycles hidden by the 4-colour "
          f"pipeline)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Algebraic multigrid Galerkin product: the paper's headline use case.

The introduction motivates SpGEMM with algebraic multigrid solvers [5]:
building the coarse-grid operator requires the *Galerkin triple product*
``A_coarse = R @ A @ P`` with ``R = P.T``.  This example builds a 2-D
Poisson problem, constructs an aggregation-based prolongation operator
P, and computes the triple product as two *chained* SpGEMMs routed
through the adaptive backend selector — so the flight recorder sees the
chained workload and each multiply is dispatched per its structure —
verifying every step against the sequential reference and checking the
spectral sanity of the coarse operator (row sums of a Laplacian
Galerkin product stay ~0).

The second half scales the same chain past one device: a problem whose
chunk-pool demand exceeds a single device's budget fails there, then
succeeds on a 4-device SUMMA node where every device holds a quarter of
the operands — and, because the Laplacian chain is integer-valued, the
merged multi-device product is *byte-identical* to the unconstrained
single-device result.

Run:  python examples/amg_galerkin.py
"""

from __future__ import annotations

import numpy as np

from repro import AcSpgemmOptions, spgemm_reference, transpose
from repro.backends import run_backend
from repro.matrices.generators import aggregation_prolongation, poisson_2d
from repro.multi import NodeConfig, summa_spgemm
from repro.obs.flight import get_flight_recorder
from repro.resilience import ReproError


def galerkin(a, p, opts):
    """R @ A @ P as two chained adaptive multiplies.

    The intermediate ``AP`` feeds the second multiply exactly as
    returned by the selector — same stats path, same cache keys as any
    direct input.
    """
    r = transpose(p)
    ap = run_backend("adaptive", a, p, opts)
    coarse = run_backend("adaptive", r, ap.matrix, opts)
    return ap, coarse


def main() -> None:
    side = 64
    a = poisson_2d(side)
    p = aggregation_prolongation(side)
    print(f"A: {a.shape}, nnz={a.nnz} (5-point Laplacian, {side}x{side} grid)")
    print(f"P: {p.shape}, nnz={p.nnz} (2x2 aggregation)")

    opts = AcSpgemmOptions()
    flight = get_flight_recorder()
    seen_before = flight.recorded

    # Galerkin triple product as two chained adaptive SpGEMMs
    ap, a_coarse = galerkin(a, p, opts)
    print(f"\nA_coarse = R @ A @ P: {a_coarse.matrix.shape}, "
          f"nnz={a_coarse.matrix.nnz}")
    print(f"routing: AP -> {ap.dispatched_to}, "
          f"R(AP) -> {a_coarse.dispatched_to}")
    print(f"simulated time: AP {ap.seconds * 1e3:.3f} ms + "
          f"R(AP) {a_coarse.seconds * 1e3:.3f} ms")

    # the selector's flight recorder saw both chained dispatches
    chained = [e for e in flight.events() if e["seq"] > seen_before]
    assert len(chained) == 2, chained
    # the second dispatch consumed the first one's product
    assert chained[0]["nnz_a"] == a.nnz and chained[0]["nnz_b"] == p.nnz
    assert chained[1]["nnz_b"] == ap.matrix.nnz
    print(f"flight recorder: {len(chained)} chained dispatch events, "
          f"chose {[e['chosen'] for e in chained]} "
          f"(regret bounds {[round(e['regret_bound'], 1) for e in chained]})")

    # verify both products against the reference
    assert ap.matrix.allclose(spgemm_reference(a, p))
    assert a_coarse.matrix.allclose(spgemm_reference(transpose(p), ap.matrix))
    print("both products verified against the sequential reference")

    # coarse operator sanity: interior aggregate rows of the Galerkin
    # Laplacian sum to ~0 (constants stay in the near-null space)
    row_sums = np.zeros(a_coarse.matrix.rows)
    row_ids = np.repeat(
        np.arange(a_coarse.matrix.rows), a_coarse.matrix.row_lengths()
    )
    np.add.at(row_sums, row_ids, a_coarse.matrix.values)
    interior = np.abs(row_sums) < 1e-9
    print(f"coarse rows with zero row sum: {interior.sum()} / {row_sums.size} "
          "(boundary aggregates carry the Dirichlet deficit)")

    # a second coarsening level, as a real AMG hierarchy would do
    coarse_side = side // 2
    p2 = aggregation_prolongation(coarse_side)
    ap2, a2 = galerkin(a_coarse.matrix, p2, opts)
    assert a2.matrix.allclose(
        spgemm_reference(
            transpose(p2), spgemm_reference(a_coarse.matrix, p2)
        )
    )
    print(f"level-2 operator: {a2.matrix.shape}, nnz={a2.matrix.nnz} — "
          "two-level hierarchy built with chained adaptive dispatches")

    # ---------------------------------------------------------- multi-device
    # A grid too large for one device's chunk pool: probe the demand,
    # halve the budget, watch the single device fail, then run the same
    # product on a 4-device SUMMA node where each device needs only its
    # quarter — with the *same per-device pool budget*.
    big_side = 96
    big_a = poisson_2d(big_side)
    probe = run_backend("ac-spgemm", big_a, big_a, opts)
    demand = probe.memory.chunk_used_bytes
    squeezed = opts.with_(
        chunk_pool_bytes=demand // 2, max_restarts=0, on_failure="raise"
    )
    print(f"\nA@A on {big_side}x{big_side} grid needs {demand} chunk-pool "
          f"bytes; capping one device at {demand // 2}")
    try:
        run_backend("ac-spgemm", big_a, big_a, squeezed)
        raise AssertionError("squeezed single-device run should have failed")
    except ReproError as exc:
        print(f"single device: {exc.one_line()}")

    node = NodeConfig(devices=4)
    summa = summa_spgemm(big_a, big_a, node, squeezed, backend="ac-spgemm")
    summa.reconcile()
    print(f"4-device SUMMA: nnz={summa.matrix.nnz}, "
          f"{summa.makespan_cycles:.0f} cycles, overlap hid "
          f"{summa.overlap_saved_cycles:.0f} cycles vs blocking broadcasts")
    # the Laplacian is integer-valued, so the round-merged values are
    # exact — byte-identical to the unconstrained single-device product
    assert summa.matrix.exactly_equal(probe.matrix)
    print("merged multi-device product is byte-identical to the "
          "single-device run the pool cap rejected")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Algebraic multigrid Galerkin product: the paper's headline use case.

The introduction motivates SpGEMM with algebraic multigrid solvers [5]:
building the coarse-grid operator requires the *Galerkin triple product*
``A_coarse = R @ A @ P`` with ``R = P.T``.  This example builds a 2-D
Poisson problem, constructs an aggregation-based prolongation operator
P, and computes the triple product with AC-SpGEMM — two chained SpGEMMs
— verifying every step against the sequential reference and checking
the spectral sanity of the coarse operator (row sums of a Laplacian
Galerkin product stay ~0).

Run:  python examples/amg_galerkin.py
"""

from __future__ import annotations

import numpy as np

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm, spgemm_reference, transpose
from repro.sparse import COOMatrix


def poisson_2d(side: int) -> CSRMatrix:
    """Standard 5-point Laplacian on a side x side grid."""
    n = side * side
    idx = np.arange(n)
    x, y = idx % side, idx // side
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0)]
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ok = (0 <= x + dx) & (x + dx < side) & (0 <= y + dy) & (y + dy < side)
        rows.append(idx[ok])
        cols.append(idx[ok] + dx + dy * side)
        vals.append(np.full(int(ok.sum()), -1.0))
    return COOMatrix(
        rows=n,
        cols=n,
        row_idx=np.concatenate(rows),
        col_idx=np.concatenate(cols),
        values=np.concatenate(vals),
    ).to_csr()


def aggregation_prolongation(side: int, factor: int = 2) -> CSRMatrix:
    """Piecewise-constant prolongation over factor x factor aggregates."""
    n = side * side
    coarse_side = (side + factor - 1) // factor
    idx = np.arange(n)
    x, y = idx % side, idx // side
    aggregate = (x // factor) + (y // factor) * coarse_side
    return COOMatrix(
        rows=n,
        cols=coarse_side * coarse_side,
        row_idx=idx,
        col_idx=aggregate,
        values=np.ones(n),
    ).to_csr()


def main() -> None:
    side = 64
    a = poisson_2d(side)
    p = aggregation_prolongation(side)
    r = transpose(p)
    print(f"A: {a.shape}, nnz={a.nnz} (5-point Laplacian, {side}x{side} grid)")
    print(f"P: {p.shape}, nnz={p.nnz} (2x2 aggregation)")

    opts = AcSpgemmOptions()

    # Galerkin triple product as two chained SpGEMMs
    ap = ac_spgemm(a, p, opts)
    a_coarse = ac_spgemm(r, ap.matrix, opts)
    print(f"\nA_coarse = R @ A @ P: {a_coarse.matrix.shape}, "
          f"nnz={a_coarse.matrix.nnz}")
    print(f"simulated time: AP {ap.seconds * 1e3:.3f} ms + "
          f"R(AP) {a_coarse.seconds * 1e3:.3f} ms")

    # verify both products against the reference
    assert ap.matrix.allclose(spgemm_reference(a, p))
    assert a_coarse.matrix.allclose(spgemm_reference(r, ap.matrix))
    print("both products verified against the sequential reference")

    # coarse operator sanity: interior aggregate rows of the Galerkin
    # Laplacian sum to ~0 (constants stay in the near-null space)
    row_sums = np.zeros(a_coarse.matrix.rows)
    row_ids = np.repeat(
        np.arange(a_coarse.matrix.rows), a_coarse.matrix.row_lengths()
    )
    np.add.at(row_sums, row_ids, a_coarse.matrix.values)
    interior = np.abs(row_sums) < 1e-9
    print(f"coarse rows with zero row sum: {interior.sum()} / {row_sums.size} "
          "(boundary aggregates carry the Dirichlet deficit)")

    # a second coarsening level, as a real AMG hierarchy would do
    coarse_side = side // 2
    p2 = aggregation_prolongation(coarse_side)
    r2 = transpose(p2)
    ap2 = ac_spgemm(a_coarse.matrix, p2, opts)
    a2 = ac_spgemm(r2, ap2.matrix, opts)
    assert a2.matrix.allclose(
        spgemm_reference(r2, spgemm_reference(a_coarse.matrix, p2))
    )
    print(f"level-2 operator: {a2.matrix.shape}, nnz={a2.matrix.nnz} — "
          "two-level hierarchy built entirely with AC-SpGEMM")


if __name__ == "__main__":
    main()

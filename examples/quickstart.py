#!/usr/bin/env python
"""Quickstart: multiply two sparse matrices with AC-SpGEMM.

Builds a random sparse matrix, computes ``C = A @ A`` on the simulated
GPU, verifies the result against the sequential Gustavson reference, and
prints the accounting the paper's evaluation reports: simulated time,
GFLOPS, per-stage breakdown, chunk statistics and memory consumption.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AcSpgemmOptions,
    CSRMatrix,
    ac_spgemm,
    count_intermediate_products,
    spgemm_reference,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # A 2000 x 2000 matrix with ~8 non-zeros per row ("highly sparse" in
    # the paper's taxonomy: average row length <= 42).
    n, avg_row = 2000, 8
    density = avg_row / n
    dense = (rng.random((n, n)) < density) * rng.random((n, n))
    a = CSRMatrix.from_dense(dense)
    print(f"A: {a.shape[0]}x{a.shape[1]}, nnz={a.nnz}, "
          f"avg row length={a.nnz / a.rows:.1f}")

    # --- run AC-SpGEMM ---------------------------------------------------
    result = ac_spgemm(a, a, AcSpgemmOptions())
    c = result.matrix
    temp = count_intermediate_products(a, a)
    print(f"\nC = A @ A: nnz={c.nnz}, temporary products={temp}, "
          f"compaction factor={temp / c.nnz:.2f}")

    # --- verify against the sequential reference -----------------------
    reference = spgemm_reference(a, a)
    assert c.allclose(reference), "AC-SpGEMM result mismatch!"
    print("verified against the sequential Gustavson reference")

    # --- bit stability ---------------------------------------------------
    again = ac_spgemm(a, a, AcSpgemmOptions())
    assert c.exactly_equal(again.matrix)
    print("repeated run is bitwise identical (deterministic scheduling)")

    # --- accounting -----------------------------------------------------
    gflops = 2.0 * temp / result.seconds / 1e9
    print(f"\nsimulated time: {result.seconds * 1e3:.3f} ms "
          f"({gflops:.2f} GFLOPS on the modelled device)")
    print("stage breakdown (share of runtime):")
    for stage, frac in result.stage_fractions().items():
        print(f"  {stage:4s} {100 * frac:5.1f}%")
    print(f"chunks: {result.n_chunks}, shared rows merged: {result.shared_rows}, "
          f"restarts: {result.restarts}")
    mem = result.memory
    print(f"memory: helper {mem.helper_bytes / 1e6:.2f} MB, "
          f"chunk pool {mem.chunk_pool_bytes / 1e6:.2f} MB "
          f"({100 * mem.used_fraction:.1f}% used), "
          f"output {mem.output_bytes / 1e6:.2f} MB")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Graph analytics with SpGEMM: triangle counting and short cycles.

Two more of the introduction's motivating applications:

* triangle counting — the lower-triangle formulation
  ``triangles = sum(hadamard(L @ L, L))`` where L is the strictly lower
  adjacency triangle (related to betweenness-centrality building blocks
  [6]);
* short directed cycle detection via powers of the adjacency matrix
  (Yuster & Zwick [26]): ``trace(A^k)`` counts closed k-walks, and a
  zero diagonal of ``A^2``/``A^3`` certifies the absence of 2-/3-cycles.

Run:  python examples/graph_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm
from repro.sparse import diagonal, hadamard, lower_triangle, spgemm_reference
from repro.matrices import power_law


def triangle_count(adj: CSRMatrix, opts: AcSpgemmOptions) -> int:
    """Count undirected triangles: sum over edges (u,v) of |N(u) ∩ N(v)|
    restricted to wedges below the diagonal —
    ``sum(hadamard(L @ L, L))`` for the strict lower triangle L."""
    lower = lower_triangle(adj)
    ll = ac_spgemm(lower, lower, opts).matrix
    return int(round(hadamard(ll, lower).values.sum()))


def triangle_count_dense_reference(adj: CSRMatrix) -> int:
    d = adj.to_dense()
    return int(round(np.trace(d @ d @ d) / 6))


def main() -> None:
    opts = AcSpgemmOptions()

    # --- undirected power-law graph -----------------------------------
    raw = power_law(1500, 6, seed=11)
    # symmetrise to an unweighted undirected adjacency without self loops
    d = ((raw.to_dense() + raw.to_dense().T) > 0).astype(float)
    np.fill_diagonal(d, 0.0)
    adj = CSRMatrix.from_dense(d)
    print(f"graph: {adj.rows} vertices, {adj.nnz // 2} undirected edges")

    tri = triangle_count(adj, opts)
    ref = triangle_count_dense_reference(adj)
    print(f"triangles via L@L (AC-SpGEMM): {tri}  (dense reference: {ref})")
    assert tri == ref

    # --- directed cycle detection --------------------------------------
    rng = np.random.default_rng(3)
    dd = (rng.random((800, 800)) < 0.004).astype(float)
    np.fill_diagonal(dd, 0.0)
    dg = CSRMatrix.from_dense(dd)
    a2 = ac_spgemm(dg, dg, opts).matrix
    assert a2.allclose(spgemm_reference(dg, dg))
    a3 = ac_spgemm(a2, dg, opts).matrix

    two_cycles = diagonal(a2).sum() / 2
    three_cycles = diagonal(a3).sum() / 3
    print(f"\ndirected graph: {dg.rows} vertices, {dg.nnz} edges")
    print(f"2-cycles (mutual edges): {two_cycles:.0f}")
    print(f"3-cycles: {three_cycles:.0f}")

    dense = dg.to_dense()
    assert two_cycles == round(np.trace(dense @ dense) / 2)
    assert three_cycles == round(np.trace(dense @ dense @ dense) / 3)
    print("cycle counts verified against dense matrix powers")


if __name__ == "__main__":
    main()

"""Additional property-based tests: scheduler, generators, estimates."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpu import schedule_blocks
from repro.matrices import generators as g
from repro.sparse import matrix_stats, validate_csr

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSchedulerProperties:
    @SETTINGS
    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=0, max_size=100),
        st.integers(1, 32),
    )
    def test_makespan_bounds(self, blocks, sms):
        t = schedule_blocks(blocks, sms)
        total = sum(blocks)
        longest = max(blocks) if blocks else 0.0
        lower = max(longest, total / sms)
        assert t.makespan_cycles >= lower - 1e-6
        # greedy list scheduling is a 2-approximation
        assert t.makespan_cycles <= 2 * lower + 1e-6
        assert t.total_block_cycles == pytest.approx(total, rel=1e-9, abs=1e-9)

    @SETTINGS
    @given(
        st.lists(st.floats(0, 1e4, allow_nan=False), min_size=1, max_size=60),
        st.integers(1, 8),
    )
    def test_busy_conservation(self, blocks, sms):
        t = schedule_blocks(blocks, sms)
        assert len(t.sm_busy_cycles) == sms
        assert 0.0 <= t.multiprocessor_load <= 1.0


class TestGeneratorProperties:
    @SETTINGS
    @given(
        st.integers(20, 400),
        st.floats(0.5, 20),
        st.integers(0, 1000),
    )
    def test_uniform_always_canonical(self, n, avg, seed):
        m = g.random_uniform(n, n, avg, seed=seed)
        validate_csr(m)
        assert m.shape == (n, n)

    @SETTINGS
    @given(st.integers(10, 200), st.integers(1, 8), st.integers(0, 100))
    def test_banded_within_band(self, n, bw, seed):
        m = g.banded(n, bw, seed=seed)
        validate_csr(m)
        row_ids = np.repeat(np.arange(n), m.row_lengths())
        assert (np.abs(m.col_idx - row_ids) <= bw).all()

    @SETTINGS
    @given(st.integers(50, 500), st.integers(0, 100))
    def test_road_degree_bounded(self, n, seed):
        m = g.road_network(n, seed=seed)
        validate_csr(m)
        assert matrix_stats(m).mean_row_length < 8

    @SETTINGS
    @given(
        st.integers(5, 40),
        st.integers(50, 400),
        st.integers(1, 30),
        st.integers(0, 50),
    )
    def test_design_constant_rows(self, rows, cols, length, seed):
        length = min(length, cols)
        m = g.bipartite_design(rows, cols, length, seed=seed)
        validate_csr(m)
        assert (m.row_lengths() == length).all()


class TestEstimateProperties:
    @SETTINGS
    @given(st.integers(50, 300), st.floats(1, 10), st.integers(0, 50))
    def test_uniform_estimate_monotone_in_density(self, n, avg, seed):
        from repro.core import estimate_output_entries

        a1 = g.random_uniform(n, n, avg, seed=seed)
        a2 = g.random_uniform(n, n, avg * 2, seed=seed)
        e1 = estimate_output_entries(a1, a1)
        e2 = estimate_output_entries(a2, a2)
        assert e2 >= e1 * 0.9  # denser inputs never shrink the estimate

    @SETTINGS
    @given(st.integers(100, 400), st.floats(1, 8), st.integers(0, 30))
    def test_sampled_estimate_nonnegative_and_bounded(self, n, avg, seed):
        from repro.core import sampled_output_estimate

        a = g.random_uniform(n, n, avg, seed=seed)
        est = sampled_output_estimate(a, a, sample_rows=32, seed=seed)
        assert 0.0 <= est <= 1.3 * n * n

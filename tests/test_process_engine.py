"""Process-engine plumbing: shared-memory transport, forced dispatch,
host span profiling.

The observational equivalence of the ``process`` engine itself is
covered by ``tests/test_engine_equivalence.py`` (it sweeps every
engine); the tests here pin the supporting machinery — the
:class:`~repro.engine.shm.SharedCSR` segment lifecycle (round-trip,
stale-segment reclaim, no leaks), the ``REPRO_PROCESS_WORKERS`` forcing
knob on the parallel engine, the campaign runner's post-SIGKILL segment
sweep, and the out-of-band host span profile used by the hotspot bench.
"""

from __future__ import annotations

import os
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.campaign import CampaignConfig
from repro.campaign.runner import CampaignRunner
from repro.engine.shm import SharedCSR
from repro.matrices import generators as g
from repro.obs.span import SpanRecorder, host_span_profile
from repro.sparse.stats import squared_operands
from tests.conftest import random_csr


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


class TestSharedCSR:
    def test_round_trip_is_byte_identical(self, rng):
        m = random_csr(rng, 200, 150, 0.05, dtype=np.float32)
        handle = SharedCSR.export(m)
        try:
            attached = SharedCSR.attach(handle.meta())
            try:
                out = attached.matrix()
                assert out.rows == m.rows and out.cols == m.cols
                assert out.row_ptr.tobytes() == np.ascontiguousarray(
                    m.row_ptr, dtype=np.int64
                ).tobytes()
                assert out.col_idx.tobytes() == np.ascontiguousarray(
                    m.col_idx, dtype=np.int64
                ).tobytes()
                assert out.values.tobytes() == m.values.tobytes()
                assert out.values.dtype == m.values.dtype
                # exported from a validated build: re-validation is skipped
                assert out._validated
            finally:
                del out  # drop the aliasing views before closing the map
                attached.close()
        finally:
            handle.release()

    def test_release_unlinks_segment(self, rng):
        handle = SharedCSR.export(random_csr(rng, 50, 50, 0.1))
        name = handle.name
        assert _segment_exists(name)
        handle.release()
        assert not _segment_exists(name)

    def test_export_reclaims_stale_named_segment(self, rng):
        """A segment leaked by a SIGKILLed owner is reclaimed on re-export."""
        name = "repro_test_stale_segment"
        stale = shared_memory.SharedMemory(create=True, size=64, name=name)
        stale.buf[:4] = b"dead"
        stale.close()  # owner died without unlinking
        m = random_csr(rng, 40, 40, 0.2)
        handle = SharedCSR.export(m, name=name)
        try:
            assert handle.name == name
            attached = SharedCSR.attach(handle.meta())
            out = attached.matrix()
            assert out.values.tobytes() == m.values.tobytes()
            del out
            attached.close()
        finally:
            handle.release()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_empty_matrix_round_trip(self):
        from repro.sparse.csr import CSRMatrix

        m = CSRMatrix.from_dense(np.zeros((3, 4)))
        handle = SharedCSR.export(m)
        try:
            attached = SharedCSR.attach(handle.meta())
            out = attached.matrix()
            assert out.nnz == 0 and out.rows == 3 and out.cols == 4
            del out
            attached.close()
        finally:
            handle.release()


class TestForcedProcessDispatch:
    def test_parallel_engine_forced_to_processes(self, monkeypatch):
        """``REPRO_PROCESS_WORKERS=2`` routes ESC rounds to worker
        processes even on one core, without perturbing any output."""
        a, b = squared_operands(g.random_uniform(300, 300, 8.0, seed=21))
        ref = ac_spgemm(
            a, b, AcSpgemmOptions(engine="reference")
        )
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
        res = ac_spgemm(a, b, AcSpgemmOptions(engine="parallel"))
        assert res.engine_stats.get("proc_esc_rounds", 0) >= 1
        assert res.matrix.values.tobytes() == ref.matrix.values.tobytes()
        assert res.matrix.col_idx.tobytes() == ref.matrix.col_idx.tobytes()
        assert dict(res.stage_cycles) == dict(ref.stage_cycles)
        assert res.counters == ref.counters

    def test_forced_off_uses_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "0")
        a, b = squared_operands(g.random_uniform(200, 200, 6.0, seed=22))
        res = ac_spgemm(a, b, AcSpgemmOptions(engine="parallel"))
        assert "proc_esc_rounds" not in res.engine_stats
        assert res.engine_stats.get("pool_esc_rounds", 0) >= 1

    def test_pool_teardown_leaves_no_segments(self, monkeypatch):
        """After an explicit warm-pool teardown the operand LRU is
        released: every exported segment is unlinked."""
        from repro.engine import process as proc_mod

        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "1")
        a, b = squared_operands(g.random_uniform(250, 250, 6.0, seed=23))
        res = ac_spgemm(a, b, AcSpgemmOptions(engine="process"))
        assert res.engine_stats.get("proc_esc_rounds", 0) >= 1
        pool = proc_mod.warm_pool()
        names = [
            h.name for sa, sb, _ in pool._exports.values() for h in (sa, sb)
        ]
        assert names, "the run must have exported operands"
        proc_mod._teardown_pool()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestPoolHealing:
    """Mid-round worker death: reap, redistribute, respawn, typed escape."""

    def test_killed_worker_is_healed_and_result_is_bit_identical(
        self, monkeypatch
    ):
        from repro.engine import process as proc_mod

        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "1")
        a, b = squared_operands(g.random_uniform(250, 250, 6.0, seed=31))
        ref = ac_spgemm(a, b, AcSpgemmOptions(engine="reference"))
        pool = proc_mod.warm_pool()
        pool.ensure(1)
        assert pool.kill_worker(0)
        res = ac_spgemm(a, b, AcSpgemmOptions(engine="process"))
        assert res.matrix.values.tobytes() == ref.matrix.values.tobytes()
        assert res.matrix.col_idx.tobytes() == ref.matrix.col_idx.tobytes()
        assert dict(res.stage_cycles) == dict(ref.stage_cycles)
        assert proc_mod.warm_pool().worker_deaths >= 1

    def test_restart_crashed_respawns_to_target(self):
        from repro.engine.process import WarmProcessPool

        pool = WarmProcessPool()
        try:
            pool.ensure(2)
            assert pool.alive_count() == 2
            assert pool.kill_worker(0)
            deadline = time.monotonic() + 10
            while pool.alive_count() > 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            restarted = pool.restart_crashed(2)
            assert restarted == 1
            assert pool.alive_count() == 2
            assert pool.workers_respawned == 1
        finally:
            pool.shutdown()

    def test_spent_retry_budget_raises_typed_worker_crashed(self, rng):
        """A worker that fails every send exhausts the budget with a
        typed :class:`WorkerCrashed`, not a bare pipe error."""
        from repro.engine.process import WarmProcessPool, _Worker
        from repro.resilience.errors import WorkerCrashed

        class _UndeadProc:
            def is_alive(self):
                return True  # hides from _reap; dies only at send

            def kill(self):
                pass

            def join(self, timeout=None):
                pass

        class _DeadPipe:
            def send(self, msg):
                raise BrokenPipeError

            def close(self):
                pass

        pool = WarmProcessPool()
        try:
            m = random_csr(rng, 60, 60, 0.1)
            opts = AcSpgemmOptions()
            token = pool.load(m, m, opts)
            pool._workers.append(_Worker(_UndeadProc(), _DeadPipe()))
            with pytest.raises(WorkerCrashed) as exc_info:
                pool.run_esc(token, [{"block_id": 0}], 1, retries=0)
            assert exc_info.value.stage == "ESC"
            assert pool.worker_deaths == 1
        finally:
            pool.shutdown()

    def test_load_self_heals_after_external_unlink(self, rng):
        """Chaos ``shm_drop``: an externally unlinked export is detected
        and re-exported under the same deterministic names."""
        from repro.engine.process import WarmProcessPool
        from repro.engine.shm import segment_exists, sweep_segments

        pool = WarmProcessPool(segment_prefix=f"repro-test-heal-{os.getpid()}-")
        try:
            m = random_csr(rng, 80, 80, 0.1)
            opts = AcSpgemmOptions()
            token = pool.load(m, m, opts)
            names = sorted(pool.exported_segment_names())
            assert all(segment_exists(n) for n in names)
            assert sweep_segments(names) == len(names)  # the chaos fault
            assert not any(segment_exists(n) for n in names)
            assert pool.load(m, m, opts) == token
            assert sorted(pool.exported_segment_names()) == names
            assert all(segment_exists(n) for n in names)
        finally:
            pool.shutdown()


class TestCampaignSegmentSweep:
    def test_sweep_reclaims_stale_segments(self, tmp_path):
        """The next invocation of a SIGKILLed campaign unlinks every
        segment the killed one could have created."""
        runner = CampaignRunner(
            tmp_path / "camp", CampaignConfig(suite="tiny", limit=2)
        )
        names = runner._segment_names()
        assert names, "plan must map matrices to segment names"
        victim = sorted(names.values())[0]
        stale = shared_memory.SharedMemory(create=True, size=32, name=victim)
        stale.close()
        runner._sweep_segments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=victim)

    def test_segment_names_are_plan_deterministic(self, tmp_path):
        cfg = CampaignConfig(suite="tiny", limit=2)
        r1 = CampaignRunner(tmp_path / "c", cfg)
        r2 = CampaignRunner(tmp_path / "c", cfg)
        assert r1._segment_names() == r2._segment_names()
        other = CampaignRunner(tmp_path / "elsewhere", cfg)
        assert set(other._segment_names().values()).isdisjoint(
            r1._segment_names().values()
        )


class TestHostSpanProfile:
    def test_credits_calls_and_time_per_span_name(self):
        with host_span_profile() as prof:
            rec = SpanRecorder()
            rec.start("root")
            rec.leaf("work", 10.0)
            rec.leaf("work", 5.0)
            with rec.span("stage"):
                rec.leaf("inner", 1.0)
            rec.close()
        table = prof.table()
        assert table["work"]["calls"] == 2
        assert table["inner"]["calls"] == 1
        assert all(v["host_seconds"] >= 0.0 for v in table.values())

    def test_profile_does_not_perturb_span_tree(self):
        def build():
            rec = SpanRecorder()
            rec.start("root")
            rec.leaf("a", 3.0)
            with rec.span("b"):
                rec.leaf("c", 2.0)
            return rec.close().to_dict()

        bare = build()
        with host_span_profile():
            profiled = build()
        assert bare == profiled

    def test_nested_activation_rejected(self):
        with host_span_profile():
            with pytest.raises(RuntimeError):
                with host_span_profile():
                    pass  # pragma: no cover

    def test_scope_resets_after_exit(self):
        with host_span_profile():
            pass
        with host_span_profile() as prof:  # re-entry after clean exit
            SpanRecorder().start("x")
        assert "x" in prof.table()


class TestHotspotBench:
    def test_run_hotspots_payload(self):
        from repro.bench.wallclock import run_hotspots

        hot = run_hotspots(smoke=True, engine="batched", top=5)
        assert hot["bench"] == "host-hotspots"
        assert hot["engine"] == "batched"
        assert 0 < len(hot["top_spans"]) <= 5
        assert hot["top_spans"][0]["host_seconds"] >= (
            hot["top_spans"][-1]["host_seconds"]
        )
        names = {r["span"] for r in hot["top_spans"]}
        assert "esc.round" in names  # the known dominant host span
        spent = sum(r["host_seconds"] for r in hot["top_spans"])
        assert spent <= hot["total_host_seconds"] + 1e-6

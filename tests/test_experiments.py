"""Unit tests for the experiment drivers, using fabricated records."""

import numpy as np
import pytest

from repro.bench import GPU_LINEUP, RunRecord
from repro.bench.experiments import (
    ac_best_percentage,
    figure5_trends,
    fullset_rows,
    table1_rows,
)


def rec(matrix, alg, seconds, *, a_len=5.0, dtype="float64", temp=100000):
    return RunRecord(
        matrix=matrix,
        algorithm=alg,
        dtype=dtype,
        gflops=2.0 * temp / seconds / 1e9,
        seconds=seconds,
        cycles=seconds * 1.582e9,
        temp=temp,
        nnz_c=temp // 2,
        mean_row_length=a_len,
        extra_memory_bytes=0,
        bit_stable=alg in ("ac-spgemm", "bhsparse", "rmerge"),
        correct=True,
    )


@pytest.fixture
def records():
    """Two sparse and one dense matrix; AC wins sparse, nsparse dense."""
    out = []
    for m, a_len, ac_t in (("s1", 3.0, 1.0), ("s2", 10.0, 2.0), ("d1", 80.0, 4.0)):
        for alg in GPU_LINEUP:
            if alg == "ac-spgemm":
                t = ac_t
            elif alg == "nsparse":
                t = ac_t * (0.5 if a_len > 42 else 2.0)
            else:
                t = ac_t * 3.0
            out.append(rec(m, alg, t, a_len=a_len))
    return out


class TestTable1:
    def test_sparse_summaries(self, records):
        rows = table1_rows(records, "float64", sparse=True)
        by = {r.competitor: r for r in rows}
        assert by["nsparse"].h_mean == pytest.approx(2.0)
        assert by["nsparse"].n_matrices == 2
        assert by["nsparse"].pct_better_than_ac == 0.0
        assert by["cusparse"].h_mean == pytest.approx(3.0)

    def test_dense_summaries(self, records):
        rows = table1_rows(records, "float64", sparse=False)
        by = {r.competitor: r for r in rows}
        assert by["nsparse"].h_mean == pytest.approx(0.5)
        assert by["nsparse"].pct_better_than_ac == 100.0
        assert by["nsparse"].pct_best_overall == 100.0

    def test_ac_best_percentage(self, records):
        assert ac_best_percentage(records, "float64", sparse=True) == 100.0
        assert ac_best_percentage(records, "float64", sparse=False) == 0.0

    def test_dtype_filter(self, records):
        # no float32 records at all -> nothing to summarise
        assert table1_rows(records, "float32", sparse=True) == []


class TestFigure5:
    def test_trend_only_sparse(self, records):
        trends = figure5_trends(records, "float64", n_bins=2)
        for alg, pts in trends.items():
            assert sum(n for _, _, n in pts) == 2  # two sparse matrices


class TestFullset:
    def test_split(self, records):
        small = fullset_rows(records, "float64", sparse=True)
        large = fullset_rows(records, "float64", sparse=False)
        assert {r[0] for r in small} == {"s1", "s2"}
        assert {r[0] for r in large} == {"d1"}
        assert len(small[0]) == 2 + len(GPU_LINEUP)

    def test_round_trip_json(self, records):
        r = records[0]
        back = RunRecord.from_json(r.to_json())
        assert back == r

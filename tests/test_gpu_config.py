"""Unit tests for the device configuration."""

import pytest

from repro.gpu import SMALL_DEVICE, TITAN_XP, DeviceConfig


def test_titan_defaults_match_paper():
    # §4: 256 threads, 8 sort elements/thread, keep up to 4, 256 nnz/block
    assert TITAN_XP.threads_per_block == 256
    assert TITAN_XP.nnz_per_thread == 8
    assert TITAN_XP.keep_per_thread == 4
    assert TITAN_XP.nnz_per_block_glb == 256
    # §3: "up to 4000 temporary elements can be held" per block
    assert 2000 <= TITAN_XP.elements_per_block <= 4096


def test_derived_properties():
    assert TITAN_XP.elements_per_block == 256 * 8
    assert TITAN_XP.keep_elements == 256 * 4
    assert TITAN_XP.warps_per_block == 8


def test_small_device_is_consistent():
    assert SMALL_DEVICE.keep_per_thread < SMALL_DEVICE.nnz_per_thread
    assert SMALL_DEVICE.elements_per_block < TITAN_XP.elements_per_block


def test_with_override():
    d = TITAN_XP.with_(nnz_per_block_glb=512)
    assert d.nnz_per_block_glb == 512
    assert d.threads_per_block == TITAN_XP.threads_per_block


@pytest.mark.parametrize(
    "kwargs,match",
    [
        ({"num_sms": 0}, "num_sms"),
        ({"warp_size": 33}, "power of two"),
        ({"threads_per_block": 100}, "multiple of warp_size"),
        ({"nnz_per_thread": 0}, "positive"),
        ({"keep_per_thread": 8}, "smaller than nnz_per_thread"),
        ({"nnz_per_block_glb": 0}, "positive"),
    ],
)
def test_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        DeviceConfig(**kwargs)

"""Device-level tracing: byte-determinism, reconciliation, analysis.

The contracts under test (see ``docs/ARCHITECTURE.md`` §6):

* the serialised trace is **byte-identical** across the reference,
  batched and parallel engines — including runs with injected faults
  and the degradation fallback;
* the trace reconciles **exactly** (no tolerance) with every other
  accounting surface: per-stage cycle sums equal ``result.stage_cycles``,
  attributed counters sum to ``result.counters``, per-launch SM busy
  times re-derive from block events, and records align with the span
  tree;
* ``options.device_trace=False`` costs nothing and attaches nothing.
"""

import json

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm
from repro.gpu import SMALL_DEVICE
from repro.gpu.counters import TrafficCounters
from repro.obs import validate_perfetto
from repro.obs.analyze import (
    analyze_result,
    reconcile,
    render_html,
    stage_leaf_spans,
)
from repro.obs.export import perfetto_payload
from repro.resilience.faults import FaultPlan

from .conftest import random_csr
from .test_edge_degenerate import degenerate_cases

ENGINES = ("reference", "batched", "parallel")


def _opts(**kw) -> AcSpgemmOptions:
    base = dict(
        device=SMALL_DEVICE,
        chunk_pool_lower_bound_bytes=1 << 20,
        device_trace=True,
    )
    base.update(kw)
    return AcSpgemmOptions(**base)


def _pair(rng, rows=70, inner=60, cols=65, density=0.08):
    return (
        random_csr(rng, rows, inner, density),
        random_csr(rng, inner, cols, density),
    )


def _assert_reconciled(res):
    """Exact (bit-level) agreement between the trace and the result."""
    dt = res.device_trace
    totals = dt.stage_cycle_totals()
    for stage, cycles in res.stage_cycles.items():
        assert totals.get(stage, 0.0) == cycles, stage
    assert dt.counter_totals() == res.counters
    for rec in dt.launches():
        assert dt.per_sm_busy(rec) == list(rec.sm_busy), rec.label
    # record-by-record span alignment, using the span clock's own
    # (start + cycles) - start float arithmetic
    leaf_spans = stage_leaf_spans(res.spans)
    assert len(leaf_spans) == len(dt.records)
    for span, rec in zip(leaf_spans, dt.records):
        assert span.attrs["stage"] == rec.stage
        assert span.start_cycle == rec.start_cycle
        assert span.duration == (rec.start_cycle + rec.cycles) - rec.start_cycle
    # the module-level reconciler agrees
    summary = reconcile(res)
    assert summary["checked"] and summary["spans_exact"]


class TestCrossEngineByteDeterminism:
    def test_plain_run(self, rng):
        a, b = _pair(rng)
        traces = {}
        for engine in ENGINES:
            res = ac_spgemm(a, b, _opts(engine=engine))
            _assert_reconciled(res)
            traces[engine] = res.device_trace.to_json()
        assert traces["reference"] == traces["batched"] == traces["parallel"]

    def test_restart_run(self, rng):
        """Pool exhaustion/restarts leave identical traces too."""
        a, b = _pair(rng, density=0.12)
        traces = {}
        for engine in ENGINES:
            res = ac_spgemm(
                a, b,
                _opts(engine=engine, chunk_pool_bytes=1 << 11,
                      chunk_pool_lower_bound_bytes=0),
            )
            assert res.restarts > 0  # the scenario must exercise restarts
            _assert_reconciled(res)
            traces[engine] = res.device_trace.to_json()
        assert traces["reference"] == traces["batched"] == traces["parallel"]
        host = [
            json.loads(traces["reference"])["records"][i]
            for i, r in enumerate(res.device_trace.records)
            if r.kind == "host"
        ]
        assert len(host) == res.restarts

    def test_faulted_run(self, rng):
        """An injected block abort shows up once, identically everywhere."""
        a, b = _pair(rng)
        plan = FaultPlan.single("block_abort", stage="ESC", round=0, block=1)
        traces = {}
        for engine in ENGINES:
            res = ac_spgemm(a, b, _opts(engine=engine, fault_plan=plan))
            _assert_reconciled(res)
            traces[engine] = res.device_trace.to_json()
        assert traces["reference"] == traces["batched"] == traces["parallel"]
        aborted = [
            ev for _, ev in res.device_trace.block_events() if ev.aborted
        ]
        assert len(aborted) == 1
        assert aborted[0].sm == -1 and aborted[0].cycles == 0.0

    def test_degraded_run_truncation_marker(self, rng):
        """The fallback path keeps partial records + explicit marker."""
        a, b = _pair(rng)
        plan = FaultPlan.single(
            "scratchpad_overflow", stage="MM", round=0, block=0
        )
        traces = {}
        for engine in ENGINES:
            res = ac_spgemm(
                a, b, _opts(engine=engine, fault_plan=plan,
                            on_failure="fallback"),
            )
            assert res.degraded
            dt = res.device_trace
            assert dt.truncated and dt.truncation_reason
            # pre-failure records survive, the fallback is appended
            assert dt.records[-1].stage == "FB"
            assert any(r.stage == "ESC" for r in dt.records)
            assert dt.stage_cycle_totals()["FB"] == res.stage_cycles["FB"]
            assert reconcile(res)["checked"] is False
            traces[engine] = dt.to_json()
        assert traces["reference"] == traces["batched"] == traces["parallel"]

    def test_repeat_run_is_byte_stable(self, rng):
        a, b = _pair(rng)
        first = ac_spgemm(a, b, _opts()).device_trace.to_json()
        second = ac_spgemm(a, b, _opts()).device_trace.to_json()
        assert first == second

    def test_shared_row_heavy_run(self):
        """Many shared rows with further charges after the second-chunk
        insert: the shared-row atomic must be settled at block-run exit
        on every engine, or the reference's inline charge perturbs the
        rounding of later global-access divisions and per-block cycles
        drift by one ulp (regression: diverged before the deferral)."""
        from repro.matrices.generators import random_uniform

        a = random_uniform(600, 600, 15.0, seed=7)
        traces = {}
        for engine in ENGINES:
            res = ac_spgemm(a, a, _opts(engine=engine))
            _assert_reconciled(res)
            traces[engine] = res.device_trace.to_json()
        assert traces["reference"] == traces["batched"] == traces["parallel"]


class TestReconciliationSweep:
    @pytest.mark.parametrize(
        "label,a,b", degenerate_cases(), ids=[c[0] for c in degenerate_cases()]
    )
    @pytest.mark.parametrize("engine", ENGINES)
    def test_degenerate_inputs(self, label, a, b, engine):
        res = ac_spgemm(a, b, _opts(engine=engine))
        _assert_reconciled(res)

    def test_merge_heavy_run(self, rng):
        """Shared rows push work through MM/PM/SM; all reconciled."""
        a, b = _pair(rng, rows=50, inner=40, cols=45, density=0.25)
        res = ac_spgemm(a, b, _opts())
        assert res.shared_rows > 0
        stages = {r.stage for r in res.device_trace.records}
        assert "MM" in stages or "PM" in stages or "SM" in stages
        _assert_reconciled(res)

    def test_off_by_default_and_zero_cost(self, rng):
        a, b = _pair(rng)
        res = ac_spgemm(a, b, AcSpgemmOptions(device=SMALL_DEVICE))
        assert res.device_trace is None
        # the scheduler skips placement recording when the trace is off
        assert res.spans is not None


class TestTrafficCountersDelta:
    def test_subtraction(self):
        before = TrafficCounters(global_bytes_read=10, flops=3)
        after = TrafficCounters(global_bytes_read=25, flops=3, atomic_ops=2)
        delta = after - before
        assert delta.global_bytes_read == 15
        assert delta.flops == 0
        assert delta.atomic_ops == 2

    def test_negative_delta_guard(self):
        before = TrafficCounters(global_bytes_read=10)
        after = TrafficCounters(global_bytes_read=25)
        with pytest.raises(ValueError, match="negative counter delta"):
            before - after

    def test_non_counter_operand(self):
        with pytest.raises(TypeError):
            TrafficCounters() - 1


class TestTraceContent:
    def test_block_events_carry_attribution(self, rng):
        a, b = _pair(rng)
        res = ac_spgemm(a, b, _opts())
        dt = res.device_trace
        esc = [ev for r, ev in dt.block_events() if r.stage == "ESC"]
        assert esc
        for ev in esc:
            assert 0 <= ev.sm < dt.num_sms
            assert ev.row_lo <= ev.row_hi
            assert ev.esc_iterations >= 1
            assert ev.end_cycle >= ev.start_cycle
        # some block sorted something, with plausible key widths
        sorts = [s for ev in esc for s in ev.sort_log]
        assert sorts and all(n > 0 and bits >= 2 for n, bits in sorts)
        # scratchpad high-water stays within the device bound
        assert all(
            0 <= ev.scratch_high_water <= SMALL_DEVICE.scratchpad_bytes
            for ev in esc
        )

    def test_chunk_counts_cover_pool(self, rng):
        a, b = _pair(rng)
        res = ac_spgemm(a, b, _opts())
        counts = res.device_trace.chunk_counts
        assert sum(counts.values()) == res.n_chunks
        assert all(k >= -1 for k in counts)

    def test_launch_records_within_makespan(self, rng):
        a, b = _pair(rng)
        res = ac_spgemm(a, b, _opts())
        for rec in res.device_trace.launches():
            for ev in rec.blocks:
                if not ev.aborted:
                    assert ev.end_cycle <= rec.start_cycle + rec.cycles + 1e-9


class TestAnalyze:
    def test_report_is_deterministic_across_engines(self, rng):
        a, b = _pair(rng)
        docs = {}
        for engine in ENGINES:
            opts = _opts(engine=engine)
            res = ac_spgemm(a, b, opts)
            report = analyze_result(res, opts, matrix_name="t")
            doc = report.report_doc()
            # the engine label is the only allowed difference
            doc["engine"] = "X"
            docs[engine] = json.dumps(doc, sort_keys=True)
        assert docs["reference"] == docs["batched"] == docs["parallel"]

    def test_report_figures(self, rng):
        a, b = _pair(rng)
        opts = _opts()
        res = ac_spgemm(a, b, opts)
        report = analyze_result(res, opts, matrix_name="t")
        doc = report.report_doc()
        fig = doc["figures"]
        assert sum(fig["esc_iteration_histogram"].values()) == res.n_blocks
        assert fig["stage_cycles"] == res.stage_cycles
        assert all(v >= 1.0 for v in fig["load_imbalance"].values())
        wl = fig["scratchpad_waterline"]
        assert 0 < wl["max_bytes"] <= wl["capacity_bytes"]
        assert doc["reconciliation"]["counters_exact"]
        # gate metrics are a flat numeric map
        metrics = report.metrics_doc()["metrics"]
        assert metrics and all(
            isinstance(v, float) for v in metrics.values()
        )
        assert any(k.startswith("load_imbalance.") for k in metrics)
        assert any(k.startswith("traffic_bytes.") for k in metrics)

    def test_html_rendering(self, rng, tmp_path):
        a, b = _pair(rng)
        opts = _opts()
        res = ac_spgemm(a, b, opts)
        report = analyze_result(res, opts, matrix_name="t<x>")
        html = render_html(report.report_doc())
        assert html.startswith("<!DOCTYPE html>")
        assert "t&lt;x&gt;" in html  # names are escaped
        assert "EXACT" in html and "Fig. 9" in html
        out = report.write_html(tmp_path / "r.html")
        assert out.read_text() == html

    def test_requires_device_trace(self, rng):
        a, b = _pair(rng)
        opts = AcSpgemmOptions(device=SMALL_DEVICE)
        res = ac_spgemm(a, b, opts)
        with pytest.raises(ValueError, match="device trace"):
            analyze_result(res, opts)

    def test_truncated_report(self, rng):
        a, b = _pair(rng)
        opts = _opts(
            fault_plan=FaultPlan.single(
                "scratchpad_overflow", stage="ESC", round=0, block=0
            ),
            on_failure="fallback",
        )
        res = ac_spgemm(a, b, opts)
        report = analyze_result(res, opts, matrix_name="t")
        doc = report.report_doc()
        assert doc["truncated"] and doc["truncation_reason"]
        assert doc["reconciliation"]["checked"] is False
        assert "TRUNCATED" in render_html(doc)


class TestPerfettoExport:
    def test_device_tracks_validate(self, rng):
        a, b = _pair(rng)
        res = ac_spgemm(a, b, _opts(collect_trace=True))
        payload = perfetto_payload(
            spans=res.spans,
            trace=res.trace,
            device=res.device_trace,
            clock_ghz=res.clock_ghz,
        )
        validate_perfetto(payload)
        dev = [e for e in payload["traceEvents"] if e.get("pid") == 3]
        assert any(e["ph"] == "X" for e in dev)
        assert any(e["ph"] == "C" for e in dev)
        sms = {e["tid"] for e in dev if e["ph"] == "X"}
        assert sms and all(tid >= 1 for tid in sms)

    def test_counter_tracks_without_device_trace(self, rng):
        """Satellite: pool/traffic counters ride the plain kernel trace."""
        a, b = _pair(rng)
        res = ac_spgemm(
            a, b,
            AcSpgemmOptions(device=SMALL_DEVICE, collect_trace=True),
        )
        payload = perfetto_payload(
            spans=res.spans, trace=res.trace, clock_ghz=res.clock_ghz
        )
        validate_perfetto(payload)
        names = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "C"
        }
        assert "chunk pool occupancy" in names
        assert "global traffic (cumulative)" in names

    def test_validator_rejects_bad_counter(self):
        bad = {
            "traceEvents": [
                {"name": "c", "ph": "C", "ts": 1.0, "pid": 1, "tid": 0,
                 "args": {"v": "not a number"}},
            ]
        }
        with pytest.raises(ValueError, match="non-numeric"):
            validate_perfetto(bad)

"""Adversarial-input tests for the Matrix Market reader (robustness).

Truncated files, unparsable bodies and out-of-range indices must raise
a typed :class:`MatrixMarketError` (never an uncaught numpy error or a
silently wrong matrix); non-finite values are policy — rejected under
``strict`` (the default), passed through with ``strict=False``.
"""

import numpy as np
import pytest

from repro import ReproError
from repro.sparse import load_matrix
from repro.sparse.io import MatrixMarketError, read_matrix_market

pytestmark = pytest.mark.fault

GOOD = """%%MatrixMarket matrix coordinate real general
3 4 3
1 1 1.5
2 3 -2.0
3 4 0.25
"""


def _write(tmp_path, text, name="m.mtx"):
    p = tmp_path / name
    p.write_text(text)
    return p


def test_good_file_baseline(tmp_path):
    m = read_matrix_market(_write(tmp_path, GOOD))
    assert (m.rows, m.cols, m.nnz) == (3, 4, 3)


def test_empty_file(tmp_path):
    with pytest.raises(MatrixMarketError, match="empty file"):
        read_matrix_market(_write(tmp_path, ""))


def test_missing_size_line(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n% comment\n"
    with pytest.raises(MatrixMarketError, match="missing size line"):
        read_matrix_market(_write(tmp_path, text))


def test_truncated_body(tmp_path):
    text = GOOD.rsplit("\n", 2)[0] + "\n"  # drop the last entry
    with pytest.raises(MatrixMarketError, match="expected 3 entries, found 2"):
        read_matrix_market(_write(tmp_path, text))


def test_unparsable_body(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 one 1.0\n"
    with pytest.raises(MatrixMarketError, match="unparsable entry body"):
        read_matrix_market(_write(tmp_path, text))


def test_non_integer_size_line(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n3 4.5 1\n1 1 1.0\n"
    with pytest.raises(MatrixMarketError, match="non-integer size line"):
        read_matrix_market(_write(tmp_path, text))


def test_negative_dimension(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n-3 4 1\n1 1 1.0\n"
    with pytest.raises(MatrixMarketError, match="negative dimension"):
        read_matrix_market(_write(tmp_path, text))


@pytest.mark.parametrize("entry", ["0 1 1.0", "4 1 1.0", "1 0 1.0", "1 5 1.0"])
def test_index_out_of_range(tmp_path, entry):
    text = f"%%MatrixMarket matrix coordinate real general\n3 4 1\n{entry}\n"
    with pytest.raises(MatrixMarketError, match="index out of range"):
        read_matrix_market(_write(tmp_path, text))


def test_non_integer_index(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n3 4 1\n1.5 1 1.0\n"
    with pytest.raises(MatrixMarketError, match="non-integer row/column"):
        read_matrix_market(_write(tmp_path, text))


@pytest.mark.parametrize("bad", ["nan", "inf", "-inf"])
def test_nonfinite_rejected_by_default(tmp_path, bad):
    text = f"%%MatrixMarket matrix coordinate real general\n3 4 1\n1 1 {bad}\n"
    with pytest.raises(MatrixMarketError, match="non-finite value"):
        read_matrix_market(_write(tmp_path, text))


def test_nonfinite_passes_when_not_strict(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n3 4 2\n1 1 nan\n2 2 inf\n"
    m = read_matrix_market(_write(tmp_path, text), strict=False)
    assert np.isnan(m.values).sum() == 1
    assert np.isinf(m.values).sum() == 1


def test_array_body_wrong_count(tmp_path):
    text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n3.0\n"
    with pytest.raises(MatrixMarketError, match="expected 4 array entries"):
        read_matrix_market(_write(tmp_path, text))


def test_array_nonfinite_strict(tmp_path):
    # inf, not nan: the array path builds via from_dense, whose
    # |x| > 0 nonzero mask is False for nan (nan entries drop out)
    text = "%%MatrixMarket matrix array real general\n2 1\n1.0\ninf\n"
    with pytest.raises(MatrixMarketError, match="non-finite value"):
        read_matrix_market(_write(tmp_path, text))
    m = read_matrix_market(_write(tmp_path, text, "m2.mtx"), strict=False)
    assert np.isinf(m.to_dense()).sum() == 1


def test_load_matrix_threads_strict(tmp_path):
    text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n"
    p = _write(tmp_path, text)
    with pytest.raises(MatrixMarketError):
        load_matrix(p, cache=False)
    m = load_matrix(p, cache=False, strict=False)
    assert np.isinf(m.values).any()


def test_error_type_is_typed_and_a_valueerror(tmp_path):
    with pytest.raises(ReproError):
        read_matrix_market(_write(tmp_path, ""))
    with pytest.raises(ValueError):
        read_matrix_market(_write(tmp_path, "", "m2.mtx"))


class TestCliDiagnostics:
    """A typed failure exits the CLI with code 2 and one stderr line."""

    def test_single_on_truncated_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = _write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n",
        )
        rc = main(["single", str(bad)])
        captured = capsys.readouterr()
        assert rc == 2
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("repro: MatrixMarketError")
        assert "Traceback" not in captured.err

    def test_single_on_restart_budget(self, tmp_path, capsys, rng):
        from repro.cli import main
        from repro.sparse import write_matrix_market
        from tests.conftest import random_csr

        p = tmp_path / "dense.mtx"
        write_matrix_market(p, random_csr(rng, 40, 40, 0.2))
        # sane file, healthy pipeline: exit 0
        assert main(["single", str(p)]) == 0
        capsys.readouterr()

"""Tests for the synthetic matrix generators, the named collection and
the benchmark suite."""

import numpy as np
import pytest

from repro.matrices import (
    NAMED_COLLECTION,
    banded,
    bipartite_design,
    block_dense,
    build,
    diagonal_dominant,
    long_row_matrix,
    lp_matrix,
    names,
    power_law,
    random_uniform,
    road_network,
    stencil_2d,
    stencil_3d,
    suite_entries,
)
from repro.sparse import matrix_stats, validate_csr


ALL_GENERATORS = [
    ("uniform", lambda s: random_uniform(300, 300, 5, seed=s)),
    ("banded", lambda s: banded(200, 3, seed=s)),
    ("banded-fill", lambda s: banded(200, 3, seed=s, fill=0.8)),
    ("stencil2d", lambda s: stencil_2d(14, seed=s)),
    ("stencil3d", lambda s: stencil_3d(6, seed=s)),
    ("powerlaw", lambda s: power_law(400, 4, seed=s)),
    ("road", lambda s: road_network(500, seed=s)),
    ("blockdense", lambda s: block_dense(150, 30, n_blocks=2, seed=s)),
    ("longrow", lambda s: long_row_matrix(300, 3, 2, 80, seed=s)),
    ("design", lambda s: bipartite_design(20, 200, 30, seed=s)),
    ("lp", lambda s: lp_matrix(50, 500, 20, seed=s)),
    ("diag", lambda s: diagonal_dominant(200, 4, seed=s)),
]


class TestGenerators:
    @pytest.mark.parametrize("name,gen", ALL_GENERATORS)
    def test_canonical_output(self, name, gen):
        m = gen(0)
        validate_csr(m)
        assert m.nnz > 0
        assert np.isfinite(m.values).all()
        assert (m.values != 0).all()

    @pytest.mark.parametrize("name,gen", ALL_GENERATORS)
    def test_deterministic_by_seed(self, name, gen):
        assert gen(7).exactly_equal(gen(7))

    @pytest.mark.parametrize("name,gen", ALL_GENERATORS)
    def test_seed_changes_matrix(self, name, gen):
        assert not gen(1).exactly_equal(gen(2))

    def test_uniform_hits_target_row_length(self):
        m = random_uniform(2000, 2000, 8, seed=0)
        assert abs(matrix_stats(m).mean_row_length - 8) < 1.0

    def test_banded_structure(self):
        m = banded(50, 2, seed=0)
        row_ids = np.repeat(np.arange(50), m.row_lengths())
        assert (np.abs(m.col_idx - row_ids) <= 2).all()

    def test_stencil_2d_interior_degree(self):
        m = stencil_2d(10)
        # interior nodes have 5 entries (self + 4 neighbours)
        assert matrix_stats(m).max_row_length == 5

    def test_stencil_3d_interior_degree(self):
        assert matrix_stats(stencil_3d(6)).max_row_length == 7

    def test_power_law_has_hubs(self):
        m = power_law(2000, 4, seed=1)
        st = matrix_stats(m)
        assert st.max_row_length > 8 * st.mean_row_length

    def test_road_network_tiny_rows(self):
        st = matrix_stats(road_network(3000, seed=0))
        assert st.mean_row_length < 5

    def test_block_dense_long_rows(self):
        st = matrix_stats(block_dense(300, 60, n_blocks=2, seed=0))
        assert st.max_row_length > 30

    def test_long_row_matrix(self):
        m = long_row_matrix(500, 3, 2, 200, seed=0)
        st = matrix_stats(m)
        assert st.max_row_length >= 150
        assert st.mean_row_length < 6

    def test_design_rows_equal_length(self):
        m = bipartite_design(10, 100, 25, seed=0)
        assert (m.row_lengths() == 25).all()

    def test_diagonal_present(self):
        m = diagonal_dominant(100, 2, seed=0)
        dense = m.to_dense()
        assert (np.diag(dense) != 0).all()


class TestSeedThreading:
    """Satellite: every generator threads an explicit seeded Generator —
    no global numpy RNG — so matrices are identical across processes."""

    @pytest.mark.parametrize("name,gen", ALL_GENERATORS)
    def test_accepts_generator_seed(self, name, gen):
        g1 = np.random.default_rng(99)
        g2 = np.random.default_rng(99)
        assert gen(g1).exactly_equal(gen(g2))

    @pytest.mark.parametrize("name,gen", ALL_GENERATORS)
    def test_global_rng_state_is_irrelevant(self, name, gen):
        np.random.seed(1)
        a = gen(5)
        np.random.seed(2)
        b = gen(5)
        assert a.exactly_equal(b)

    def test_derive_seed_int_path_stable(self):
        from repro.matrices.generators import as_generator, derive_seed

        assert derive_seed(10, 1) == 11  # int path is frozen: seed+offset
        child = derive_seed(np.random.default_rng(3), 1)
        assert isinstance(child, np.random.Generator)
        g = as_generator(7)
        assert as_generator(g) is g  # pass-through, no reseeding

    def test_cross_process_determinism(self):
        """A spawn-fresh interpreter derives byte-identical matrices —
        the property campaign workers rely on."""
        import subprocess
        import sys
        from pathlib import Path

        from repro.campaign import matrix_fingerprint, tiny_entries

        local = {e.name: matrix_fingerprint(e.build()) for e in tiny_entries()}
        script = (
            "import json\n"
            "from repro.campaign import matrix_fingerprint, tiny_entries\n"
            "print(json.dumps({e.name: matrix_fingerprint(e.build())"
            " for e in tiny_entries()}))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        import json

        assert json.loads(out.stdout) == local


class TestNamedCollection:
    def test_all_names_build(self):
        for name in names():
            m = build(name)
            validate_csr(m)
            assert m.nnz > 1000

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown named matrix"):
            build("nope")

    def test_sparse_dense_split_matches_paper(self):
        """Analogues stay on the same side of the a <= 42 split as the
        paper's originals (Table 2)."""
        for m in NAMED_COLLECTION:
            analog = m.build()
            a_ours = analog.nnz / analog.rows
            a_paper = m.paper.a_len
            if m.name == "bibd_19_9":
                continue  # both >> 42 anyway
            assert (a_ours <= 42) == (a_paper <= 42), m.name

    def test_nonsquare_cases(self):
        for name in ("stat96v2", "bibd_19_9", "landmark"):
            m = build(name)
            assert m.rows != m.cols, name

    def test_paper_stats_recorded(self):
        m = NAMED_COLLECTION[0]
        assert m.paper.temp > 0
        assert m.paper.compaction > 0

    def test_deterministic(self):
        assert build("scircuit").exactly_equal(build("scircuit"))


class TestSuite:
    def test_suite_size_and_naming(self):
        entries = suite_entries()
        assert len(entries) >= 60
        assert len({e.name for e in entries}) == len(entries)

    def test_family_filter(self):
        roads = suite_entries({"road"})
        assert roads and all(e.family == "road" for e in roads)

    def test_sparse_fraction_matches_paper(self):
        """~80% of the population is highly sparse (Fig. 1 / §4.1)."""
        sparse = total = 0
        for e in suite_entries():
            m = e.build()
            total += 1
            sparse += (m.nnz / m.rows) <= 42
        assert 0.7 <= sparse / total <= 0.92

    def test_entries_build_canonical(self):
        for e in suite_entries()[:10]:
            validate_csr(e.build())

"""Whole-pipeline invariants that cut across modules."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm, count_intermediate_products
from repro.gpu import SMALL_DEVICE
from repro.matrices import random_uniform
from tests.conftest import random_csr


@pytest.fixture
def opts():
    return AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)


class TestConservation:
    def test_chunk_counts_sum_to_output(self, opts, rng):
        """After merging, per-row counts equal the final nnz(C)."""
        a = random_csr(rng, 70, 70, 0.1)
        res = ac_spgemm(a, a, opts)
        assert int(res.matrix.row_ptr[-1]) == res.matrix.nnz

    def test_sorted_elements_at_least_temp(self, opts, rng):
        """Every temporary product passes through the sort at least
        once (carried elements and merges re-sort some)."""
        a = random_csr(rng, 60, 60, 0.1)
        res = ac_spgemm(a, a, opts)
        temp = count_intermediate_products(a, a)
        assert res.counters.sorted_elements >= temp

    def test_global_reads_cover_inputs(self, opts, rng):
        a = random_csr(rng, 60, 60, 0.1)
        res = ac_spgemm(a, a, opts)
        temp = count_intermediate_products(a, a)
        # at minimum: A entries once, one B gather per product
        min_bytes = a.nnz * 4 + temp * 4
        assert res.counters.global_bytes_read >= min_bytes

    def test_kernel_launches_bounded(self, opts, rng):
        """AC-SpGEMM's launch count stays small (single-digit plus
        merge/restart rounds) — the overhead the pipeline design
        minimises."""
        a = random_csr(rng, 60, 60, 0.08)
        res = ac_spgemm(a, a, opts)
        assert res.counters.kernel_launches <= 10 + 2 * res.restarts


class TestScaling:
    def test_time_grows_with_temp(self, opts):
        """More intermediate products => more simulated time."""
        times = []
        for avg in (2, 6, 18):
            a = random_uniform(600, 600, avg, seed=3)
            times.append(ac_spgemm(a, a, opts).seconds)
        assert times[0] < times[1] < times[2]

    def test_gflops_improves_with_scale(self, opts):
        """Launch overheads amortise: throughput rises with size."""
        gf = []
        for n in (200, 800, 3200):
            a = random_uniform(n, n, 6, seed=4)
            res = ac_spgemm(a, a, opts)
            temp = count_intermediate_products(a, a)
            gf.append(2 * temp / res.seconds / 1e9)
        assert gf[0] < gf[1] < gf[2]

    def test_nnz_per_block_trades_blocks_for_chunks(self, rng):
        """Larger global load-balancing blocks => fewer blocks and fewer
        boundary (shared) rows."""
        a = random_csr(rng, 120, 120, 0.1)
        small_blocks = ac_spgemm(
            a, a, AcSpgemmOptions(
                device=SMALL_DEVICE.with_(nnz_per_block_glb=8),
                chunk_pool_lower_bound_bytes=1 << 20,
            )
        )
        large_blocks = ac_spgemm(
            a, a, AcSpgemmOptions(
                device=SMALL_DEVICE.with_(nnz_per_block_glb=64),
                chunk_pool_lower_bound_bytes=1 << 20,
            )
        )
        assert large_blocks.n_blocks < small_blocks.n_blocks
        assert large_blocks.shared_rows <= small_blocks.shared_rows
        assert large_blocks.matrix.allclose(small_blocks.matrix, rtol=1e-12)

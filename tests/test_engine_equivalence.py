"""Property tests: every execution engine is observationally identical.

The batched and parallel engines are execution strategies, not
alternative semantics (see docs/ARCHITECTURE.md, "Execution engines"):
for any input they must produce a bit-identical output matrix *and*
identical simulated statistics — per-stage cycles, traffic counters,
restart count, multiprocessor load, memory report.  The cases below
sweep the shapes that exercise distinct code paths: empty rows, dense
rows, long rows, both value dtypes, disabled bit reduction, and a pool
small enough to force completion restarts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.matrices import generators as g
from repro.sparse.stats import squared_operands
from tests.conftest import random_csr

ENGINES = ("batched", "parallel", "process")


def _signature(res) -> dict:
    """Everything an engine is forbidden to perturb."""
    return {
        "row_ptr": res.matrix.row_ptr.tobytes(),
        "col_idx": res.matrix.col_idx.tobytes(),
        "values": res.matrix.values.tobytes(),
        "stage_cycles": dict(res.stage_cycles),
        "counters": res.counters,
        "restarts": res.restarts,
        "mp_load": res.multiprocessor_load,
        "n_chunks": res.n_chunks,
        "memory": res.memory,
    }


def _run_all(a, b, dtype="float64", **kw):
    sigs = {}
    results = {}
    for engine in ("reference",) + ENGINES:
        opts = AcSpgemmOptions(
            value_dtype=np.dtype(dtype), engine=engine, **kw
        )
        results[engine] = ac_spgemm(a, b, opts)
        sigs[engine] = _signature(results[engine])
    ref = sigs["reference"]
    for engine in ENGINES:
        mismatched = [k for k in ref if sigs[engine][k] != ref[k]]
        assert not mismatched, f"{engine} diverges in {mismatched}"
    return results["reference"]


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_uniform_square_both_dtypes(dtype):
    a, b = squared_operands(g.random_uniform(500, 500, 10.0, seed=11))
    _run_all(a, b, dtype=dtype)


def test_empty_rows(rng):
    # sparse enough that many rows of A (and of the result) are empty
    a = random_csr(rng, 300, 300, 0.008)
    counts = np.diff(a.row_ptr)
    assert (counts == 0).any(), "case must include empty rows"
    _run_all(a, a)


def test_dense_rows(rng):
    # dense operand rows drive large per-block expansions
    a = random_csr(rng, 120, 120, 0.5)
    _run_all(a, a)


def test_long_skewed_rows():
    mtx = g.long_row_matrix(
        400, 3.0, n_long_rows=3, long_row_len=300, seed=12
    )
    a, b = squared_operands(mtx)
    _run_all(a, b)


def test_power_law_float32():
    a, b = squared_operands(g.power_law(500, avg_row_len=8.0, seed=13))
    _run_all(a, b, dtype="float32")


def test_restarts_from_small_pool():
    a, b = squared_operands(g.random_uniform(400, 400, 10.0, seed=14))
    res = _run_all(
        a, b, chunk_pool_bytes=6000, chunk_pool_lower_bound_bytes=0
    )
    assert res.restarts > 0, "case must exercise the restart path"


def test_bit_reduction_disabled():
    a, b = squared_operands(g.random_uniform(350, 350, 9.0, seed=15))
    _run_all(a, b, enable_bit_reduction=False)

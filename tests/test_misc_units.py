"""Remaining unit coverage: block context, long-row policy, CPU
baseline clock, merge order keys, AC adapter."""

import numpy as np
import pytest

from repro import AcSpgemmOptions
from repro.baselines import AcSpgemm, GustavsonCPU
from repro.core import long_row_mask
from repro.core.merge import MERGE_BLOCK_SEQ_BASE, MultiMergeBlock
from repro.core.merge_path import PathMergeBlock
from repro.core.merge_search import SearchMergeBlock
from repro.gpu import BlockContext, SMALL_DEVICE, TITAN_XP
from repro.matrices import random_uniform
from tests.conftest import random_csr


class TestBlockContext:
    def test_fresh_meter_and_scratchpad(self):
        ctx = BlockContext(config=TITAN_XP, block_id=3)
        assert ctx.cycles == 0.0
        assert ctx.scratchpad.capacity_bytes == TITAN_XP.scratchpad_bytes
        assert ctx.threads == 256

    def test_meter_bound_to_config(self):
        ctx = BlockContext(config=SMALL_DEVICE, block_id=0)
        assert ctx.meter.config is SMALL_DEVICE


class TestLongRowPolicy:
    def test_threshold_is_block_capacity(self):
        opts = AcSpgemmOptions(device=SMALL_DEVICE)
        lengths = np.array([1, SMALL_DEVICE.elements_per_block,
                            SMALL_DEVICE.elements_per_block + 1])
        mask = long_row_mask(lengths, opts)
        np.testing.assert_array_equal(mask, [False, False, True])

    def test_explicit_threshold(self):
        opts = AcSpgemmOptions(device=SMALL_DEVICE, long_row_threshold=2)
        np.testing.assert_array_equal(
            long_row_mask(np.array([1, 2, 3]), opts), [False, False, True]
        )

    def test_disabled(self):
        opts = AcSpgemmOptions(
            device=SMALL_DEVICE, enable_long_row_handling=False
        )
        assert not long_row_mask(np.array([10**6]), opts).any()


class TestMergeOrderKeys:
    def test_kind_offsets_disjoint(self):
        mm = MultiMergeBlock(block_index=5, rows=(1,))
        pm = PathMergeBlock(block_index=5, row=1)
        sm = SearchMergeBlock(block_index=5, row=1)
        keys = {
            (MERGE_BLOCK_SEQ_BASE + 5, 0),
            pm._order_key(),
            sm._order_key(),
        }
        assert len(keys) == 3

    def test_merge_keys_after_esc_keys(self):
        # ESC block ids are bounded by nnz(A) / NNZ_PER_BLOCK << 2^40
        assert MERGE_BLOCK_SEQ_BASE > 1 << 32


class TestCpuBaseline:
    def test_uses_cpu_clock(self, rng):
        a = random_csr(rng, 30, 30, 0.2)
        run = GustavsonCPU().multiply(a, a)
        assert run.clock_ghz == pytest.approx(3.6)

    def test_no_kernel_launches(self, rng):
        a = random_csr(rng, 30, 30, 0.2)
        run = GustavsonCPU().multiply(a, a)
        assert run.counters.kernel_launches == 0


class TestAcAdapter:
    def test_options_dtype_propagates(self):
        adapter = AcSpgemm()
        opts = adapter.options_for(np.float32)
        assert opts.value_dtype == np.float32

    def test_run_carries_full_result(self):
        a = random_uniform(300, 300, 4, seed=1)
        run = AcSpgemm().multiply(a, a)
        assert hasattr(run, "ac_result")
        assert run.ac_result.matrix is run.matrix
        assert set(run.stage_cycles) == {
            "GLB", "ESC", "MCC", "MM", "PM", "SM", "CC",
        }

    def test_custom_options_respected(self):
        a = random_uniform(200, 200, 4, seed=2)
        base = AcSpgemmOptions(
            device=SMALL_DEVICE,
            chunk_pool_lower_bound_bytes=1 << 20,
            enable_long_row_handling=False,
        )
        adapter = AcSpgemm(device=SMALL_DEVICE, options=base)
        opts = adapter.options_for(np.float64)
        assert not opts.enable_long_row_handling
        run = adapter.multiply(a, a)
        assert run.matrix.nnz > 0

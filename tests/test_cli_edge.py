"""Additional CLI edge cases and the module entry point."""

import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.sparse import write_matrix_market
from tests.conftest import random_csr


def test_module_entry_point(tmp_path, rng):
    m = random_csr(rng, 25, 25, 0.15)
    p = tmp_path / "m.mtx"
    write_matrix_market(p, m)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "single", str(p)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-1000:]
    assert "gflops" in proc.stdout


def test_single_float_precision(tmp_path, rng, capsys):
    m = random_csr(rng, 30, 30, 0.15)
    p = tmp_path / "m.mtx"
    write_matrix_market(p, m)
    assert main(["single", str(p), "--float", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "single precision" in out


def test_runall_isolates_failures(tmp_path, rng, capsys):
    """A broken matrix file must not impede the remaining runs
    (Appendix A.4: 'failed launches do not impede launches after')."""
    write_matrix_market(tmp_path / "good.mtx", random_csr(rng, 20, 20, 0.2))
    (tmp_path / "broken.mtx").write_text("%%MatrixMarket nonsense\n")
    out_csv = tmp_path / "res.csv"
    assert main(["runall", str(tmp_path), "--out", str(out_csv)]) == 0
    captured = capsys.readouterr()
    assert "FAILED" in captured.err
    lines = out_csv.read_text().splitlines()
    assert len(lines) == 2  # header + the good matrix


def test_single_requires_existing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["single", str(tmp_path / "missing.mtx")])


def test_compare_output_names_all_algorithms(tmp_path, rng, capsys):
    m = random_csr(rng, 30, 30, 0.2)
    p = tmp_path / "m.mtx"
    write_matrix_market(p, m)
    assert main(["compare", str(p), "--float"]) == 0
    out = capsys.readouterr().out
    for name in ("ac-spgemm", "cusparse", "bhsparse", "rmerge", "nsparse", "kokkos"):
        assert name in out

"""Unit tests for the AC-ESC block executor (§3.2)."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix
from repro.core import EscBlock, ChunkPool, RowChunkTracker, global_load_balance
from repro.core.chunks import PoolExhausted
from repro.gpu import BlockContext, CostMeter, SMALL_DEVICE
from repro.sparse import spgemm_reference
from tests.conftest import random_csr


def run_single_block(a, b, options, pool_bytes=1 << 20):
    """Run every ESC block of A x B, returning pool + tracker."""
    meter = CostMeter(config=options.device)
    glb = global_load_balance(a, options.device.nnz_per_block_glb, meter)
    pool = ChunkPool(capacity_bytes=pool_bytes)
    tracker = RowChunkTracker(n_rows=a.rows)
    blocks = [
        EscBlock(block_id=i, a=a, b=b, glb=glb, options=options)
        for i in range(glb.n_blocks)
    ]
    for blk in blocks:
        ctx = BlockContext(config=options.device, block_id=blk.block_id)
        outcome = blk.run(ctx, pool, tracker)
        assert outcome.done
    return pool, tracker, blocks


@pytest.fixture
def options():
    return AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)


def reconstruct(pool, tracker, b, n_rows, n_cols):
    """Assemble all chunk data per row (merging by accumulation) and
    compare against the reference product."""
    from collections import defaultdict

    per_row = defaultdict(list)
    for chunk in pool.ordered_chunks():
        for row in chunk.covered_rows().tolist():
            seg = chunk.row_segment(row)
            per_row[row].append(
                (chunk.columns(b)[seg], chunk.values(b)[seg])
            )
    dense = np.zeros((n_rows, n_cols))
    for row, parts in per_row.items():
        for cols, vals in parts:
            np.add.at(dense[row], np.asarray(cols), np.asarray(vals))
    return dense


class TestEscCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_chunks_cover_product(self, seed, options):
        rng = np.random.default_rng(seed)
        a = random_csr(rng, 40, 40, 0.08)
        pool, tracker, _ = run_single_block(a, a, options)
        dense = reconstruct(pool, tracker, a, 40, 40)
        np.testing.assert_allclose(
            dense, spgemm_reference(a, a).to_dense(), rtol=1e-12
        )

    def test_chunk_rows_sorted_and_columns_sorted(self, options, rng):
        a = random_csr(rng, 30, 30, 0.1)
        pool, _, _ = run_single_block(a, a, options)
        for chunk in pool.chunks:
            if chunk.kind != "data":
                continue
            assert (np.diff(chunk.rows) >= 0).all()
            for row in chunk.covered_rows().tolist():
                seg = chunk.row_segment(row)
                assert (np.diff(chunk.cols[seg]) > 0).all()

    def test_row_counts_accumulated(self, options, rng):
        a = random_csr(rng, 25, 25, 0.1)
        pool, tracker, _ = run_single_block(a, a, options)
        total = sum(c.count for c in pool.chunks)
        assert tracker.row_counts.sum() == total


class TestKeepLastRow:
    def test_fewer_chunks_with_carrying(self, rng, options):
        a = random_csr(rng, 50, 50, 0.1)
        pool_on, _, _ = run_single_block(a, a, options)
        pool_off, _, _ = run_single_block(
            a, a, options.with_(enable_keep_last_row=False)
        )
        assert len(pool_on.chunks) <= len(pool_off.chunks)


class TestLongRows:
    def make_long_row_case(self, options):
        n = 200
        rng = np.random.default_rng(3)
        d = (rng.random((n, n)) < 0.02) * rng.random((n, n))
        d[:, 7] = 0.0
        d[5, 7] = 2.0  # A references row 7 of B
        b = d.copy()
        b[7, :] = rng.random(n)  # row 7 longer than SMALL capacity (128)
        return CSRMatrix.from_dense(d), CSRMatrix.from_dense(b)

    def test_pointer_chunk_created(self, options):
        a, b = self.make_long_row_case(options)
        pool, tracker, _ = run_single_block(a, b, options)
        pointers = [c for c in pool.chunks if c.kind == "pointer"]
        assert pointers
        assert pointers[0].b_row == 7
        assert pointers[0].factor == 2.0

    def test_disabled_long_rows_materialise(self, options):
        a, b = self.make_long_row_case(options)
        pool, _, _ = run_single_block(
            a, b, options.with_(enable_long_row_handling=False)
        )
        assert not [c for c in pool.chunks if c.kind == "pointer"]


class TestRestart:
    def test_restart_resumes_and_completes(self, rng, options):
        a = random_csr(rng, 40, 40, 0.1)
        meter = CostMeter(config=options.device)
        glb = global_load_balance(a, options.device.nnz_per_block_glb, meter)
        # reference run with a huge pool
        big_pool = ChunkPool(capacity_bytes=1 << 22)
        big_tracker = RowChunkTracker(n_rows=a.rows)
        for i in range(glb.n_blocks):
            blk = EscBlock(block_id=i, a=a, b=a, glb=glb, options=options)
            assert blk.run(
                BlockContext(config=options.device, block_id=i),
                big_pool,
                big_tracker,
            ).done

        # constrained run: grow the pool on demand
        pool = ChunkPool(capacity_bytes=700)
        tracker = RowChunkTracker(n_rows=a.rows)
        blocks = [
            EscBlock(block_id=i, a=a, b=a, glb=glb, options=options)
            for i in range(glb.n_blocks)
        ]
        pending = list(blocks)
        rounds = 0
        while pending:
            rounds += 1
            assert rounds < 100
            still = []
            for blk in pending:
                ctx = BlockContext(config=options.device, block_id=blk.block_id)
                if not blk.run(ctx, pool, tracker).done:
                    still.append(blk)
            if still:
                pool.grow(700)
            pending = still
        assert rounds > 1, "test should actually exercise restarts"

        # restarted execution produces the same data per row
        ref = reconstruct(big_pool, big_tracker, a, a.rows, a.cols)
        got = reconstruct(pool, tracker, a, a.rows, a.cols)
        np.testing.assert_allclose(got, ref, rtol=1e-12)
        # and the same row counts
        np.testing.assert_array_equal(
            tracker.row_counts, big_tracker.row_counts
        )

    def test_attempts_recorded(self, rng, options):
        a = random_csr(rng, 30, 30, 0.15)
        meter = CostMeter(config=options.device)
        glb = global_load_balance(a, options.device.nnz_per_block_glb, meter)
        pool = ChunkPool(capacity_bytes=500)
        tracker = RowChunkTracker(n_rows=a.rows)
        blk = EscBlock(block_id=0, a=a, b=a, glb=glb, options=options)
        ctx = BlockContext(config=options.device, block_id=0)
        outcome = blk.run(ctx, pool, tracker)
        if not outcome.done:
            pool.grow(1 << 20)
            ctx2 = BlockContext(config=options.device, block_id=0)
            assert blk.run(ctx2, pool, tracker).done
            assert blk.attempts == 2

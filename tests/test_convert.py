"""Unit tests for conversions and structural transforms."""

import numpy as np
import pytest

from repro import CSRMatrix, transpose
from repro.sparse import (
    extract_rows,
    lower_triangle,
    prune_explicit_zeros,
    sort_row_entries,
    upper_triangle,
    validate_csr,
)
from tests.conftest import random_csr


class TestTranspose:
    def test_matches_dense(self, rng):
        m = random_csr(rng, 13, 21, 0.25)
        np.testing.assert_array_equal(transpose(m).to_dense(), m.to_dense().T)

    def test_result_is_canonical(self, rng):
        m = random_csr(rng, 40, 17, 0.3)
        validate_csr(transpose(m))

    def test_double_transpose_identity(self, rng):
        m = random_csr(rng, 9, 31, 0.2)
        assert transpose(transpose(m)).exactly_equal(m)

    def test_empty(self):
        t = transpose(CSRMatrix.empty(4, 7))
        assert t.shape == (7, 4)
        assert t.nnz == 0


class TestSortRowEntries:
    def test_sorts_shuffled_rows(self, rng):
        m = random_csr(rng, 10, 20, 0.4)
        shuffled = m.copy()
        # shuffle within each row
        for i in range(m.rows):
            lo, hi = m.row_ptr[i], m.row_ptr[i + 1]
            perm = rng.permutation(hi - lo)
            shuffled.col_idx[lo:hi] = m.col_idx[lo:hi][perm]
            shuffled.values[lo:hi] = m.values[lo:hi][perm]
        assert sort_row_entries(shuffled).exactly_equal(m)


class TestPrune:
    def test_removes_zeros(self):
        m = CSRMatrix(
            2, 2, np.array([0, 2, 3]), np.array([0, 1, 0]), np.array([1.0, 0.0, 2.0])
        )
        p = prune_explicit_zeros(m)
        assert p.nnz == 2
        np.testing.assert_array_equal(p.to_dense(), m.to_dense())

    def test_noop_when_clean(self, medium_matrix):
        assert prune_explicit_zeros(medium_matrix).exactly_equal(medium_matrix)


class TestExtractRows:
    def test_subset(self, rng):
        m = random_csr(rng, 12, 8, 0.4)
        sub = extract_rows(m, np.array([3, 0, 7]))
        np.testing.assert_array_equal(
            sub.to_dense(), m.to_dense()[[3, 0, 7]]
        )


class TestTriangles:
    def test_strict_split_partitions(self, rng):
        m = random_csr(rng, 15, 15, 0.3)
        lo = lower_triangle(m)
        up = upper_triangle(m)
        diag = np.diag(np.diag(m.to_dense()))
        np.testing.assert_allclose(
            lo.to_dense() + up.to_dense() + diag, m.to_dense()
        )

    def test_inclusive(self, rng):
        m = random_csr(rng, 10, 10, 0.5)
        lo = lower_triangle(m, strict=False)
        dense = lo.to_dense()
        assert np.triu(dense, 1).sum() == 0

"""Unit tests for the local work distribution (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import LocalWorkDistribution
from repro.gpu import BlockContext, SMALL_DEVICE, TITAN_XP


def make_wd(elements, device=TITAN_XP):
    ctx = BlockContext(config=device, block_id=0)
    wd = LocalWorkDistribution(ctx, len(elements))
    wd.place_work_with_origin(np.asarray(elements, dtype=np.int64))
    return wd


class TestPlaceAndSize:
    def test_size_is_total(self):
        wd = make_wd([3, 0, 5, 2])
        assert wd.size() == 10

    def test_empty_entries(self):
        wd = make_wd([])
        assert wd.size() == 0
        a, b, taken = wd.receive_work(8)
        assert taken == 0

    def test_rejects_negative_counts(self):
        ctx = BlockContext(config=TITAN_XP, block_id=0)
        wd = LocalWorkDistribution(ctx, 2)
        with pytest.raises(ValueError):
            wd.place_work(np.array([1, -1]))

    def test_rejects_wrong_length(self):
        ctx = BlockContext(config=TITAN_XP, block_id=0)
        wd = LocalWorkDistribution(ctx, 2)
        with pytest.raises(ValueError):
            wd.place_work(np.array([1, 2, 3]))


class TestReceiveWork:
    def test_full_drain_covers_all_products(self):
        elements = [3, 0, 5, 2]
        wd = make_wd(elements)
        a_res, b_res, taken = wd.receive_work(10)
        assert taken == 10
        # every (entry, offset) pair appears exactly once
        pairs = sorted(zip(a_res.tolist(), b_res.tolist()))
        expected = sorted(
            (e, off) for e, n in enumerate(elements) for off in range(n)
        )
        assert pairs == expected
        assert wd.size() == 0

    def test_countdown_takes_row_tail_first(self):
        """§3.2.2: a split row is consumed from the END, so the next
        iteration acts like the row is shorter."""
        wd = make_wd([5])
        _, b_res, taken = wd.receive_work(2)
        assert taken == 2
        # first batch gets offsets 4, 3 (the tail)
        np.testing.assert_array_equal(b_res, [4, 3])
        _, b_res2, _ = wd.receive_work(3)
        np.testing.assert_array_equal(b_res2, [2, 1, 0])

    def test_entry_assignment(self):
        wd = make_wd([2, 3])
        a_res, b_res, _ = wd.receive_work(5)
        np.testing.assert_array_equal(a_res, [0, 0, 1, 1, 1])

    def test_partial_consumption_reduces_state(self):
        wd = make_wd([4, 4])
        wd.receive_work(3)
        assert wd.size() == 5
        a_res, _, taken = wd.receive_work(100)
        assert taken == 5
        # entry 0 has 1 product left, entry 1 all 4
        np.testing.assert_array_equal(a_res, [0, 1, 1, 1, 1])

    def test_consume_zero(self):
        wd = make_wd([3])
        _, _, taken = wd.receive_work(0)
        assert taken == 0
        assert wd.size() == 3

    def test_negative_consume_rejected(self):
        wd = make_wd([3])
        with pytest.raises(ValueError):
            wd.receive_work(-1)

    def test_consumed_total_tracks(self):
        wd = make_wd([4, 4])
        wd.receive_work(3)
        wd.receive_work(2)
        assert wd.consumed_total == 5


class TestRestart:
    def test_restart_resumes_exactly(self):
        """A restarted distribution delivers the same remaining products
        as an uninterrupted one (the §3.2.2 restart contract)."""
        elements = [3, 1, 0, 6, 2]
        wd1 = make_wd(elements)
        wd1.receive_work(5)
        rest1 = list(zip(*wd1.receive_work(100)[:2]))

        wd2 = make_wd(elements)
        wd2.restart_from(5)
        rest2 = list(zip(*wd2.receive_work(100)[:2]))
        assert [(int(a), int(b)) for a, b in rest1] == [
            (int(a), int(b)) for a, b in rest2
        ]

    def test_restart_bounds_checked(self):
        wd = make_wd([2, 2])
        with pytest.raises(ValueError):
            wd.restart_from(5)

    def test_committed_before_entry(self):
        # entries contribute 3, 4, 2 products; consume 5 (3 + 2 of entry 1)
        wd = make_wd([3, 4, 2])
        wd.receive_work(5)
        assert wd.committed_before_entry(0) == 0
        assert wd.committed_before_entry(1) == 3
        # entry 2 not reached: committed before it == everything consumed
        assert wd.committed_before_entry(2) == 5

    def test_committed_out_of_range(self):
        wd = make_wd([1])
        with pytest.raises(IndexError):
            wd.committed_before_entry(5)


class TestScratchpadUse:
    def test_wdstate_allocated_and_released(self):
        ctx = BlockContext(config=SMALL_DEVICE, block_id=0)
        wd = LocalWorkDistribution(ctx, 10)
        assert "WDState" in ctx.scratchpad.allocations
        wd.release()
        assert "WDState" not in ctx.scratchpad.allocations

    def test_charges_cost(self):
        ctx = BlockContext(config=TITAN_XP, block_id=0)
        wd = LocalWorkDistribution(ctx, 8)
        wd.place_work_with_origin(np.full(8, 4))
        wd.receive_work(16)
        assert ctx.meter.cycles > 0

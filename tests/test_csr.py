"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro import CSRMatrix
from tests.conftest import random_csr


class TestConstruction:
    def test_from_dense_round_trip(self, rng):
        d = (rng.random((7, 9)) < 0.4) * rng.random((7, 9))
        m = CSRMatrix.from_dense(d)
        assert m.shape == (7, 9)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_from_dense_tolerance(self):
        d = np.array([[0.5, 1e-9], [0.0, 2.0]])
        m = CSRMatrix.from_dense(d, tol=1e-6)
        assert m.nnz == 2

    def test_empty(self):
        m = CSRMatrix.empty(3, 4)
        assert m.nnz == 0
        assert m.shape == (3, 4)
        np.testing.assert_array_equal(m.to_dense(), np.zeros((3, 4)))

    def test_identity(self):
        m = CSRMatrix.identity(5)
        np.testing.assert_array_equal(m.to_dense(), np.eye(5))

    def test_rejects_bad_row_ptr_length(self):
        with pytest.raises(ValueError, match="rows \\+ 1"):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            CSRMatrix(1, 3, np.array([0, 2]), np.array([0, 1]), np.array([1.0]))

    def test_rejects_bad_endpoints(self):
        with pytest.raises(ValueError, match="end at nnz"):
            CSRMatrix(1, 3, np.array([0, 5]), np.array([0, 1]), np.array([1.0, 2.0]))

    def test_rejects_negative_dims(self):
        with pytest.raises(ValueError, match="non-negative"):
            CSRMatrix(-1, 2, np.array([0]), np.zeros(0, int), np.zeros(0))

    def test_rejects_float_indices(self):
        with pytest.raises(TypeError, match="integer"):
            CSRMatrix(1, 2, np.array([0.0, 1.0]), np.array([0]), np.array([1.0]))

    def test_integer_values_promoted_to_float(self):
        m = CSRMatrix(1, 2, np.array([0, 1]), np.array([1]), np.array([3]))
        assert np.issubdtype(m.dtype, np.floating)


class TestAccessors:
    def test_row_lengths(self, rng):
        m = random_csr(rng, 20, 15, 0.3)
        np.testing.assert_array_equal(
            m.row_lengths(), np.diff(m.row_ptr)
        )

    def test_row_slice(self):
        m = CSRMatrix.from_dense(np.array([[1.0, 0, 2.0], [0, 0, 0], [0, 3.0, 0]]))
        cols, vals = m.row_slice(0)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [1.0, 2.0])
        cols, _ = m.row_slice(1)
        assert cols.shape[0] == 0

    def test_row_slice_out_of_range(self, medium_matrix):
        with pytest.raises(IndexError):
            medium_matrix.row_slice(medium_matrix.rows)

    def test_iter_rows_skips_empty(self):
        m = CSRMatrix.from_dense(np.array([[0.0, 0], [1.0, 0]]))
        rows = [i for i, _, _ in m.iter_rows()]
        assert rows == [1]

    def test_nbytes_positive(self, medium_matrix):
        assert medium_matrix.nbytes() > 0
        assert medium_matrix.nbytes() >= medium_matrix.nnz * 16


class TestConversions:
    def test_scipy_round_trip(self, rng):
        m = random_csr(rng, 30, 25, 0.2)
        back = CSRMatrix.from_scipy(m.to_scipy())
        assert m.exactly_equal(back)

    def test_astype_float32(self, medium_matrix):
        m32 = medium_matrix.astype(np.float32)
        assert m32.dtype == np.float32
        assert m32.nnz == medium_matrix.nnz
        np.testing.assert_allclose(
            m32.values, medium_matrix.values.astype(np.float32)
        )

    def test_copy_is_independent(self, medium_matrix):
        c = medium_matrix.copy()
        c.values[:] = 0
        assert medium_matrix.values.any()


class TestEquality:
    def test_exactly_equal_self(self, medium_matrix):
        assert medium_matrix.exactly_equal(medium_matrix.copy())

    def test_exactly_equal_detects_value_bit_change(self, medium_matrix):
        other = medium_matrix.copy()
        other.values[0] = np.nextafter(other.values[0], 1.0)
        assert not medium_matrix.exactly_equal(other)

    def test_allclose_tolerates_noise(self, medium_matrix):
        other = medium_matrix.copy()
        other.values *= 1.0 + 1e-13
        assert medium_matrix.allclose(other)
        assert not medium_matrix.exactly_equal(other)

    def test_allclose_shape_mismatch(self):
        assert not CSRMatrix.empty(2, 2).allclose(CSRMatrix.empty(2, 3))

    def test_allclose_structure_mismatch(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 0.0]]))
        b = CSRMatrix.from_dense(np.array([[0.0, 1.0]]))
        assert not a.allclose(b)

"""Unit tests for the COO container and COO->CSR conversion."""

import numpy as np
import pytest

from repro import COOMatrix, CSRMatrix


def test_to_csr_sorts_and_sums_duplicates():
    coo = COOMatrix(
        rows=2,
        cols=3,
        row_idx=np.array([1, 0, 1, 1]),
        col_idx=np.array([2, 1, 2, 0]),
        values=np.array([1.0, 2.0, 3.0, 4.0]),
    )
    csr = coo.to_csr()
    assert csr.nnz == 3
    np.testing.assert_array_equal(csr.row_ptr, [0, 1, 3])
    np.testing.assert_array_equal(csr.col_idx, [1, 0, 2])
    np.testing.assert_array_equal(csr.values, [2.0, 4.0, 4.0])


def test_to_csr_without_dedup_keeps_duplicates():
    coo = COOMatrix(
        rows=1,
        cols=2,
        row_idx=np.array([0, 0]),
        col_idx=np.array([1, 1]),
        values=np.array([1.0, 2.0]),
    )
    csr = coo.to_csr(sum_duplicates=False)
    assert csr.nnz == 2


def test_duplicate_accumulation_order_is_stable():
    # 1e16 + 1 - 1e16 depends on order; triplet order must be preserved
    coo = COOMatrix(
        rows=1,
        cols=1,
        row_idx=np.zeros(3, dtype=int),
        col_idx=np.zeros(3, dtype=int),
        values=np.array([1e16, 1.0, -1e16]),
    )
    expected = (1e16 + 1.0) - 1e16
    assert coo.to_csr().values[0] == expected


def test_empty_coo():
    coo = COOMatrix(3, 3, np.zeros(0, int), np.zeros(0, int), np.zeros(0))
    csr = coo.to_csr()
    assert csr.nnz == 0
    assert csr.shape == (3, 3)


def test_round_trip_with_csr(rng):
    from tests.conftest import random_csr

    m = random_csr(rng, 15, 12, 0.3)
    back = COOMatrix.from_csr(m).to_csr()
    assert m.exactly_equal(back)


def test_transpose_is_view_swap(rng):
    from tests.conftest import random_csr

    m = random_csr(rng, 10, 6, 0.4)
    t = COOMatrix.from_csr(m).transpose()
    assert t.shape == (6, 10)
    np.testing.assert_array_equal(
        t.to_csr().to_dense(), m.to_dense().T
    )


@pytest.mark.parametrize(
    "row,col,err",
    [
        ([5], [0], "row index out of range"),
        ([0], [5], "column index out of range"),
        ([-1], [0], "negative"),
    ],
)
def test_rejects_out_of_range(row, col, err):
    with pytest.raises(ValueError, match=err):
        COOMatrix(3, 3, np.array(row), np.array(col), np.array([1.0]))


def test_rejects_length_mismatch():
    with pytest.raises(ValueError, match="equal length"):
        COOMatrix(3, 3, np.array([0, 1]), np.array([0]), np.array([1.0]))

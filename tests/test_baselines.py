"""Tests for the competing SpGEMM implementations."""

import numpy as np
import pytest

from repro import CSRMatrix, count_intermediate_products, spgemm_reference
from repro.baselines import (
    ALL_ALGORITHMS,
    GPU_ALGORITHMS,
    accumulate_products,
    expand_products,
    make_algorithm,
    make_lineup,
)
from tests.conftest import random_csr

ALGO_NAMES = sorted(ALL_ALGORITHMS)


class TestExpansion:
    def test_expansion_count_and_values(self, rng):
        a = random_csr(rng, 15, 15, 0.2)
        rows, cols, vals = expand_products(a, a, np.dtype(np.float64))
        assert rows.shape[0] == count_intermediate_products(a, a)
        dense = np.zeros((15, 15))
        np.add.at(dense, (rows, cols), vals)
        np.testing.assert_allclose(
            dense, spgemm_reference(a, a).to_dense(), rtol=1e-12
        )

    def test_expansion_order_is_csr_order(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        b = CSRMatrix.from_dense(np.array([[4.0, 0.0], [5.0, 6.0]]))
        rows, cols, vals = expand_products(a, b, np.dtype(np.float64))
        # A entries in CSR order: (0,0)->B row0; (0,1)->B row1; (1,1)->B row1
        np.testing.assert_array_equal(rows, [0, 0, 0, 1, 1])
        np.testing.assert_array_equal(cols, [0, 0, 1, 0, 1])
        np.testing.assert_allclose(vals, [4.0, 10.0, 12.0, 15.0, 18.0])

    def test_empty(self):
        a = CSRMatrix.empty(3, 3)
        rows, cols, vals = expand_products(a, a, np.dtype(np.float64))
        assert rows.shape[0] == 0


class TestAccumulate:
    def test_matches_reference(self, rng):
        a = random_csr(rng, 20, 20, 0.2)
        rows, cols, vals = expand_products(a, a, np.dtype(np.float64))
        c = accumulate_products(rows, cols, vals, 20, 20)
        assert c.allclose(spgemm_reference(a, a))

    def test_shuffle_changes_bits_not_math(self, rng):
        a = random_csr(rng, 25, 25, 0.25)
        rows, cols, vals = expand_products(a, a, np.dtype(np.float64))
        c0 = accumulate_products(rows, cols, vals, 25, 25)
        c1 = accumulate_products(rows, cols, vals, 25, 25, shuffle_seed=1)
        c2 = accumulate_products(rows, cols, vals, 25, 25, shuffle_seed=2)
        assert c1.allclose(c0)
        assert c2.allclose(c0)
        # with enough products some accumulation differs in the last ulp
        assert not (c1.exactly_equal(c2) and c1.exactly_equal(c0))


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", ALGO_NAMES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_correct_product(self, name, seed):
        rng = np.random.default_rng(seed)
        a = random_csr(rng, 60, 60, 0.08)
        run = make_algorithm(name).multiply(a, a)
        assert run.matrix.allclose(spgemm_reference(a, a)), name

    @pytest.mark.parametrize("name", ALGO_NAMES)
    def test_rectangular(self, name, rng):
        a = random_csr(rng, 20, 35, 0.15)
        b = random_csr(rng, 35, 25, 0.15)
        run = make_algorithm(name).multiply(a, b)
        assert run.matrix.allclose(spgemm_reference(a, b))

    @pytest.mark.parametrize("name", ALGO_NAMES)
    def test_empty(self, name):
        run = make_algorithm(name).multiply(
            CSRMatrix.empty(4, 5), CSRMatrix.empty(5, 3)
        )
        assert run.matrix.nnz == 0

    @pytest.mark.parametrize("name", ALGO_NAMES)
    def test_accounting_populated(self, name, rng):
        a = random_csr(rng, 40, 40, 0.1)
        temp = count_intermediate_products(a, a)
        run = make_algorithm(name).multiply(a, a)
        assert run.cycles > 0
        assert run.seconds > 0
        assert run.gflops(temp) > 0
        assert run.stage_cycles

    @pytest.mark.parametrize("name", ALGO_NAMES)
    def test_float32(self, name, rng):
        a = random_csr(rng, 30, 30, 0.15)
        run = make_algorithm(name).multiply(a, a, dtype=np.float32)
        assert run.matrix.dtype == np.float32

    @pytest.mark.parametrize("name", ALGO_NAMES)
    def test_dimension_mismatch(self, name, rng):
        a = random_csr(rng, 4, 5, 0.5)
        with pytest.raises(ValueError):
            make_algorithm(name).multiply(a, a)


class TestBitStabilityFlags:
    @pytest.mark.parametrize("name", ["ac-spgemm", "bhsparse", "rmerge", "cusp-esc", "cpu-gustavson"])
    def test_stable_algorithms_ignore_seed(self, name, rng):
        a = random_csr(rng, 50, 50, 0.12)
        alg = make_algorithm(name)
        assert alg.bit_stable
        r1 = alg.multiply(a, a, scheduler_seed=1)
        r2 = alg.multiply(a, a, scheduler_seed=99)
        assert r1.matrix.exactly_equal(r2.matrix)

    @pytest.mark.parametrize("name", ["cusparse", "nsparse", "kokkos"])
    def test_hash_algorithms_vary_with_schedule(self, name, rng):
        a = random_csr(rng, 60, 60, 0.15)
        alg = make_algorithm(name)
        assert not alg.bit_stable
        results = [
            alg.multiply(a, a, scheduler_seed=s).matrix for s in range(4)
        ]
        assert any(
            not results[0].exactly_equal(r) for r in results[1:]
        ), "accumulation-order noise expected"
        for r in results[1:]:
            assert results[0].allclose(r)


class TestCostShapes:
    """Coarse relative-performance invariants of the cost model (the
    fine-grained claims live in the benchmarks)."""

    def make(self, avg, n, seed=0):
        from repro.matrices.generators import random_uniform

        return random_uniform(n, n, avg, seed=seed)

    def test_ac_beats_global_esc(self):
        a = self.make(6, 2000)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        esc = make_algorithm("cusp-esc").multiply(a, a)
        assert ac.seconds < esc.seconds

    def test_ac_beats_nsparse_on_sparse(self):
        a = self.make(4, 4000)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        ns = make_algorithm("nsparse").multiply(a, a)
        assert ac.seconds < ns.seconds

    def test_nsparse_beats_ac_on_dense(self):
        a = self.make(64, 1100)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        ns = make_algorithm("nsparse").multiply(a, a)
        assert ns.seconds < ac.seconds

    def test_cpu_wins_tiny(self):
        a = self.make(4, 150)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        cpu = make_algorithm("cpu-gustavson").multiply(a, a)
        assert cpu.seconds < ac.seconds

    def test_gpu_wins_large(self):
        a = self.make(6, 8000)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        cpu = make_algorithm("cpu-gustavson").multiply(a, a)
        assert ac.seconds < cpu.seconds


class TestRegistry:
    def test_lineup_default(self):
        lineup = make_lineup()
        assert [a.name for a in lineup] == list(GPU_ALGORITHMS)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("does-not-exist")

    def test_named_subset(self):
        lineup = make_lineup(["nsparse", "rmerge"])
        assert [a.name for a in lineup] == ["nsparse", "rmerge"]

"""Distributed request tracing and the selector flight recorder.

Covers the determinism contract (ids derive from content + ordinals,
never wall-clock), the exactly-one-rooted-trace rule across every serve
outcome, span grafting and cycle reconciliation, latency histograms
with exemplars (including concurrent scrapes), and the flight
recorder's rotation / torn-line / drain-flush behaviour.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import AcSpgemmOptions, FaultPlan, ac_spgemm
from repro.campaign.plan import tiny_entries
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    FlightRecorder,
    MetricsRegistry,
    RequestTrace,
    SpanRecorder,
    TraceContext,
    TraceStore,
    current_trace_attrs,
    derive_span_id,
    derive_trace_id,
    parse_prometheus_text,
    payload_fingerprint,
    read_flight_events,
    use_trace,
)
from repro.resilience.errors import WorkerCrashed
from repro.serve import ServeConfig, ServeCore
from repro.sparse import squared_operands


def _core(**overrides) -> ServeCore:
    defaults = dict(
        engine="reference",
        executors=1,
        max_queue=4,
        default_deadline_ms=60_000.0,
        backoff_base_ms=1.0,
        backoff_cap_ms=2.0,
        supervise_interval_s=0.1,
        shm_prefix=f"repro-test-trace-{os.getpid()}-",
    )
    multiply = overrides.pop("multiply", None)
    defaults.update(overrides)
    return ServeCore(ServeConfig(**defaults), multiply=multiply)


def _operands(name="tiny-uniform"):
    entry = next(e for e in tiny_entries() if e.name == name)
    return squared_operands(entry.build())


class TestDeterministicIds:
    def test_ids_are_pure_functions(self):
        assert derive_trace_id("fp", 1) == derive_trace_id("fp", 1)
        assert derive_trace_id("fp", 1) != derive_trace_id("fp", 2)
        assert derive_trace_id("fp", 1) != derive_trace_id("fq", 1)
        tid = derive_trace_id("fp", 1)
        assert len(tid) == 32
        sid = derive_span_id(tid, "", "request", 0)
        assert len(sid) == 16
        assert sid == derive_span_id(tid, "", "request", 0)
        assert sid != derive_span_id(tid, "", "request", 1)

    def test_payload_fingerprint_is_canonical(self):
        assert payload_fingerprint({"a": 1, "b": 2}) == payload_fingerprint(
            {"b": 2, "a": 1}
        )
        assert payload_fingerprint({"a": 1}) != payload_fingerprint({"a": 2})

    def test_traceparent_round_trip(self):
        ctx = TraceContext.for_request("fp", 7)
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_malformed_traceparent_is_none(self):
        for bad in ("", "junk", "00-zz-aa-01", "00-" + "a" * 32, None):
            assert TraceContext.from_traceparent(bad) is None

    def test_client_traceparent_wins_trace_id(self):
        client = TraceContext.for_request("client-content", 1)
        joined = TraceContext.for_request("fp", 3, client)
        assert joined.trace_id == client.trace_id
        assert joined.span_id == derive_span_id(
            client.trace_id, client.span_id, "request", 3
        )


class TestRequestTrace:
    def test_refcounted_root_closes_on_last_release(self):
        trace = RequestTrace(TraceContext.for_request("fp", 1))
        trace.retain()
        span = trace.start_span("work")
        trace.release(outcome="rejected")
        assert not trace.finalized  # executor still holds a reference
        trace.end_span(span)
        trace.release()
        assert trace.finalized
        assert trace.root.attrs["outcome"] == "rejected"
        assert trace.root.status == "ok"
        v = trace.validate()
        assert v["rooted"] and v["orphans"] == 0 and v["open_spans"] == 0

    def test_finalize_tags_abandoned_spans_unclosed(self):
        trace = RequestTrace(TraceContext.for_request("fp", 1))
        trace.start_span("never-ended")
        trace.release()
        leaked = [s for s in trace.spans if s.status == "unclosed"]
        assert [s.name for s in leaked] == ["never-ended"]

    def test_id_manifest_excludes_wall_clock(self):
        def build():
            t = RequestTrace(TraceContext.for_request("fp", 1))
            s = t.start_span("execute")
            t.start_span("attempt", parent=s)
            time.sleep(0.001)  # different durations, identical manifests
            t.release()
            return t.id_manifest()

        assert build() == build()

    def test_graft_reconciles_clean_run(self):
        a, b = _operands()
        result = ac_spgemm(a, b, AcSpgemmOptions(engine="reference"))
        trace = RequestTrace(TraceContext.for_request("fp", 1))
        parent = trace.start_span("execute")
        summary = trace.graft_result(parent, result)
        assert summary["reconciled"], summary["mismatches"]
        assert summary["spans"] > 0
        assert parent.attrs["reconciled"] is True
        trace.release()
        assert trace.validate()["rooted"]

    def test_graft_reconciles_degraded_run_on_fallback_only(self):
        a, b = _operands()
        opts = AcSpgemmOptions(
            engine="reference",
            on_failure="fallback",
            max_restarts=0,
            fault_plan=FaultPlan.single(
                "scratchpad_overflow", stage="ESC", round=0, block=0
            ),
        )
        result = ac_spgemm(a, b, opts)
        assert result.degraded
        trace = RequestTrace(TraceContext.for_request("fp", 1))
        parent = trace.start_span("execute")
        summary = trace.graft_result(parent, result)
        assert summary["reconciled"], summary["mismatches"]
        trace.release()

    def test_store_is_bounded_lru(self):
        store = TraceStore(capacity=2)
        traces = [
            RequestTrace(TraceContext.for_request("fp", i)) for i in range(3)
        ]
        for t in traces:
            store.add(t)
        assert len(store) == 2
        assert store.get(traces[0].trace_id) is None
        assert store.get(traces[2].trace_id) is traces[2]


class TestAmbientContext:
    def test_attrs_flow_and_reset(self):
        trace = RequestTrace(TraceContext.for_request("fp", 1))
        span = trace.start_span("attempt")
        assert current_trace_attrs() == {}
        with use_trace(trace, span, breaker="closed"):
            attrs = current_trace_attrs()
            assert attrs["trace_id"] == trace.trace_id
            assert attrs["span_id"] == span.span_id
            assert attrs["breaker"] == "closed"
        assert current_trace_attrs() == {}
        trace.release()

    def test_span_recorder_abort_attaches_context(self):
        spans = SpanRecorder(clock_ghz=1.0)
        spans.start("pipeline")
        spans.start("esc")
        spans.abort(reason="boom", trace_id="t" * 32, breaker="open")
        root = spans.close()
        esc = root.children[0]
        assert esc.attrs["aborted"] is True
        assert esc.attrs["trace_id"] == "t" * 32
        assert esc.attrs["breaker"] == "open"
        assert root.attrs["trace_id"] == "t" * 32

    def test_degraded_pipeline_spans_carry_trace_ids(self):
        a, b = _operands()
        opts = AcSpgemmOptions(
            engine="reference",
            on_failure="fallback",
            max_restarts=0,
            fault_plan=FaultPlan.single(
                "scratchpad_overflow", stage="ESC", round=0, block=0
            ),
        )
        trace = RequestTrace(TraceContext.for_request("fp", 1))
        span = trace.start_span("attempt")
        with use_trace(trace, span, breaker="closed"):
            result = ac_spgemm(a, b, opts)
        trace.release()
        assert result.degraded
        aborted = [
            s for s in result.spans.walk() if s.attrs.get("aborted")
        ]
        assert aborted
        assert all(
            s.attrs["trace_id"] == trace.trace_id for s in aborted
        )


class TestLatencyHistograms:
    def test_bucket_export_is_cumulative_and_deterministic(self):
        reg = MetricsRegistry()
        for v in (0.5, 3.0, 3.0, 9999.0, 50_000.0):
            reg.observe("req_ms", v, buckets=DEFAULT_LATENCY_BUCKETS_MS)
        snap = reg.histogram("req_ms")
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(60005.5)
        cumulative = snap["buckets"]
        les = list(cumulative)
        assert les[-1] == "+Inf"
        counts = list(cumulative.values())
        assert counts == sorted(counts)  # cumulative is monotone
        assert counts[-1] == 5

    def test_exemplars_round_trip_through_prometheus(self):
        reg = MetricsRegistry()
        reg.observe(
            "req_ms", 4.2, buckets=(1.0, 10.0),
            exemplar={"trace_id": "ab" * 16}, outcome="success",
        )
        text = reg.to_prometheus()
        parsed = parse_prometheus_text(text)
        rows = parsed["exemplars"]["req_ms_bucket"]
        assert len(rows) == 1
        labels, ex_labels, ex_value = rows[0]
        assert labels["le"] == "10.0"
        assert ex_labels == {"trace_id": "ab" * 16}
        assert ex_value == pytest.approx(4.2)

    def test_mismatched_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.observe("req_ms", 1.0, buckets=(1.0, 10.0))
        with pytest.raises(ValueError):
            reg.observe("req_ms", 1.0, buckets=(5.0, 10.0))
        with pytest.raises(ValueError):
            reg.observe("other_ms", 1.0, buckets=(10.0, 1.0))

    def test_concurrent_scrapes_see_consistent_snapshots(self):
        """No torn buckets: every scrape's +Inf equals its _count and
        its buckets are monotone, while writers hammer the registry."""
        reg = MetricsRegistry()
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            i = 0
            while not stop.is_set():
                reg.observe(
                    "req_ms", float(i % 70),
                    buckets=(1.0, 10.0, 100.0),
                    exemplar={"trace_id": f"{i:032x}"},
                )
                i += 1

        def scraper():
            while not stop.is_set():
                parsed = parse_prometheus_text(reg.to_prometheus())
                samples = parsed["samples"]
                buckets = samples.get("req_ms_bucket")
                if not buckets:
                    continue
                by_le = {
                    float(labels["le"].replace("+Inf", "inf")): value
                    for labels, value in buckets
                }
                counts = [v for _, v in sorted(by_le.items())]
                if counts != sorted(counts):
                    errors.append(f"non-monotone buckets {by_le}")
                count = samples["req_ms_count"][0][1]
                if by_le[float("inf")] != count:
                    errors.append(
                        f"+Inf {by_le[float('inf')]} != count {count}"
                    )

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=scraper) for _ in range(2)
        ]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors[:3]


class TestFlightRecorder:
    def test_ring_and_rolling_error(self):
        rec = FlightRecorder(window=2)
        rec.record({"rel_error": 0.1})
        rec.record({"rel_error": 0.2})
        rec.record({"rel_error": 0.6})
        assert rec.recorded == 3
        assert len(rec.events()) == 2
        assert rec.prediction_error() == pytest.approx(0.4)

    def test_log_is_byte_identical_across_reruns(self, tmp_path):
        def run(path):
            rec = FlightRecorder(path)
            for i in range(5):
                rec.record({"chosen": "hash-spgemm", "rel_error": i / 10})
            rec.close()
            return path.read_bytes()

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")

    def test_rotation_keeps_bounded_files(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(path, max_bytes=200, max_files=2)
        for i in range(50):
            rec.record({"chosen": "ac-spgemm", "i": i})
        rec.close()
        files = sorted(p.name for p in tmp_path.iterdir())
        assert path.exists()
        assert f"{path.name}.1" in files
        assert f"{path.name}.{3}" not in files
        for p in tmp_path.iterdir():
            for event in read_flight_events(p):
                assert "seq" in event

    def test_reader_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(path)
        rec.record({"chosen": "a"})
        rec.record({"chosen": "b"})
        rec.close()
        torn = path.read_bytes()[:-7]  # SIGKILL mid-write
        path.write_bytes(torn)
        events = read_flight_events(path)
        assert [e["chosen"] for e in events] == ["a"]
        # a torn line anywhere else is real corruption and raises
        path.write_text('{"ok": 1}\n{bad\n{"ok": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_flight_events(path)

    def test_serve_drain_flushes_parseable_log(self, tmp_path):
        log = tmp_path / "flight.jsonl"
        core = _core(backend="adaptive", flight_log=str(log))
        try:
            body = core.handle({"matrix": "tiny-uniform"})
            assert body["outcome"] == "success"
        finally:
            core.close(drain=True)
        events = read_flight_events(log)
        assert len(events) == 1
        ev = events[0]
        assert ev["chosen"] in (
            "ac-spgemm", "hash-spgemm", "hashmap-spgemm"
        )
        assert ev["trace_id"] == body["trace_id"]
        assert set(ev) >= {
            "predicted", "predicted_chosen", "actual_cycles",
            "rel_error", "regret_bound",
        }


class TestSelectorAudit:
    def test_routing_audit_on_result(self):
        a, b = _operands()
        from repro.backends import run_backend

        result = run_backend("adaptive", a, b, AcSpgemmOptions())
        audit = result.routing_audit
        assert audit["chosen"] == result.dispatched_to
        assert set(audit["predicted"]) == {
            "ac-spgemm", "hash-spgemm", "hashmap-spgemm"
        }
        sel = result.stage_cycles["SEL"]
        assert audit["actual_cycles"] == pytest.approx(
            result.total_cycles - sel
        )
        assert audit["regret_bound"] >= 0.0
        assert audit["regret_bound"] == pytest.approx(
            max(
                0.0,
                audit["actual_cycles"] - min(audit["predicted"].values()),
            )
        )


class TestServeTracing:
    def test_every_outcome_carries_trace_identity(self):
        core = _core()
        try:
            ok = core.handle({"matrix": "tiny-uniform"})
            missing = core.handle({"matrix": "no-such"})
            bad = core.handle({"dtype": "int8"})
            closed_keys = ("request_id", "trace_id", "traceparent")
            for body in (ok, missing, bad):
                for key in closed_keys:
                    assert body[key], (key, body)
            assert ok["request_id"] == "req-000001"
            assert missing["status"] == 404
            assert bad["status"] == 400
        finally:
            core.close()

    def test_each_request_yields_one_rooted_finalized_trace(self):
        core = _core()
        try:
            bodies = [
                core.handle({"matrix": "tiny-uniform"}),
                core.handle({"matrix": "tiny-uniform"}),  # cache hit
                core.handle({"matrix": "no-such"}),
            ]
        finally:
            core.close(drain=True)
        assert len({b["trace_id"] for b in bodies}) == 3
        for body in bodies:
            trace = core.traces.get(body["trace_id"])
            assert trace is not None and trace.finalized
            v = trace.validate()
            assert v["rooted"] and v["orphans"] == 0
            assert v["open_spans"] == 0

    def test_success_trace_grafts_and_reconciles(self):
        core = _core()
        try:
            body = core.handle({"matrix": "tiny-uniform"})
        finally:
            core.close(drain=True)
        trace = core.traces.get(body["trace_id"])
        execute = next(s for s in trace.spans if s.name == "execute")
        assert execute.attrs["reconciled"] is True
        assert execute.attrs["grafted_spans"] > 0
        names = [s.name for s in trace.spans]
        for expected in ("resolve", "cache.lookup", "queue.wait",
                         "attempt"):
            assert expected in names

    def test_client_traceparent_joins_trace(self):
        core = _core()
        client = TraceContext.for_request("client-side", 1)
        try:
            body = core.handle(
                {"matrix": "tiny-uniform"},
                traceparent=client.to_traceparent(),
            )
        finally:
            core.close()
        assert body["trace_id"] == client.trace_id
        assert body["traceparent"].startswith(f"00-{client.trace_id}-")

    def test_rejected_429_traces_and_samples_queue_depth(self):
        release = threading.Event()

        def slow(a, b, options):
            release.wait(5.0)
            return ac_spgemm(a, b, options)

        core = _core(multiply=slow, max_queue=1)
        try:
            threads: list[threading.Thread] = []
            bodies: list[dict] = []

            def fire():
                bodies.append(
                    core.handle(
                        {"matrix": "tiny-uniform", "deadline_ms": 8000}
                    )
                )

            for _ in range(3):
                t = threading.Thread(target=fire)
                t.start()
                threads.append(t)
                time.sleep(0.05)
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if any(
                    b.get("status") == 429 for b in list(bodies)
                ):
                    break
                time.sleep(0.01)
            release.set()
            for t in threads:
                t.join()
        finally:
            core.close(drain=True)
        rejected = [b for b in bodies if b["status"] == 429]
        assert rejected
        for body in rejected:
            trace = core.traces.get(body["trace_id"])
            assert trace is not None and trace.finalized
            assert trace.validate()["rooted"]
        doc = core.metrics.to_json()
        assert any(
            k.startswith("repro_serve_queue_depth") for k in doc["metrics"]
        )

    def test_deadline_expired_trace_finalizes_after_executor(self):
        def slow(a, b, options):
            time.sleep(0.3)
            return ac_spgemm(a, b, options)

        core = _core(multiply=slow)
        try:
            body = core.handle(
                {"matrix": "tiny-uniform", "deadline_ms": 30}
            )
            assert body["status"] == 504
            trace = core.traces.get(body["trace_id"])
            assert not trace.finalized  # executor still owns a reference
        finally:
            core.close(drain=True)
        assert trace.finalized
        assert trace.root.attrs["outcome"] == "rejected"
        assert trace.root.attrs["executed_outcome"] == "success"
        assert trace.validate()["rooted"]

    def test_retried_and_degraded_traces_record_attempts(self):
        calls = {"n": 0}

        def flaky(a, b, options):
            calls["n"] += 1
            if calls["n"] == 1:
                raise WorkerCrashed("chaos", stage="ESC")
            return ac_spgemm(a, b, options)

        core = _core(multiply=flaky, retries=2)
        try:
            body = core.handle({"matrix": "tiny-uniform"})
            assert body["outcome"] == "success"
            assert body["result"]["retries"] == 1
        finally:
            core.close(drain=True)
        trace = core.traces.get(body["trace_id"])
        attempts = [s for s in trace.spans if s.name == "attempt"]
        assert [s.status for s in attempts] == ["error", "ok"]

        def always(a, b, options):
            raise WorkerCrashed("chaos", stage="ESC")

        core = _core(multiply=always, retries=1)
        try:
            body = core.handle({"matrix": "tiny-uniform"})
            assert body["outcome"] == "degraded"
        finally:
            core.close(drain=True)
        trace = core.traces.get(body["trace_id"])
        names = [s.name for s in trace.spans]
        assert "fallback" in names
        fallback = next(s for s in trace.spans if s.name == "fallback")
        assert fallback.attrs["breaker"] in ("closed", "half-open", "open")
        assert trace.validate()["rooted"]

    def test_trace_ids_identical_across_reruns(self):
        def run():
            core = _core()
            try:
                bodies = [
                    core.handle({"matrix": "tiny-uniform"}),
                    core.handle({"matrix": "no-such"}),
                    core.handle({"matrix": "tiny-grid2d"}),
                ]
            finally:
                core.close(drain=True)
            return [
                core.traces.get(b["trace_id"]).id_manifest()
                for b in bodies
            ]

        assert run() == run()


class TestCampaignTracing:
    def test_cell_trace_ids_are_worker_independent(self):
        from repro.campaign.plan import CampaignConfig, cell_key
        from repro.campaign.plan import enumerate_cells, matrix_fingerprint
        from repro.campaign.worker import campaign_trace_meta, execute_cell
        from repro.bench.harness import MatrixCase

        config = CampaignConfig(
            suite="tiny", limit=1, algorithms=("ac-spgemm",)
        )
        meta = campaign_trace_meta(config)
        assert meta == campaign_trace_meta(config)
        cell = enumerate_cells(config)[0]
        entry = next(e for e in tiny_entries() if e.name == cell.matrix)
        case = MatrixCase(entry.name, entry.build(), family=entry.family)
        key = cell_key(cell, matrix_fingerprint(case.matrix), config)

        lines = [
            execute_cell(
                case, cell, config, key=key, worker=w, trace_meta=meta
            )
            for w in (0, 3)
        ]
        assert lines[0]["trace"] == lines[1]["trace"]
        assert lines[0]["trace"]["trace_id"] == meta["trace_id"]

    def test_no_trace_meta_means_no_trace_field(self):
        from repro.campaign.plan import CampaignConfig, cell_key
        from repro.campaign.plan import enumerate_cells, matrix_fingerprint
        from repro.campaign.worker import execute_cell
        from repro.bench.harness import MatrixCase

        config = CampaignConfig(
            suite="tiny", limit=1, algorithms=("ac-spgemm",)
        )
        cell = enumerate_cells(config)[0]
        entry = next(e for e in tiny_entries() if e.name == cell.matrix)
        case = MatrixCase(entry.name, entry.build(), family=entry.family)
        key = cell_key(cell, matrix_fingerprint(case.matrix), config)
        line = execute_cell(case, cell, config, key=key, worker=0)
        assert "trace" not in line

"""Degenerate-input audit: empty and zero-structure matrices.

Every shape below must flow through the full adaptive pipeline (all
three engines), the profile workload with every export, and every
registered baseline without divide-by-zero or empty-array reductions.
Run with ``-W error::RuntimeWarning`` semantics in mind: the numpy
warnings that precede ``nan`` results are treated as failures here.
"""

import warnings

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm
from repro.baselines import ALL_ALGORITHMS, make_algorithm
from repro.gpu import SMALL_DEVICE
from repro.obs import validate_perfetto
from repro.obs.profile import profile_run
from repro.sparse import matrix_stats, spgemm_reference

ENGINES = ("reference", "batched", "parallel")


def _empty(rows: int, cols: int) -> CSRMatrix:
    return CSRMatrix.from_dense(np.zeros((rows, cols)))


def degenerate_cases() -> list[tuple[str, CSRMatrix, CSRMatrix]]:
    one_zero_row = CSRMatrix.from_dense(np.zeros((1, 4)))
    square_zero = _empty(5, 5)
    return [
        ("0xN @ Nx3", _empty(0, 4), _empty(4, 3)),
        ("Nx0 @ 0xM", _empty(3, 0), _empty(0, 2)),
        ("zero-nnz square", square_zero, square_zero),
        ("single all-zero row", one_zero_row, _empty(4, 4)),
    ]


def _opts(**kw) -> AcSpgemmOptions:
    base = dict(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)
    base.update(kw)
    return AcSpgemmOptions(**base)


@pytest.mark.parametrize(
    "label,a,b", degenerate_cases(), ids=[c[0] for c in degenerate_cases()]
)
class TestDegeneratePipeline:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_engines(self, label, a, b, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = ac_spgemm(a, b, _opts(engine=engine, collect_trace=True))
        assert res.matrix.shape == (a.rows, b.cols)
        assert res.matrix.nnz == 0
        ref = spgemm_reference(a, b)
        assert res.matrix.allclose(ref)
        # derived statistics stay finite on empty work
        assert res.total_cycles >= 0.0
        assert res.sm_utilization == 1.0
        assert res.memory.used_fraction >= 0.0
        assert res.memory.used_over_output == 0.0
        assert res.stage_fractions()

    def test_profile_and_exports(self, label, a, b, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rep = profile_run(a, b, _opts(collect_trace=True), matrix_name=label)
            text = rep.text()
            payload = rep.trace_payload()
            doc = rep.metrics_doc()
            prom = rep.registry().to_prometheus()
        assert label in text and "100.0%" not in text.splitlines()[1]
        validate_perfetto(payload)
        assert doc["metrics"]['repro_output_nnz{engine="reference"}'] == 0
        assert prom.endswith("\n")
        rep.write_trace(tmp_path / "t.json")
        rep.write_metrics_json(tmp_path / "m.json")

    def test_fallback_path(self, label, a, b):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = ac_spgemm(a, b, _opts(on_failure="fallback"))
        assert not res.degraded
        assert res.matrix.nnz == 0

    def test_matrix_stats(self, label, a, b):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            st = matrix_stats(a)
        assert st.nnz == 0
        assert st.mean_row_length == 0.0


@pytest.mark.parametrize("name", sorted(ALL_ALGORITHMS))
@pytest.mark.parametrize(
    "label,a,b", degenerate_cases(), ids=[c[0] for c in degenerate_cases()]
)
def test_all_baselines_degenerate(name, label, a, b):
    algo = make_algorithm(name, device=SMALL_DEVICE)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run = algo.multiply(a, b)
    assert run.matrix.shape == (a.rows, b.cols)
    assert run.matrix.nnz == 0
    assert run.cycles >= 0.0
    assert run.gflops(0) == 0.0

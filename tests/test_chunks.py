"""Unit tests for chunk storage and tracking (§3.2.4)."""

import numpy as np
import pytest

from repro import CSRMatrix
from repro.core import Chunk, ChunkPool, PoolExhausted, RowChunkTracker
from repro.gpu import CostMeter, TITAN_XP


@pytest.fixture
def meter():
    return CostMeter(config=TITAN_XP)


def data_chunk(order, rows, cols, vals):
    rows = np.asarray(rows, dtype=np.int64)
    return Chunk(
        order_key=order,
        kind="data",
        first_row=int(rows[0]),
        last_row=int(rows[-1]),
        rows=rows,
        cols=np.asarray(cols, dtype=np.int64),
        vals=np.asarray(vals, dtype=np.float64),
    )


class TestChunk:
    def test_row_segment(self):
        c = data_chunk((0, 0), [1, 1, 3, 3, 3], [0, 2, 1, 4, 5], np.ones(5))
        assert c.row_segment(1) == slice(0, 2)
        assert c.row_segment(3) == slice(2, 5)
        with pytest.raises(KeyError):
            c.row_segment(2)

    def test_covered_rows(self):
        c = data_chunk((0, 0), [1, 1, 3], [0, 1, 2], np.ones(3))
        np.testing.assert_array_equal(c.covered_rows(), [1, 3])

    def test_pointer_chunk_materialises_from_b(self):
        b = CSRMatrix.from_dense(np.array([[0.0, 2.0, 3.0], [1.0, 0.0, 0.0]]))
        c = Chunk(
            order_key=(0, 0),
            kind="pointer",
            first_row=5,
            last_row=5,
            b_row=0,
            factor=2.0,
            b_length=2,
        )
        np.testing.assert_array_equal(c.columns(b), [1, 2])
        np.testing.assert_array_equal(c.values(b), [4.0, 6.0])
        assert c.count == 2
        np.testing.assert_array_equal(c.covered_rows(), [5])

    def test_segment_offset_default_zero(self):
        c = data_chunk((0, 0), [1], [0], [1.0])
        assert c.segment_offset(1) == 0
        c.segment_offsets = {1: 7}
        assert c.segment_offset(1) == 7


class TestChunkPool:
    def test_bump_allocation(self, meter):
        pool = ChunkPool(capacity_bytes=1000)
        c1 = data_chunk((0, 0), [0], [0], [1.0])
        c2 = data_chunk((0, 1), [1], [1], [1.0])
        pool.allocate(c1, 400, meter)
        pool.allocate(c2, 400, meter)
        assert c1.pool_offset == 0 and c2.pool_offset == 400
        assert pool.used_bytes == 800

    def test_exhaustion_raises_without_mutation(self, meter):
        pool = ChunkPool(capacity_bytes=100)
        c = data_chunk((0, 0), [0], [0], [1.0])
        with pytest.raises(PoolExhausted):
            pool.allocate(c, 200, meter)
        assert pool.used_bytes == 0
        assert not pool.chunks

    def test_grow_enables_allocation(self, meter):
        pool = ChunkPool(capacity_bytes=100)
        c = data_chunk((0, 0), [0], [0], [1.0])
        pool.grow(200)
        pool.allocate(c, 200, meter)
        assert pool.growths == 1

    def test_ordered_chunks_by_global_key(self, meter):
        pool = ChunkPool(capacity_bytes=10000)
        cb = data_chunk((2, 0), [0], [0], [1.0])
        ca = data_chunk((1, 5), [1], [0], [1.0])
        pool.allocate(cb, 100, meter)
        pool.allocate(ca, 100, meter)
        assert [c.order_key for c in pool.ordered_chunks()] == [(1, 5), (2, 0)]

    def test_data_bytes_includes_header(self):
        pool = ChunkPool(capacity_bytes=0)
        assert pool.data_bytes(10, 8) == 32 + 10 * 12


class TestRowChunkTracker:
    def test_shared_row_detection(self, meter):
        t = RowChunkTracker(n_rows=10)
        c1 = data_chunk((0, 0), [3], [0], [1.0])
        c2 = data_chunk((1, 0), [3], [1], [1.0])
        t.insert(c1, 3, 1, meter)
        assert not t.is_shared(3)
        t.insert(c2, 3, 1, meter)
        assert t.is_shared(3)
        assert t.shared_rows == [3]
        assert t.row_counts[3] == 2

    def test_chunks_for_sorted_by_order_key(self, meter):
        t = RowChunkTracker(n_rows=5)
        c_late = data_chunk((7, 0), [1], [0], [1.0])
        c_early = data_chunk((2, 1), [1], [1], [1.0])
        t.insert(c_late, 1, 1, meter)
        t.insert(c_early, 1, 1, meter)
        assert [c.order_key for c in t.chunks_for(1)] == [(2, 1), (7, 0)]

    def test_insert_chunk_covers_all_rows(self, meter):
        t = RowChunkTracker(n_rows=5)
        b = CSRMatrix.empty(3, 3)
        c = data_chunk((0, 0), [1, 1, 2, 4], [0, 1, 0, 2], np.ones(4))
        t.insert_chunk(c, b, meter)
        assert t.row_counts[1] == 2
        assert t.row_counts[2] == 1
        assert t.row_counts[4] == 1

    def test_replace_row(self, meter):
        t = RowChunkTracker(n_rows=5)
        c1 = data_chunk((0, 0), [2], [0], [1.0])
        c2 = data_chunk((1, 0), [2], [1], [1.0])
        t.insert(c1, 2, 1, meter)
        t.insert(c2, 2, 1, meter)
        merged = data_chunk((100, 0), [2, 2], [0, 1], [1.0, 1.0])
        t.replace_row(2, [merged], 2)
        assert t.chunks_for(2) == [merged]
        assert t.row_counts[2] == 2

    def test_sorted_shared_rows(self, meter):
        t = RowChunkTracker(n_rows=10)
        for row in (7, 2):
            for blk in range(2):
                t.insert(data_chunk((blk, 0), [row], [0], [1.0]), row, 1, meter)
        np.testing.assert_array_equal(t.sorted_shared_rows(), [2, 7])

    def test_helper_bytes(self, meter):
        t = RowChunkTracker(n_rows=100)
        assert t.helper_bytes() >= 100 * 12

"""Unit tests for merge assignment and the three merge algorithms (§3.3)."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix
from repro.core import (
    Chunk,
    ChunkPool,
    MultiMergeBlock,
    PathMergeBlock,
    RowChunkTracker,
    SearchMergeBlock,
    assign_merges,
)
from repro.core.chunks import PoolExhausted
from repro.gpu import BlockContext, CostMeter, SMALL_DEVICE


@pytest.fixture
def options():
    return AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)


@pytest.fixture
def meter(options):
    return CostMeter(config=options.device)


def make_chunk(order, row, cols, vals):
    cols = np.asarray(cols, dtype=np.int64)
    return Chunk(
        order_key=order,
        kind="data",
        first_row=row,
        last_row=row,
        rows=np.full(cols.shape[0], row, dtype=np.int64),
        cols=cols,
        vals=np.asarray(vals, dtype=np.float64),
    )


def shared_row_setup(row, parts, meter, n_rows=10):
    """Tracker with one row covered by several single-row chunks."""
    tracker = RowChunkTracker(n_rows=n_rows)
    for i, (cols, vals) in enumerate(parts):
        tracker.insert_chunk(make_chunk((i, 0), row, cols, vals), None, meter)
    return tracker


def merged_dense(tracker, row, b, n_cols):
    out = np.zeros(n_cols)
    for chunk in tracker.chunks_for(row):
        seg = chunk.row_segment(row)
        base = chunk.segment_offset(row)
        cols = chunk.columns(b)[seg]
        vals = chunk.values(b)[seg]
        np.add.at(out, np.asarray(cols), np.asarray(vals))
    return out


class TestAssignment:
    def test_classification(self, options, meter):
        tracker = RowChunkTracker(n_rows=20)
        capacity = options.device.elements_per_block
        # row 1: two small chunks -> multi merge
        for i in range(2):
            tracker.insert_chunk(make_chunk((i, 0), 1, [i], [1.0]), None, meter)
        # row 2: five chunks -> path merge
        for i in range(5):
            tracker.insert_chunk(make_chunk((i, 1), 2, [i], [1.0]), None, meter)
        # row 3: more chunks than the path limit -> search merge
        for i in range(options.path_merge_max_chunks + 1):
            tracker.insert_chunk(make_chunk((i, 2), 3, [i], [1.0]), None, meter)
        # row 4: two chunks but oversized -> escalated past multi merge
        big = np.arange(capacity, dtype=np.int64)
        for i in range(2):
            tracker.insert_chunk(
                make_chunk((i, 3), 4, big, np.ones(capacity)), None, meter
            )
        a = assign_merges(tracker, options, meter)
        assert any(1 in g for g in a.multi_groups)
        assert 2 in a.path_rows
        assert 3 in a.search_rows
        assert 4 in a.path_rows  # 2 chunks but > capacity
        assert a.n_shared_rows == 4

    def test_packing_respects_capacity(self, options, meter):
        tracker = RowChunkTracker(n_rows=64)
        cap = options.device.elements_per_block
        per_row = cap // 2 + 1  # two rows don't fit together
        cols = np.arange(per_row, dtype=np.int64)
        for row in range(4):
            for i in range(2):
                tracker.insert_chunk(
                    make_chunk((i, row), row, cols[: per_row // 2], np.ones(per_row // 2)),
                    None,
                    meter,
                )
        a = assign_merges(tracker, options, meter)
        for group in a.multi_groups:
            total = sum(int(tracker.row_counts[r]) for r in group)
            assert total <= cap

    def test_no_shared_rows(self, options, meter):
        tracker = RowChunkTracker(n_rows=5)
        a = assign_merges(tracker, options, meter)
        assert a.n_shared_rows == 0


class TestMultiMerge:
    def test_merges_two_chunks(self, options, meter):
        tracker = shared_row_setup(
            3,
            [([1, 5, 9], [1.0, 2.0, 3.0]), ([5, 7], [10.0, 20.0])],
            meter,
        )
        pool = ChunkPool(capacity_bytes=1 << 16)
        block = MultiMergeBlock(block_index=0, rows=(3,))
        ctx = BlockContext(config=options.device, block_id=0)
        chunk = block.run(ctx, tracker, pool, None, options)
        np.testing.assert_array_equal(chunk.cols, [1, 5, 7, 9])
        np.testing.assert_array_equal(chunk.vals, [1.0, 12.0, 20.0, 3.0])
        assert tracker.row_counts[3] == 4
        assert tracker.chunks_for(3) == [chunk]

    def test_accumulation_order_by_chunk_key(self, options, meter):
        """Merge accumulates in global chunk order, not insertion order."""
        tracker = RowChunkTracker(n_rows=5)
        # insert the LATER chunk first; values chosen so order matters
        tracker.insert_chunk(make_chunk((7, 0), 2, [4], [1.0]), None, meter)
        tracker.insert_chunk(make_chunk((1, 0), 2, [4], [1e16]), None, meter)
        pool = ChunkPool(capacity_bytes=1 << 16)
        block = MultiMergeBlock(block_index=0, rows=(2,))
        ctx = BlockContext(config=options.device, block_id=0)
        chunk = block.run(ctx, tracker, pool, None, options)
        # (1e16 + 1.0) in chunk order; insertion order would give 1.0 + 1e16
        assert chunk.vals[0] == 1e16 + 1.0

    def test_pool_exhaustion_restartable(self, options, meter):
        tracker = shared_row_setup(
            1, [([0, 1], [1.0, 1.0]), ([1, 2], [1.0, 1.0])], meter
        )
        pool = ChunkPool(capacity_bytes=8)  # too small for the result
        block = MultiMergeBlock(block_index=0, rows=(1,))
        ctx = BlockContext(config=options.device, block_id=0)
        with pytest.raises(PoolExhausted):
            block.run(ctx, tracker, pool, None, options)
        # restart from scratch after growth
        pool.grow(1 << 16)
        ctx2 = BlockContext(config=options.device, block_id=1)
        chunk = block.run(ctx2, tracker, pool, None, options)
        np.testing.assert_array_equal(chunk.cols, [0, 1, 2])


class TestIterativeMerges:
    def build_large_shared_row(self, meter, n_chunks, per_chunk, n_cols, seed=0):
        rng = np.random.default_rng(seed)
        parts = []
        for _ in range(n_chunks):
            cols = np.sort(rng.choice(n_cols, size=per_chunk, replace=False))
            parts.append((cols, rng.random(per_chunk)))
        tracker = shared_row_setup(0, parts, meter, n_rows=4)
        expected = np.zeros(n_cols)
        for cols, vals in parts:
            np.add.at(expected, cols, vals)
        return tracker, expected

    @pytest.mark.parametrize("merge_cls", [SearchMergeBlock, PathMergeBlock])
    def test_merges_exceeding_capacity(self, merge_cls, options, meter):
        cap = options.device.elements_per_block
        tracker, expected = self.build_large_shared_row(
            meter, n_chunks=4, per_chunk=cap, n_cols=5 * cap
        )
        pool = ChunkPool(capacity_bytes=1 << 20)
        block = merge_cls(block_index=0, row=0)
        ctx = BlockContext(config=options.device, block_id=0)
        assert block.run(ctx, tracker, pool, None, options)
        # multiple output chunks with ascending, disjoint column ranges
        produced = tracker.chunks_for(0)
        assert len(produced) > 1
        prev_max = -1
        offset = 0
        for c in produced:
            assert int(c.cols.min()) > prev_max
            prev_max = int(c.cols.max())
            assert c.segment_offset(0) == offset
            offset += c.count
        np.testing.assert_allclose(
            merged_dense(tracker, 0, None, 5 * cap), expected, rtol=1e-12
        )
        assert tracker.row_counts[0] == offset

    @pytest.mark.parametrize("merge_cls", [SearchMergeBlock, PathMergeBlock])
    def test_duplicate_heavy_row(self, merge_cls, options, meter):
        """All chunks share the same few columns: compaction across the
        capacity cut must keep duplicates together."""
        cap = options.device.elements_per_block
        cols = np.arange(0, 4 * cap, 4, dtype=np.int64)  # cap entries
        parts = [(cols, np.full(cols.shape[0], float(i + 1))) for i in range(5)]
        tracker = shared_row_setup(0, parts, meter, n_rows=2)
        pool = ChunkPool(capacity_bytes=1 << 20)
        block = merge_cls(block_index=0, row=0)
        ctx = BlockContext(config=options.device, block_id=0)
        assert block.run(ctx, tracker, pool, None, options)
        out = merged_dense(tracker, 0, None, 4 * cap)
        expected = np.zeros(4 * cap)
        np.add.at(expected, cols, np.full(cols.shape[0], 15.0))
        np.testing.assert_allclose(out, expected)

    @pytest.mark.parametrize("merge_cls", [SearchMergeBlock, PathMergeBlock])
    def test_restart_preserves_cursors(self, merge_cls, options, meter):
        cap = options.device.elements_per_block
        tracker, expected = self.build_large_shared_row(
            meter, n_chunks=3, per_chunk=cap, n_cols=4 * cap, seed=5
        )
        # pool fits roughly one output chunk; grow after each failure
        pool = ChunkPool(capacity_bytes=cap * 12 + 64)
        block = merge_cls(block_index=0, row=0)
        rounds = 0
        while True:
            rounds += 1
            assert rounds < 50
            ctx = BlockContext(config=options.device, block_id=rounds)
            if block.run(ctx, tracker, pool, None, options):
                break
            pool.grow(cap * 12 + 64)
        assert rounds > 1, "restart path not exercised"
        np.testing.assert_allclose(
            merged_dense(tracker, 0, None, 4 * cap), expected, rtol=1e-12
        )

    def test_pointer_chunk_participates(self, options, meter):
        """A long-row pointer chunk merges with a data chunk."""
        b = CSRMatrix.from_dense(
            np.vstack([np.linspace(1, 2, 400)] + [np.zeros(400)] * 2)
        )
        tracker = RowChunkTracker(n_rows=4)
        pointer = Chunk(
            order_key=(0, 0),
            kind="pointer",
            first_row=2,
            last_row=2,
            b_row=0,
            factor=3.0,
            b_length=400,
        )
        tracker.insert_chunk(pointer, b, meter)
        data = make_chunk((1, 0), 2, [10, 50], [100.0, 200.0])
        tracker.insert_chunk(data, b, meter)
        pool = ChunkPool(capacity_bytes=1 << 20)
        block = SearchMergeBlock(block_index=0, row=2)
        ctx = BlockContext(config=options.device, block_id=0)
        assert block.run(ctx, tracker, pool, b, options)
        out = merged_dense(tracker, 2, b, 400)
        expected = 3.0 * b.to_dense()[0]
        expected[10] += 100.0
        expected[50] += 200.0
        np.testing.assert_allclose(out, expected, rtol=1e-12)

"""Tests for the benchmark harness, metrics and reporting."""

import numpy as np
import pytest

from repro.bench import (
    MatrixCase,
    ResultCache,
    check_bit_stability,
    format_table,
    harmonic_mean,
    human_bytes,
    run_case,
    speedup_summary,
    trend_bins,
    write_csv,
)
from repro.matrices.generators import random_uniform
from tests.conftest import random_csr


@pytest.fixture
def case(rng):
    return MatrixCase("test-case", random_csr(rng, 40, 40, 0.12))


class TestMatrixCase:
    def test_square_operands(self, case):
        assert case.a is case.matrix and case.b is case.matrix
        assert case.temp > 0

    def test_nonsquare_uses_transpose(self, rng):
        c = MatrixCase("rect", random_csr(rng, 10, 30, 0.2))
        assert c.b.shape == (30, 10)

    def test_sparse_classification(self, case):
        assert case.highly_sparse == (case.mean_row_length <= 42)


class TestRunCase:
    def test_record_fields(self, case):
        rec = run_case(case, "nsparse")
        assert rec.matrix == "test-case"
        assert rec.algorithm == "nsparse"
        assert rec.correct
        assert rec.gflops > 0
        assert rec.temp == case.temp

    def test_ac_extras_populated(self, case):
        rec = run_case(case, "ac-spgemm")
        assert "restarts" in rec.ac_extras
        assert rec.ac_extras["chunk_pool_bytes"] > 0

    def test_verification_flag(self, case):
        rec = run_case(case, "rmerge", verify=False)
        assert rec.correct  # default True when unverified


class TestResultCache:
    def test_memoisation(self, tmp_path, case):
        cache = ResultCache(tmp_path / "c.json")
        r1 = cache.get_or_run(case, "nsparse")
        r2 = cache.get_or_run(case, "nsparse")
        assert r1.cycles == r2.cycles
        assert len(cache) == 1

    def test_round_trip_disk(self, tmp_path, case):
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        rec = cache.get_or_run(case, "rmerge")
        cache.save()
        cache2 = ResultCache(path)
        rec2 = cache2.get_or_run(case, "rmerge")
        assert rec2.cycles == rec.cycles
        assert rec2.stage_cycles == rec.stage_cycles

    def test_version_mismatch_discards(self, tmp_path, case):
        path = tmp_path / "c.json"
        path.write_text('{"version": -1, "cells": {"x": {}}}')
        cache = ResultCache(path)
        assert len(cache) == 0

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        assert len(ResultCache(path)) == 0

    def test_interleaved_writers_merge(self, tmp_path, rng):
        """Two caches saving in turn must not clobber each other: the
        save merges the on-disk cells under an exclusive lock."""
        path = tmp_path / "c.json"
        case_a = MatrixCase("m-a", random_csr(rng, 30, 30, 0.15))
        case_b = MatrixCase("m-b", random_csr(rng, 30, 30, 0.15))
        w1 = ResultCache(path)
        w2 = ResultCache(path)  # opened before w1 writes anything
        w1.get_or_run(case_a, "nsparse")
        w2.get_or_run(case_b, "rmerge")
        w1.save()
        w2.save()  # pre-fix this rewrote the file, losing w1's cell
        merged = ResultCache(path)
        assert len(merged) == 2
        assert merged.get_or_run(case_a, "nsparse")  # no re-run needed
        assert len(merged) == 2

    def test_save_is_atomic_no_torn_sibling(self, tmp_path, case):
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        cache.get_or_run(case, "nsparse")
        cache.save()
        # the temp file is renamed over the target, never left behind
        leftovers = [
            p for p in path.parent.iterdir() if p.name.startswith(".c.json.tmp")
        ]
        assert leftovers == []
        assert len(ResultCache(path)) == 1

    def test_lazy_case_untouched_on_full_cache_hit(self, tmp_path, rng):
        """Satellite: a warm-cache sweep must not build operands or
        count intermediate products (the expensive part)."""
        path = tmp_path / "c.json"
        warm = ResultCache(path)
        warm.get_or_run(MatrixCase("lazy-m", random_csr(rng, 40, 40, 0.1)),
                        "nsparse")
        warm.save()
        fresh_case = MatrixCase("lazy-m", random_csr(rng, 40, 40, 0.1))
        assert not fresh_case.materialized
        ResultCache(path).get_or_run(fresh_case, "nsparse")
        assert not fresh_case.materialized  # full hit: operands never built


class TestMetrics:
    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == 1.0
        assert harmonic_mean([2.0, 2.0]) == 2.0
        assert harmonic_mean([1.0, 4.0]) == pytest.approx(1.6)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_speedup_summary(self):
        ac = {"m1": 1.0, "m2": 2.0}
        comp = {"m1": 2.0, "m2": 1.0}
        best = {"m1": "ac-spgemm", "m2": "x"}
        s = speedup_summary("x", ac, comp, best)
        assert s.min_speedup == 0.5 and s.max_speedup == 2.0
        assert s.pct_better_than_ac == 50.0
        assert s.pct_best_overall == 50.0

    def test_speedup_no_common(self):
        with pytest.raises(ValueError):
            speedup_summary("x", {"a": 1.0}, {"b": 1.0}, {})

    def test_trend_bins_geometric(self):
        temps = [1e3, 1e4, 1e5, 1e6]
        vals = [1.0, 2.0, 3.0, 4.0]
        bins = trend_bins(temps, vals, n_bins=4)
        assert len(bins) >= 3
        assert sum(n for _, _, n in bins) == 4

    def test_trend_bins_empty(self):
        assert trend_bins([], []) == []


class TestReport:
    def test_format_table(self):
        out = format_table(
            ["name", "value"], [("a", 1.5), ("bb", 2.25)], title="T"
        )
        assert "T" in out and "1.50" in out and "bb" in out

    def test_write_csv(self, tmp_path):
        p = write_csv(tmp_path / "sub" / "x.csv", ["a", "b"], [(1, 2)])
        assert p.read_text().splitlines() == ["a,b", "1,2"]

    def test_human_bytes(self):
        assert human_bytes(512) == "512.00B"
        assert human_bytes(2048) == "2.00KB"
        assert human_bytes(3 * 1024**2) == "3.00MB"


class TestStabilityChecker:
    def test_ac_reported_stable(self):
        a = random_uniform(150, 150, 5, seed=3)
        rep = check_bit_stability("ac-spgemm", a, a, n_runs=3)
        assert rep.claims_stable and rep.observed_stable and rep.consistent
        assert rep.max_value_deviation == 0.0

    def test_nsparse_reported_unstable(self):
        a = random_uniform(200, 200, 8, seed=3)
        rep = check_bit_stability("nsparse", a, a, n_runs=4)
        assert not rep.claims_stable
        assert not rep.observed_stable
        assert rep.consistent
        assert rep.max_value_deviation > 0.0

"""Tests for the sharded, resumable campaign runner."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench import ResultCache, default_cache, run_case
from repro.bench.harness import CACHE_VERSION, MatrixCase
from repro.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignRunner,
    ShardWriter,
    campaign_records,
    cell_key,
    config_entries,
    enumerate_cells,
    execute_cell,
    load_completed,
    matrix_fingerprint,
    read_shard_lines,
    tiny_entries,
)

TINY2 = CampaignConfig(suite="tiny", limit=2)  # 2 matrices x 6 algs = 12 cells


# ------------------------------------------------------------------- plan


class TestPlan:
    def test_suite_and_cell_enumeration(self):
        cells = enumerate_cells(TINY2)
        entries = config_entries(TINY2)
        assert len(entries) == 2
        assert len(cells) == 12
        # canonical sweep nesting: matrices outer, then dtypes, then algs
        assert [c.index for c in cells] == list(range(12))
        assert cells[0].matrix == entries[0].name
        assert cells[6].matrix == entries[1].name
        assert len({c.id for c in cells}) == 12

    def test_config_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(suite="nope")
        with pytest.raises(CampaignError):
            CampaignConfig(algorithms=("warp9",))
        with pytest.raises(CampaignError):
            CampaignConfig(dtypes=("float16",))
        with pytest.raises(CampaignError):
            CampaignConfig(retries=-1)

    def test_config_roundtrip(self):
        cfg = CampaignConfig(
            suite="tiny", limit=3, dtypes=("float32", "float64"),
            engine="batched", retries=2,
        )
        assert CampaignConfig.from_json(cfg.to_json()) == cfg

    def test_matrix_fingerprint_content_sensitivity(self):
        entries = tiny_entries()
        m = entries[0].build()
        assert matrix_fingerprint(m) == matrix_fingerprint(entries[0].build())
        assert matrix_fingerprint(m) != matrix_fingerprint(entries[1].build())

    def test_cell_key_binds_content_and_options(self):
        cells = enumerate_cells(TINY2)
        k = cell_key(cells[0], "fp0", TINY2)
        assert k == cell_key(cells[0], "fp0", TINY2)
        assert k != cell_key(cells[0], "fp1", TINY2)  # matrix changed
        assert k != cell_key(cells[1], "fp0", TINY2)  # algorithm changed
        assert k != cell_key(cells[0], "fp0", TINY2.with_(verify=True))
        assert k != cell_key(cells[0], "fp0", TINY2.with_(engine="batched"))

    def test_plan_pin_rejects_different_config(self, tmp_path):
        CampaignRunner(tmp_path, TINY2).run()
        other = TINY2.with_(limit=1)
        with pytest.raises(CampaignError, match="different plan"):
            CampaignRunner(tmp_path, other).run()


# ------------------------------------------------------------------ store


class TestStore:
    def test_torn_final_line_is_skipped(self, tmp_path):
        w = ShardWriter(tmp_path, 0)
        w.append({"id": "a", "key": "k1", "status": "ok"})
        w.close()
        with open(w.path, "a") as fh:
            fh.write('{"id": "b", "key": "k2", "st')  # killed mid-write
        lines = read_shard_lines(w.path)
        assert [ln["id"] for ln in lines] == ["a"]

    def test_torn_middle_line_raises(self, tmp_path):
        p = tmp_path / "shard-00.jsonl"
        p.write_text('{"id": "a", "key"\n{"id": "b", "key": "k2"}\n')
        with pytest.raises(CampaignError, match="corrupt checkpoint"):
            read_shard_lines(p)

    def test_load_completed_ignores_stale_keys(self, tmp_path):
        w = ShardWriter(tmp_path, 0)
        w.append({"id": "a", "key": "old", "status": "ok"})
        w.append({"id": "b", "key": "kb", "status": "ok"})
        w.close()
        got = load_completed(tmp_path, {"a": "new", "b": "kb"})
        assert list(got) == ["b"]

    def test_conflicting_duplicate_outcomes_raise(self, tmp_path):
        w0 = ShardWriter(tmp_path, 0)
        w0.append({"id": "a", "key": "ka", "status": "ok"})
        w0.close()
        w1 = ShardWriter(tmp_path, 1)
        w1.append({"id": "a", "key": "ka", "status": "failed"})
        w1.close()
        with pytest.raises(CampaignError, match="conflicting"):
            load_completed(tmp_path, {"a": "ka"})


# ------------------------------------------------------------- execution


class TestExecution:
    def test_inline_run_merges_records_in_plan_order(self, tmp_path):
        result = CampaignRunner(tmp_path, TINY2).run()
        assert result.stats["cells"] == 12
        assert result.stats["executed"] == 12
        assert not result.failed_cells
        recs = result.records()
        cells = enumerate_cells(TINY2)
        assert [(r.matrix, r.algorithm, r.dtype) for r in recs] == [
            (c.matrix, c.algorithm, c.dtype) for c in cells
        ]
        art = json.loads((tmp_path / "campaign.json").read_text())
        assert art["cache_version"] == CACHE_VERSION
        assert art["n_cells"] == 12
        # execution details never leak into the artifact
        assert "worker" not in art["cells"][0]
        assert "t_host" not in art["cells"][0]

    def test_rerun_resumes_everything(self, tmp_path):
        CampaignRunner(tmp_path, TINY2).run()
        before = (tmp_path / "campaign.json").read_bytes()
        again = CampaignRunner(tmp_path, TINY2).run()
        assert again.stats["resumed"] == 12
        assert again.stats["executed"] == 0
        assert (tmp_path / "campaign.json").read_bytes() == before

    def test_two_workers_byte_identical_to_inline(self, tmp_path):
        a = CampaignRunner(tmp_path / "w1", TINY2, workers=1).run()
        b = CampaignRunner(tmp_path / "w2", TINY2, workers=2).run()
        assert b.stats["workers"] == 2
        assert (
            a.artifact_path.read_bytes() == b.artifact_path.read_bytes()
        )

    def test_cache_seeding_and_foldback(self, tmp_path):
        cache = default_cache(tmp_path)
        entries = config_entries(TINY2)
        case = MatrixCase(entries[0].name, entries[0].build())
        for alg in TINY2.algorithms:
            cache.get_or_run(case, alg, verify=False)
        cache.save()
        result = CampaignRunner(
            tmp_path / "camp", TINY2, cache_path=cache.path
        ).run()
        assert result.stats["seeded"] == 6
        assert result.stats["executed"] == 6
        # seeded artifact matches a cold, cacheless run byte for byte
        cold = CampaignRunner(tmp_path / "cold", TINY2).run()
        assert (
            result.artifact_path.read_bytes()
            == cold.artifact_path.read_bytes()
        )
        # fresh records were folded back into the shared cache
        folded = ResultCache(cache.path)
        assert len(folded) == 12

    def test_campaign_records_helper(self, tmp_path):
        recs = campaign_records(tmp_path, TINY2)
        assert len(recs) == 12
        assert recs[0].gflops > 0


# --------------------------------------------------- retries / failures


class TestRetries:
    @staticmethod
    def _cell_and_case():
        entries = tiny_entries()
        case = MatrixCase(entries[0].name, entries[0].build())
        cell = enumerate_cells(CampaignConfig(suite="tiny", limit=1))[0]
        return case, cell

    def test_flaky_cell_is_retried(self):
        case, cell = self._cell_and_case()
        config = CampaignConfig(suite="tiny", limit=1, retries=2)
        calls = {"n": 0}

        def flaky(case, alg, dtype, *, verify):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return run_case(case, alg, dtype, verify=verify)

        line = execute_cell(
            case, cell, config, key="k", worker=0, runner=flaky
        )
        assert line["status"] == "retried"
        assert line["attempts"] == 3
        assert line["record"] is not None
        assert line["error"] is None

    def test_exhausted_budget_records_failure(self):
        case, cell = self._cell_and_case()
        config = CampaignConfig(suite="tiny", limit=1, retries=1)

        def broken(case, alg, dtype, *, verify):
            raise RuntimeError("deterministic crash")

        line = execute_cell(
            case, cell, config, key="k", worker=0, runner=broken
        )
        assert line["status"] == "failed"
        assert line["attempts"] == 2
        assert line["record"] is None
        assert line["error"]["kind"] == "RuntimeError"
        assert "deterministic crash" in line["error"]["message"]

    def test_records_refuses_failed_cells_by_default(self, tmp_path):
        result = CampaignRunner(tmp_path, TINY2).run()
        bad = dict(result.completed[result.cells[0].id])
        bad["status"] = "failed"
        bad["record"] = None
        result.completed[result.cells[0].id] = bad
        with pytest.raises(CampaignError, match="failed"):
            result.records()
        assert len(result.records(allow_failed=True)) == 11


# ------------------------------------------------------------- metrics


class TestMetrics:
    def test_campaign_metrics_roundtrip(self, tmp_path):
        from repro.obs import parse_prometheus_text

        result = CampaignRunner(tmp_path, TINY2).run()
        text = result.metrics.to_prometheus()
        parsed = parse_prometheus_text(text)
        totals = parsed["samples"]["repro_campaign_cells_total"]
        assert sum(v for _, v in totals) == 12
        # matrix names (with dashes) survive as label *values*
        per_matrix = parsed["samples"]["repro_campaign_matrix_seconds_total"]
        assert {lbl["matrix"] for lbl, _ in per_matrix} == {
            e.name for e in config_entries(TINY2)
        }
        hit = parsed["samples"]["repro_campaign_cache_hit_ratio"]
        assert hit[0][1] == 0.0


# ---------------------------------------------------------- kill/resume


class TestKillResume:
    def test_sigkill_mid_sweep_then_resume_byte_identical(self, tmp_path):
        """Satellite 5: SIGKILL a 2-worker campaign mid-sweep, rerun,
        and the merged artifact is byte-identical to an uninterrupted
        run, with every pre-kill cell served from the checkpoints."""
        camp = tmp_path / "interrupted"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        old = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + old if old else "")
        cmd = [
            sys.executable, "-m", "repro.cli", "campaign",
            "--suite", "tiny", "--workers", "2",
            "--throttle", "0.25", "--dir", str(camp), "--quiet",
        ]
        proc = subprocess.Popen(
            cmd, env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            n_prekill = 0
            while time.monotonic() < deadline:
                shards = list((camp / "shards").glob("*.jsonl"))
                n_prekill = sum(
                    len(read_shard_lines(p)) for p in shards
                )
                if n_prekill >= 6:
                    break
                time.sleep(0.1)
        finally:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        assert 0 < n_prekill < 36, "kill must land mid-sweep"
        assert not (camp / "campaign.json").exists()

        config = CampaignConfig(suite="tiny")
        resumed = CampaignRunner(camp, config, workers=2).run()
        # >= 90% of the checkpointed cells come back from the shards
        assert resumed.stats["resumed"] >= 0.9 * n_prekill
        assert (
            resumed.stats["resumed"] + resumed.stats["executed"] == 36
        )
        clean = CampaignRunner(tmp_path / "clean", config).run()
        assert (
            resumed.artifact_path.read_bytes()
            == clean.artifact_path.read_bytes()
        )


# ------------------------------------------------- liveness and drain


class TestWorkerLiveness:
    def test_cell_timeout_raises_typed_and_counts_against_retries(self):
        entries = tiny_entries()
        case = MatrixCase(entries[0].name, entries[0].build())
        cell = enumerate_cells(CampaignConfig(suite="tiny", limit=1))[0]
        config = CampaignConfig(suite="tiny", limit=1, retries=1)

        def hang(case, alg, dtype, *, verify):
            time.sleep(30)  # interrupted by SIGALRM long before 30 s
            raise AssertionError("unreachable")  # pragma: no cover

        t0 = time.monotonic()
        line = execute_cell(
            case, cell, config, key="k", worker=0,
            runner=hang, cell_timeout=0.2,
        )
        assert time.monotonic() - t0 < 10
        assert line["status"] == "failed"
        assert line["attempts"] == 2  # the timeout consumed the budget
        assert line["error"]["kind"] == "DeadlineExceeded"
        assert line["error"]["stage"] == "cell"

    def test_cell_timeout_disarmed_after_fast_cell(self):
        """The itimer must not fire after a cell finishes in time."""
        entries = tiny_entries()
        case = MatrixCase(entries[0].name, entries[0].build())
        cell = enumerate_cells(CampaignConfig(suite="tiny", limit=1))[0]
        config = CampaignConfig(suite="tiny", limit=1)
        line = execute_cell(
            case, cell, config, key="k", worker=0, cell_timeout=30.0,
        )
        assert line["status"] == "ok"
        time.sleep(0.05)  # a leaked alarm would fire here and kill us

    def test_starved_worker_checkpoints_typed_diagnostic(self, tmp_path):
        """An empty queue past the starvation window is attributable:
        the worker records a WorkerStarved diagnostic and exits instead
        of vanishing silently."""
        import queue as queue_mod

        from repro.campaign.store import read_shard_diagnostics
        from repro.campaign.worker import worker_main

        config = CampaignConfig(suite="tiny", limit=1)
        worker_main(
            str(tmp_path), 0, config.to_json(), queue_mod.Queue(),
            starve_timeout=0.6,
        )
        diags = read_shard_diagnostics(tmp_path / "shards" / "shard-00.jsonl")
        starved = [d for d in diags if d.get("event") == "starved"]
        assert len(starved) == 1
        assert starved[0]["error"]["kind"] == "WorkerStarved"
        assert starved[0]["waited_s"] >= 0.6
        # diagnostics are invisible to resume/merge
        assert read_shard_lines(
            tmp_path / "shards" / "shard-00.jsonl"
        ) == []

    def test_sigterm_drains_in_flight_cell_and_exits_zero(self, tmp_path):
        """SIGTERM mid-campaign: the worker finishes its current cell,
        fsyncs it, records a drain marker and exits 0."""
        import multiprocessing as mp

        from repro.campaign.store import read_shard_diagnostics
        from repro.campaign.worker import worker_main

        config = CampaignConfig(
            suite="tiny", limit=1, algorithms=("ac-spgemm",)
        )
        ctx = mp.get_context("spawn")
        work_queue = ctx.Queue()
        work_queue.put(0)  # one cell, then the queue idles (no sentinel)
        proc = ctx.Process(
            target=worker_main,
            args=(str(tmp_path), 0, config.to_json(), work_queue),
        )
        proc.start()
        try:
            shard = tmp_path / "shards" / "shard-00.jsonl"
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if read_shard_lines(shard):
                    break
                time.sleep(0.1)
            assert read_shard_lines(shard), "cell never checkpointed"
            os.kill(proc.pid, signal.SIGTERM)
            proc.join(timeout=60)
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=30)
        assert proc.exitcode == 0
        lines = read_shard_lines(shard)
        assert len(lines) == 1 and lines[0]["status"] == "ok"
        diags = read_shard_diagnostics(shard)
        assert any(d.get("event") == "sigterm-drain" for d in diags)

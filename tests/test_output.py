"""Unit tests for stage 4 (output assembly, §3.5)."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix
from repro.core import ChunkPool, RowChunkTracker
from repro.core.chunks import Chunk
from repro.core.output import build_row_pointer, copy_chunks
from repro.gpu import CostMeter, SMALL_DEVICE


@pytest.fixture
def options():
    return AcSpgemmOptions(device=SMALL_DEVICE)


@pytest.fixture
def meter(options):
    return CostMeter(config=options.device)


def chunk_of(order, rows, cols, vals, offsets=None):
    rows = np.asarray(rows, dtype=np.int64)
    return Chunk(
        order_key=order,
        kind="data",
        first_row=int(rows[0]),
        last_row=int(rows[-1]),
        rows=rows,
        cols=np.asarray(cols, dtype=np.int64),
        vals=np.asarray(vals, dtype=np.float64),
        segment_offsets=offsets,
    )


def test_row_pointer_from_counts(meter):
    tracker = RowChunkTracker(n_rows=4)
    tracker.row_counts[:] = [2, 0, 3, 1]
    ptr = build_row_pointer(tracker, meter)
    np.testing.assert_array_equal(ptr, [0, 2, 2, 5, 6])


def test_copy_single_chunk(options, meter):
    tracker = RowChunkTracker(n_rows=3)
    pool = ChunkPool(capacity_bytes=1 << 16)
    c = chunk_of((0, 0), [0, 0, 2], [1, 4, 0], [1.0, 2.0, 3.0])
    pool.allocate(c, 100, meter)
    tracker.insert_chunk(c, None, meter)
    ptr = build_row_pointer(tracker, meter)
    out, cycles = copy_chunks(pool, tracker, ptr, CSRMatrix.empty(3, 5), options, meter)
    np.testing.assert_array_equal(
        out.to_dense(),
        [[0, 1.0, 0, 0, 2.0], [0, 0, 0, 0, 0], [3.0, 0, 0, 0, 0]],
    )
    assert len(cycles) == 1


def test_copy_skips_merged_rows(options, meter):
    """Rows owned by merge-produced chunks are not copied from the
    original ESC chunks."""
    tracker = RowChunkTracker(n_rows=2)
    pool = ChunkPool(capacity_bytes=1 << 16)
    c1 = chunk_of((0, 0), [0, 1], [3, 5], [1.0, 10.0])
    c2 = chunk_of((1, 0), [1], [5], [20.0])
    for c in (c1, c2):
        pool.allocate(c, 100, meter)
        tracker.insert_chunk(c, None, meter)
    merged = chunk_of((100, 0), [1], [5], [30.0])
    pool.allocate(merged, 100, meter)
    tracker.replace_row(1, [merged], 1)
    ptr = build_row_pointer(tracker, meter)
    out, _ = copy_chunks(pool, tracker, ptr, CSRMatrix.empty(2, 8), options, meter)
    assert out.to_dense()[1, 5] == 30.0
    assert out.to_dense()[0, 3] == 1.0


def test_copy_respects_segment_offsets(options, meter):
    tracker = RowChunkTracker(n_rows=1)
    pool = ChunkPool(capacity_bytes=1 << 16)
    # one row split across two merge chunks with explicit offsets
    c1 = chunk_of((0, 0), [0, 0], [1, 2], [1.0, 2.0], offsets={0: 0})
    c2 = chunk_of((0, 1), [0, 0], [5, 9], [3.0, 4.0], offsets={0: 2})
    for c in (c1, c2):
        pool.allocate(c, 100, meter)
    tracker.row_lists[0] = [c1, c2]
    tracker.row_counts[0] = 4
    ptr = build_row_pointer(tracker, meter)
    out, _ = copy_chunks(pool, tracker, ptr, CSRMatrix.empty(1, 10), options, meter)
    np.testing.assert_array_equal(out.col_idx, [1, 2, 5, 9])
    np.testing.assert_array_equal(out.values, [1.0, 2.0, 3.0, 4.0])


def test_copy_materialises_pointer_chunks(options, meter):
    b = CSRMatrix.from_dense(np.array([[0.0, 2.0, 0.0, 4.0]]))
    tracker = RowChunkTracker(n_rows=2)
    pool = ChunkPool(capacity_bytes=1 << 16)
    p = Chunk(
        order_key=(0, 0),
        kind="pointer",
        first_row=1,
        last_row=1,
        b_row=0,
        factor=0.5,
        b_length=2,
    )
    pool.allocate(p, 32, meter)
    tracker.insert_chunk(p, b, meter)
    ptr = build_row_pointer(tracker, meter)
    out, _ = copy_chunks(pool, tracker, ptr, b.copy(), options, meter)
    # shape of output: rows=2, cols follow b
    np.testing.assert_array_equal(out.to_dense()[1], [0.0, 1.0, 0.0, 2.0])


def test_copy_detects_count_mismatch(options, meter):
    tracker = RowChunkTracker(n_rows=1)
    pool = ChunkPool(capacity_bytes=1 << 16)
    c = chunk_of((0, 0), [0, 0], [1, 2], [1.0, 2.0])
    pool.allocate(c, 100, meter)
    tracker.row_lists[0] = [c]
    tracker.row_counts[0] = 1  # wrong: chunk holds 2 elements
    ptr = build_row_pointer(tracker, meter)
    with pytest.raises(AssertionError, match="overflows row"):
        copy_chunks(pool, tracker, ptr, CSRMatrix.empty(1, 4), options, meter)

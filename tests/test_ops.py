"""Unit tests for reference sparse operations."""

import numpy as np
import pytest

from repro import CSRMatrix, count_intermediate_products, spgemm_reference
from repro.sparse import add, scale, spmv, symbolic_nnz, spgemm_dense_check
from tests.conftest import random_csr


class TestSpgemmReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        a = random_csr(rng, 25, 30, 0.15)
        b = random_csr(rng, 30, 20, 0.15)
        ours = spgemm_reference(a, b)
        ref = (a.to_scipy() @ b.to_scipy()).toarray()
        np.testing.assert_allclose(ours.to_dense(), ref, rtol=1e-12)

    def test_matches_dense_oracle(self, rng):
        a = random_csr(rng, 8, 9, 0.3)
        b = random_csr(rng, 9, 7, 0.3)
        np.testing.assert_allclose(
            spgemm_reference(a, b).to_dense(), spgemm_dense_check(a, b)
        )

    def test_output_sorted_rows(self, rng):
        a = random_csr(rng, 20, 20, 0.2)
        c = spgemm_reference(a, a)
        from repro.sparse import validate_csr

        validate_csr(c)

    def test_dimension_mismatch(self, rng):
        a = random_csr(rng, 4, 5, 0.5)
        with pytest.raises(ValueError, match="inner dimensions"):
            spgemm_reference(a, a)

    def test_empty_operand(self):
        a = CSRMatrix.empty(3, 4)
        b = CSRMatrix.empty(4, 5)
        c = spgemm_reference(a, b)
        assert c.shape == (3, 5) and c.nnz == 0

    def test_identity_is_neutral(self, medium_matrix):
        eye = CSRMatrix.identity(medium_matrix.cols)
        assert spgemm_reference(medium_matrix, eye).allclose(medium_matrix)

    def test_deterministic(self, rng):
        a = random_csr(rng, 30, 30, 0.2)
        assert spgemm_reference(a, a).exactly_equal(spgemm_reference(a, a))


class TestCounting:
    def test_count_intermediate_products(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 0.0]]))
        # row0 of A hits B rows 0 (len2) + 1 (len1) = 3; row1 hits B row1 = 1
        assert count_intermediate_products(a, b) == 4

    def test_symbolic_matches_actual(self, rng):
        a = random_csr(rng, 25, 25, 0.15)
        assert symbolic_nnz(a, a) == spgemm_reference(a, a).nnz

    def test_count_empty(self):
        a = CSRMatrix.empty(3, 3)
        assert count_intermediate_products(a, a) == 0


class TestElementwise:
    def test_add(self, rng):
        a = random_csr(rng, 10, 12, 0.3)
        b = random_csr(rng, 10, 12, 0.3)
        np.testing.assert_allclose(
            add(a, b, alpha=2.0, beta=-1.0).to_dense(),
            2.0 * a.to_dense() - b.to_dense(),
        )

    def test_add_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shape"):
            add(random_csr(rng, 3, 3, 0.5), random_csr(rng, 3, 4, 0.5))

    def test_scale(self, medium_matrix):
        np.testing.assert_allclose(
            scale(medium_matrix, 0.5).to_dense(), 0.5 * medium_matrix.to_dense()
        )

    def test_spmv(self, rng):
        a = random_csr(rng, 14, 9, 0.4)
        x = rng.random(9)
        np.testing.assert_allclose(spmv(a, x), a.to_dense() @ x)

    def test_spmv_length_mismatch(self, medium_matrix):
        with pytest.raises(ValueError, match="length"):
            spmv(medium_matrix, np.ones(medium_matrix.cols + 1))

"""Golden determinism regression.

These hashes lock the exact floating-point accumulation order of
AC-SpGEMM for fixed inputs and device geometries.  If any future change
alters the expansion order, sort stability, compaction fold, chunk
ordering or merge sequencing, the result bits change and these tests
fail — the repository-level version of the paper's bit-stability
guarantee.

If a change *intentionally* alters the (still deterministic)
accumulation order, regenerate the constants with the snippet in this
file's docstring history and document the change.
"""

import hashlib

import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.gpu import SMALL_DEVICE
from repro.matrices import random_uniform

GOLDEN = {
    # (device label) -> sha256 of row_ptr || col_idx || values
    "titan": "9d1d71fb222c203dbc3dc22650f15acbf718a0e0f3d00851ba9df540e382a130",
    "small": "e27bb71b01b571de78653d7c2f1fa4ce0839eeed2ae91c87987a64cd1c295539",
}
GOLDEN_NNZ = 140841


def result_hash(matrix) -> str:
    h = hashlib.sha256()
    h.update(matrix.row_ptr.tobytes())
    h.update(matrix.col_idx.tobytes())
    h.update(matrix.values.tobytes())
    return h.hexdigest()


@pytest.fixture(scope="module")
def golden_input():
    return random_uniform(400, 400, 30, seed=9)


@pytest.mark.parametrize(
    "label,opts",
    [
        ("titan", AcSpgemmOptions(chunk_pool_lower_bound_bytes=1 << 22)),
        (
            "small",
            AcSpgemmOptions(
                device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20
            ),
        ),
    ],
)
def test_golden_bits(label, opts, golden_input):
    res = ac_spgemm(golden_input, golden_input, opts)
    assert res.matrix.nnz == GOLDEN_NNZ
    assert result_hash(res.matrix) == GOLDEN[label], (
        "AC-SpGEMM's deterministic accumulation order changed; if this "
        "is intentional, regenerate the golden hashes"
    )


def test_geometry_changes_grouping_not_math(golden_input):
    """Different block geometries may group accumulations differently
    (hence different bits) but must agree numerically."""
    r1 = ac_spgemm(
        golden_input,
        golden_input,
        AcSpgemmOptions(chunk_pool_lower_bound_bytes=1 << 22),
    )
    r2 = ac_spgemm(
        golden_input,
        golden_input,
        AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20),
    )
    assert r1.matrix.allclose(r2.matrix, rtol=1e-12)

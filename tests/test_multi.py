"""Multi-device SUMMA: partitioning, determinism, pipelining, faults.

The determinism tests pin the numerical contract documented in
:mod:`repro.multi.summa`:

* P=1 returns the single-device product verbatim (any values);
* the merged *pattern* is byte-identical to the single-device product
  for every P;
* integer-valued workloads (the AMG Galerkin chain) are **byte-
  identical** across P, across host engines, and across the pipelined /
  blocking broadcast modes — integer sums are exact in float64 under
  any summation order;
* fixed (P, backend, mode) runs are byte-reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.matrices.generators import (
    aggregation_prolongation,
    poisson_2d,
    random_uniform,
)
from repro.multi import (
    GridPartition,
    NodeConfig,
    SummaReconciliationError,
    assemble_tiles,
    merged_trace_view,
    split_points,
    summa_spgemm,
)
from repro.obs.analyze import reconcile
from repro.obs.export import summa_perfetto_payload, validate_perfetto
from repro.resilience import FaultPlan
from repro.sparse import spgemm_reference, transpose


def _bytes_equal(x: np.ndarray, y: np.ndarray) -> bool:
    return x.tobytes() == y.tobytes()


class TestPartition:
    def test_split_points_cover(self):
        pts = split_points(10, 3)
        assert pts[0] == 0 and pts[-1] == 10
        widths = [b - a for a, b in zip(pts, pts[1:])]
        assert sum(widths) == 10 and max(widths) - min(widths) <= 1

    def test_partition_conserves_nnz(self):
        a = random_uniform(37, 29, 5, seed=11)
        b = random_uniform(29, 23, 4, seed=12)
        part = GridPartition.build(a, b, 3)
        total = sum(
            part.a_tile(a, i, k).nnz for i in range(3) for k in range(3)
        )
        assert total == a.nnz
        total_b = sum(
            part.b_tile(b, k, j).nnz for k in range(3) for j in range(3)
        )
        assert total_b == b.nnz

    def test_assemble_round_trips_bytes(self):
        # square operands make row/inner/col splits coincide, so C-tiles
        # of the identity partition reassemble the original bytes
        a = random_uniform(31, 31, 4, seed=13)
        part = GridPartition.build(a, a, 3)
        tiles = [
            [part.a_tile(a, i, j) for j in range(3)] for i in range(3)
        ]
        back = assemble_tiles(tiles, part)
        assert back.exactly_equal(a)

    def test_inner_dimension_mismatch(self):
        a = random_uniform(10, 8, 2, seed=1)
        b = random_uniform(9, 10, 2, seed=2)
        with pytest.raises(ValueError):
            GridPartition.build(a, b, 2)


class TestNodeConfig:
    def test_devices_must_be_square(self):
        with pytest.raises(ValueError):
            NodeConfig(devices=3)

    def test_colors_limited(self):
        with pytest.raises(ValueError):
            NodeConfig(colors_per_bus=3)

    def test_broadcast_cycles_model(self):
        node = NodeConfig(link_latency_cycles=100.0, link_bytes_per_cycle=8.0)
        assert node.broadcast_cycles(80) == 100.0 + 10.0


class TestDeterminism:
    def test_p1_verbatim_any_floats(self):
        a = random_uniform(90, 80, 6, seed=3)
        b = random_uniform(80, 70, 5, seed=4)
        opts = AcSpgemmOptions()
        single = ac_spgemm(a, b, opts)
        res = summa_spgemm(a, b, NodeConfig(devices=1), opts,
                           backend="ac-spgemm")
        assert res.matrix.exactly_equal(single.matrix)

    def test_pattern_bytes_identical_any_floats(self):
        a = random_uniform(90, 80, 6, seed=5)
        b = random_uniform(80, 70, 5, seed=6)
        opts = AcSpgemmOptions()
        single = ac_spgemm(a, b, opts)
        res = summa_spgemm(a, b, NodeConfig(devices=4), opts,
                           backend="ac-spgemm")
        assert _bytes_equal(res.matrix.row_ptr, single.matrix.row_ptr)
        assert _bytes_equal(res.matrix.col_idx, single.matrix.col_idx)
        assert res.matrix.allclose(single.matrix, rtol=1e-12)

    @pytest.mark.parametrize("devices", [1, 4, 9])
    def test_integer_chain_byte_identical_across_p(self, devices):
        # Galerkin A @ P on the 5-point Laplacian: integer entries, so
        # values are exact under any merge order
        a = poisson_2d(18)
        p = aggregation_prolongation(18)
        opts = AcSpgemmOptions()
        single = ac_spgemm(a, p, opts)
        res = summa_spgemm(a, p, NodeConfig(devices=devices), opts,
                           backend="ac-spgemm")
        assert res.matrix.exactly_equal(single.matrix)

    def test_chained_rap_byte_identical(self):
        a = poisson_2d(16)
        p = aggregation_prolongation(16)
        r = transpose(p)
        opts = AcSpgemmOptions()
        node = NodeConfig(devices=4)
        ap = summa_spgemm(a, p, node, opts, backend="ac-spgemm")
        rap = summa_spgemm(r, ap.matrix, node, opts, backend="ac-spgemm")
        ref = spgemm_reference(r, spgemm_reference(a, p))
        assert rap.matrix.exactly_equal(
            ac_spgemm(r, ac_spgemm(a, p, opts).matrix, opts).matrix
        )
        assert rap.matrix.allclose(ref)

    def test_engine_equivalence_reference_vs_process(self):
        a = poisson_2d(12)
        node = NodeConfig(devices=4)
        ref = summa_spgemm(
            a, a, node, AcSpgemmOptions(engine="reference"),
            backend="ac-spgemm",
        )
        proc = summa_spgemm(
            a, a, node, AcSpgemmOptions(engine="process"),
            backend="ac-spgemm",
        )
        assert ref.matrix.exactly_equal(proc.matrix)

    def test_mode_byte_identity_and_run_to_run(self):
        a = random_uniform(100, 100, 7, seed=9)
        opts = AcSpgemmOptions()
        node = NodeConfig(devices=4)
        r1 = summa_spgemm(a, a, node, opts, pipelined=True)
        r2 = summa_spgemm(a, a, node, opts, pipelined=True)
        r3 = summa_spgemm(a, a, node, opts, pipelined=False)
        assert r1.matrix.exactly_equal(r2.matrix)
        # the broadcast mode only changes the modeled timeline
        assert r1.matrix.exactly_equal(r3.matrix)


class TestPipeline:
    def test_overlap_strictly_beats_blocking(self):
        # uniform structure puts receive-dependent tiles on the critical
        # path (a banded matrix at g=2 can hide them: the slowest device
        # owns its own heavy diagonal tiles and never waits on a bus)
        a = random_uniform(100, 100, 6, seed=8)
        res = summa_spgemm(a, a, NodeConfig(devices=4), AcSpgemmOptions())
        assert res.makespan_pipelined < res.makespan_blocking
        assert res.overlap_saved_cycles > 0
        assert res.makespan_cycles == res.makespan_pipelined

    def test_overlap_on_integer_stencil_grid(self):
        # the 3x3 grid exposes off-diagonal rounds on the critical path
        a = poisson_2d(48)
        res = summa_spgemm(a, a, NodeConfig(devices=9), AcSpgemmOptions())
        assert res.makespan_pipelined < res.makespan_blocking

    def test_blocking_mode_reports_its_own_makespan(self):
        a = poisson_2d(16)
        res = summa_spgemm(a, a, NodeConfig(devices=4), AcSpgemmOptions(),
                           pipelined=False)
        assert res.makespan_cycles == res.makespan_blocking

    def test_round_records_colored(self):
        a = poisson_2d(16)
        res = summa_spgemm(a, a, NodeConfig(devices=9), AcSpgemmOptions())
        colors = [rec["color"] for rec in res.round_records]
        assert colors == [0, 1, 0]


class TestReconcile:
    def test_reconcile_passes(self):
        a = random_uniform(80, 80, 6, seed=21)
        res = summa_spgemm(a, a, NodeConfig(devices=4), AcSpgemmOptions())
        recon = res.reconcile()
        assert recon["links_exact"] and recon["counters_exact"]
        assert recon["nnz_conserved"] and recon["stage_cycles_exact"]

    def test_tampering_detected(self):
        a = random_uniform(80, 80, 6, seed=22)
        res = summa_spgemm(a, a, NodeConfig(devices=4), AcSpgemmOptions())
        key = sorted(res.link_counters)[0]
        res.link_counters[key].bytes_sent += 1
        with pytest.raises(SummaReconciliationError):
            res.reconcile()

    def test_stage_tampering_detected(self):
        a = random_uniform(80, 80, 6, seed=23)
        res = summa_spgemm(a, a, NodeConfig(devices=4), AcSpgemmOptions())
        res.stage_cycles["LMUL"] += 1.0
        with pytest.raises(SummaReconciliationError):
            res.reconcile()


class TestMergedTrace:
    def test_merged_trace_reconciles_exactly(self):
        a = random_uniform(90, 90, 6, seed=31)
        res = summa_spgemm(
            a, a, NodeConfig(devices=4),
            AcSpgemmOptions(device_trace=True),
            backend="ac-spgemm",
        )
        view = merged_trace_view(res)
        report = reconcile(view)
        assert report["checked"]
        assert report["stage_cycles_exact"]
        assert report["counters_exact"]
        assert report["sm_busy_exact"]
        assert report["spans_exact"]

    def test_sm_ids_namespaced_disjoint(self):
        a = random_uniform(90, 90, 6, seed=32)
        res = summa_spgemm(
            a, a, NodeConfig(devices=4),
            AcSpgemmOptions(device_trace=True),
            backend="ac-spgemm",
        )
        view = merged_trace_view(res)
        per_dev = res.tile_runs[(0, 0, 0)].result.device_trace.num_sms
        ordinals = set()
        for _, ev in view.device_trace.block_events():
            if ev.sm >= 0:
                ordinals.add(ev.sm // per_dev)
        assert ordinals == {0, 1, 2, 3}

    def test_requires_device_trace(self):
        a = random_uniform(50, 50, 4, seed=33)
        res = summa_spgemm(a, a, NodeConfig(devices=4), AcSpgemmOptions())
        with pytest.raises(ValueError):
            merged_trace_view(res)


class TestFaults:
    def test_degraded_tile_keeps_integer_result_exact(self):
        a = poisson_2d(16)
        opts = AcSpgemmOptions(on_failure="fallback", max_restarts=0)
        plan = FaultPlan.pool_exhaust_at(1)
        single = ac_spgemm(a, a, AcSpgemmOptions())
        res = summa_spgemm(
            a, a, NodeConfig(devices=4), opts,
            backend="ac-spgemm",
            tile_fault_plans={(0, 1, 0): plan},
        )
        assert res.degraded_tiles == [(0, 1, 0)]
        assert res.matrix.exactly_equal(single.matrix)
        res.reconcile()


class TestPerfetto:
    def test_payload_validates_all_grids(self):
        a = random_uniform(80, 80, 5, seed=41)
        for devices in (1, 4):
            res = summa_spgemm(
                a, a, NodeConfig(devices=devices),
                AcSpgemmOptions(device_trace=True),
                backend="ac-spgemm",
            )
            payload = summa_perfetto_payload(res)
            validate_perfetto(payload)
            pids = {e["pid"] for e in payload["traceEvents"]}
            # node narrative plus two rows (spans + SMs) per device
            assert len(pids) == 1 + 2 * devices

"""Parametrised restart-loop tests (§4's pool-growth round trips).

Shrinking the initial chunk pool forces ever more restarts; each
configuration must (a) still produce the right C, (b) report the same
restart count on every engine, and (c) recover to a *bit-identical* C
across engines and versus the roomy-pool run.
"""

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm, spgemm_reference
from repro.gpu import SMALL_DEVICE
from tests.conftest import random_csr

ENGINES = ("reference", "batched", "parallel")

# (chunk_pool_bytes, pool_growth_factor, minimum restarts it must force)
RESTART_CONFIGS = [
    pytest.param(20_000, 2.0, 1, id="1-restart"),
    pytest.param(8_000, 1.6, 3, id="3-restarts"),
    pytest.param(1_000, 1.2, 10, id="10-plus-restarts"),
]


@pytest.fixture(scope="module")
def operand():
    rng = np.random.default_rng(12345)
    return random_csr(rng, 60, 60, 0.1)


@pytest.fixture(scope="module")
def reference_product(operand):
    return spgemm_reference(operand, operand)


def _options(pool, growth):
    return AcSpgemmOptions(
        device=SMALL_DEVICE,
        chunk_pool_bytes=pool,
        pool_growth_factor=growth,
        max_restarts=64,
    )


@pytest.mark.parametrize("pool,growth,min_restarts", RESTART_CONFIGS)
def test_restart_depth_engines_agree(pool, growth, min_restarts, operand,
                                     reference_product):
    opts = _options(pool, growth)
    results = [
        ac_spgemm(operand, operand, opts.with_(engine=e)) for e in ENGINES
    ]
    counts = [r.restarts for r in results]
    assert counts[0] >= min_restarts
    # identical restart counts on every engine
    assert counts == [counts[0]] * len(ENGINES)
    # bit-identical recovered C on every engine
    for r in results[1:]:
        assert r.matrix.exactly_equal(results[0].matrix)
    assert results[0].matrix.allclose(reference_product)


@pytest.mark.parametrize("pool,growth,min_restarts", RESTART_CONFIGS)
def test_restarts_do_not_change_bits(pool, growth, min_restarts, operand):
    """The restarted run must equal the run that never restarted."""
    roomy = ac_spgemm(
        operand, operand,
        AcSpgemmOptions(device=SMALL_DEVICE,
                        chunk_pool_lower_bound_bytes=1 << 22),
    )
    assert roomy.restarts == 0
    starved = ac_spgemm(operand, operand, _options(pool, growth))
    assert starved.restarts >= min_restarts
    assert starved.matrix.exactly_equal(roomy.matrix)


def test_restart_counts_monotone_in_pool_size(operand):
    """A smaller starting pool can never need fewer restarts."""
    counts = [
        ac_spgemm(operand, operand, _options(pool, 1.5)).restarts
        for pool in (40_000, 10_000, 2_000)
    ]
    assert counts == sorted(counts)

"""Unit tests for global load balancing (Algorithm 1)."""

import numpy as np
import pytest

from repro import CSRMatrix
from repro.core import global_load_balance
from repro.gpu import CostMeter, TITAN_XP
from tests.conftest import random_csr


def reference_algorithm1(row_ptr: np.ndarray, nnz_per_block: int, n_blocks: int):
    """Literal per-row loop of Algorithm 1 (the paper's pseudocode)."""
    out = np.zeros(n_blocks, dtype=np.int64)
    for tid in range(row_ptr.shape[0] - 1):
        a, b = int(row_ptr[tid]), int(row_ptr[tid + 1])
        if b == a:
            continue
        block_a = -(-a // nnz_per_block)  # divup
        block_b = (b - 1) // nnz_per_block
        for blk in range(block_a, block_b + 1):
            out[blk] = tid
    return out


@pytest.fixture
def meter():
    return CostMeter(config=TITAN_XP)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("nnz_per_block", [4, 16, 64])
def test_matches_literal_algorithm1(seed, nnz_per_block, meter):
    rng = np.random.default_rng(seed)
    m = random_csr(rng, 50, 50, 0.1)
    glb = global_load_balance(m, nnz_per_block, meter)
    expected = reference_algorithm1(m.row_ptr, nnz_per_block, glb.n_blocks)
    np.testing.assert_array_equal(glb.block_row_starts, expected)


def test_block_count():
    m = CSRMatrix.from_dense(np.ones((10, 10)))
    meter = CostMeter(config=TITAN_XP)
    glb = global_load_balance(m, 16, meter)
    assert glb.n_blocks == -(-100 // 16)


def test_block_row_starts_point_at_covering_rows(rng, meter):
    m = random_csr(rng, 30, 30, 0.2)
    glb = global_load_balance(m, 8, meter)
    for blk in range(glb.n_blocks):
        first_nnz = blk * 8
        row = glb.block_row_starts[blk]
        assert m.row_ptr[row] <= first_nnz < m.row_ptr[row + 1]


def test_row_of_nnz_expansion(rng, meter):
    m = random_csr(rng, 20, 20, 0.3)
    glb = global_load_balance(m, 8, meter)
    assert glb.row_of_nnz.shape[0] == m.nnz
    for i in range(m.rows):
        lo, hi = m.row_ptr[i], m.row_ptr[i + 1]
        assert (glb.row_of_nnz[lo:hi] == i).all()


def test_empty_matrix(meter):
    glb = global_load_balance(CSRMatrix.empty(5, 5), 8, meter)
    assert glb.n_blocks == 0
    assert glb.block_row_starts.shape == (0,)


def test_empty_rows_skipped(meter):
    # rows 0 and 2 empty; all nnz in row 1
    m = CSRMatrix(
        3, 4, np.array([0, 0, 4, 4]), np.array([0, 1, 2, 3]), np.ones(4)
    )
    glb = global_load_balance(m, 2, meter)
    np.testing.assert_array_equal(glb.block_row_starts, [1, 1])


def test_cost_charged(meter, rng):
    m = random_csr(rng, 100, 100, 0.1)
    global_load_balance(m, 16, meter)
    assert meter.cycles > 0
    assert meter.counters.global_bytes_read > 0


def test_rejects_bad_block_size(meter, rng):
    with pytest.raises(ValueError):
        global_load_balance(random_csr(rng, 5, 5, 0.5), 0, meter)

"""Unit tests for scratchpad and device-allocation tracking."""

import pytest

from repro.gpu import (
    AtomicCounter,
    DeviceAllocationTracker,
    Scratchpad,
    ScratchpadOverflow,
    TITAN_XP,
)


class TestScratchpad:
    def test_capacity_enforced(self):
        s = Scratchpad(capacity_bytes=1024)
        s.alloc("a", 1000)
        with pytest.raises(ScratchpadOverflow, match="overflow"):
            s.alloc("b", 100)

    def test_exact_fit(self):
        s = Scratchpad(capacity_bytes=100)
        s.alloc("a", 100)
        assert s.free_bytes == 0

    def test_free_releases(self):
        s = Scratchpad(capacity_bytes=100)
        s.alloc("a", 80)
        s.free("a")
        s.alloc("b", 100)

    def test_duplicate_name_rejected(self):
        s = Scratchpad(capacity_bytes=100)
        s.alloc("a", 10)
        with pytest.raises(ValueError, match="already exists"):
            s.alloc("a", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            Scratchpad(capacity_bytes=10).free("nope")

    def test_alloc_array(self):
        s = Scratchpad.for_device(TITAN_XP)
        s.alloc_array("keys", 2048, 4)
        assert s.used_bytes == 8192

    def test_for_device_uses_config(self):
        s = Scratchpad.for_device(TITAN_XP)
        assert s.capacity_bytes == TITAN_XP.scratchpad_bytes

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Scratchpad(capacity_bytes=10).alloc("a", -1)

    def test_reset(self):
        s = Scratchpad(capacity_bytes=10)
        s.alloc("a", 10)
        s.reset()
        assert s.used_bytes == 0


class TestAllocationTracker:
    def test_peak_tracking(self):
        t = DeviceAllocationTracker()
        t.alloc("pool", 100)
        t.alloc("pool", 50)
        t.free("pool", 120)
        assert t.allocated["pool"] == 30
        assert t.peak["pool"] == 150
        assert t.bytes_of("pool") == 150

    def test_over_free_rejected(self):
        t = DeviceAllocationTracker()
        t.alloc("x", 10)
        with pytest.raises(ValueError, match="freeing"):
            t.free("x", 20)

    def test_totals(self):
        t = DeviceAllocationTracker()
        t.alloc("a", 10)
        t.alloc("b", 20)
        assert t.total_allocated() == 30
        assert t.peak_total() == 30


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        c = AtomicCounter()
        assert c.fetch_add(5) == 0
        assert c.fetch_add(3) == 5
        assert c.load() == 8
        assert c.operations == 2

    def test_exchange(self):
        c = AtomicCounter(value=7)
        assert c.exchange(2) == 7
        assert c.load() == 2

"""Tests for the additional baselines: BalancedHash and the MKL-like
parallel CPU."""

import numpy as np
import pytest

from repro import count_intermediate_products, spgemm_reference
from repro.baselines import BalancedHash, GustavsonCPU, MklLikeCPU, make_algorithm
from repro.matrices import random_uniform
from tests.conftest import random_csr


class TestBalancedHash:
    def test_registered(self):
        assert make_algorithm("balanced-hash").name == "balanced-hash"

    @pytest.mark.parametrize("seed", range(3))
    def test_correct(self, seed):
        rng = np.random.default_rng(seed)
        a = random_csr(rng, 50, 50, 0.1)
        run = BalancedHash().multiply(a, a)
        assert run.matrix.allclose(spgemm_reference(a, a))

    def test_not_bit_stable(self, rng):
        a = random_csr(rng, 60, 60, 0.15)
        alg = BalancedHash()
        assert not alg.bit_stable
        rs = [alg.multiply(a, a, scheduler_seed=s).matrix for s in range(4)]
        assert any(not rs[0].exactly_equal(r) for r in rs[1:])

    def test_local_only_memory(self, rng):
        """BalancedHash avoids global hash tables: extra memory stays
        tiny even for rows that would spill in the dual-hash designs."""
        a = random_uniform(600, 600, 40, seed=1)
        bh = BalancedHash().multiply(a, a)
        cu = make_algorithm("cusparse").multiply(a, a)
        assert bh.extra_memory_bytes <= cu.extra_memory_bytes

    def test_stage_cycles(self, rng):
        a = random_csr(rng, 40, 40, 0.1)
        run = BalancedHash().multiply(a, a)
        assert {"estimate", "symbolic", "numeric", "output"} <= set(
            run.stage_cycles
        )


class TestMklLikeCPU:
    def test_registered(self):
        assert make_algorithm("cpu-mkl").name == "cpu-mkl"

    def test_correct_and_stable(self, rng):
        a = random_csr(rng, 50, 50, 0.12)
        alg = MklLikeCPU()
        r1 = alg.multiply(a, a, scheduler_seed=1)
        r2 = alg.multiply(a, a, scheduler_seed=9)
        assert r1.matrix.allclose(spgemm_reference(a, a))
        assert r1.matrix.exactly_equal(r2.matrix)

    def test_faster_than_sequential_cpu(self):
        """16 threads must beat the single-core Gustavson on a matrix
        large enough to amortise the parallel-section overhead."""
        a = random_uniform(3000, 3000, 8, seed=2)
        seq = GustavsonCPU().multiply(a, a)
        par = MklLikeCPU().multiply(a, a)
        assert par.seconds < seq.seconds / 2

    def test_gpu_beats_mkl_on_large_input(self):
        """bhSparse reports ~2.2-2.5x GPU speedup over MKL; our AC should
        clear the parallel CPU by at least that on a large sparse case
        whose working set exceeds the CPU caches."""
        a = random_uniform(20000, 20000, 6, seed=3)
        temp = count_intermediate_products(a, a)
        mkl = MklLikeCPU().multiply(a, a)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        assert ac.seconds < mkl.seconds
        assert ac.gflops(temp) / mkl.gflops(temp) > 1.5

    def test_mkl_wins_tiny_input(self):
        a = random_uniform(150, 150, 4, seed=4)
        mkl = MklLikeCPU().multiply(a, a)
        ac = make_algorithm("ac-spgemm").multiply(a, a)
        assert mkl.seconds < ac.seconds

    def test_uses_cpu_clock(self, rng):
        a = random_csr(rng, 30, 30, 0.2)
        assert MklLikeCPU().multiply(a, a).clock_ghz == pytest.approx(2.2)

"""Unit tests for matrix/product statistics."""

import numpy as np

from repro import CSRMatrix, matrix_stats, squared_operands
from repro.sparse import (
    HIGHLY_SPARSE_SPLIT,
    is_highly_sparse,
    product_stats,
    spgemm_reference,
    transpose,
)
from tests.conftest import random_csr


def test_matrix_stats_fields(rng):
    m = random_csr(rng, 50, 40, 0.1)
    st = matrix_stats(m)
    assert st.rows == 50 and st.cols == 40
    assert st.nnz == m.nnz
    assert st.min_row_length <= st.mean_row_length <= st.max_row_length
    assert abs(st.mean_row_length - m.nnz / 50) < 1e-12


def test_highly_sparse_split():
    sparse = CSRMatrix.identity(100)
    assert is_highly_sparse(sparse)
    dense = CSRMatrix.from_dense(np.ones((50, 50)))
    assert not is_highly_sparse(dense)
    assert HIGHLY_SPARSE_SPLIT == 42.0


def test_squared_operands_square(rng):
    m = random_csr(rng, 20, 20, 0.2)
    a, b = squared_operands(m)
    assert a is m and b is m


def test_squared_operands_nonsquare(rng):
    m = random_csr(rng, 10, 25, 0.2)
    a, b = squared_operands(m)
    assert a is m
    assert b.exactly_equal(transpose(m))


def test_product_stats(rng):
    m = random_csr(rng, 30, 30, 0.15)
    c = spgemm_reference(m, m)
    ps = product_stats(m, m, c)
    assert ps.temp_products > 0
    assert ps.flops == 2 * ps.temp_products
    assert ps.compaction_factor >= 1.0
    assert ps.c.nnz == c.nnz


def test_product_stats_empty():
    e = CSRMatrix.empty(4, 4)
    ps = product_stats(e, e, spgemm_reference(e, e))
    assert ps.temp_products == 0 and ps.compaction_factor == 0.0

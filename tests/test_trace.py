"""Tests for the execution tracer (the artifact's Debug mode)."""

import json

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.bench import TraceRecorder
from repro.gpu import SMALL_DEVICE
from repro.gpu.scheduler import schedule_blocks
from repro.matrices import random_uniform
from tests.conftest import random_csr


class TestRecorder:
    def test_clock_advances(self):
        t = TraceRecorder()
        t.record_kernel("ESC", schedule_blocks([10.0, 20.0], 2), [10.0, 20.0])
        t.record_span("CC", 5.0)
        assert t.total_cycles() == 25.0
        assert len(t.kernels) == 2
        assert t.kernels[1].start_cycle == 20.0

    def test_block_statistics(self):
        t = TraceRecorder()
        t.record_kernel("ESC", schedule_blocks([1.0, 3.0, 2.0], 2), [1.0, 3.0, 2.0])
        k = t.kernels[0]
        assert (k.min_block_cycles, k.max_block_cycles) == (1.0, 3.0)
        assert k.mean_block_cycles == pytest.approx(2.0)

    def test_stage_totals(self):
        t = TraceRecorder()
        t.record_span("GLB", 5.0)
        t.record_span("ESC", 7.0)
        t.record_span("ESC", 3.0)
        assert t.stage_totals() == {"GLB": 5.0, "ESC": 10.0}

    def test_points(self):
        t = TraceRecorder()
        t.record_span("ESC", 4.0)
        t.record_point("restart", detail="grown")
        assert t.points[0].cycle == 4.0

    def test_summary_mentions_everything(self):
        t = TraceRecorder()
        t.record_span("GLB", 100.0)
        t.record_point("restart")
        s = t.summary()
        assert "GLB" in s and "restart" in s


class TestChromeExport:
    def test_valid_json_with_events(self, tmp_path):
        t = TraceRecorder()
        t.record_kernel("ESC", schedule_blocks([10.0], 2), [10.0])
        t.record_point("restart")
        p = t.to_chrome_trace(tmp_path / "trace.json")
        data = json.loads(p.read_text())
        names = [e["name"] for e in data["traceEvents"]]
        assert "ESC#0" in names and "restart" in names
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert complete and all("dur" in e for e in complete)

    def test_zero_duration_clamp_never_overlaps(self):
        """Back-to-back zero-cycle kernels on one stage row must not
        overlap after the minimum-visible-duration widening (the old
        unconditional ``max(dur, 1e-3)`` clamp produced corrupt nested
        slices)."""
        from repro.obs import validate_perfetto

        t = TraceRecorder()
        t.record_span("ESC", 0.0)
        t.record_span("ESC", 0.0)
        t.record_span("ESC", 10.0)
        events = t.to_events()
        validate_perfetto({"traceEvents": events})
        xs = sorted(
            (e for e in events if e["ph"] == "X"), key=lambda e: e["ts"]
        )
        for prev, nxt in zip(xs, xs[1:]):
            assert prev["ts"] + prev["dur"] <= nxt["ts"] + 1e-12

    def test_zero_duration_widened_when_room(self):
        t = TraceRecorder()
        t.record_span("ESC", 0.0)
        t.record_span("GLB", 1e6)  # advances the clock between ESC slices
        t.record_span("ESC", 5.0)
        first = [e for e in t.to_events() if e["ph"] == "X"][0]
        assert first["name"] == "ESC#0"
        assert first["dur"] == TraceRecorder.MIN_VISIBLE_DUR_US

    def test_thread_and_process_metadata(self):
        t = TraceRecorder()
        t.record_span("GLB", 5.0)
        t.record_span("ESC", 5.0)
        t.record_point("restart")
        events = t.to_events()
        meta = [e for e in events if e["ph"] == "M"]
        by_name = {(e["name"], e["tid"]): e["args"]["name"] for e in meta}
        assert by_name[("process_name", 0)] == "simulated device"
        assert by_name[("thread_name", 0)] == "host events"
        assert by_name[("thread_name", 1)] == "stage GLB"
        assert by_name[("thread_name", 2)] == "stage ESC"
        # every X/i event lands on a named row
        named_tids = {tid for (name, tid) in by_name if name == "thread_name"}
        assert {e["tid"] for e in events if e["ph"] != "M"} <= named_tids


class TestPipelineIntegration:
    def test_trace_attached_and_consistent(self, rng):
        a = random_csr(rng, 60, 60, 0.1)
        opts = AcSpgemmOptions(
            device=SMALL_DEVICE,
            chunk_pool_lower_bound_bytes=1 << 20,
            collect_trace=True,
        )
        res = ac_spgemm(a, a, opts)
        assert res.trace is not None
        assert res.trace.total_cycles() == pytest.approx(res.total_cycles)
        # per-stage totals match the result's stage accounting
        totals = res.trace.stage_totals()
        for stage, cycles in res.stage_cycles.items():
            assert totals.get(stage, 0.0) == pytest.approx(cycles), stage

    def test_trace_off_by_default(self, rng):
        a = random_csr(rng, 30, 30, 0.1)
        res = ac_spgemm(
            a, a, AcSpgemmOptions(device=SMALL_DEVICE,
                                  chunk_pool_lower_bound_bytes=1 << 20)
        )
        assert res.trace is None

    def test_restart_events_recorded(self):
        a = random_uniform(300, 300, 6, seed=1)
        opts = AcSpgemmOptions(
            chunk_pool_bytes=20000, pool_growth_factor=2.0, collect_trace=True
        )
        res = ac_spgemm(a, a, opts)
        assert res.restarts > 0
        restart_points = [p for p in res.trace.points if p.label == "restart"]
        assert len(restart_points) == res.restarts

"""Adversarial inputs for the iterative merge cut selection."""

import numpy as np
import pytest

from repro import AcSpgemmOptions
from repro.core import Chunk, ChunkPool, RowChunkTracker
from repro.core.merge_path import PathMergeBlock
from repro.core.merge_search import SearchMergeBlock
from repro.gpu import BlockContext, CostMeter, SMALL_DEVICE


@pytest.fixture
def options():
    return AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)


def tracker_with_row(parts, meter, row=0):
    tracker = RowChunkTracker(n_rows=4)
    for i, (cols, vals) in enumerate(parts):
        cols = np.asarray(cols, dtype=np.int64)
        chunk = Chunk(
            order_key=(i, 0),
            kind="data",
            first_row=row,
            last_row=row,
            rows=np.full(cols.shape[0], row, dtype=np.int64),
            cols=cols,
            vals=np.asarray(vals, dtype=np.float64),
        )
        tracker.insert_chunk(chunk, None, meter)
    return tracker


def run_to_completion(block, tracker, options, pool_bytes=1 << 20):
    pool = ChunkPool(capacity_bytes=pool_bytes)
    ctx = BlockContext(config=options.device, block_id=0)
    assert block.run(ctx, tracker, pool, None, options)
    return tracker


def merged_values(tracker, row, n_cols):
    out = np.zeros(n_cols)
    for chunk in tracker.chunks_for(row):
        seg = chunk.row_segment(row)
        np.add.at(out, chunk.cols[seg], chunk.vals[seg])
    return out


@pytest.mark.parametrize("merge_cls", [SearchMergeBlock, PathMergeBlock])
def test_bimodal_column_clusters(merge_cls, options):
    """Columns concentrated in two far-apart clusters: uniform range
    sampling lands almost entirely in the empty gap, forcing narrowing
    (Search Merge) or refinement (Path Merge)."""
    meter = CostMeter(config=options.device)
    cap = options.device.elements_per_block
    rng = np.random.default_rng(0)
    n_cols = 1 << 20
    lo_cluster = np.sort(rng.choice(2000, size=cap, replace=False))
    hi_cluster = np.sort(
        rng.choice(2000, size=cap, replace=False) + (n_cols - 2100)
    )
    parts = [
        (lo_cluster, rng.random(cap)),
        (hi_cluster, rng.random(cap)),
        (np.concatenate([lo_cluster[:50], hi_cluster[:50]]),
         rng.random(100)),
    ]
    expected = np.zeros(n_cols)
    for cols, vals in parts:
        np.add.at(expected, cols, vals)
    tracker = tracker_with_row(parts, meter)
    run_to_completion(merge_cls(block_index=0, row=0), tracker, options)
    np.testing.assert_allclose(merged_values(tracker, 0, n_cols), expected)


@pytest.mark.parametrize("merge_cls", [SearchMergeBlock, PathMergeBlock])
def test_single_hot_column_among_many(merge_cls, options):
    """Every chunk holds the same hot column plus distinct filler: the
    cut must always carry all duplicates of the hot column together."""
    meter = CostMeter(config=options.device)
    cap = options.device.elements_per_block
    hot = 5000
    parts = []
    rng = np.random.default_rng(1)
    for i in range(6):
        filler = np.sort(
            rng.choice(4000, size=cap - 1, replace=False) + i * 4500
        )
        cols = np.sort(np.append(filler, hot))
        parts.append((cols, rng.random(cap)))
    n_cols = 6 * 4500 + 5000
    expected = np.zeros(n_cols)
    for cols, vals in parts:
        np.add.at(expected, cols, vals)
    tracker = tracker_with_row(parts, meter)
    run_to_completion(merge_cls(block_index=0, row=0), tracker, options)
    got = merged_values(tracker, 0, n_cols)
    np.testing.assert_allclose(got, expected)
    # the hot column appears exactly once across the produced chunks
    appearances = sum(
        int(np.count_nonzero(c.cols[c.row_segment(0)] == hot))
        for c in tracker.chunks_for(0)
    )
    assert appearances == 1


@pytest.mark.parametrize("merge_cls", [SearchMergeBlock, PathMergeBlock])
def test_identical_chunks(merge_cls, options):
    """All chunks are copies of each other: maximal duplication, the
    compaction factor equals the chunk count."""
    meter = CostMeter(config=options.device)
    cap = options.device.elements_per_block
    cols = np.arange(0, 3 * cap, 3, dtype=np.int64)
    parts = [(cols, np.full(cols.shape[0], 1.0)) for _ in range(4)]
    tracker = tracker_with_row(parts, meter)
    run_to_completion(merge_cls(block_index=0, row=0), tracker, options)
    got = merged_values(tracker, 0, 3 * cap)
    expected = np.zeros(3 * cap)
    expected[cols] = 4.0
    np.testing.assert_allclose(got, expected)
    assert tracker.row_counts[0] == cols.shape[0]


def test_search_merge_narrowing_terminates(options):
    """A geometric column distribution (dense near zero, exponentially
    sparse above) stresses the sub-sampling loop."""
    meter = CostMeter(config=options.device)
    rng = np.random.default_rng(2)
    cap = options.device.elements_per_block
    cols = np.unique(
        (np.exp(rng.uniform(0, 14, size=3 * cap))).astype(np.int64)
    )
    parts = [
        (cols, rng.random(cols.shape[0])),
        (cols[::2], rng.random(cols[::2].shape[0])),
        (cols[1::2], rng.random(cols[1::2].shape[0])),
    ]
    n_cols = int(cols.max()) + 1
    tracker = tracker_with_row(parts, meter)
    run_to_completion(SearchMergeBlock(block_index=0, row=0), tracker, options)
    expected = np.zeros(n_cols)
    for c, v in parts:
        np.add.at(expected, c, v)
    np.testing.assert_allclose(merged_values(tracker, 0, n_cols), expected)

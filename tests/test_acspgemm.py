"""End-to-end tests of the AC-SpGEMM pipeline."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm, spgemm_reference, transpose
from repro.core import STAGE_KEYS
from repro.gpu import SMALL_DEVICE, TITAN_XP
from repro.matrices import generators as g
from tests.conftest import random_csr


@pytest.fixture
def opts():
    return AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_square(self, seed, opts):
        rng = np.random.default_rng(seed)
        a = random_csr(rng, 70, 70, 0.07)
        res = ac_spgemm(a, a, opts)
        assert res.matrix.allclose(spgemm_reference(a, a))

    @pytest.mark.parametrize("seed", range(3))
    def test_rectangular_chain(self, seed, opts):
        rng = np.random.default_rng(seed + 100)
        a = random_csr(rng, 30, 50, 0.1)
        b = random_csr(rng, 50, 20, 0.1)
        res = ac_spgemm(a, b, opts)
        assert res.matrix.allclose(spgemm_reference(a, b))

    def test_a_at_for_nonsquare(self, opts, rng):
        a = random_csr(rng, 40, 90, 0.08)
        res = ac_spgemm(a, transpose(a), opts)
        assert res.matrix.allclose(spgemm_reference(a, transpose(a)))

    @pytest.mark.parametrize(
        "gen",
        [
            lambda: g.banded(150, 4, seed=1),
            lambda: g.stencil_2d(15, seed=2),
            lambda: g.power_law(300, 4, seed=3),
            lambda: g.road_network(400, seed=4),
            lambda: g.block_dense(120, 25, n_blocks=2, seed=5),
            lambda: g.bipartite_design(30, 200, 40, seed=6),
        ],
    )
    def test_generator_families(self, gen, opts):
        from repro.sparse import squared_operands

        a, b = squared_operands(gen())
        res = ac_spgemm(a, b, opts)
        assert res.matrix.allclose(spgemm_reference(a, b))

    def test_titan_config(self, rng):
        a = random_csr(rng, 120, 120, 0.08)
        res = ac_spgemm(a, a, AcSpgemmOptions(chunk_pool_lower_bound_bytes=1 << 22))
        assert res.matrix.allclose(spgemm_reference(a, a))

    def test_empty_inputs(self, opts):
        res = ac_spgemm(CSRMatrix.empty(4, 5), CSRMatrix.empty(5, 6), opts)
        assert res.matrix.shape == (4, 6) and res.matrix.nnz == 0

    def test_dimension_mismatch(self, opts, rng):
        a = random_csr(rng, 4, 5, 0.5)
        with pytest.raises(ValueError, match="inner dimensions"):
            ac_spgemm(a, a, opts)

    def test_float32(self, opts, rng):
        a = random_csr(rng, 60, 60, 0.08)
        res = ac_spgemm(a, a, opts.with_(value_dtype=np.float32))
        assert res.matrix.dtype == np.float32
        ref = spgemm_reference(a.astype(np.float32), a.astype(np.float32))
        assert res.matrix.allclose(ref, rtol=1e-4)

    def test_output_is_canonical(self, opts, rng):
        from repro.sparse import validate_csr

        a = random_csr(rng, 50, 50, 0.1)
        validate_csr(ac_spgemm(a, a, opts).matrix)


class TestBitStability:
    def test_repeated_runs_identical(self, opts, rng):
        a = random_csr(rng, 80, 80, 0.08)
        r1 = ac_spgemm(a, a, opts)
        r2 = ac_spgemm(a, a, opts)
        assert r1.matrix.exactly_equal(r2.matrix)
        assert r1.stage_cycles == r2.stage_cycles
        assert r1.total_cycles == r2.total_cycles

    def test_stable_across_device_geometry(self, rng):
        """Different block geometry may change accumulation grouping, but
        each configuration must be self-consistent."""
        a = random_csr(rng, 60, 60, 0.1)
        for device in (SMALL_DEVICE, TITAN_XP):
            o = AcSpgemmOptions(device=device, chunk_pool_lower_bound_bytes=1 << 20)
            assert ac_spgemm(a, a, o).matrix.exactly_equal(
                ac_spgemm(a, a, o).matrix
            )


class TestAccounting:
    def test_stage_keys_complete(self, opts, rng):
        a = random_csr(rng, 50, 50, 0.1)
        res = ac_spgemm(a, a, opts)
        assert set(res.stage_cycles) == set(STAGE_KEYS)
        assert res.total_cycles > 0
        assert res.seconds > 0
        fr = res.stage_fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_memory_report(self, opts, rng):
        a = random_csr(rng, 50, 50, 0.1)
        res = ac_spgemm(a, a, opts)
        m = res.memory
        assert m.chunk_used_bytes <= m.chunk_pool_bytes
        assert m.output_bytes == res.matrix.nbytes()
        assert 0 < m.used_fraction <= 1
        assert m.helper_bytes > 0

    def test_flop_counter_matches_temp(self, opts, rng):
        from repro.sparse import count_intermediate_products

        a = random_csr(rng, 40, 40, 0.12)
        res = ac_spgemm(a, a, opts)
        temp = count_intermediate_products(a, a)
        assert res.counters.flops == 2 * temp

    def test_multiprocessor_load_in_range(self, opts, rng):
        a = random_csr(rng, 80, 80, 0.1)
        res = ac_spgemm(a, a, opts)
        assert 0.0 <= res.multiprocessor_load <= 1.0


class TestRestarts:
    def test_tiny_pool_restarts_and_is_correct(self, rng):
        a = random_csr(rng, 60, 60, 0.1)
        opts = AcSpgemmOptions(
            device=SMALL_DEVICE, chunk_pool_bytes=600, pool_growth_factor=1.5
        )
        res = ac_spgemm(a, a, opts)
        assert res.restarts > 0
        assert res.matrix.allclose(spgemm_reference(a, a))

    def test_restarts_do_not_change_bits(self, rng):
        a = random_csr(rng, 60, 60, 0.1)
        small = AcSpgemmOptions(
            device=SMALL_DEVICE, chunk_pool_bytes=600, pool_growth_factor=1.5
        )
        big = AcSpgemmOptions(
            device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 22
        )
        r_small = ac_spgemm(a, a, small)
        r_big = ac_spgemm(a, a, big)
        assert r_small.restarts > 0 and r_big.restarts == 0
        assert r_small.matrix.exactly_equal(r_big.matrix)

    def test_restart_limit(self, rng):
        from repro import RestartBudgetExceeded

        a = random_csr(rng, 60, 60, 0.15)
        opts = AcSpgemmOptions(
            device=SMALL_DEVICE,
            chunk_pool_bytes=200,
            pool_growth_factor=1.01,
            max_restarts=1,
        )
        with pytest.raises(RestartBudgetExceeded, match="restart limit") as ei:
            ac_spgemm(a, a, opts)
        # typed context: stage, first pending block and restart count
        assert ei.value.stage == "ESC"
        assert ei.value.block_id is not None
        assert ei.value.restarts == 1


class TestOptionsAblations:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enable_keep_last_row": False},
            {"enable_bit_reduction": False},
            {"enable_long_row_handling": False},
            {"multi_merge_max_chunks": 3, "path_merge_max_chunks": 4},
        ],
    )
    def test_all_variants_correct(self, kwargs, opts, rng):
        a = random_csr(rng, 70, 70, 0.08)
        res = ac_spgemm(a, a, opts.with_(**kwargs))
        assert res.matrix.allclose(spgemm_reference(a, a))

    def test_option_validation(self):
        with pytest.raises(ValueError):
            AcSpgemmOptions(value_dtype=np.int32)
        with pytest.raises(ValueError):
            AcSpgemmOptions(multi_merge_max_chunks=1)
        with pytest.raises(ValueError):
            AcSpgemmOptions(path_merge_max_chunks=1)
        with pytest.raises(ValueError):
            AcSpgemmOptions(chunk_meta_factor=0.5)
        with pytest.raises(ValueError):
            AcSpgemmOptions(pool_growth_factor=1.0)

"""Tests for the backend registry, the hash engines and the selector.

The contract being pinned down (docs/ARCHITECTURE.md §10):

* the registry enumerates deterministically, hands out fresh instances
  and rejects duplicate names;
* every registered engine — including both simulated hash engines —
  produces a device trace that reconciles **exactly** against stage
  cycles, counters and spans (zero tolerance, the same invariant the
  AC-SpGEMM pipeline honours);
* every engine advertising ``bit_stable=True`` is byte-identical to the
  reference pipeline on the engine-equivalence shape sweep;
* the adaptive selector makes well-defined decisions on degenerate
  inputs and surfaces its routing outcome end to end (result,
  RunRecord, campaign checkpoint);
* the OCEAN-style sampling estimator is byte-stable across processes.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm
from repro.backends import (
    AdaptiveSelector,
    available_backends,
    collect_features,
    get_backend,
    is_backend,
    register_backend,
    run_backend,
)
from repro.backends.base import Backend
from repro.matrices import generators as g
from repro.obs.analyze import reconcile, stage_leaf_spans
from repro.sparse.ops import spgemm_reference
from repro.sparse.stats import squared_operands
from tests.conftest import random_csr

ENGINES = ("ac-spgemm", "adaptive", "hash-spgemm", "hashmap-spgemm")


def _traced_options(**kw) -> AcSpgemmOptions:
    return AcSpgemmOptions(device_trace=True, **kw)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_enumeration_is_deterministic_and_complete(self):
        names = available_backends()
        assert names == tuple(sorted(names))
        for name in ENGINES:
            assert name in names
            assert is_backend(name)
        assert not is_backend("nope")

    def test_instances_are_fresh(self):
        assert get_backend("adaptive") is not get_backend("adaptive")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="adaptive"):
            get_backend("no-such-engine")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):

            @register_backend
            class Dup(Backend):  # noqa: F811 - the point of the test
                name = "adaptive"

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError):

            @register_backend
            class NoName(Backend):
                name = "abstract"


# ---------------------------------------------------------------------------
# exact reconciliation of every engine
# ---------------------------------------------------------------------------


class TestReconciliation:
    @pytest.mark.parametrize("name", ENGINES)
    def test_uniform(self, name):
        a, b = squared_operands(g.random_uniform(250, 250, 12, seed=81001))
        res = run_backend(name, a, b, _traced_options())
        summary = reconcile(res)
        assert summary["checked"]
        assert summary["counters_exact"] and summary["spans_exact"]

    @pytest.mark.parametrize("name", ENGINES)
    def test_skewed(self, name):
        m = g.long_row_matrix(
            300, 2.5, n_long_rows=2, long_row_len=150, seed=81002
        )
        a, b = squared_operands(m)
        res = run_backend(name, a, b, _traced_options())
        assert reconcile(res)["checked"]

    @pytest.mark.parametrize("name", ENGINES)
    def test_result_is_correct(self, name):
        a, b = squared_operands(g.power_law(300, 2.8, max_row_len=40, seed=81003))
        res = run_backend(name, a, b, AcSpgemmOptions())
        ref = spgemm_reference(a, b)
        assert res.matrix.allclose(ref, rtol=1e-10)

    @pytest.mark.parametrize("name", ENGINES)
    def test_leaf_spans_match_records(self, name):
        a, b = squared_operands(g.stencil_2d(15, seed=81004))
        res = run_backend(name, a, b, _traced_options())
        leaves = stage_leaf_spans(res.spans)
        assert len(leaves) == len(res.device_trace.records)

    @pytest.mark.parametrize("name", ENGINES)
    def test_trace_does_not_perturb_result(self, name):
        a, b = squared_operands(g.random_uniform(200, 200, 8, seed=81005))
        plain = run_backend(name, a, b, AcSpgemmOptions())
        traced = run_backend(name, a, b, _traced_options())
        assert plain.matrix.values.tobytes() == traced.matrix.values.tobytes()
        assert plain.counters == traced.counters
        assert plain.stage_cycles == traced.stage_cycles


# ---------------------------------------------------------------------------
# bit-stability property: advertised => byte-identical to reference
# ---------------------------------------------------------------------------


class TestBitStableParity:
    def _cases(self, rng):
        yield squared_operands(g.random_uniform(220, 220, 9, seed=81010))
        yield squared_operands(
            g.long_row_matrix(250, 2.0, n_long_rows=2, long_row_len=120, seed=81011)
        )
        sparse = random_csr(rng, 200, 200, 0.01)
        yield sparse, sparse
        dense = random_csr(rng, 70, 70, 0.5)
        yield dense, dense

    def test_every_bit_stable_engine_matches_reference(self, rng):
        stable = [n for n in available_backends() if get_backend(n).bit_stable]
        assert "ac-spgemm" in stable
        for a, b in self._cases(rng):
            ref = ac_spgemm(a, b)
            for name in stable:
                res = run_backend(name, a, b, AcSpgemmOptions())
                assert (
                    res.matrix.row_ptr.tobytes() == ref.matrix.row_ptr.tobytes()
                    and res.matrix.col_idx.tobytes()
                    == ref.matrix.col_idx.tobytes()
                    and res.matrix.values.tobytes()
                    == ref.matrix.values.tobytes()
                ), f"{name} advertises bit_stable but diverges from reference"

    def test_hash_engines_declare_instability(self):
        assert not get_backend("hash-spgemm").bit_stable
        assert not get_backend("hashmap-spgemm").bit_stable
        assert not get_backend("adaptive").bit_stable


# ---------------------------------------------------------------------------
# selector decisions and degenerate inputs
# ---------------------------------------------------------------------------


def _empty(rows: int, cols: int) -> CSRMatrix:
    return CSRMatrix(
        rows=rows,
        cols=cols,
        row_ptr=np.zeros(rows + 1, dtype=np.int64),
        col_idx=np.zeros(0, dtype=np.int64),
        values=np.zeros(0, dtype=np.float64),
    )


class TestSelectorDegenerate:
    def test_zero_by_n(self):
        a = _empty(0, 40)
        b = random_csr(np.random.default_rng(1), 40, 30, 0.2)
        res = run_backend("adaptive", a, b, _traced_options())
        assert res.matrix.shape == (0, 30)
        assert res.dispatched_to == "ac-spgemm"  # nothing to do: tie-break
        assert reconcile(res)["checked"]

    def test_n_by_zero(self):
        a = random_csr(np.random.default_rng(2), 30, 40, 0.2)
        b = _empty(40, 0)
        res = run_backend("adaptive", a, b, _traced_options())
        assert res.matrix.shape == (30, 0)
        assert res.matrix.nnz == 0
        assert reconcile(res)["checked"]

    def test_zero_nnz_operands(self):
        a, b = _empty(25, 25), _empty(25, 25)
        res = run_backend("adaptive", a, b, _traced_options())
        assert res.matrix.nnz == 0
        assert res.dispatched_to == "ac-spgemm"
        assert "SEL" in res.stage_cycles
        assert reconcile(res)["checked"]

    def test_single_all_dense_row(self):
        rows = 60
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        row_ptr[1:] = rows  # row 0 holds every column, the rest are empty
        a = CSRMatrix(
            rows=rows,
            cols=rows,
            row_ptr=row_ptr,
            col_idx=np.arange(rows, dtype=np.int64),
            values=np.ones(rows),
        )
        res = run_backend("adaptive", a, a, _traced_options())
        assert res.dispatched_to in ("ac-spgemm", "hash-spgemm", "hashmap-spgemm")
        ref = spgemm_reference(a, a)
        assert res.matrix.allclose(ref, rtol=1e-10)
        assert reconcile(res)["checked"]

    def test_b_cols_zero_features_are_finite(self):
        a = random_csr(np.random.default_rng(3), 20, 15, 0.3)
        b = _empty(15, 0)
        f = collect_features(a, b)
        assert f.span_fraction == 0.0
        assert f.temp_products == 0
        assert np.isfinite(f.compaction)

    def test_selection_matches_prediction_argmin(self):
        a, b = squared_operands(g.random_uniform(280, 280, 15, seed=81020))
        sel = AdaptiveSelector()
        f = collect_features(a, b)
        preds = sel.predictions(f)
        assert sel.select(f) == min(preds, key=preds.get)

    def test_sel_stage_rides_along(self):
        a, b = squared_operands(g.random_uniform(150, 150, 6, seed=81021))
        res = run_backend("adaptive", a, b, _traced_options())
        assert list(res.stage_cycles)[0] == "SEL"
        assert res.stage_cycles["SEL"] > 0
        # the root span records the routing outcome
        assert res.spans.attrs["dispatched_to"] == res.dispatched_to


# ---------------------------------------------------------------------------
# prediction accuracy: the op-list replay keeps hash engines honest
# ---------------------------------------------------------------------------


class TestPredictionAccuracy:
    @pytest.mark.parametrize("name", ("hash-spgemm", "hashmap-spgemm"))
    def test_hash_engine_prediction_within_five_percent(self, name):
        a, b = squared_operands(g.random_uniform(300, 300, 14, seed=81030))
        f = collect_features(a, b)
        opts = AcSpgemmOptions()
        predicted = get_backend(name).predict_cycles(f, opts)
        actual = run_backend(name, a, b, opts).total_cycles
        assert abs(predicted - actual) / actual < 0.05


# ---------------------------------------------------------------------------
# sampling estimator (satellite: seed handling + cross-process stability)
# ---------------------------------------------------------------------------


_SUBPROCESS_SNIPPET = """
import sys
import numpy as np
from repro.core.estimate_sampling import sampled_output_estimate
from repro.matrices import generators as g
from repro.sparse.stats import squared_operands

a, b = squared_operands(g.random_uniform(240, 240, 10, seed=81040))
vals = [sampled_output_estimate(a, b, seed=s) for s in (0, 7, 123)]
gen = np.random.default_rng(7)
vals.append(sampled_output_estimate(a, b, seed=gen))
print(repr(vals))
"""


class TestSamplingEstimator:
    def test_seed_like_accepts_generator(self):
        from repro.core.estimate_sampling import sampled_output_estimate

        a, b = squared_operands(g.random_uniform(200, 200, 8, seed=81041))
        by_int = sampled_output_estimate(a, b, seed=9)
        by_gen = sampled_output_estimate(a, b, seed=np.random.default_rng(9))
        assert by_int == by_gen

    def test_cross_process_byte_stability(self):
        outs = [
            subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SNIPPET],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        assert outs[0] == outs[1]
        assert "[" in outs[0]

    def test_estimator_option_reaches_pipeline(self):
        a, b = squared_operands(g.random_uniform(220, 220, 10, seed=81042))
        res = ac_spgemm(a, b, _traced_options(estimator="sampling"))
        assert reconcile(res)["checked"]
        # the sampled symbolic pass is a visible, accounted device pass
        leaves = [s.name for s in stage_leaf_spans(res.spans)]
        assert "estimate.sample" in leaves
        # and the answer is unchanged from the uniform-estimator run
        ref = ac_spgemm(a, b)
        assert res.matrix.values.tobytes() == ref.matrix.values.tobytes()

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError):
            AcSpgemmOptions(estimator="psychic")


# ---------------------------------------------------------------------------
# hybrid probe accounting (satellite fix)
# ---------------------------------------------------------------------------


class TestHybridProbeAccounting:
    def test_b_cols_zero_routes_to_esc(self):
        from repro.baselines.hybrid import HybridAdaptive

        hy = HybridAdaptive()
        a = random_csr(np.random.default_rng(4), 30, 20, 0.4)
        b = _empty(20, 0)
        assert hy.choose(a, b) == "esc"

    def test_probe_counts_actual_sampled_reads(self):
        from repro.baselines.hybrid import HybridAdaptive

        hy = HybridAdaptive()
        dense = random_csr(np.random.default_rng(5), 90, 90, 0.7)
        decision, sampled_reads = hy._inspect(dense, dense)
        # dense rows: every sampled row contributes ptr pair + 2 ids
        step = max(1, dense.rows // hy.structure_sample_rows)
        n_sampled = len(range(0, dense.rows, step))
        assert sampled_reads == 4 * n_sampled
        run = hy.multiply(dense, dense)
        assert run.dispatched_to in ("ac-spgemm", "nsparse")
        assert run.stage_cycles.get("dispatch", 0) > 0

    def test_probe_skipped_below_threshold(self):
        from repro.baselines.hybrid import HybridAdaptive

        hy = HybridAdaptive()
        sparse = random_csr(np.random.default_rng(6), 120, 120, 0.02)
        decision, sampled_reads = hy._inspect(sparse, sparse)
        assert decision == "esc"
        assert sampled_reads == 0


# ---------------------------------------------------------------------------
# harness / campaign threading
# ---------------------------------------------------------------------------


class TestDispatchThreading:
    def test_run_record_carries_dispatched_to(self):
        from repro.bench.harness import MatrixCase, run_case

        case = MatrixCase("t", g.random_uniform(150, 150, 7, seed=81050))
        rec = run_case(case, "adaptive", verify=False)
        assert rec.algorithm == "adaptive"
        assert rec.dispatched_to in ("ac-spgemm", "hash-spgemm", "hashmap-spgemm")
        rec_fixed = run_case(case, "ac-spgemm", verify=False)
        assert rec_fixed.dispatched_to == ""
        # the field round-trips through the cache serialisation
        from repro.bench.harness import RunRecord

        assert RunRecord.from_json(rec.to_json()).dispatched_to == rec.dispatched_to

    def test_campaign_config_accepts_backend_algorithms(self):
        from repro.campaign.plan import CampaignConfig, CampaignError

        cfg = CampaignConfig(
            suite="tiny", algorithms=("ac-spgemm", "adaptive", "hash-spgemm")
        )
        assert "adaptive" in cfg.algorithms
        with pytest.raises(CampaignError):
            CampaignConfig(suite="tiny", algorithms=("warp-drive",))
        with pytest.raises(CampaignError):
            CampaignConfig(suite="tiny", estimator="psychic")

    def test_worker_applies_options_to_backend_cells(self):
        from repro.backends.adapter import BackendAlgorithm
        from repro.campaign.plan import CellSpec
        from repro.campaign.worker import _algorithm_for
        from repro.core.options import AcSpgemmOptions as Opts

        cell = CellSpec(index=0, matrix="m", algorithm="adaptive", dtype="float64")
        opts = Opts(estimator="sampling")
        alg = _algorithm_for(cell, opts)
        assert isinstance(alg, BackendAlgorithm)
        assert alg.options_for(np.float64).estimator == "sampling"
        # no options: the plain name goes through the registry
        assert _algorithm_for(cell, None) == "adaptive"

"""Unit tests for the deterministic block scheduler."""

import pytest

from repro.gpu import schedule_blocks


def test_single_sm_sums():
    t = schedule_blocks([10.0, 20.0, 5.0], num_sms=1)
    assert t.makespan_cycles == 35.0
    assert t.sm_busy_cycles == (35.0,)


def test_perfect_balance():
    t = schedule_blocks([10.0] * 4, num_sms=4)
    assert t.makespan_cycles == 10.0
    assert t.multiprocessor_load == 1.0


def test_greedy_earliest_available():
    # blocks 30, 10, 10, 10 on 2 SMs: SM0 gets 30; SM1 gets 10,10,10
    t = schedule_blocks([30.0, 10.0, 10.0, 10.0], num_sms=2)
    assert t.makespan_cycles == 30.0
    assert sorted(t.sm_busy_cycles) == [30.0, 30.0]


def test_imbalance_reported():
    t = schedule_blocks([100.0, 1.0], num_sms=2)
    assert t.multiprocessor_load == pytest.approx(0.01)


def test_launch_overhead_added():
    t = schedule_blocks([10.0], num_sms=2, launch_overhead=5.0)
    assert t.makespan_cycles == 15.0


def test_empty_kernel():
    t = schedule_blocks([], num_sms=4, launch_overhead=3.0)
    assert t.makespan_cycles == 3.0
    assert t.n_blocks == 0
    assert t.multiprocessor_load == 1.0


def test_deterministic():
    blocks = [float((i * 37) % 11 + 1) for i in range(100)]
    t1 = schedule_blocks(blocks, num_sms=7)
    t2 = schedule_blocks(blocks, num_sms=7)
    assert t1 == t2


def test_makespan_bounds():
    """List scheduling is within 2x of the lower bounds."""
    blocks = [float((i * 13) % 29 + 1) for i in range(200)]
    t = schedule_blocks(blocks, num_sms=8)
    lower = max(max(blocks), sum(blocks) / 8)
    assert lower <= t.makespan_cycles <= 2 * lower


def test_rejects_bad_input():
    with pytest.raises(ValueError, match="num_sms"):
        schedule_blocks([1.0], num_sms=0)
    with pytest.raises(ValueError, match="non-negative"):
        schedule_blocks([-1.0], num_sms=2)


def test_total_cycles_conserved():
    blocks = [3.0, 4.0, 5.0]
    t = schedule_blocks(blocks, num_sms=2)
    assert t.total_block_cycles == pytest.approx(12.0)


class TestSmallLaunchStatistics:
    """Launches with fewer blocks than SMs (multi-device tile runs)."""

    def test_mp_load_ignores_never_eligible_sms(self):
        # 2 equal blocks on an 4-SM device: a perfectly balanced small
        # launch must not report 0.0 because SMs 2-3 never got a block
        t = schedule_blocks([10.0, 10.0], num_sms=4)
        assert t.multiprocessor_load == 1.0

    def test_mp_load_small_launch_imbalance_still_visible(self):
        t = schedule_blocks([100.0, 1.0], num_sms=8)
        assert t.multiprocessor_load == pytest.approx(0.01)

    def test_mp_load_single_block(self):
        t = schedule_blocks([42.0], num_sms=16)
        assert t.multiprocessor_load == 1.0

    def test_utilization_empty_launch_with_overhead(self):
        # a pure-overhead launch is vacuously fully utilised; it used
        # to report 0 / capacity = 0.0, poisoning min-aggregates
        t = schedule_blocks([], num_sms=4, launch_overhead=7.0)
        assert t.makespan_cycles == 7.0
        assert t.utilization == 1.0
        assert t.multiprocessor_load == 1.0

    def test_utilization_small_launch_counts_all_sms(self):
        # utilisation (unlike mpL) keeps charging idle SMs: 2 blocks of
        # 10 cycles on 4 SMs is half-utilised
        t = schedule_blocks([10.0, 10.0], num_sms=4)
        assert t.utilization == pytest.approx(0.5)

    def test_busy_cycles_unchanged_by_statistics(self):
        # the fixes only change derived statistics, never recorded state
        t = schedule_blocks([5.0, 3.0], num_sms=4)
        assert t.sm_busy_cycles == (5.0, 3.0, 0.0, 0.0)

"""The serve daemon: admission, deadlines, retry, breaker, transport.

Core policy is tested HTTP-free through :class:`repro.serve.ServeCore`
with an injectable ``multiply`` (so overload, deadline, retry and
breaker paths are deterministic and fast); the transport layer gets an
in-thread :class:`ReproServer`; and the SIGTERM-drain contract runs the
real ``repro serve`` subprocess — kill -TERM must drain in-flight work
and exit 0.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.campaign.plan import matrix_fingerprint, tiny_entries
from repro.resilience.errors import RestartBudgetExceeded, WorkerCrashed
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import ReproServer, ServeConfig, ServeCore
from repro.sparse import squared_operands, write_matrix_market

_REPO = Path(__file__).resolve().parent.parent


def _core(**overrides) -> ServeCore:
    """A fast test core: reference engine, single executor, tiny waits."""
    defaults = dict(
        engine="reference",
        executors=1,
        max_queue=4,
        default_deadline_ms=60_000.0,
        backoff_base_ms=1.0,
        backoff_cap_ms=2.0,
        breaker_cooldown_s=30.0,
        supervise_interval_s=0.1,
        shm_prefix=f"repro-test-serve-{os.getpid()}-",
    )
    multiply = overrides.pop("multiply", None)
    clock = overrides.pop("clock", time.monotonic)
    defaults.update(overrides)
    return ServeCore(ServeConfig(**defaults), multiply=multiply, clock=clock)


def _reference_digest(name: str) -> str:
    entry = next(e for e in tiny_entries() if e.name == name)
    a, b = squared_operands(entry.build())
    return matrix_fingerprint(
        ac_spgemm(a, b, AcSpgemmOptions(engine="reference")).matrix
    )


class TestServeCoreOutcomes:
    def test_success_digest_matches_reference_engine(self):
        core = _core()
        try:
            body = core.handle({"matrix": "tiny-uniform"})
            assert body["outcome"] == "success"
            assert body["status"] == 200
            assert body["cached"] is False
            assert body["result"]["digest"] == _reference_digest("tiny-uniform")
        finally:
            core.close()

    def test_second_request_is_a_cache_hit(self):
        core = _core()
        try:
            first = core.handle({"matrix": "tiny-uniform"})
            second = core.handle({"matrix": "tiny-uniform"})
            assert second["cached"] is True
            assert second["result"]["digest"] == first["result"]["digest"]
            assert core.metrics.value("repro_serve_cache_hits_total") == 1
        finally:
            core.close()

    def test_unknown_matrix_is_404(self):
        core = _core()
        try:
            body = core.handle({"matrix": "no-such-matrix"})
            assert (body["outcome"], body["status"]) == ("error", 404)
        finally:
            core.close()

    def test_malformed_requests_are_400(self):
        core = _core()
        try:
            assert core.handle({})["status"] == 400
            assert core.handle({"coo": {"rows": 2}})["status"] == 400
            assert core.handle(
                {"matrix": "tiny-uniform", "dtype": "float16"}
            )["status"] == 400
        finally:
            core.close()

    def test_inline_coo_and_mtx_round_trip(self, tmp_path):
        core = _core()
        try:
            coo_body = core.handle(
                {
                    "coo": {
                        "rows": 3,
                        "cols": 3,
                        "row_idx": [0, 1, 2],
                        "col_idx": [0, 1, 2],
                        "values": [1.0, 2.0, 3.0],
                    }
                }
            )
            assert coo_body["outcome"] == "success"
            assert coo_body["result"]["nnz"] == 3  # (diag)^2 keeps 3 nnz

            entry = next(e for e in tiny_entries() if e.name == "tiny-uniform")
            path = tmp_path / "m.mtx"
            write_matrix_market(path, entry.build())
            mtx_body = core.handle({"mtx": path.read_text()})
            assert mtx_body["outcome"] == "success"
            assert mtx_body["result"]["digest"] == _reference_digest(
                "tiny-uniform"
            )
            # the inline matrix is now registered by its content hash
            fp = matrix_fingerprint(entry.build())
            by_hash = core.handle({"matrix_hash": fp})
            assert by_hash["outcome"] == "success"
        finally:
            core.close()

    def test_unknown_matrix_hash_is_404(self):
        core = _core()
        try:
            body = core.handle({"matrix_hash": "deadbeefdeadbeef"})
            assert (body["outcome"], body["status"]) == ("error", 404)
        finally:
            core.close()


class TestServeCoreHardening:
    def test_full_queue_rejects_typed_429(self):
        gate = threading.Event()
        entered = threading.Event()

        def blocking_multiply(a, b, options):
            entered.set()
            gate.wait(timeout=30)
            return ac_spgemm(a, b, options)

        core = _core(multiply=blocking_multiply, max_queue=1, executors=1)
        try:
            # occupy the executor, fill the queue, then overflow it
            waiters = [
                threading.Thread(
                    target=core.handle, args=({"matrix": n},), daemon=True
                )
                for n in ("tiny-uniform", "tiny-grid2d")
            ]
            # sequence the admissions: if both waiters raced, the second
            # could hit the still-occupied queue and absorb the 429 itself
            waiters[0].start()
            assert entered.wait(timeout=10)  # executor busy, queue empty
            waiters[1].start()
            deadline = time.monotonic() + 10
            while core._queue.qsize() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert core._queue.qsize() == 1
            body = core.handle({"matrix": "tiny-powerlaw"})
            assert (body["outcome"], body["status"]) == ("rejected", 429)
            assert "ServerOverloaded" in body["reason"]
            gate.set()
            for t in waiters:
                t.join(timeout=30)
            assert core.metrics.value(
                "repro_serve_rejected_total", reason="overload"
            ) == 1
        finally:
            gate.set()
            core.close()

    def test_deadline_expiry_rejects_typed_504_and_still_caches(self):
        release = threading.Event()

        def slow_multiply(a, b, options):
            release.wait(timeout=30)
            return ac_spgemm(a, b, options)

        core = _core(multiply=slow_multiply)
        try:
            body = core.handle({"matrix": "tiny-uniform", "deadline_ms": 50})
            assert (body["outcome"], body["status"]) == ("rejected", 504)
            assert "DeadlineExceeded" in body["reason"]
            release.set()
            # the executor finishes the abandoned job and caches it
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                late = core.handle({"matrix": "tiny-uniform"})
                if late.get("cached"):
                    break
                time.sleep(0.05)
            assert late["cached"] is True
            assert late["result"]["digest"] == _reference_digest("tiny-uniform")
        finally:
            release.set()
            core.close()

    def test_transient_errors_retry_with_backoff_then_succeed(self):
        calls = []

        def flaky_multiply(a, b, options):
            calls.append(1)
            if len(calls) < 3:
                raise WorkerCrashed("worker died", stage="ESC")
            return ac_spgemm(a, b, options)

        core = _core(multiply=flaky_multiply, retries=2)
        try:
            body = core.handle({"matrix": "tiny-uniform"})
            assert body["outcome"] == "success"
            assert body["result"]["retries"] == 2
            assert len(calls) == 3
            assert core.metrics.value("repro_serve_retries_total") == 2
        finally:
            core.close()

    def test_spent_retry_budget_degrades_not_drops(self):
        def always_crashing(a, b, options):
            raise WorkerCrashed("worker died", stage="ESC")

        core = _core(multiply=always_crashing, retries=1)
        try:
            body = core.handle({"matrix": "tiny-uniform"})
            assert body["outcome"] == "degraded"
            assert "WorkerCrashed" in body["reason"]
            # degraded results are still correct (global ESC is exact
            # on this matrix's digest-relevant structure)
            assert body["result"]["nnz"] > 0
        finally:
            core.close()

    def test_breaker_opens_after_threshold_and_recovers_via_probe(self):
        now = [0.0]
        fail = [True]
        calls = []

        def controlled_multiply(a, b, options):
            calls.append(1)
            if fail[0]:
                raise RestartBudgetExceeded("boom", stage="ESC", restarts=1)
            return ac_spgemm(a, b, options)

        core = _core(
            multiply=controlled_multiply,
            retries=0,
            breaker_threshold=2,
            breaker_cooldown_s=10.0,
            clock=lambda: now[0],
        )
        try:
            for n in ("tiny-uniform", "tiny-grid2d"):
                assert core.handle({"matrix": n})["outcome"] == "degraded"
            assert core.stats()["breaker"] == "open"
            primary_calls = len(calls)
            # open: requests degrade without touching the primary at all
            body = core.handle({"matrix": "tiny-powerlaw"})
            assert body["outcome"] == "degraded"
            assert "breaker" in body["reason"]
            assert len(calls) == primary_calls
            # cooldown elapses, the primary heals: one probe closes it
            now[0] += 11.0
            fail[0] = False
            assert core.stats()["breaker"] == "half-open"
            body = core.handle({"matrix": "tiny-road"})
            assert body["outcome"] == "success"
            assert len(calls) == primary_calls + 1
            assert core.stats()["breaker"] == "closed"
            assert core.stats()["breaker_opens"] == 1
        finally:
            core.close()

    def test_request_delay_chaos_fires_deterministically(self):
        plan = FaultPlan(
            seed=3,
            faults=(FaultSpec(kind="request_delay", at=1, delay_ms=5.0),),
        )
        fired_logs = []
        for _ in range(2):
            core = _core(fault_plan=plan)
            try:
                assert core.handle({"matrix": "tiny-uniform"})[
                    "outcome"
                ] == "success"
                fired_logs.append(core.stats()["faults_fired"])
            finally:
                core.close()
        assert fired_logs[0] == fired_logs[1]
        assert fired_logs[0] == [{"kind": "request_delay", "at": 1,
                                  "delay_ms": 5.0}]

    def test_metrics_exposition_has_serve_families(self):
        core = _core()
        try:
            core.handle({"matrix": "tiny-uniform"})
            text = core.metrics.to_prometheus()
            assert 'repro_serve_requests_total{outcome="success",' in text
            assert "# TYPE repro_serve_requests_total counter" in text
            assert "repro_serve_latency_ms" in text
            doc = core.metrics.to_json()
            assert doc["meta"]["repro_serve_requests_total"]["type"] == "counter"
        finally:
            core.close()

    def test_close_drains_queued_work(self):
        started = threading.Event()

        def slow_multiply(a, b, options):
            started.set()
            time.sleep(0.1)
            return ac_spgemm(a, b, options)

        core = _core(multiply=slow_multiply)
        outcomes = []
        t = threading.Thread(
            target=lambda: outcomes.append(core.handle({"matrix": "tiny-uniform"})),
            daemon=True,
        )
        t.start()
        assert started.wait(timeout=30)
        core.close(drain=True)
        t.join(timeout=30)
        assert outcomes and outcomes[0]["outcome"] == "success"
        # after close the daemon sheds instead of accepting
        body = core.handle({"matrix": "tiny-grid2d"})
        assert (body["outcome"], body["status"]) == ("rejected", 503)


class TestServeHTTP:
    @pytest.fixture()
    def server(self):
        core = ServeCore(
            ServeConfig(
                engine="reference",
                executors=1,
                supervise_interval_s=0.2,
                shm_prefix=f"repro-test-http-{os.getpid()}-",
            )
        )
        srv = ReproServer(("127.0.0.1", 0), core)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        thread.join(timeout=10)
        srv.server_close()
        core.close()

    def _base(self, server) -> str:
        return f"http://127.0.0.1:{server.server_address[1]}"

    def _post(self, server, doc):
        req = urllib.request.Request(
            self._base(server) + "/multiply",
            data=json.dumps(doc).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_healthz_metrics_stats_multiply(self, server):
        base = self._base(server)
        with urllib.request.urlopen(base + "/healthz", timeout=30) as r:
            assert r.status == 200
            assert json.loads(r.read())["status"] == "ok"
        status, body = self._post(server, {"matrix": "tiny-uniform"})
        assert status == 200 and body["outcome"] == "success"
        with urllib.request.urlopen(base + "/metrics", timeout=30) as r:
            text = r.read().decode()
            assert r.headers["Content-Type"].startswith("text/plain")
            assert "repro_serve_requests_total" in text
        with urllib.request.urlopen(base + "/stats", timeout=30) as r:
            stats = json.loads(r.read())
            assert stats["executed"] == 1
            assert stats["breaker"] == "closed"

    def test_http_status_mirrors_typed_outcomes(self, server):
        status, body = self._post(server, {"matrix": "missing"})
        assert status == 404 and body["outcome"] == "error"
        status, body = self._post(server, {"dtype": "float64"})
        assert status == 400 and body["outcome"] == "error"
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(
                self._base(server) + "/nowhere", timeout=30
            )
        assert exc_info.value.code == 404


class TestServeDaemonSigterm:
    def test_sigterm_drains_and_exits_zero(self):
        env = dict(os.environ, PYTHONPATH=str(_REPO / "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--engine", "reference",
                "--executors", "1", "--supervise-interval", "0.2",
                "--shm-prefix", f"repro-test-sigterm-{os.getpid()}-",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=_REPO,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no listening banner: {banner!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            req = urllib.request.Request(
                base + "/multiply",
                data=json.dumps({"matrix": "tiny-uniform"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=120) as resp:
                assert json.loads(resp.read())["outcome"] == "success"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained and stopped (SIGTERM)" in out

"""Shared fixtures for the test suite.

Tests default to the scaled-down :data:`repro.gpu.SMALL_DEVICE` so tiny
matrices still exercise multiple ESC iterations, chunk spills, merges
and restarts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix
from repro.gpu import SMALL_DEVICE


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_options() -> AcSpgemmOptions:
    """AC-SpGEMM options sized for unit tests."""
    return AcSpgemmOptions(
        device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20
    )


def random_csr(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    density: float,
    dtype=np.float64,
) -> CSRMatrix:
    """Dense-mask random CSR helper used across test modules."""
    d = (rng.random((rows, cols)) < density) * rng.random((rows, cols))
    return CSRMatrix.from_dense(d.astype(dtype))


@pytest.fixture
def medium_matrix(rng) -> CSRMatrix:
    return random_csr(rng, 80, 80, 0.06)

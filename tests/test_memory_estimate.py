"""Unit tests for the chunk-pool memory estimate (§4)."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix
from repro.core import estimate_chunk_pool_bytes, estimate_output_entries
from repro.sparse import spgemm_reference
from tests.conftest import random_csr


def test_formula_value():
    # nA=100, b-avg=4, mB=1000: S = nA * mB * (1 - (1-pb)^a)
    a = CSRMatrix.from_dense(np.zeros((100, 200)))
    # build A with exactly 2 nnz/row and B with 4 nnz/row
    rng = np.random.default_rng(0)
    a = random_csr(rng, 100, 200, 2 / 200)
    b = random_csr(rng, 200, 1000, 4 / 1000)
    est = estimate_output_entries(a, b)
    avg_a = a.nnz / a.rows
    avg_b = b.nnz / b.rows
    p_b = avg_b / 1000
    expected = 100 * avg_b * (1 - (1 - p_b) ** avg_a) / p_b
    assert est == pytest.approx(expected)


def test_estimate_tracks_actual_nnz(rng):
    """Under the uniform model the estimate is within a small factor of
    the real output size."""
    a = random_csr(rng, 300, 300, 0.03)
    est = estimate_output_entries(a, a)
    actual = spgemm_reference(a, a).nnz
    assert 0.5 * actual < est < 2.0 * actual


def test_empty_inputs():
    e = CSRMatrix.empty(10, 10)
    assert estimate_output_entries(e, e) == 0.0


def test_fully_dense_capped():
    d = CSRMatrix.from_dense(np.ones((20, 20)))
    assert estimate_output_entries(d, d) <= 400 * 1.0001


def test_pool_bytes_lower_bound(rng):
    a = random_csr(rng, 20, 20, 0.1)
    opts = AcSpgemmOptions()
    assert (
        estimate_chunk_pool_bytes(a, a, opts)
        == opts.chunk_pool_lower_bound_bytes
    )


def test_pool_bytes_explicit_override(rng):
    a = random_csr(rng, 20, 20, 0.1)
    opts = AcSpgemmOptions(chunk_pool_bytes=12345)
    assert estimate_chunk_pool_bytes(a, a, opts) == 12345


def test_meta_factor_applied(rng):
    a = random_csr(rng, 400, 400, 0.05)
    o1 = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0, chunk_meta_factor=1.2)
    o2 = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0, chunk_meta_factor=2.4)
    assert estimate_chunk_pool_bytes(a, a, o2) == pytest.approx(
        2 * estimate_chunk_pool_bytes(a, a, o1), rel=0.01
    )

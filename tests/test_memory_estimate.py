"""Unit tests for the chunk-pool memory estimate (§4)."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix
from repro.core import estimate_chunk_pool_bytes, estimate_output_entries
from repro.sparse import spgemm_reference
from tests.conftest import random_csr


def test_formula_value():
    # nA=100, b-avg=4, mB=1000: S = nA * mB * (1 - (1-pb)^a)
    a = CSRMatrix.from_dense(np.zeros((100, 200)))
    # build A with exactly 2 nnz/row and B with 4 nnz/row
    rng = np.random.default_rng(0)
    a = random_csr(rng, 100, 200, 2 / 200)
    b = random_csr(rng, 200, 1000, 4 / 1000)
    est = estimate_output_entries(a, b)
    avg_a = a.nnz / a.rows
    avg_b = b.nnz / b.rows
    p_b = avg_b / 1000
    expected = 100 * avg_b * (1 - (1 - p_b) ** avg_a) / p_b
    assert est == pytest.approx(expected)


def test_estimate_tracks_actual_nnz(rng):
    """Under the uniform model the estimate is within a small factor of
    the real output size."""
    a = random_csr(rng, 300, 300, 0.03)
    est = estimate_output_entries(a, a)
    actual = spgemm_reference(a, a).nnz
    assert 0.5 * actual < est < 2.0 * actual


def test_empty_inputs():
    e = CSRMatrix.empty(10, 10)
    assert estimate_output_entries(e, e) == 0.0


def test_fully_dense_capped():
    d = CSRMatrix.from_dense(np.ones((20, 20)))
    assert estimate_output_entries(d, d) <= 400 * 1.0001


def test_pool_bytes_lower_bound(rng):
    a = random_csr(rng, 20, 20, 0.1)
    opts = AcSpgemmOptions()
    assert (
        estimate_chunk_pool_bytes(a, a, opts)
        == opts.chunk_pool_lower_bound_bytes
    )


def test_pool_bytes_explicit_override(rng):
    a = random_csr(rng, 20, 20, 0.1)
    opts = AcSpgemmOptions(chunk_pool_bytes=12345)
    assert estimate_chunk_pool_bytes(a, a, opts) == 12345


def test_meta_factor_applied(rng):
    a = random_csr(rng, 400, 400, 0.05)
    o1 = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0, chunk_meta_factor=1.2)
    o2 = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0, chunk_meta_factor=2.4)
    assert estimate_chunk_pool_bytes(a, a, o2) == pytest.approx(
        2 * estimate_chunk_pool_bytes(a, a, o1), rel=0.01
    )


# ---------------------------------------------------------------------------
# skew correction (RMAT-like inputs)
# ---------------------------------------------------------------------------


def _skewed_matrix(rows=400, cols=400, seed=5):
    """A power-law-ish matrix: a handful of rows own most of the nnz."""
    from repro.matrices import generators as g

    return g.power_law(rows, 3, seed=seed, exponent=2.2)


def test_uniform_estimate_unchanged(rng):
    """The golden uniform input must see exactly the published formula:
    no heavy rows, so the skew correction is zero."""
    a = random_csr(np.random.default_rng(9), 400, 400, 30 / 400)
    opts = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0)
    expected = int(
        estimate_output_entries(a, a)
        * opts.element_bytes
        * opts.chunk_meta_factor
    )
    assert estimate_chunk_pool_bytes(a, a, opts) == expected


def test_skewed_estimate_grows():
    """Heavy rows push the pool estimate above the published formula."""
    a = _skewed_matrix()
    row_len = np.diff(a.row_ptr)
    assert row_len.max() > 8 * max(a.nnz / a.rows, 1.0)  # genuinely skewed
    opts = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0)
    plain = int(
        estimate_output_entries(a, a)
        * opts.element_bytes
        * opts.chunk_meta_factor
    )
    assert estimate_chunk_pool_bytes(a, a, opts) > plain


def test_skewed_estimate_covers_longest_row():
    """The pool never starts smaller than the longest row's expectation."""
    a = _skewed_matrix()
    opts = AcSpgemmOptions(chunk_pool_lower_bound_bytes=0)
    p_b = (a.nnz / a.rows) / a.cols
    max_len = int(np.diff(a.row_ptr).max())
    longest = a.cols * (1.0 - (1.0 - p_b) ** max_len)
    assert estimate_chunk_pool_bytes(a, a, opts) >= int(
        longest * opts.element_bytes * opts.chunk_meta_factor
    )


def test_skewed_input_avoids_restart_cascade():
    """With the correction, an RMAT-like input runs with few restarts
    even without the 100 MB lower bound masking the estimate."""
    from repro import ac_spgemm, spgemm_reference
    from repro.gpu import SMALL_DEVICE

    a = _skewed_matrix(rows=300, cols=300, seed=7)
    opts = AcSpgemmOptions(
        device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 12
    )
    res = ac_spgemm(a, a, opts)
    assert res.restarts <= 2
    assert res.matrix.allclose(spgemm_reference(a, a))

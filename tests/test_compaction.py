"""Unit tests for the single-scan compaction (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import (
    compact_sorted,
    initial_state,
    scan_operator,
    sequential_compaction_scan,
)
from repro.core.compaction import ScanItem
from repro.gpu import CostMeter, TITAN_XP


@pytest.fixture
def meter():
    return CostMeter(config=TITAN_XP)


def same_row_factory(col_bits):
    def same_row(ka, kb):
        return (ka >> col_bits) == (kb >> col_bits)

    return same_row


class TestInitialState:
    def test_matches_paper_constants(self):
        # Algorithm 3 comment block
        assert initial_state(True, True) == 0b0000_0000_0000_0011_0000_0000_0000_0011
        assert initial_state(True, False) == 0b0000_0000_0000_0010_0000_0000_0000_0011
        assert initial_state(False, False) == 0

    def test_row_end_requires_combine_end(self):
        with pytest.raises(ValueError):
            initial_state(False, True)


class TestScanOperator:
    def test_value_combination(self):
        same_row = same_row_factory(4)
        a = ScanItem(key=0x10, value=1.5, state=initial_state(True, False))
        b = ScanItem(key=0x10, value=2.0, state=initial_state(True, True))
        n = scan_operator(a, b, same_row)
        assert n.value == 3.5
        assert n.key == 0x10

    def test_value_reset_on_new_key(self):
        same_row = same_row_factory(4)
        a = ScanItem(key=0x10, value=1.5, state=initial_state(True, False))
        b = ScanItem(key=0x11, value=2.0, state=initial_state(True, True))
        assert scan_operator(a, b, same_row).value == 2.0

    def test_row_counter_resets_across_rows(self):
        same_row = same_row_factory(4)
        # a ends a row; combining with b from the next row must drop the
        # row counter but keep the chunk counter
        a = ScanItem(key=0x1F, value=1.0, state=initial_state(True, True))
        b = ScanItem(key=0x20, value=1.0, state=initial_state(True, True))
        n = scan_operator(a, b, same_row)
        chunk_count = (n.state & 0xFFFE) >> 1
        row_count = (n.state >> 17) & 0x7FFF
        assert chunk_count == 2
        assert row_count == 1


class TestSequentialScan:
    def test_counters_positions(self):
        col_bits = 4
        same_row = same_row_factory(col_bits)
        # two rows: row0 cols (1,1,2), row1 cols (0,)
        keys = np.array([0x01, 0x01, 0x02, 0x10], dtype=np.uint64)
        values = np.array([1.0, 2.0, 4.0, 8.0])
        out = sequential_compaction_scan(keys, values, same_row)
        # element 1 ends combine seq for key 0x01 with summed value 3
        assert out[1].value == 3.0
        # chunk positions: bits 1-15 count compacted elements so far
        # (non-end elements start at 0, ends contribute their 1)
        chunk_counts = [(o.state & 0xFFFE) >> 1 for o in out]
        assert chunk_counts == [0, 1, 2, 3]
        row_counts = [(o.state >> 17) & 0x7FFF for o in out]
        assert row_counts == [0, 1, 2, 1]


class TestVectorisedCompaction:
    def test_matches_sequential_oracle(self, meter, rng):
        """The vectorised path agrees with the literal scan: identical
        structure, values equal up to summation-order rounding (the
        vectorised reduce combines pairwise like a hardware tree scan)."""
        col_bits = 5
        n = 300
        rows = np.sort(rng.integers(0, 6, n))
        cols = rng.integers(0, 1 << col_bits, n)
        keys = ((rows.astype(np.uint64) << col_bits) | cols.astype(np.uint64))
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], rng.random(n)
        comp = compact_sorted(meter, keys, values, col_bits)

        same_row = same_row_factory(col_bits)
        seq = sequential_compaction_scan(keys, values, same_row)
        ends = [
            i
            for i in range(n)
            if i == n - 1 or keys[i] != keys[i + 1]
        ]
        np.testing.assert_array_equal(comp.keys, keys[ends])
        np.testing.assert_allclose(
            comp.values, [seq[i].value for i in ends], rtol=1e-12
        )
        # determinism: repeating the call yields bitwise identical values
        comp2 = compact_sorted(meter, keys, values, col_bits)
        np.testing.assert_array_equal(
            comp.values.view(np.uint64), comp2.values.view(np.uint64)
        )
        # row offsets match the packed row counters (count - 1)
        np.testing.assert_array_equal(
            comp.row_offsets,
            [((seq[i].state >> 17) & 0x7FFF) - 1 for i in ends],
        )

    def test_unique_keys_pass_through(self, meter):
        keys = np.array([3, 7, 9], dtype=np.uint64)
        vals = np.array([1.0, 2.0, 3.0])
        comp = compact_sorted(meter, keys, vals, 2)
        np.testing.assert_array_equal(comp.keys, keys)
        np.testing.assert_array_equal(comp.values, vals)

    def test_accumulation_left_to_right(self, meter):
        """Equal keys fold in input order — required for bit stability."""
        keys = np.zeros(3, dtype=np.uint64)
        vals = np.array([1e16, 1.0, -1e16])
        comp = compact_sorted(meter, keys, vals, 1)
        assert comp.values[0] == (1e16 + 1.0) - 1e16

    def test_rows_and_offsets(self, meter):
        col_bits = 4
        # row 0: cols 1, 2; row 2: col 0
        keys = np.array([0x01, 0x02, 0x20], dtype=np.uint64)
        vals = np.ones(3)
        comp = compact_sorted(meter, keys, vals, col_bits)
        np.testing.assert_array_equal(comp.rows, [0, 0, 2])
        np.testing.assert_array_equal(comp.row_offsets, [0, 1, 0])

    def test_empty(self, meter):
        comp = compact_sorted(
            meter, np.zeros(0, dtype=np.uint64), np.zeros(0), 4
        )
        assert comp.n == 0

    def test_length_mismatch(self, meter):
        with pytest.raises(ValueError):
            compact_sorted(meter, np.zeros(2, dtype=np.uint64), np.zeros(3), 4)

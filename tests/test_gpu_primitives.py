"""Unit tests for block-wide primitives and the radix sort."""

import numpy as np
import pytest

from repro.gpu import (
    CostMeter,
    TITAN_XP,
    bits_required,
    block_reduce_minmax,
    blocked_to_striped,
    exclusive_prefix_sum,
    inclusive_max_scan,
    inclusive_prefix_sum,
    radix_sort_pairs,
    radix_sort_permutation,
    striped_to_blocked,
)


@pytest.fixture
def meter():
    return CostMeter(config=TITAN_XP)


class TestScans:
    def test_inclusive_sum(self, meter, rng):
        v = rng.integers(0, 10, 100)
        np.testing.assert_array_equal(
            inclusive_prefix_sum(meter, v), np.cumsum(v)
        )
        assert meter.cycles > 0

    def test_exclusive_sum(self, meter):
        scan, total = exclusive_prefix_sum(meter, np.array([3, 1, 4]))
        np.testing.assert_array_equal(scan, [0, 3, 4])
        assert total == 8

    def test_exclusive_empty(self, meter):
        scan, total = exclusive_prefix_sum(meter, np.zeros(0, dtype=int))
        assert scan.shape == (0,) and total == 0

    def test_max_scan(self, meter):
        v = np.array([1, 5, 2, 7, 3])
        np.testing.assert_array_equal(
            inclusive_max_scan(meter, v), [1, 5, 5, 7, 7]
        )

    def test_minmax_reduce(self, meter):
        lo, hi = block_reduce_minmax(meter, np.array([5, 2, 9, 2]))
        assert (lo, hi) == (2, 9)

    def test_minmax_empty_rejected(self, meter):
        with pytest.raises(ValueError):
            block_reduce_minmax(meter, np.zeros(0, dtype=int))


class TestLayout:
    def test_blocked_striped_round_trip(self, meter, rng):
        threads, per = 8, 4
        v = rng.integers(0, 100, threads * per)
        s = blocked_to_striped(meter, v, threads, per)
        back = striped_to_blocked(meter, s, threads, per)
        np.testing.assert_array_equal(back, v)

    def test_striped_semantics(self, meter):
        # thread t's blocked items [t*N, t*N+N) land at t + i*T
        threads, per = 2, 3
        v = np.array([0, 1, 2, 10, 11, 12])
        s = blocked_to_striped(meter, v, threads, per)
        np.testing.assert_array_equal(s, [0, 10, 1, 11, 2, 12])

    def test_size_mismatch(self, meter):
        with pytest.raises(ValueError):
            blocked_to_striped(meter, np.arange(5), 2, 3)


class TestBitsRequired:
    @pytest.mark.parametrize(
        "value,bits", [(0, 1), (1, 1), (2, 2), (255, 8), (256, 9), (2**23 - 1, 23)]
    )
    def test_values(self, value, bits):
        assert bits_required(value) == bits

    def test_negative(self):
        with pytest.raises(ValueError):
            bits_required(-1)


class TestRadixSort:
    def test_sorts(self, meter, rng):
        keys = rng.integers(0, 1 << 16, 500).astype(np.uint64)
        perm = radix_sort_permutation(meter, keys, 16)
        assert np.all(np.diff(keys[perm].astype(np.int64)) >= 0)

    def test_stable(self, meter, rng):
        """Equal keys keep input order — the bit-stability foundation."""
        keys = rng.integers(0, 8, 400).astype(np.uint64)
        perm = radix_sort_permutation(meter, keys, 3)
        np.testing.assert_array_equal(perm, np.argsort(keys, kind="stable"))

    def test_only_low_bits_sorted(self, meter):
        # keys differing only above key_bits compare equal (stable order):
        # low 4 bits are [0, 0, 0, 1], so order is preserved except the
        # single low-bits-1 key moving last
        keys = np.array([1 << 10, 0, 1 << 10, 1], dtype=np.uint64)
        perm = radix_sort_permutation(meter, keys, 4)
        np.testing.assert_array_equal(perm, [0, 1, 2, 3])
        keys2 = np.array([1, 1 << 10, 0], dtype=np.uint64)
        perm2 = radix_sort_permutation(meter, keys2, 4)
        np.testing.assert_array_equal(perm2, [1, 2, 0])

    def test_pass_count_charged(self):
        m = CostMeter(config=TITAN_XP)
        radix_sort_permutation(m, np.arange(10, dtype=np.uint64), 24, bits_per_pass=8)
        assert m.counters.sort_passes == 6  # meter charges ceil(24/4)

    def test_pairs(self, meter, rng):
        keys = rng.integers(0, 100, 50).astype(np.uint64)
        vals = rng.random(50)
        ks, vs = radix_sort_pairs(meter, keys, vals, 7)
        order = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(ks, keys[order])
        np.testing.assert_array_equal(vs, vals[order])

    def test_empty(self, meter):
        perm = radix_sort_permutation(meter, np.zeros(0, dtype=np.uint64), 8)
        assert perm.shape == (0,)

    def test_bad_bits(self, meter):
        with pytest.raises(ValueError):
            radix_sort_permutation(meter, np.array([1], dtype=np.uint64), 0)


class TestExecutionShortcuts:
    """Execution shortcuts never change permutations or charges."""

    def test_equal_digit_fast_exit_charges_unchanged(self, rng):
        # keys identical in the low byte: the first pass is skipped at
        # execution time, yet the meter still charges all ceil(24/4)
        # passes — the device would run them regardless
        keys = (rng.integers(0, 1 << 16, 300).astype(np.uint64) << np.uint64(8)) | np.uint64(0x5A)
        fast, slow = CostMeter(config=TITAN_XP), CostMeter(config=TITAN_XP)
        perm = radix_sort_permutation(fast, keys, 24)
        assert fast.counters.sort_passes == 6
        assert fast.counters.sorted_elements == 300
        # same keys with a varying low byte: identical charge totals
        varied = keys | rng.integers(0, 256, 300).astype(np.uint64)
        radix_sort_permutation(slow, varied, 24)
        assert slow.counters == fast.counters
        assert slow.cycles == fast.cycles
        np.testing.assert_array_equal(perm, np.argsort(keys, kind="stable"))

    @pytest.mark.parametrize("key_bits", [3, 8, 13, 16, 20, 24])
    def test_fast_stable_sort_identical(self, rng, key_bits):
        from repro.gpu.radix import fast_stable_sort

        keys = rng.integers(0, 1 << 24, 700).astype(np.uint64)
        plain_meter = CostMeter(config=TITAN_XP)
        plain = radix_sort_permutation(plain_meter, keys, key_bits)
        fast_meter = CostMeter(config=TITAN_XP)
        with fast_stable_sort():
            fast = radix_sort_permutation(fast_meter, keys, key_bits)
        np.testing.assert_array_equal(fast, plain)
        assert fast_meter.counters == plain_meter.counters
        assert fast_meter.cycles == plain_meter.cycles

    def test_fast_stable_sort_restores_flag(self):
        from repro.gpu import radix

        with pytest.raises(RuntimeError):
            with radix.fast_stable_sort():
                assert radix._fast_stable
                raise RuntimeError("boom")
        assert not radix._fast_stable

"""Cross-module integration tests: realistic multi-step workflows."""

import numpy as np
import pytest

from repro import (
    AcSpgemmOptions,
    CSRMatrix,
    ac_spgemm,
    spgemm_reference,
    transpose,
)
from repro.baselines import GPU_ALGORITHMS, make_algorithm
from repro.gpu import SMALL_DEVICE
from repro.matrices import NAMED_COLLECTION, banded, power_law, stencil_2d
from repro.sparse import squared_operands, validate_csr


@pytest.fixture
def opts():
    return AcSpgemmOptions(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)


class TestChainedProducts:
    def test_matrix_power_chain(self, opts):
        """A^4 via repeated AC-SpGEMM equals the reference power."""
        a = power_law(200, 3, seed=9)
        acc = a
        ref = a
        for _ in range(3):
            acc = ac_spgemm(acc, a, opts).matrix
            ref = spgemm_reference(ref, a)
            assert acc.allclose(ref, rtol=1e-9)

    def test_triple_product(self, opts):
        a = stencil_2d(12, seed=1)
        p_dense = np.zeros((144, 36))
        for i in range(144):
            p_dense[i, i % 36] = 1.0
        p = CSRMatrix.from_dense(p_dense)
        r = transpose(p)
        coarse = ac_spgemm(r, ac_spgemm(a, p, opts).matrix, opts)
        ref = spgemm_reference(r, spgemm_reference(a, p))
        assert coarse.matrix.allclose(ref, rtol=1e-9)


class TestAllAlgorithmsAgree:
    def test_same_structure_everywhere(self, opts):
        """All seven GPU implementations produce identical sparsity and
        numerically equal values on the same input."""
        a = banded(120, 5, seed=4, fill=0.9)
        results = {
            name: make_algorithm(name).multiply(a, a).matrix
            for name in GPU_ALGORITHMS
        }
        base = results["ac-spgemm"]
        for name, m in results.items():
            np.testing.assert_array_equal(m.row_ptr, base.row_ptr, err_msg=name)
            np.testing.assert_array_equal(m.col_idx, base.col_idx, err_msg=name)
            assert m.allclose(base, rtol=1e-9), name


class TestNamedCollectionEndToEnd:
    @pytest.mark.parametrize(
        "name", ["scircuit", "landmark", "stat96v2", "webbase-1M"]
    )
    def test_named_case_correct(self, name):
        entry = next(m for m in NAMED_COLLECTION if m.name == name)
        a, b = squared_operands(entry.build())
        res = ac_spgemm(a, b, AcSpgemmOptions(chunk_pool_lower_bound_bytes=1 << 22))
        ref = spgemm_reference(a, b)
        assert res.matrix.allclose(ref, rtol=1e-9)
        validate_csr(res.matrix)


class TestDeviceGeometrySweep:
    @pytest.mark.parametrize("threads,nnz_pt,keep", [(32, 4, 1), (64, 8, 4), (128, 2, 1)])
    def test_geometry_variants_correct(self, threads, nnz_pt, keep, rng):
        from repro.gpu import DeviceConfig
        from tests.conftest import random_csr

        device = DeviceConfig(
            num_sms=4,
            threads_per_block=threads,
            nnz_per_thread=nnz_pt,
            keep_per_thread=keep,
            nnz_per_block_glb=threads // 2,
            scratchpad_bytes=16 * 1024,
        )
        opts = AcSpgemmOptions(device=device, chunk_pool_lower_bound_bytes=1 << 20)
        a = random_csr(rng, 60, 60, 0.1)
        assert ac_spgemm(a, a, opts).matrix.allclose(spgemm_reference(a, a))


class TestExtremePatterns:
    def test_single_dense_row(self, opts):
        d = np.zeros((50, 50))
        d[7, :] = 1.0
        d[:, 7] = 1.0
        a = CSRMatrix.from_dense(d)
        assert ac_spgemm(a, a, opts).matrix.allclose(spgemm_reference(a, a))

    def test_single_dense_column_in_b(self, opts):
        rng = np.random.default_rng(0)
        da = (rng.random((40, 40)) < 0.2) * 1.0
        db = np.zeros((40, 40))
        db[:, 3] = rng.random(40)
        a, b = CSRMatrix.from_dense(da), CSRMatrix.from_dense(db)
        assert ac_spgemm(a, b, opts).matrix.allclose(spgemm_reference(a, b))

    def test_permutation_matrix(self, opts):
        rng = np.random.default_rng(1)
        perm = rng.permutation(80)
        p = CSRMatrix.from_dense(np.eye(80)[perm])
        a = CSRMatrix.from_dense((rng.random((80, 80)) < 0.1) * 1.0)
        res = ac_spgemm(p, a, opts).matrix
        np.testing.assert_allclose(res.to_dense(), a.to_dense()[perm])

    def test_all_entries_one_row_of_a(self, opts):
        d = np.zeros((30, 30))
        d[0, :] = np.linspace(1, 2, 30)
        a = CSRMatrix.from_dense(d)
        rng = np.random.default_rng(2)
        b = CSRMatrix.from_dense((rng.random((30, 30)) < 0.3) * 1.0)
        assert ac_spgemm(a, b, opts).matrix.allclose(spgemm_reference(a, b))

    def test_values_with_extreme_magnitudes(self, opts):
        rng = np.random.default_rng(3)
        d = (rng.random((40, 40)) < 0.15) * np.exp(
            rng.uniform(-30, 30, (40, 40))
        )
        a = CSRMatrix.from_dense(d)
        res = ac_spgemm(a, a, opts)
        ref = spgemm_reference(a, a)
        assert res.matrix.allclose(ref, rtol=1e-9)

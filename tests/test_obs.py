"""Unified observability layer: spans, metrics, Perfetto export, CLI.

Covers the acceptance criteria of the observability PR: all three
engines produce identical counter totals and the same ordered span tree
for a fixed matrix and seed, and ``repro profile`` emits valid Perfetto
JSON plus Prometheus-parseable text.
"""

import importlib.util
import json
import re
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import AcSpgemmOptions, ac_spgemm
from repro.cli import main as cli_main
from repro.gpu import SMALL_DEVICE
from repro.matrices import random_uniform
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    perfetto_payload,
    validate_perfetto,
    validate_perfetto_file,
)
from repro.obs.profile import profile_run
from repro.sparse import write_matrix_market
from tests.conftest import random_csr

ENGINES = ("reference", "batched", "parallel")


def _small_opts(**kw) -> AcSpgemmOptions:
    base = dict(device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 20)
    base.update(kw)
    return AcSpgemmOptions(**base)


# ---------------------------------------------------------------------------
# SpanRecorder unit behaviour
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_nesting_and_clock(self):
        rec = SpanRecorder()
        rec.start("root")
        rec.leaf("a", 10.0)
        with rec.span("b"):
            rec.leaf("b.child", 5.0)
        root = rec.close()
        assert root.duration == 15.0
        assert [s.name for s in root.walk()] == ["root", "a", "b", "b.child"]
        assert root.find("b").children[0].duration == 5.0
        assert root.cycle_sum("a") == 10.0

    def test_events_attach_to_innermost(self):
        rec = SpanRecorder()
        rec.start("root")
        with rec.span("inner"):
            rec.advance(3.0)
            rec.event("restart", detail="grown")
        root = rec.close()
        ev = root.find("inner").events[0]
        assert (ev.label, ev.cycle, ev.detail) == ("restart", 3.0, "grown")

    def test_abort_tags_open_spans(self):
        rec = SpanRecorder()
        rec.start("root")
        rec.start("stage")
        rec.advance(2.0)
        rec.abort(reason="boom")
        root = rec.close(degraded=True)
        assert root.find("stage").attrs["aborted"] is True
        assert root.events[0].label == "abort"
        assert root.attrs["degraded"] is True

    def test_exception_unwinding_tags_aborted(self):
        rec = SpanRecorder()
        rec.start("root")
        with pytest.raises(RuntimeError):
            with rec.span("stage"):
                raise RuntimeError("boom")
        assert rec.root.find("stage").attrs["aborted"] is True

    def test_guards(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            rec.finish()
        with pytest.raises(RuntimeError):
            rec.close()
        rec.start("root")
        with pytest.raises(ValueError):
            rec.advance(-1.0)
        rec.close()
        with pytest.raises(RuntimeError):
            rec.start("second-root")

    def test_to_dict_sorts_attrs(self):
        rec = SpanRecorder()
        rec.start("root", z=1, a=2)
        d = rec.close().to_dict()
        assert list(d["attrs"]) == ["a", "z"]


# ---------------------------------------------------------------------------
# MetricsRegistry unit behaviour
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 2, stage="ESC")
        reg.inc("x_total", 3, stage="ESC")
        assert reg.value("x_total", stage="ESC") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("x_total", -1)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1)
        with pytest.raises(ValueError):
            reg.set("x_total", 2)

    def test_water_marks(self):
        reg = MetricsRegistry()
        reg.set_max("hi", 5)
        reg.set_max("hi", 3)
        reg.set_min("lo", 5)
        reg.set_min("lo", 3)
        assert reg.value("hi") == 5 and reg.value("lo") == 3

    def test_const_labels_merged(self):
        reg = MetricsRegistry(const_labels={"engine": "reference"})
        reg.inc("x_total", 1, stage="ESC")
        assert 'engine="reference"' in next(iter(reg.to_json()["metrics"]))

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 2, help="Help text.", stage="ESC")
        reg.set("g", 1.5, help="A gauge.")
        text = reg.to_prometheus()
        assert "# HELP x_total Help text.\n# TYPE x_total counter" in text
        assert '# TYPE g gauge' in text
        assert 'x_total{stage="ESC"} 2' in text
        assert "g 1.5" in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1, lbl='we"ird\\label\nx')
        line = [l for l in reg.to_prometheus().splitlines()
                if l.startswith("x_total")][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line

    def test_bool_values_rejected_in_export(self):
        reg = MetricsRegistry()
        reg.set("g", True)
        with pytest.raises(TypeError):
            reg.to_prometheus()


class TestPrometheusSanitization:
    """Satellite: metric/label names derived from matrix names (which
    contain ``-`` and ``.``, e.g. ca-AstroPh, uniform-a1.5-0) must be
    legal in the exposition, with label *values* preserved verbatim."""

    def test_sanitize_metric_name(self):
        from repro.obs import sanitize_metric_name

        assert sanitize_metric_name("repro_ca-AstroPh.gflops") == (
            "repro_ca_AstroPh_gflops"
        )
        assert sanitize_metric_name("x_total") == "x_total"  # untouched
        assert sanitize_metric_name("ns:metric") == "ns:metric"
        assert sanitize_metric_name("1shot") == "_1shot"  # digit prefix
        dirty = "uniform-a1.5-0"
        assert sanitize_metric_name(
            sanitize_metric_name(dirty)
        ) == sanitize_metric_name(dirty)  # idempotent

    def test_sanitize_label_name(self):
        from repro.obs import sanitize_label_name

        assert sanitize_label_name("row-length") == "row_length"
        assert sanitize_label_name("ns:lbl") == "ns_lbl"  # no colons here
        assert sanitize_label_name("matrix") == "matrix"

    def test_registry_sanitizes_on_the_way_in(self):
        reg = MetricsRegistry()
        reg.inc("gflops.ca-AstroPh", 2, **{"split": "sparse"})
        text = reg.to_prometheus()
        assert "gflops_ca_AstroPh" in text
        assert "ca-AstroPh.gflops" not in text
        # lookup works with either spelling
        assert reg.value("gflops_ca_AstroPh", split="sparse") == 2
        assert reg.value("gflops.ca-AstroPh", split="sparse") == 2
        assert_prometheus_parseable(text)

    def test_exposition_round_trip(self):
        from repro.obs import parse_prometheus_text

        reg = MetricsRegistry(const_labels={"suite": "named"})
        for m, v in (("ca-AstroPh", 1.25), ("uniform-a1.5-0", 3.5)):
            reg.set(
                "repro_matrix_gflops", v,
                help="Per-matrix GFLOPS.", matrix=m,
            )
        reg.inc("repro_cells_total", 7, help="Cells.")
        parsed = parse_prometheus_text(reg.to_prometheus())
        assert parsed["types"]["repro_matrix_gflops"] == "gauge"
        assert parsed["help"]["repro_cells_total"] == "Cells."
        samples = parsed["samples"]["repro_matrix_gflops"]
        by_matrix = {lbl["matrix"]: v for lbl, v in samples}
        # dashes and dots survive in label values, untouched
        assert by_matrix == {"ca-AstroPh": 1.25, "uniform-a1.5-0": 3.5}
        assert all(lbl["suite"] == "named" for lbl, _ in samples)
        assert parsed["samples"]["repro_cells_total"] == [
            ({"suite": "named"}, 7.0)
        ]

    def test_round_trip_escaped_label_values(self):
        from repro.obs import parse_prometheus_text

        reg = MetricsRegistry()
        tricky = 'we"ird\\label\nx'
        reg.inc("x_total", 1, lbl=tricky)
        parsed = parse_prometheus_text(reg.to_prometheus())
        (labels, value), = parsed["samples"]["x_total"]
        assert labels["lbl"] == tricky and value == 1.0

    def test_parser_rejects_malformed_lines(self):
        from repro.obs import parse_prometheus_text

        with pytest.raises(ValueError):
            parse_prometheus_text("bad-metric-name 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('x_total{unclosed="v 1\n')


PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9eE.+-]*)$"
)


def assert_prometheus_parseable(text: str) -> None:
    """Every non-empty line must be a HELP/TYPE comment or a sample."""
    lines = text.splitlines()
    assert lines, "empty exposition"
    for line in lines:
        assert PROM_LINE.match(line), f"unparseable line: {line!r}"


# ---------------------------------------------------------------------------
# driver span integration
# ---------------------------------------------------------------------------


class TestDriverSpans:
    def test_span_tree_structure_and_totals(self, rng):
        a = random_csr(rng, 60, 60, 0.1)
        res = ac_spgemm(a, a, _small_opts())
        root = res.spans
        assert root is not None and root.name == "acspgemm"
        top = [s.name for s in root.children]
        assert top == ["setup", "glb", "estimate", "esc", "merge", "output"]
        assert root.duration == pytest.approx(res.total_cycles)
        assert root.cycle_sum("glb") == pytest.approx(res.stage_cycles["GLB"])
        assert root.find("esc").duration == pytest.approx(res.stage_cycles["ESC"])
        merge_cycles = sum(res.stage_cycles[k] for k in ("MCC", "MM", "PM", "SM"))
        assert root.find("merge").duration == pytest.approx(merge_cycles)
        assert root.find("output").duration == pytest.approx(res.stage_cycles["CC"])
        # children tile their parent: no gaps on the span track
        for span in root.walk():
            for child in span.children:
                assert child.start_cycle >= span.start_cycle
                assert child.end_cycle <= span.end_cycle

    def test_spans_always_on(self, rng):
        a = random_csr(rng, 30, 30, 0.1)
        res = ac_spgemm(a, a, _small_opts())
        assert res.trace is None and res.spans is not None

    def test_restart_events_and_spans(self):
        a = random_uniform(300, 300, 6, seed=1)
        opts = AcSpgemmOptions(chunk_pool_bytes=20000, pool_growth_factor=2.0)
        res = ac_spgemm(a, a, opts)
        assert res.restarts > 0
        esc = res.spans.find("esc")
        restart_events = [e for e in esc.events if e.label == "restart"]
        assert len(restart_events) == res.restarts
        assert sum(
            1 for s in res.spans.walk() if s.name == "esc.round"
        ) == len(restart_events) + 1
        assert res.spans.cycle_sum("esc.restart") > 0

    def test_sm_utilization_bounds(self, rng):
        a = random_csr(rng, 60, 60, 0.1)
        res = ac_spgemm(a, a, _small_opts())
        assert 0.0 < res.sm_utilization <= 1.0

    def test_engine_stats_populated(self, rng):
        a = random_csr(rng, 40, 40, 0.1)
        ref = ac_spgemm(a, a, _small_opts(engine="reference"))
        bat = ac_spgemm(a, a, _small_opts(engine="batched"))
        assert ref.engine_stats["esc_rounds"] >= 1
        assert bat.engine_stats["fused_esc_launches"] >= 1

    def test_degraded_run_spans_and_metrics(self):
        a = random_uniform(300, 300, 6, seed=1)
        opts = AcSpgemmOptions(
            chunk_pool_bytes=20000, max_restarts=0, on_failure="fallback"
        )
        res = ac_spgemm(a, a, opts)
        assert res.degraded
        root = res.spans
        assert root.attrs["degraded"] is True
        assert root.find("fallback") is not None
        assert root.find("fallback").duration == pytest.approx(
            res.stage_cycles["FB"]
        )
        assert any(e.label == "degraded" for e in root.events)
        reg = MetricsRegistry.from_result(res)
        assert reg.value("repro_degraded_runs_total") == 1
        assert reg.value(
            "repro_failures_total", kind=res.failure["kind"]
        ) == 1


# ---------------------------------------------------------------------------
# cross-engine parity + determinism (acceptance criteria)
# ---------------------------------------------------------------------------


def _normalized_tree(res) -> dict:
    d = res.spans.to_dict()
    d["attrs"] = {k: v for k, v in d["attrs"].items() if k != "engine"}
    return d


class TestEngineParity:
    @pytest.fixture(scope="class")
    def runs(self):
        a = random_uniform(200, 200, 5, seed=7)
        out = {}
        for eng in ENGINES:
            opts = AcSpgemmOptions(engine=eng, collect_trace=True)
            out[eng] = ac_spgemm(a, a, opts)
        return out

    def test_counter_totals_identical(self, runs):
        ref = runs["reference"].counters.snapshot()
        for eng in ENGINES[1:]:
            assert runs[eng].counters.snapshot() == ref, eng

    def test_span_trees_identical(self, runs):
        ref = _normalized_tree(runs["reference"])
        for eng in ENGINES[1:]:
            assert _normalized_tree(runs[eng]) == ref, eng

    def test_trace_events_identical(self, runs):
        ref = runs["reference"].trace
        for eng in ENGINES[1:]:
            assert runs[eng].trace.kernels == ref.kernels, eng
            assert runs[eng].trace.points == ref.points, eng

    def test_metrics_identical_up_to_labels(self, runs):
        def comparable(res):
            m = MetricsRegistry.from_result(res).to_json()["metrics"]
            return {k: v for k, v in m.items() if "repro_host_ops" not in k}

        ref = comparable(runs["reference"])
        for eng in ENGINES[1:]:
            assert comparable(runs[eng]) == ref, eng


class TestDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_byte_identical_exports(self, engine):
        a = random_uniform(150, 150, 5, seed=3)
        opts = AcSpgemmOptions(engine=engine, collect_trace=True)
        blobs = []
        for _ in range(2):
            rep = profile_run(a, a, opts, matrix_name="det")
            blobs.append(
                (
                    json.dumps(rep.metrics_doc(), sort_keys=True),
                    json.dumps(rep.trace_payload()),
                    rep.registry().to_prometheus(),
                )
            )
        assert blobs[0] == blobs[1]


# ---------------------------------------------------------------------------
# Perfetto export + validation
# ---------------------------------------------------------------------------


class TestPerfetto:
    def test_profile_payload_validates(self, rng):
        a = random_csr(rng, 60, 60, 0.1)
        rep = profile_run(a, a, _small_opts(collect_trace=True))
        payload = rep.trace_payload()
        validate_perfetto(payload)  # does not raise
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {1, 2}
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "M"}
        assert names == {"process_name", "thread_name"}

    def test_spans_only_payload(self, rng):
        a = random_csr(rng, 30, 30, 0.1)
        res = ac_spgemm(a, a, _small_opts())
        payload = perfetto_payload(spans=res.spans, clock_ghz=res.clock_ghz)
        validate_perfetto(payload)

    def test_rejects_overlapping_slices(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
            ]
        }
        with pytest.raises(ValueError, match="overlap"):
            validate_perfetto(bad)

    def test_accepts_nested_and_disjoint(self):
        ok = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 2, "dur": 3, "pid": 1, "tid": 1},
                {"name": "c", "ph": "X", "ts": 10, "dur": 5, "pid": 1, "tid": 1},
            ]
        }
        validate_perfetto(ok)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_perfetto({"events": []})
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_perfetto(
                {"traceEvents": [
                    {"name": "bogus_meta", "ph": "M", "pid": 1, "tid": 1,
                     "args": {"name": "x"}},
                ]}
            )
        with pytest.raises(ValueError):
            validate_perfetto(
                {"traceEvents": [
                    {"name": "a", "ph": "X", "ts": -1, "dur": 1,
                     "pid": 1, "tid": 1},
                ]}
            )


# ---------------------------------------------------------------------------
# profile CLI end-to-end
# ---------------------------------------------------------------------------


class TestProfileCli:
    def test_suite_entry_with_all_outputs(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        prom = tmp_path / "p.txt"
        rc = cli_main([
            "profile", "suite:uniform-a1.5-0",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--prom-out", str(prom),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile of uniform-a1.5-0" in out and "span tree" in out
        validate_perfetto_file(trace)
        doc = json.loads(metrics.read_text())
        assert doc["bench"] == "profile" and doc["schema"] == 1
        assert doc["metrics"]['repro_runs_total{engine="reference"}'] == 1
        assert_prometheus_parseable(prom.read_text())

    def test_matrix_file_and_engine_flag(self, tmp_path, rng, capsys):
        m = random_csr(rng, 30, 30, 0.15)
        p = tmp_path / "m.mtx"
        write_matrix_market(p, m)
        rc = cli_main(["profile", str(p), "--engine", "batched", "--float"])
        assert rc == 0
        assert "engine=batched" in capsys.readouterr().out

    def test_unknown_suite_entry_fails(self):
        with pytest.raises(SystemExit):
            cli_main(["profile", "suite:no-such-matrix"])


# ---------------------------------------------------------------------------
# CLI degraded column (three-valued) + CSV escaping
# ---------------------------------------------------------------------------


class TestCliCsv:
    def test_degraded_column_three_valued(self, rng):
        from repro.cli import _run_one

        m = random_csr(rng, 25, 25, 0.15)
        no_fb = _run_one("m", m, dtype=np.float64, verify=False)
        fb_clean = _run_one(
            "m", m, dtype=np.float64, verify=False, fallback=True
        )
        assert no_fb["degraded"] == ""
        assert fb_clean["degraded"] == "False"

    def test_comma_matrix_name_roundtrips(self, tmp_path, rng):
        import csv

        from repro.cli import _run_one, _write_rows

        m = random_csr(rng, 20, 20, 0.2)
        row = _run_one('weird, name "x"', m, dtype=np.float64, verify=False)
        out = tmp_path / "r.csv"
        _write_rows(str(out), [row])
        with open(out, newline="") as fh:
            back = list(csv.DictReader(fh))
        assert len(back) == 1
        assert back[0]["matrix"] == 'weird, name "x"'
        assert back[0]["nnz"] == str(row["nnz"])


# ---------------------------------------------------------------------------
# bench_compare regression diff
# ---------------------------------------------------------------------------


def _load_bench_compare():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_compare.py"
    spec = importlib.util.spec_from_file_location("bench_compare", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBenchCompare:
    def test_flatten_and_exclusions(self):
        bc = _load_bench_compare()
        flat = bc.flatten({"a": {"b": 1}, "c": [2.5, {"d": 3}], "s": "x",
                           "ok": True})
        assert flat == {"a.b": 1.0, "c[0]": 2.5, "c[1].d": 3.0}
        assert bc.excluded("cases[0].seconds.reference")
        assert bc.excluded('repro_host_ops_total{op="esc_rounds"}')
        assert not bc.excluded(
            'repro_traffic_total{counter="host_round_trips"}'
        )

    def test_detects_regression_and_improvement(self):
        bc = _load_bench_compare()
        base = {"metrics": {"cycles": 100.0, "bytes": 50, "wall_seconds": 9.0}}
        cand = {"metrics": {"cycles": 110.0, "bytes": 40, "wall_seconds": 1.0}}
        reg, imp, missing = bc.compare(base, cand, 0.01)
        assert [r["key"] for r in reg] == ["metrics.cycles"]
        assert len(imp) == 1 and "bytes" in imp[0]
        assert missing == []

    def test_main_exit_codes(self, tmp_path):
        bc = _load_bench_compare()
        b = tmp_path / "b.json"
        c = tmp_path / "c.json"
        b.write_text(json.dumps({"metrics": {"cycles": 100}}))
        c.write_text(json.dumps({"metrics": {"cycles": 100}}))
        assert bc.main([str(b), str(c)]) == 0
        c.write_text(json.dumps({"metrics": {"cycles": 200}}))
        assert bc.main([str(b), str(c)]) == 1
        c.write_text(json.dumps({"metrics": {"other": 1}}))
        assert bc.main([str(b), str(c)]) == 0
        assert bc.main([str(b), str(c), "--fail-on-missing"]) == 1

    def test_seed_artifact_matches_fresh_run(self):
        """The committed seed artifact must stay reproducible."""
        bc = _load_bench_compare()
        seed_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "seed" / "BENCH_profile_seed.json"
        )
        from repro.matrices import suite_entries
        from repro.sparse import squared_operands

        entry = next(
            e for e in suite_entries() if e.name == "uniform-a1.5-0"
        )
        a, b = squared_operands(entry.build())
        rep = profile_run(
            a, b, AcSpgemmOptions(collect_trace=True),
            matrix_name="uniform-a1.5-0",
        )
        reg, _, missing = bc.compare(
            json.loads(seed_path.read_text()), rep.metrics_doc(), 0.001
        )
        assert reg == [] and missing == []

"""Tests for the element-wise / masked / diagonal operations."""

import numpy as np
import pytest

from repro import CSRMatrix
from repro.sparse import diagonal, hadamard, mask_by_pattern, validate_csr
from tests.conftest import random_csr


class TestHadamard:
    def test_matches_dense(self, rng):
        a = random_csr(rng, 20, 15, 0.3)
        b = random_csr(rng, 20, 15, 0.3)
        np.testing.assert_allclose(
            hadamard(a, b).to_dense(), a.to_dense() * b.to_dense()
        )

    def test_canonical_output(self, rng):
        a = random_csr(rng, 25, 25, 0.2)
        b = random_csr(rng, 25, 25, 0.2)
        validate_csr(hadamard(a, b))

    def test_disjoint_patterns_empty(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
        b = CSRMatrix.from_dense(np.array([[0.0, 2.0], [0.0, 0.0]]))
        assert hadamard(a, b).nnz == 0

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shape"):
            hadamard(random_csr(rng, 3, 3, 0.5), random_csr(rng, 3, 4, 0.5))

    def test_self_hadamard_squares(self, rng):
        a = random_csr(rng, 10, 10, 0.4)
        np.testing.assert_allclose(
            hadamard(a, a).to_dense(), a.to_dense() ** 2
        )


class TestMask:
    def test_keeps_only_masked_positions(self, rng):
        a = random_csr(rng, 15, 15, 0.4)
        mask = random_csr(rng, 15, 15, 0.3)
        out = mask_by_pattern(a, mask)
        dense = a.to_dense() * (mask.to_dense() != 0)
        np.testing.assert_allclose(out.to_dense(), dense)
        validate_csr(out)

    def test_full_mask_is_identity(self, rng):
        a = random_csr(rng, 8, 8, 0.5)
        assert mask_by_pattern(a, a).exactly_equal(a)


class TestDiagonal:
    def test_square(self):
        d = np.array([[1.0, 2.0], [0.0, 3.0]])
        np.testing.assert_array_equal(
            diagonal(CSRMatrix.from_dense(d)), [1.0, 3.0]
        )

    def test_rectangular(self, rng):
        a = random_csr(rng, 6, 10, 0.5)
        np.testing.assert_allclose(
            diagonal(a), np.diag(a.to_dense())[:6]
        )

    def test_empty_diagonal(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_array_equal(
            diagonal(CSRMatrix.from_dense(d)), [0.0, 0.0]
        )

    def test_trace_counts_closed_walks(self, rng):
        from repro.sparse import spgemm_reference

        a = random_csr(rng, 12, 12, 0.3)
        a2 = spgemm_reference(a, a)
        np.testing.assert_allclose(
            diagonal(a2).sum(), np.trace(a.to_dense() @ a.to_dense())
        )

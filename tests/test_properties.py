"""Property-based tests (hypothesis) on the core data structures and
invariants of the pipeline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm, spgemm_reference, transpose
from repro.baselines import accumulate_products, expand_products
from repro.core import LocalWorkDistribution, compact_sorted
from repro.core.compaction import sequential_compaction_scan
from repro.gpu import BlockContext, CostMeter, SMALL_DEVICE, TITAN_XP
from repro.gpu.radix import radix_sort_permutation
from repro.sparse import COOMatrix, validate_csr

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def coo_matrices(draw, max_dim=24, max_nnz=80):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    r = draw(
        st.lists(st.integers(0, rows - 1), min_size=nnz, max_size=nnz)
    )
    c = draw(
        st.lists(st.integers(0, cols - 1), min_size=nnz, max_size=nnz)
    )
    v = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(
        rows=rows,
        cols=cols,
        row_idx=np.asarray(r, dtype=np.int64),
        col_idx=np.asarray(c, dtype=np.int64),
        values=np.asarray(v, dtype=np.float64),
    )


class TestSparseProperties:
    @SETTINGS
    @given(coo_matrices())
    def test_coo_to_csr_is_canonical(self, coo):
        validate_csr(coo.to_csr())

    @SETTINGS
    @given(coo_matrices())
    def test_coo_to_csr_preserves_sums(self, coo):
        csr = coo.to_csr()
        dense = np.zeros(coo.shape)
        np.add.at(dense, (coo.row_idx, coo.col_idx), coo.values)
        np.testing.assert_allclose(csr.to_dense(), dense, atol=1e-9)

    @SETTINGS
    @given(coo_matrices())
    def test_transpose_involution(self, coo):
        m = coo.to_csr()
        assert transpose(transpose(m)).exactly_equal(m)

    @SETTINGS
    @given(coo_matrices(max_dim=16, max_nnz=50))
    def test_spgemm_reference_matches_dense(self, coo):
        a = coo.to_csr()
        c = spgemm_reference(a, transpose(a))
        np.testing.assert_allclose(
            c.to_dense(), a.to_dense() @ a.to_dense().T, atol=1e-8
        )


class TestRadixProperties:
    @SETTINGS
    @given(
        st.lists(st.integers(0, (1 << 20) - 1), min_size=0, max_size=200),
        st.integers(1, 20),
    )
    def test_radix_equals_stable_argsort(self, keys, bits):
        keys = np.asarray(keys, dtype=np.uint64)
        meter = CostMeter(config=TITAN_XP)
        perm = radix_sort_permutation(meter, keys, 20)
        np.testing.assert_array_equal(perm, np.argsort(keys, kind="stable"))

    @SETTINGS
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=100))
    def test_radix_partial_bits_group_low_bits(self, keys):
        keys = np.asarray(keys, dtype=np.uint64)
        meter = CostMeter(config=TITAN_XP)
        perm = radix_sort_permutation(meter, keys, 4)
        low = (keys[perm] & np.uint64(0xF)).astype(np.int64)
        assert (np.diff(low) >= 0).all()


class TestCompactionProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(0, 31),
                st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=150,
        )
    )
    def test_vectorised_matches_sequential(self, triples):
        col_bits = 5
        rows = np.asarray([t[0] for t in triples], dtype=np.uint64)
        cols = np.asarray([t[1] for t in triples], dtype=np.uint64)
        vals = np.asarray([t[2] for t in triples])
        keys = (rows << np.uint64(col_bits)) | cols
        order = np.argsort(keys, kind="stable")
        keys, vals = keys[order], vals[order]
        meter = CostMeter(config=TITAN_XP)
        comp = compact_sorted(meter, keys, vals, col_bits)

        def same_row(a, b):
            return (a >> col_bits) == (b >> col_bits)

        seq = sequential_compaction_scan(keys, vals, same_row)
        ends = [
            i
            for i in range(len(keys))
            if i == len(keys) - 1 or keys[i] != keys[i + 1]
        ]
        np.testing.assert_array_equal(comp.keys, keys[ends])
        np.testing.assert_allclose(
            comp.values, [seq[i].value for i in ends], rtol=1e-9, atol=1e-12
        )

    @SETTINGS
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=100),
    )
    def test_compaction_conserves_sum(self, keys):
        keys = np.sort(np.asarray(keys, dtype=np.uint64))
        vals = np.ones(keys.shape[0])
        meter = CostMeter(config=TITAN_XP)
        comp = compact_sorted(meter, keys, vals, 7)
        assert comp.values.sum() == pytest.approx(keys.shape[0])
        assert comp.keys.shape[0] == np.unique(keys).shape[0]


class TestWorkDistributionProperties:
    @SETTINGS
    @given(
        st.lists(st.integers(0, 12), min_size=1, max_size=16),
        st.lists(st.integers(1, 30), min_size=1, max_size=8),
    )
    def test_consumption_is_exact_partition(self, elements, consumes):
        """Any sequence of receive_work calls consumes every (entry,
        offset) product exactly once, in prefix order."""
        ctx = BlockContext(config=SMALL_DEVICE, block_id=0)
        wd = LocalWorkDistribution(ctx, len(elements))
        wd.place_work_with_origin(np.asarray(elements, dtype=np.int64))
        seen = []
        for c in consumes:
            a_res, b_res, taken = wd.receive_work(c)
            seen.extend(zip(a_res.tolist(), b_res.tolist()))
        a_res, b_res, _ = wd.receive_work(10**6)
        seen.extend(zip(a_res.tolist(), b_res.tolist()))
        expected = [
            (e, off) for e, n in enumerate(elements) for off in range(n)
        ]
        assert sorted(seen) == sorted(expected)
        assert wd.size() == 0

    @SETTINGS
    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=12),
        st.integers(0, 60),
    )
    def test_restart_equivalence(self, elements, consumed):
        """restart_from(k) is equivalent to having consumed k already."""
        total = sum(elements)
        consumed = min(consumed, total)
        ctx1 = BlockContext(config=SMALL_DEVICE, block_id=0)
        wd1 = LocalWorkDistribution(ctx1, len(elements))
        wd1.place_work_with_origin(np.asarray(elements, dtype=np.int64))
        wd1.receive_work(consumed)
        rest1 = wd1.receive_work(10**6)

        ctx2 = BlockContext(config=SMALL_DEVICE, block_id=0)
        wd2 = LocalWorkDistribution(ctx2, len(elements))
        wd2.place_work_with_origin(np.asarray(elements, dtype=np.int64))
        wd2.restart_from(consumed)
        rest2 = wd2.receive_work(10**6)
        np.testing.assert_array_equal(rest1[0], rest2[0])
        np.testing.assert_array_equal(rest1[1], rest2[1])


class TestPipelineProperties:
    @SETTINGS
    @given(coo_matrices(max_dim=20, max_nnz=60))
    def test_ac_spgemm_matches_reference(self, coo):
        a = coo.to_csr()
        b = transpose(a)
        opts = AcSpgemmOptions(
            device=SMALL_DEVICE, chunk_pool_lower_bound_bytes=1 << 18
        )
        res = ac_spgemm(a, b, opts)
        ref = spgemm_reference(a, b)
        assert res.matrix.allclose(ref, rtol=1e-9, atol=1e-12)
        validate_csr(res.matrix)

    @SETTINGS
    @given(coo_matrices(max_dim=20, max_nnz=60), st.integers(0, 3))
    def test_accumulate_products_structure_independent_of_order(
        self, coo, seed
    ):
        a = coo.to_csr()
        b = transpose(a)
        rows, cols, vals = expand_products(a, b, np.dtype(np.float64))
        c1 = accumulate_products(rows, cols, vals, a.rows, a.rows)
        c2 = accumulate_products(
            rows, cols, vals, a.rows, a.rows, shuffle_seed=seed
        )
        np.testing.assert_array_equal(c1.row_ptr, c2.row_ptr)
        np.testing.assert_array_equal(c1.col_idx, c2.col_idx)
        np.testing.assert_allclose(c1.values, c2.values, rtol=1e-9, atol=1e-12)

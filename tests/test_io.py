"""Unit tests for Matrix Market and binary I/O."""

import numpy as np
import pytest

from repro import CSRMatrix, load_matrix
from repro.sparse import (
    MatrixMarketError,
    load_binary,
    read_matrix_market,
    save_binary,
    write_matrix_market,
)
from tests.conftest import random_csr


class TestMatrixMarket:
    def test_round_trip(self, tmp_path, rng):
        m = random_csr(rng, 12, 9, 0.3)
        p = tmp_path / "m.mtx"
        write_matrix_market(p, m)
        back = read_matrix_market(p)
        assert m.allclose(back, rtol=1e-15)

    def test_symmetric_expansion(self, tmp_path):
        p = tmp_path / "sym.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 5.0\n"
            "2 1 2.0\n"
            "3 2 7.0\n"
        )
        m = read_matrix_market(p)
        expected = np.array([[5, 2, 0], [2, 0, 7], [0, 7, 0]], dtype=float)
        np.testing.assert_array_equal(m.to_dense(), expected)

    def test_skew_symmetric(self, tmp_path):
        p = tmp_path / "skew.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        m = read_matrix_market(p)
        np.testing.assert_array_equal(
            m.to_dense(), np.array([[0, -3.0], [3.0, 0]])
        )

    def test_pattern_entries_get_unit_values(self, tmp_path):
        p = tmp_path / "pat.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 3 2\n"
            "1 2\n"
            "2 3\n"
        )
        m = read_matrix_market(p)
        assert m.nnz == 2
        np.testing.assert_array_equal(m.values, [1.0, 1.0])

    def test_array_format(self, tmp_path):
        p = tmp_path / "arr.mtx"
        p.write_text(
            "%%MatrixMarket matrix array real general\n"
            "2 2\n"
            "1.0\n0.0\n3.0\n4.0\n"
        )
        m = read_matrix_market(p)
        np.testing.assert_array_equal(
            m.to_dense(), np.array([[1.0, 3.0], [0.0, 4.0]])
        )

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "c.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "1 1 1\n"
            "1 1 2.5\n"
        )
        assert read_matrix_market(p).values[0] == 2.5

    def test_duplicates_summed(self, tmp_path):
        p = tmp_path / "d.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "1 1 2\n"
            "1 1 1.0\n"
            "1 1 2.0\n"
        )
        m = read_matrix_market(p)
        assert m.nnz == 1 and m.values[0] == 3.0

    @pytest.mark.parametrize(
        "banner,err",
        [
            ("%%NotMM matrix coordinate real general", "banner"),
            ("%%MatrixMarket matrix weird real general", "format"),
            ("%%MatrixMarket matrix coordinate complex general", "complex"),
            ("%%MatrixMarket matrix coordinate real hermitian", "hermitian"),
        ],
    )
    def test_bad_headers(self, tmp_path, banner, err):
        p = tmp_path / "bad.mtx"
        p.write_text(banner + "\n1 1 0\n")
        with pytest.raises(MatrixMarketError, match=err):
            read_matrix_market(p)

    def test_wrong_entry_count(self, tmp_path):
        p = tmp_path / "short.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 3\n"
            "1 1 1.0\n"
        )
        with pytest.raises(MatrixMarketError, match="expected 3"):
            read_matrix_market(p)

    def test_empty_matrix(self, tmp_path):
        p = tmp_path / "e.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n3 4 0\n")
        m = read_matrix_market(p)
        assert m.shape == (3, 4) and m.nnz == 0


class TestBinary:
    def test_round_trip(self, tmp_path, rng):
        m = random_csr(rng, 20, 20, 0.2)
        p = tmp_path / "m.npz"
        save_binary(p, m)
        assert load_binary(p).exactly_equal(m)

    def test_load_matrix_builds_cache(self, tmp_path, rng):
        m = random_csr(rng, 10, 10, 0.3)
        p = tmp_path / "m.mtx"
        write_matrix_market(p, m)
        first = load_matrix(p)
        assert (tmp_path / "m.npz").exists()
        second = load_matrix(p)  # from cache
        assert first.exactly_equal(second)

    def test_load_matrix_npz_direct(self, tmp_path, rng):
        m = random_csr(rng, 8, 8, 0.4)
        p = tmp_path / "x.npz"
        save_binary(p, m)
        assert load_matrix(p).exactly_equal(m)

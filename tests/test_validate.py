"""Unit tests for CSR validation."""

import numpy as np
import pytest

from repro import CSRMatrix
from repro.sparse import CSRValidationError, is_canonical, validate_csr


def make_raw(row_ptr, col_idx, values, rows=2, cols=4):
    m = CSRMatrix.empty(rows, cols)
    m.row_ptr = np.asarray(row_ptr, dtype=np.int64)
    m.col_idx = np.asarray(col_idx, dtype=np.int64)
    m.values = np.asarray(values, dtype=np.float64)
    return m


def test_valid_matrix_passes(medium_matrix):
    validate_csr(medium_matrix)
    assert is_canonical(medium_matrix)


def test_unsorted_row_fails():
    m = make_raw([0, 2, 2], [3, 1], [1.0, 2.0])
    with pytest.raises(CSRValidationError, match="ascending"):
        validate_csr(m)
    assert not is_canonical(m)


def test_duplicate_column_fails():
    m = make_raw([0, 2, 2], [1, 1], [1.0, 2.0])
    with pytest.raises(CSRValidationError, match="ascending"):
        validate_csr(m)


def test_duplicate_allowed_when_not_unique():
    m = make_raw([0, 2, 2], [1, 1], [1.0, 2.0])
    validate_csr(m, require_unique=False)


def test_decreasing_row_ptr_fails():
    m = make_raw([0, 2, 1], [0, 1, 2], [1.0, 2.0, 3.0])
    m.col_idx = np.array([0, 1, 2])
    m.values = np.array([1.0, 2.0, 3.0])
    m.row_ptr = np.array([0, 2, 1])
    with pytest.raises(
        CSRValidationError, match="decreases|does not equal nnz"
    ):
        validate_csr(m)


def test_column_out_of_range_fails():
    m = make_raw([0, 1, 1], [9], [1.0])
    with pytest.raises(CSRValidationError, match="out of range"):
        validate_csr(m)


def test_nan_detected_when_requested():
    m = make_raw([0, 1, 1], [1], [np.nan])
    validate_csr(m)  # default: finiteness not checked
    with pytest.raises(CSRValidationError, match="non-finite"):
        validate_csr(m, require_finite=True)


def test_trailing_empty_rows_ok():
    m = make_raw([0, 2, 2], [0, 1], [1.0, 2.0])
    validate_csr(m)


def test_all_empty_rows_ok():
    validate_csr(CSRMatrix.empty(5, 5))

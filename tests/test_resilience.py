"""Fault-injection, typed-error and graceful-degradation tests.

Everything here carries the ``fault`` marker so CI can run the
resilience suite on its own (``pytest -m fault``).

The acceptance bar throughout: the same :class:`FaultPlan` produces the
same exceptions, the same restart counts and a bit-identical recovered
C on all three engines.
"""

import numpy as np
import pytest

from repro import (
    AcSpgemmOptions,
    FaultPlan,
    FaultSpec,
    ReproError,
    RestartBudgetExceeded,
    ac_spgemm,
    spgemm_reference,
)
from repro.core.chunks import PoolExhausted
from repro.gpu import SMALL_DEVICE
from repro.gpu.memory import ScratchpadOverflow
from repro.resilience import ADVERSARIAL_MODES, corrupt_csr
from repro.sparse import validate_csr
from repro.sparse.validate import CSRValidationError
from tests.conftest import random_csr

pytestmark = pytest.mark.fault

ENGINES = ("reference", "batched", "parallel", "process")


@pytest.fixture
def operand(rng):
    return random_csr(rng, 60, 60, 0.1)


def _opts(**kwargs):
    kwargs.setdefault("device", SMALL_DEVICE)
    kwargs.setdefault("chunk_pool_lower_bound_bytes", 1 << 20)
    return AcSpgemmOptions(**kwargs)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec(kind="pool_exhaust", at=3),
                FaultSpec(kind="scratchpad_overflow", stage="MM",
                          round=1, block=2),
                FaultSpec(kind="block_abort", stage="ESC", round=0, block=0),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_dict_round_trip_drops_nothing(self):
        plan = FaultPlan.pool_exhaust_at(1, 5, 9, seed=42)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.seed == 42
        assert again == plan

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray")
        with pytest.raises(ValueError, match="'at' ordinal"):
            FaultSpec(kind="pool_exhaust")
        with pytest.raises(ValueError, match="stage"):
            FaultSpec(kind="scratchpad_overflow", stage="GLB",
                      round=0, block=0)
        with pytest.raises(ValueError, match="round"):
            FaultSpec(kind="block_abort", stage="ESC", block=0)

    def test_activation_gives_fresh_counters(self):
        plan = FaultPlan.pool_exhaust_at(1)
        inj1, inj2 = plan.activate(), plan.activate()
        assert inj1.pool_gate(64) is True
        assert inj1.admissions == 1
        assert inj2.admissions == 0  # untouched by inj1's run


class TestPoolExhaustInjection:
    def test_forces_restart_and_recovers(self, operand):
        clean = ac_spgemm(operand, operand, _opts())
        assert clean.restarts == 0
        faulty = ac_spgemm(
            operand, operand,
            _opts(fault_plan=FaultPlan.pool_exhaust_at(3)),
        )
        assert faulty.restarts == 1
        assert faulty.matrix.exactly_equal(clean.matrix)

    def test_identical_across_engines(self, operand):
        plan = FaultPlan.pool_exhaust_at(3, 40)
        results = [
            ac_spgemm(operand, operand, _opts(fault_plan=plan, engine=e))
            for e in ENGINES
        ]
        assert len({r.restarts for r in results}) == 1
        assert results[0].restarts >= 1
        for r in results[1:]:
            assert r.matrix.exactly_equal(results[0].matrix)

    def test_same_plan_same_run(self, operand):
        plan = FaultPlan.pool_exhaust_at(5)
        r1 = ac_spgemm(operand, operand, _opts(fault_plan=plan))
        r2 = ac_spgemm(operand, operand, _opts(fault_plan=plan))
        assert r1.restarts == r2.restarts
        assert r1.matrix.exactly_equal(r2.matrix)

    def test_budget_exhaustion_raises_typed(self, operand):
        # every early admission fails: no restart can make progress
        plan = FaultPlan.pool_exhaust_at(*range(1, 500))
        opts = _opts(fault_plan=plan, max_restarts=2)
        with pytest.raises(RestartBudgetExceeded) as ei:
            ac_spgemm(operand, operand, opts)
        assert ei.value.stage == "ESC"
        assert ei.value.block_id is not None
        assert ei.value.restarts == 2
        assert isinstance(ei.value, ReproError)

    def test_direct_pool_exhausted_carries_context(self):
        from repro.core.chunks import Chunk, ChunkPool
        from repro.gpu.cost import DEFAULT_COSTS, CostMeter

        pool = ChunkPool(capacity_bytes=16)
        chunk = Chunk(order_key=(7, 0), kind="data", first_row=0, last_row=0)
        with pytest.raises(PoolExhausted) as ei:
            pool.allocate(chunk, 64, CostMeter(DEFAULT_COSTS))
        assert ei.value.block_id == 7
        assert isinstance(ei.value, MemoryError)  # old except-clauses still work


class TestScratchpadOverflowInjection:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_raises_typed_with_context(self, operand, engine):
        plan = FaultPlan.single(
            "scratchpad_overflow", stage="ESC", round=0, block=0
        )
        with pytest.raises(ScratchpadOverflow) as ei:
            ac_spgemm(operand, operand, _opts(fault_plan=plan, engine=engine))
        assert ei.value.stage == "ESC"
        assert ei.value.restarts == 0
        assert "injected" in str(ei.value)

    def test_merge_stage_overflow(self, rng):
        # density 0.2 drives this matrix through the MM merge stage
        a = random_csr(rng, 80, 80, 0.2)
        plan = FaultPlan.single(
            "scratchpad_overflow", stage="MM", round=0, block=0
        )
        with pytest.raises(ScratchpadOverflow) as ei:
            ac_spgemm(a, a, _opts(fault_plan=plan))
        assert ei.value.stage == "MM"

    def test_unreached_stage_never_fires(self, operand):
        # a fault parked in a round the run never enters must be inert
        plan = FaultPlan.single(
            "scratchpad_overflow", stage="SM", round=99, block=0
        )
        clean = ac_spgemm(operand, operand, _opts())
        faulty = ac_spgemm(operand, operand, _opts(fault_plan=plan))
        assert faulty.matrix.exactly_equal(clean.matrix)


class TestBlockAbortInjection:
    def test_abort_costs_one_restart_same_bits(self, operand):
        clean = ac_spgemm(operand, operand, _opts())
        plan = FaultPlan.single("block_abort", stage="ESC", round=0, block=1)
        results = [
            ac_spgemm(operand, operand, _opts(fault_plan=plan, engine=e))
            for e in ENGINES
        ]
        for r in results:
            assert r.restarts == clean.restarts + 1
            assert r.matrix.exactly_equal(clean.matrix)

    def test_abort_whole_round(self, operand):
        clean = ac_spgemm(operand, operand, _opts())
        plan = FaultPlan(
            faults=tuple(
                FaultSpec(kind="block_abort", stage="ESC", round=0, block=i)
                for i in range(64)
            )
        )
        r = ac_spgemm(operand, operand, _opts(fault_plan=plan))
        assert r.restarts >= 1
        assert r.matrix.exactly_equal(clean.matrix)


class TestGracefulDegradation:
    def _degraded(self, operand, engine="reference"):
        plan = FaultPlan.single(
            "scratchpad_overflow", stage="ESC", round=0, block=0
        )
        return ac_spgemm(
            operand, operand,
            _opts(fault_plan=plan, on_failure="fallback", engine=engine),
        )

    def test_fallback_is_recorded(self, operand):
        res = self._degraded(operand)
        assert res.degraded is True
        assert res.failure["kind"] == "ScratchpadOverflow"
        assert res.failure["stage"] == "ESC"
        assert "FB" in res.stage_cycles and res.stage_cycles["FB"] > 0

    def test_fallback_matches_reference(self, operand):
        res = self._degraded(operand)
        ref = spgemm_reference(operand, operand)
        # exact Gustavson sparsity pattern, values within FP reassociation
        assert np.array_equal(res.matrix.row_ptr, ref.row_ptr)
        assert np.array_equal(res.matrix.col_idx, ref.col_idx)
        assert res.matrix.allclose(ref, rtol=1e-10)

    def test_fallback_bit_identical_across_engines(self, operand):
        results = [self._degraded(operand, engine=e) for e in ENGINES]
        for r in results[1:]:
            assert r.matrix.exactly_equal(results[0].matrix)

    def test_pool_exhaustion_degrades(self, operand):
        plan = FaultPlan.pool_exhaust_at(*range(1, 500))
        res = ac_spgemm(
            operand, operand,
            _opts(fault_plan=plan, max_restarts=2, on_failure="fallback"),
        )
        assert res.degraded
        assert res.failure["kind"] == "RestartBudgetExceeded"
        ref = spgemm_reference(operand, operand)
        assert np.array_equal(res.matrix.col_idx, ref.col_idx)
        assert res.matrix.allclose(ref, rtol=1e-10)

    def test_clean_run_not_degraded(self, operand):
        res = ac_spgemm(operand, operand, _opts(on_failure="fallback"))
        assert res.degraded is False and res.failure is None

    def test_validation_errors_never_degrade(self, operand):
        bad = corrupt_csr(operand, "negative_index")
        with pytest.raises(CSRValidationError):
            ac_spgemm(bad, bad, _opts(on_failure="fallback"))


class TestSanitizer:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_clean_run_passes_and_matches(self, operand, engine):
        plain = ac_spgemm(operand, operand, _opts(engine=engine))
        checked = ac_spgemm(
            operand, operand, _opts(engine=engine, sanitize=True)
        )
        assert checked.matrix.exactly_equal(plain.matrix)
        assert checked.stage_cycles == plain.stage_cycles

    def test_sanitize_survives_restarts(self, operand):
        res = ac_spgemm(
            operand, operand,
            _opts(sanitize=True, fault_plan=FaultPlan.pool_exhaust_at(3)),
        )
        assert res.restarts == 1

    def test_sanitize_rejects_nonfinite_input(self, operand):
        bad = corrupt_csr(operand, "nan_value")
        with pytest.raises(CSRValidationError):
            ac_spgemm(bad, bad, _opts(sanitize=True))


class TestAdversarialInputs:
    @pytest.mark.parametrize("mode", ADVERSARIAL_MODES)
    def test_corruption_is_deterministic(self, operand, mode):
        c1 = corrupt_csr(operand, mode, seed=3)
        c2 = corrupt_csr(operand, mode, seed=3)
        assert np.array_equal(c1.col_idx, c2.col_idx)
        assert np.array_equal(c1.values, c2.values, equal_nan=True)

    @pytest.mark.parametrize(
        "mode",
        ["index_overflow", "negative_index", "unsorted_columns",
         "duplicate_columns"],
    )
    def test_structural_corruption_rejected(self, operand, mode):
        bad = corrupt_csr(operand, mode)
        with pytest.raises(CSRValidationError):
            validate_csr(bad)
        with pytest.raises(CSRValidationError):
            ac_spgemm(bad, bad, _opts())

    @pytest.mark.parametrize("mode", ["nan_value", "inf_value"])
    def test_nonfinite_needs_finite_check(self, operand, mode):
        bad = corrupt_csr(operand, mode)
        validate_csr(bad)  # structurally fine
        with pytest.raises(CSRValidationError):
            validate_csr(bad, require_finite=True)

    def test_unknown_mode_rejected(self, operand):
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_csr(operand, "bit_rot")


class TestErrorHierarchy:
    def test_context_and_one_line(self):
        exc = RestartBudgetExceeded(
            "restart limit exceeded", stage="MM", block_id=4, restarts=9
        )
        ctx = exc.context()
        assert ctx["kind"] == "RestartBudgetExceeded"
        assert ctx["stage"] == "MM"
        assert ctx["block_id"] == 4
        assert ctx["restarts"] == 9
        line = exc.one_line()
        assert "\n" not in line
        assert "stage=MM" in line and "restart limit exceeded" in line

    def test_hierarchy_rebases_old_types(self):
        assert issubclass(PoolExhausted, ReproError)
        assert issubclass(PoolExhausted, MemoryError)
        assert issubclass(ScratchpadOverflow, ReproError)
        assert issubclass(ScratchpadOverflow, MemoryError)
        assert issubclass(CSRValidationError, ReproError)
        assert issubclass(CSRValidationError, ValueError)

"""Unit tests for the cycle cost model."""

import numpy as np
import pytest

from repro.gpu import CostMeter, TITAN_XP, TrafficCounters


@pytest.fixture
def meter():
    return CostMeter(config=TITAN_XP)


class TestGlobalMemory:
    def test_coalesced_cheaper_than_uncoalesced(self):
        m1 = CostMeter(config=TITAN_XP)
        m2 = CostMeter(config=TITAN_XP)
        m1.global_read(1000, 4, coalesced=True)
        m2.global_read(1000, 4, coalesced=False)
        assert m2.cycles > 4 * m1.cycles

    def test_transaction_rounding(self, meter):
        meter.global_read(1, 4)  # one 128-byte transaction minimum
        assert meter.counters.global_transactions == 1
        assert meter.cycles == pytest.approx(128 / meter.constants.bytes_per_cycle)

    def test_write_counts_bytes(self, meter):
        meter.global_write(10, 8)
        assert meter.counters.global_bytes_written == 80
        assert meter.counters.global_bytes_read == 0

    def test_zero_elements_free(self, meter):
        meter.global_read(0, 8)
        assert meter.cycles == 0


class TestOnChip:
    def test_scratchpad_cost(self, meter):
        meter.scratchpad(64)
        assert meter.cycles == pytest.approx(64 / 32)
        assert meter.counters.scratchpad_accesses == 64

    def test_flops_counted(self, meter):
        meter.flops(256)
        assert meter.counters.flops == 256
        assert meter.cycles == pytest.approx(256 / 128)

    def test_radix_cost_proportional_to_bits(self):
        """The property AC-SpGEMM's bit reduction exploits (§3.2.3)."""
        costs = []
        for bits in (8, 16, 32):
            m = CostMeter(config=TITAN_XP)
            m.radix_sort(2048, bits)
            costs.append(m.cycles)
        assert costs[1] == pytest.approx(2 * costs[0])
        assert costs[2] == pytest.approx(4 * costs[0])

    def test_radix_counters(self, meter):
        meter.radix_sort(100, 16)
        assert meter.counters.sorted_elements == 100
        assert meter.counters.sort_passes == 4

    def test_radix_rejects_zero_bits(self, meter):
        # via the radix module; the meter itself clamps to >= 1 pass
        meter.radix_sort(10, 1)
        assert meter.counters.sort_passes == 1

    def test_scan_cost_linear(self):
        m1 = CostMeter(config=TITAN_XP)
        m2 = CostMeter(config=TITAN_XP)
        m1.scan(100)
        m2.scan(200)
        assert m2.cycles == pytest.approx(2 * m1.cycles)


class TestHashCosts:
    def test_scratchpad_probe_cheaper_than_global(self):
        m1 = CostMeter(config=TITAN_XP)
        m2 = CostMeter(config=TITAN_XP)
        m1.hash_probe(1000, in_scratchpad=True)
        m2.hash_probe(1000, in_scratchpad=False)
        assert m2.cycles > 3 * m1.cycles
        assert m1.counters.hash_probes == m2.counters.hash_probes == 1000

    def test_collision_cost(self, meter):
        meter.hash_collision(10)
        assert meter.counters.hash_collisions == 10


class TestDeviceEvents:
    def test_kernel_launch(self, meter):
        meter.kernel_launch(2)
        assert meter.counters.kernel_launches == 2
        assert meter.cycles == pytest.approx(
            2 * meter.constants.kernel_launch_cycles
        )

    def test_host_round_trip_dearer_than_launch(self, meter):
        assert (
            meter.constants.host_round_trip_cycles
            > meter.constants.kernel_launch_cycles
        )

    def test_seconds(self, meter):
        meter.cycles = TITAN_XP.clock_ghz * 1e9  # exactly one second
        assert meter.seconds() == pytest.approx(1.0)


class TestCounters:
    def test_merge_accumulates(self):
        a = TrafficCounters(flops=5, atomic_ops=2)
        b = TrafficCounters(flops=3, hash_probes=7)
        a.merge(b)
        assert a.flops == 8 and a.atomic_ops == 2 and a.hash_probes == 7

    def test_snapshot_and_reset(self):
        c = TrafficCounters(flops=5)
        snap = c.snapshot()
        assert snap["flops"] == 5
        c.reset()
        assert c.flops == 0

    def test_meter_merge_keeps_cycles(self):
        a = CostMeter(config=TITAN_XP)
        b = CostMeter(config=TITAN_XP)
        a.cycles = 10
        b.cycles = 20
        b.flops(100)
        a.merge(b)
        assert a.cycles == 10  # counters only
        assert a.counters.flops == 100

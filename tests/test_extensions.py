"""Tests for the §5 future-work extensions: the hybrid dispatcher, the
sampling-based pool estimate, and the CLI runner."""

import numpy as np
import pytest

from repro import AcSpgemmOptions, CSRMatrix, ac_spgemm, spgemm_reference
from repro.baselines import HybridAdaptive, make_algorithm
from repro.core import (
    estimate_chunk_pool_bytes,
    sampled_chunk_pool_bytes,
    sampled_output_estimate,
)
from repro.matrices import banded, random_uniform
from tests.conftest import random_csr


class TestHybrid:
    def test_registered(self):
        assert make_algorithm("hybrid-adaptive").name == "hybrid-adaptive"

    def test_dispatches_sparse_to_esc(self):
        a = random_uniform(2000, 2000, 5, seed=1)
        h = HybridAdaptive()
        assert h.choose(a, a) == "esc"
        run = h.multiply(a, a)
        assert run.dispatched_to == "ac-spgemm"
        assert run.bit_stable

    def test_dispatches_dense_unstructured_to_hash(self):
        a = random_uniform(1100, 1100, 64, seed=2)
        h = HybridAdaptive()
        assert h.choose(a, a) == "hash"
        run = h.multiply(a, a)
        assert run.dispatched_to == "nsparse"
        assert not run.bit_stable

    def test_structured_dense_stays_on_esc(self):
        a = banded(600, 32, seed=3)  # wide rows but narrow column span
        h = HybridAdaptive()
        # narrow structure favours ESC despite average row length > 42
        assert h.choose(a, a) == "esc"

    def test_correct_both_paths(self, rng):
        for a in (
            random_uniform(400, 400, 4, seed=4),
            random_uniform(300, 300, 60, seed=5),
        ):
            run = HybridAdaptive().multiply(a, a)
            assert run.matrix.allclose(spgemm_reference(a, a))

    def test_never_slower_than_worst(self):
        """The point of the hybrid: close to the better of its two
        children on both sides of the crossover."""
        for a in (
            random_uniform(3000, 3000, 5, seed=6),
            random_uniform(1100, 1100, 64, seed=7),
        ):
            hy = HybridAdaptive().multiply(a, a).seconds
            ac = make_algorithm("ac-spgemm").multiply(a, a).seconds
            ns = make_algorithm("nsparse").multiply(a, a).seconds
            assert hy <= max(ac, ns) * 1.05

    def test_dimension_check(self, rng):
        a = random_csr(rng, 3, 4, 0.5)
        with pytest.raises(ValueError):
            HybridAdaptive().multiply(a, a)


class TestSampledEstimate:
    def test_tracks_actual_nnz(self, rng):
        a = random_csr(rng, 500, 500, 0.02)
        actual = spgemm_reference(a, a).nnz
        est = sampled_output_estimate(a, a, sample_rows=128, safety_factor=1.0)
        assert 0.7 * actual < est < 1.4 * actual

    def test_deterministic(self, rng):
        a = random_csr(rng, 200, 200, 0.05)
        assert sampled_output_estimate(a, a) == sampled_output_estimate(a, a)

    def test_empty(self):
        e = CSRMatrix.empty(5, 5)
        assert sampled_output_estimate(e, e) == 0.0

    def test_pool_much_smaller_than_uniform_estimate(self, rng):
        """The §5 improvement: an order of magnitude less overallocation
        on matrices where the 100 MB lower bound dominated."""
        a = random_csr(rng, 400, 400, 0.03)
        opts = AcSpgemmOptions()
        uniform = estimate_chunk_pool_bytes(a, a, opts)
        sampled = sampled_chunk_pool_bytes(a, a, opts)
        assert sampled < uniform / 5

    def test_pipeline_with_sampled_pool_still_correct(self, rng):
        a = random_csr(rng, 300, 300, 0.04)
        opts = AcSpgemmOptions()
        pool = sampled_chunk_pool_bytes(a, a, opts, lower_bound_bytes=1 << 16)
        res = ac_spgemm(a, a, opts.with_(chunk_pool_bytes=pool))
        assert res.matrix.allclose(spgemm_reference(a, a))
        # conservative enough that restarts stay rare
        assert res.restarts <= 2


class TestCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_single_with_verify(self, tmp_path, rng, capsys):
        from repro.sparse import write_matrix_market

        m = random_csr(rng, 40, 40, 0.1)
        p = tmp_path / "m.mtx"
        write_matrix_market(p, m)
        assert self.run_cli("single", str(p), "--verify") == 0
        out = capsys.readouterr().out
        assert "gflops" in out and "True" in out

    def test_runall_writes_csv(self, tmp_path, rng, capsys):
        from repro.sparse import write_matrix_market

        for i in range(2):
            write_matrix_market(
                tmp_path / f"m{i}.mtx", random_csr(rng, 30, 30, 0.1)
            )
        out_csv = tmp_path / "res.csv"
        assert self.run_cli("runall", str(tmp_path), "--out", str(out_csv)) == 0
        lines = out_csv.read_text().splitlines()
        assert len(lines) == 3  # header + 2 matrices
        assert lines[0].startswith("matrix,")

    def test_runall_empty_folder(self, tmp_path, capsys):
        assert self.run_cli("runall", str(tmp_path)) == 1

    def test_suite_limited(self, tmp_path, capsys):
        out_csv = tmp_path / "suite.csv"
        assert (
            self.run_cli("suite", "--limit", "2", "--out", str(out_csv)) == 0
        )
        assert len(out_csv.read_text().splitlines()) == 3

    def test_compare(self, tmp_path, rng, capsys):
        from repro.sparse import write_matrix_market

        m = random_csr(rng, 50, 50, 0.1)
        p = tmp_path / "m.mtx"
        write_matrix_market(p, m)
        assert self.run_cli("compare", str(p)) == 0
        out = capsys.readouterr().out
        assert "fastest:" in out and "nsparse" in out

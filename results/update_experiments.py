#!/usr/bin/env python
"""Regenerate the numeric claims of EXPERIMENTS.md from results/*.csv.

Run after a full ``pytest benchmarks/ --benchmark-only`` sweep; prints
the fresh aggregates so the hand-written narrative can be checked or
updated against them.
"""

from __future__ import annotations

import csv
from pathlib import Path

HERE = Path(__file__).resolve().parent


def read(name):
    with open(HERE / name) as fh:
        return list(csv.DictReader(fh))


def main() -> None:
    for dtype in ("float64", "float32"):
        for split in ("sparse", "dense"):
            rows = read(f"table1_{dtype}_{split}.csv")
            print(f"Table 1 {dtype} {split}:")
            for r in rows:
                print(
                    f"  {r['competitor']:10s} n={r['n']} h.mean={r['h.mean']}"
                    f" %better={r['%better']} %best={r['%best']}"
                )

    cross = read("cpu_crossover.csv")
    prev = None
    for r in cross:
        s = float(r["speedup_AC_over_CPU"])
        if prev is not None and prev < 1.0 <= s:
            print(f"CPU crossover between nnz={prev_nnz} and nnz={r['nnz']}")
        prev, prev_nnz = s, r["nnz"]

    restarts = read("restart_study.csv")
    print(
        "restart study: "
        + ", ".join(f"{r['restarts']}R->{float(r['sim_ms']):.2f}ms" for r in restarts)
    )

    mkl = read("gpu_vs_mkl.csv")
    for r in mkl:
        print(
            f"GPU vs MKL ({r['precision']}): bhsparse {r['bhsparse_over_mkl']}x, "
            f"AC {r['ac_over_mkl']}x"
        )

    for split in ("small", "large"):
        rows = read(f"fig09_12_float64_{split}.csv")
        algs = [k for k in rows[0] if k not in ("matrix", "avg_row_len")]
        wins = sum(
            1
            for r in rows
            if float(r["ac-spgemm"]) == max(float(r[a]) for a in algs)
        )
        print(f"fig09-12 double {split}: AC fastest {wins}/{len(rows)}")


if __name__ == "__main__":
    main()

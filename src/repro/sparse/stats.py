"""Matrix statistics used throughout the paper's evaluation.

Table 2 reports, per matrix: rows, cols, nnz, average and maximum row
length of A and of C = A @ A (or A @ A.T), and the number of temporary
products ("temp").  Figure 1 plots average/min/max row length over the
whole collection.  :class:`MatrixStats` computes all of these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .convert import transpose
from .csr import CSRMatrix
from .ops import count_intermediate_products

__all__ = [
    "MatrixStats",
    "matrix_stats",
    "ProductStats",
    "product_stats",
    "HIGHLY_SPARSE_SPLIT",
    "is_highly_sparse",
    "squared_operands",
]

#: The paper classifies matrices with average row length <= 42 as
#: "highly sparse"; this split puts 80% of SuiteSparse in the sparse bin.
HIGHLY_SPARSE_SPLIT = 42.0


@dataclass(frozen=True)
class MatrixStats:
    """Row-structure statistics of a single matrix."""

    rows: int
    cols: int
    nnz: int
    mean_row_length: float
    min_row_length: int
    max_row_length: int

    @property
    def highly_sparse(self) -> bool:
        """The paper's a <= 42 classification."""
        return self.mean_row_length <= HIGHLY_SPARSE_SPLIT


def matrix_stats(m: CSRMatrix) -> MatrixStats:
    """Row-length statistics of ``m``."""
    lengths = m.row_lengths()
    return MatrixStats(
        rows=m.rows,
        cols=m.cols,
        nnz=m.nnz,
        mean_row_length=float(m.nnz / m.rows) if m.rows else 0.0,
        min_row_length=int(lengths.min()) if m.rows else 0,
        max_row_length=int(lengths.max()) if m.rows else 0,
    )


def is_highly_sparse(m: CSRMatrix) -> bool:
    """The paper's a <= 42 split (§4.1)."""
    return matrix_stats(m).highly_sparse


def squared_operands(m: CSRMatrix) -> tuple[CSRMatrix, CSRMatrix]:
    """The paper's benchmark product operands: ``(A, A)`` for square
    matrices, ``(A, A.T)`` with the transpose precomputed otherwise."""
    if m.is_square:
        return m, m
    return m, transpose(m)


@dataclass(frozen=True)
class ProductStats:
    """Statistics of the product C = A @ B (Table 2 right-hand columns)."""

    a: MatrixStats
    c: MatrixStats
    temp_products: int

    @property
    def compaction_factor(self) -> float:
        """temporary products per output non-zero; the paper notes ESC
        loses to hashing when this reaches the hundreds (§4.2)."""
        return self.temp_products / self.c.nnz if self.c.nnz else 0.0

    @property
    def flops(self) -> int:
        """2 multiplications+additions per temporary product — the FLOP
        count used to report GFLOPS."""
        return 2 * self.temp_products


def product_stats(a: CSRMatrix, b: CSRMatrix, c: CSRMatrix) -> ProductStats:
    """Statistics of the product ``C = A @ B``."""
    return ProductStats(
        a=matrix_stats(a),
        c=matrix_stats(c),
        temp_products=count_intermediate_products(a, b),
    )

"""Coordinate (COO) sparse matrix container.

Matrix Market files are coordinate lists, and the paper's artifact
converts COO to CSR on load (Appendix A.4: "Conversion operators are
provided ... convert the COO format to CSR if required").  This module is
that conversion substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix

__all__ = ["COOMatrix"]

_INDEX_DTYPE = np.int64


@dataclass
class COOMatrix:
    """A sparse matrix as parallel ``(row, col, value)`` triplet arrays.

    Duplicate coordinates are allowed; conversion to CSR sums them,
    matching the usual Matrix Market semantics for symmetric expansions.
    """

    rows: int
    cols: int
    row_idx: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.rows = int(self.rows)
        self.cols = int(self.cols)
        self.row_idx = np.ascontiguousarray(self.row_idx, dtype=_INDEX_DTYPE)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=_INDEX_DTYPE)
        self.values = np.ascontiguousarray(self.values)
        if not (
            self.row_idx.shape == self.col_idx.shape == self.values.shape
        ):
            raise ValueError("row_idx, col_idx and values must have equal length")
        if self.row_idx.ndim != 1:
            raise ValueError("triplet arrays must be one-dimensional")
        if self.nnz:
            if self.row_idx.min(initial=0) < 0 or self.col_idx.min(initial=0) < 0:
                raise ValueError("negative indices in COO triplets")
            if self.row_idx.max(initial=-1) >= self.rows:
                raise ValueError("row index out of range")
            if self.col_idx.max(initial=-1) >= self.cols:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets."""
        return int(self.values.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols)."""
        return (self.rows, self.cols)

    def to_csr(self, *, sum_duplicates: bool = True) -> CSRMatrix:
        """Convert to CSR, sorting by (row, col) and summing duplicates.

        The sort is stable so that for duplicate coordinates the
        accumulation order equals the triplet order — this keeps the
        conversion deterministic (bit-stable) for a fixed input file.
        """
        if self.nnz == 0:
            return CSRMatrix.empty(self.rows, self.cols, dtype=self.values.dtype)
        order = np.lexsort((self.col_idx, self.row_idx))
        r = self.row_idx[order]
        c = self.col_idx[order]
        v = self.values[order]
        if sum_duplicates:
            # boundaries where (row, col) changes
            new_group = np.empty(r.shape[0], dtype=bool)
            new_group[0] = True
            np.not_equal(r[1:], r[:-1], out=new_group[1:])
            np.logical_or(new_group[1:], c[1:] != c[:-1], out=new_group[1:])
            group_id = np.cumsum(new_group) - 1
            n_groups = int(group_id[-1]) + 1
            out_v = np.zeros(n_groups, dtype=v.dtype)
            np.add.at(out_v, group_id, v)
            first = np.nonzero(new_group)[0]
            r, c, v = r[first], c[first], out_v
        row_counts = np.bincount(r, minlength=self.rows)
        row_ptr = np.zeros(self.rows + 1, dtype=_INDEX_DTYPE)
        np.cumsum(row_counts, out=row_ptr[1:])
        return CSRMatrix(
            rows=self.rows, cols=self.cols, row_ptr=row_ptr, col_idx=c, values=v
        )

    @classmethod
    def from_csr(cls, m: CSRMatrix) -> "COOMatrix":
        """Expand a CSR matrix into triplets (CSR order preserved)."""
        row_idx = np.repeat(np.arange(m.rows, dtype=_INDEX_DTYPE), m.row_lengths())
        return cls(
            rows=m.rows,
            cols=m.cols,
            row_idx=row_idx,
            col_idx=m.col_idx.copy(),
            values=m.values.copy(),
        )

    def transpose(self) -> "COOMatrix":
        """Swap the roles of rows and columns (O(1), views swapped)."""
        return COOMatrix(
            rows=self.cols,
            cols=self.rows,
            row_idx=self.col_idx,
            col_idx=self.row_idx,
            values=self.values,
        )

"""Reference (host-side) sparse operations.

:func:`spgemm_reference` is the sequential Gustavson [18] algorithm with a
sparse accumulator (SPA) — the ground truth every GPU-simulated algorithm
in this repository is validated against, and also the paper's "CPU
implementation ... to confirm the results of the framework output"
(Appendix A.6).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = [
    "spgemm_reference",
    "spgemm_dense_check",
    "add",
    "scale",
    "spmv",
    "hadamard",
    "mask_by_pattern",
    "diagonal",
    "count_intermediate_products",
    "symbolic_nnz",
]

_INDEX_DTYPE = np.int64


def _check_compatible(a: CSRMatrix, b: CSRMatrix) -> None:
    if a.cols != b.rows:
        raise ValueError(
            f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
        )


def spgemm_reference(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sequential two-pass Gustavson SpGEMM.

    Pass 1 counts the non-zeros of each output row with a boolean SPA;
    pass 2 fills values with a dense accumulator per row.  Accumulation
    within a row happens in ascending column order (entries are emitted
    sorted), making the result deterministic.

    Vectorised per-row with numpy; the dense accumulator arrays are
    allocated once and reset sparsely, so the cost is O(flops + nnz(C)),
    not O(rows * cols).
    """
    _check_compatible(a, b)
    out_dtype = np.result_type(a.dtype, b.dtype)
    accumulator = np.zeros(b.cols, dtype=out_dtype)
    present = np.zeros(b.cols, dtype=bool)

    out_ptr = np.zeros(a.rows + 1, dtype=_INDEX_DTYPE)
    col_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []

    a_ptr, a_col, a_val = a.row_ptr, a.col_idx, a.values
    b_ptr, b_col, b_val = b.row_ptr, b.col_idx, b.values

    for i in range(a.rows):
        lo, hi = a_ptr[i], a_ptr[i + 1]
        if hi == lo:
            out_ptr[i + 1] = out_ptr[i]
            continue
        touched_parts = []
        for t in range(lo, hi):
            k = a_col[t]
            aval = a_val[t]
            blo, bhi = b_ptr[k], b_ptr[k + 1]
            if bhi == blo:
                continue
            cols = b_col[blo:bhi]
            accumulator[cols] += aval * b_val[blo:bhi]
            fresh = ~present[cols]
            if fresh.any():
                newly = cols[fresh]
                present[newly] = True
                touched_parts.append(newly)
        if touched_parts:
            touched = np.concatenate(touched_parts)
            touched.sort()
            col_chunks.append(touched)
            val_chunks.append(accumulator[touched].copy())
            # sparse reset of the SPA
            accumulator[touched] = 0
            present[touched] = False
            out_ptr[i + 1] = out_ptr[i] + touched.shape[0]
        else:
            out_ptr[i + 1] = out_ptr[i]

    if col_chunks:
        col_idx = np.concatenate(col_chunks)
        values = np.concatenate(val_chunks)
    else:
        col_idx = np.zeros(0, dtype=_INDEX_DTYPE)
        values = np.zeros(0, dtype=out_dtype)
    return CSRMatrix(
        rows=a.rows, cols=b.cols, row_ptr=out_ptr, col_idx=col_idx, values=values
    )


def spgemm_dense_check(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Dense ``A @ B`` for tiny matrices — a second, independent oracle."""
    _check_compatible(a, b)
    return a.to_dense() @ b.to_dense()


def add(a: CSRMatrix, b: CSRMatrix, alpha: float = 1.0, beta: float = 1.0) -> CSRMatrix:
    """``alpha * A + beta * B`` (used by the AMG and graph examples)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    from .coo import COOMatrix

    row_a = np.repeat(np.arange(a.rows, dtype=_INDEX_DTYPE), a.row_lengths())
    row_b = np.repeat(np.arange(b.rows, dtype=_INDEX_DTYPE), b.row_lengths())
    coo = COOMatrix(
        rows=a.rows,
        cols=a.cols,
        row_idx=np.concatenate([row_a, row_b]),
        col_idx=np.concatenate([a.col_idx, b.col_idx]),
        values=np.concatenate([alpha * a.values, beta * b.values]),
    )
    return coo.to_csr()


def scale(a: CSRMatrix, alpha: float) -> CSRMatrix:
    """``alpha * A``."""
    out = a.copy()
    out.values *= alpha
    return out


def spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix-vector product ``A @ x`` (examples substrate)."""
    x = np.asarray(x)
    if x.shape[0] != a.cols:
        raise ValueError(f"vector length {x.shape[0]} != cols {a.cols}")
    products = a.values * x[a.col_idx]
    out = np.zeros(a.rows, dtype=np.result_type(a.dtype, x.dtype))
    row_ids = np.repeat(np.arange(a.rows, dtype=_INDEX_DTYPE), a.row_lengths())
    np.add.at(out, row_ids, products)
    return out


def _intersect_rows(a: CSRMatrix, b: CSRMatrix):
    """Per-row sorted-intersection of two same-shaped CSR matrices.

    Yields ``(row, idx_a, idx_b)`` index arrays into the entry arrays of
    ``a`` and ``b`` for the common (row, col) positions.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    for i in range(a.rows):
        alo, ahi = a.row_ptr[i], a.row_ptr[i + 1]
        blo, bhi = b.row_ptr[i], b.row_ptr[i + 1]
        if ahi == alo or bhi == blo:
            continue
        common, ia, ib = np.intersect1d(
            a.col_idx[alo:ahi], b.col_idx[blo:bhi], return_indices=True
        )
        if common.size:
            yield i, alo + ia, blo + ib


def hadamard(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Element-wise product ``A .* B`` (the contraction step of
    SpGEMM-based triangle counting: ``sum(hadamard(L @ L, L))``)."""
    rows_parts, ia_parts, ib_parts = [], [], []
    for i, ia, ib in _intersect_rows(a, b):
        rows_parts.append(np.full(ia.shape[0], i, dtype=_INDEX_DTYPE))
        ia_parts.append(ia)
        ib_parts.append(ib)
    if not rows_parts:
        return CSRMatrix.empty(a.rows, a.cols, dtype=a.dtype)
    rows = np.concatenate(rows_parts)
    ia = np.concatenate(ia_parts)
    ib = np.concatenate(ib_parts)
    counts = np.bincount(rows, minlength=a.rows)
    row_ptr = np.zeros(a.rows + 1, dtype=_INDEX_DTYPE)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRMatrix(
        rows=a.rows,
        cols=a.cols,
        row_ptr=row_ptr,
        col_idx=a.col_idx[ia].copy(),
        values=a.values[ia] * b.values[ib],
    )


def mask_by_pattern(a: CSRMatrix, mask: CSRMatrix) -> CSRMatrix:
    """Keep only the entries of ``a`` whose positions are stored in
    ``mask`` (masked SpGEMM post-filter, GraphBLAS-style)."""
    keep = np.zeros(a.nnz, dtype=bool)
    for _, ia, _ in _intersect_rows(a, mask):
        keep[ia] = True
    row_ids = np.repeat(np.arange(a.rows, dtype=_INDEX_DTYPE), a.row_lengths())
    counts = np.bincount(row_ids[keep], minlength=a.rows)
    row_ptr = np.zeros(a.rows + 1, dtype=_INDEX_DTYPE)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRMatrix(
        rows=a.rows,
        cols=a.cols,
        row_ptr=row_ptr,
        col_idx=a.col_idx[keep],
        values=a.values[keep],
    )


def diagonal(a: CSRMatrix) -> np.ndarray:
    """The (dense) main diagonal — e.g. closed-walk counts of A^k."""
    n = min(a.rows, a.cols)
    out = np.zeros(n, dtype=a.dtype)
    for i in range(n):
        lo, hi = a.row_ptr[i], a.row_ptr[i + 1]
        pos = lo + np.searchsorted(a.col_idx[lo:hi], i)
        if pos < hi and a.col_idx[pos] == i:
            out[i] = a.values[pos]
    return out


def count_intermediate_products(a: CSRMatrix, b: CSRMatrix) -> int:
    """Total number of temporary products ``A_ik * B_kj`` in A @ B.

    This is the paper's "temp" statistic (Table 2, x-axis of Fig. 5):
    sum over entries of A of the length of the referenced B row.  Also
    defines FLOPs = 2 * temp for GFLOPS reporting.
    """
    _check_compatible(a, b)
    if a.nnz == 0:
        return 0
    b_lengths = b.row_lengths()
    return int(b_lengths[a.col_idx].sum())


def symbolic_nnz(a: CSRMatrix, b: CSRMatrix) -> int:
    """nnz of A @ B without computing values (boolean SPA, one pass)."""
    _check_compatible(a, b)
    present = np.zeros(b.cols, dtype=bool)
    total = 0
    a_ptr, a_col = a.row_ptr, a.col_idx
    b_ptr, b_col = b.row_ptr, b.col_idx
    for i in range(a.rows):
        lo, hi = a_ptr[i], a_ptr[i + 1]
        if hi == lo:
            continue
        ks = a_col[lo:hi]
        touched_parts = []
        for k in ks:
            cols = b_col[b_ptr[k] : b_ptr[k + 1]]
            fresh = ~present[cols]
            if fresh.any():
                newly = cols[fresh]
                present[newly] = True
                touched_parts.append(newly)
        if touched_parts:
            touched = np.concatenate(touched_parts)
            total += touched.shape[0]
            present[touched] = False
    return total

"""Matrix Market (.mtx) and binary matrix I/O.

The paper's artifact parses Matrix Market files from SuiteSparse and
caches a binary form ("``.hicoo``") for fast reloading (Appendix A.2.5).
We implement both: a self-contained ``.mtx`` reader/writer (coordinate
and array formats, general/symmetric/skew-symmetric, real/integer/
pattern) and an ``.npz``-based binary cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..resilience.errors import ReproError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "MatrixMarketError",
    "read_matrix_market",
    "write_matrix_market",
    "save_binary",
    "load_binary",
    "load_matrix",
]


class MatrixMarketError(ReproError, ValueError):
    """Malformed Matrix Market content (also a :class:`ValueError`)."""


_VALID_FORMATS = {"coordinate", "array"}
_VALID_FIELDS = {"real", "integer", "pattern", "complex"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}


def _parse_header(line: str) -> tuple[str, str, str]:
    parts = line.strip().lower().split()
    if len(parts) < 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix":
        raise MatrixMarketError(f"bad MatrixMarket banner: {line!r}")
    fmt, field, symmetry = parts[2], parts[3], parts[4]
    if fmt not in _VALID_FORMATS:
        raise MatrixMarketError(f"unsupported format {fmt!r}")
    if field not in _VALID_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if field == "complex":
        raise MatrixMarketError("complex matrices are not supported")
    if symmetry not in _VALID_SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
    if symmetry == "hermitian":
        raise MatrixMarketError("hermitian matrices are not supported")
    return fmt, field, symmetry


def _parse_size(parts: list[str], line: str, n: int) -> tuple[int, ...]:
    if len(parts) != n:
        raise MatrixMarketError(f"bad size line: {line!r}")
    try:
        dims = tuple(int(x) for x in parts)
    except ValueError:
        raise MatrixMarketError(f"non-integer size line: {line!r}") from None
    if any(d < 0 for d in dims):
        raise MatrixMarketError(f"negative dimension in size line: {line!r}")
    return dims


def read_matrix_market(path: str | os.PathLike, *, strict: bool = True) -> CSRMatrix:
    """Parse a ``.mtx`` file into canonical CSR.

    Symmetric/skew-symmetric storage is expanded to general form
    (off-diagonal entries mirrored; skew mirrors with negated value).
    ``pattern`` entries get value 1.0.

    Truncated files, unparsable bodies, non-integer or out-of-range
    indices always raise :class:`MatrixMarketError`.  Non-finite values
    (NaN/inf) are rejected under ``strict`` (the default) and passed
    through verbatim with ``strict=False``.
    """
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline()
        if not header:
            raise MatrixMarketError(f"empty file: {os.fspath(path)!r}")
        fmt, field, symmetry = _parse_header(header)
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        if not line.strip():
            raise MatrixMarketError("truncated file: missing size line")
        size_parts = line.split()
        if fmt == "coordinate":
            rows, cols, nnz = _parse_size(size_parts, line, 3)
            try:
                body = np.loadtxt(fh, ndmin=2) if nnz else np.zeros((0, 3))
            except ValueError as exc:
                raise MatrixMarketError(f"unparsable entry body: {exc}") from None
            if body.shape[0] != nnz:
                raise MatrixMarketError(
                    f"expected {nnz} entries, found {body.shape[0]}"
                )
            if nnz == 0:
                return CSRMatrix.empty(rows, cols)
            if body.shape[1] < 2:
                raise MatrixMarketError("entry lines need row and column indices")
            rc = body[:, :2]
            if not np.all(rc == np.floor(rc)):
                raise MatrixMarketError("non-integer row/column index")
            r = rc[:, 0].astype(np.int64) - 1
            c = rc[:, 1].astype(np.int64) - 1
            if np.any((r < 0) | (r >= rows)) or np.any((c < 0) | (c >= cols)):
                raise MatrixMarketError(
                    f"index out of range for {rows}x{cols} matrix "
                    "(1-based indices must lie in [1, rows] x [1, cols])"
                )
            if field == "pattern":
                v = np.ones(nnz, dtype=np.float64)
            else:
                if body.shape[1] < 3:
                    raise MatrixMarketError("missing value column")
                v = body[:, 2].astype(np.float64)
            if strict and not np.all(np.isfinite(v)):
                bad = int(np.flatnonzero(~np.isfinite(v))[0])
                raise MatrixMarketError(
                    f"non-finite value at entry {bad + 1} "
                    "(pass strict=False to accept NaN/inf)"
                )
        else:  # array (dense column-major)
            rows, cols = _parse_size(size_parts, line, 2)
            try:
                data = np.loadtxt(fh)
            except ValueError as exc:
                raise MatrixMarketError(f"unparsable entry body: {exc}") from None
            if np.asarray(data).size != rows * cols:
                raise MatrixMarketError(
                    f"expected {rows * cols} array entries, "
                    f"found {np.asarray(data).size}"
                )
            if strict and not np.all(np.isfinite(data)):
                raise MatrixMarketError(
                    "non-finite value in array body "
                    "(pass strict=False to accept NaN/inf)"
                )
            dense = np.asarray(data, dtype=np.float64).reshape(cols, rows).T
            if symmetry in ("symmetric", "skew-symmetric"):
                raise MatrixMarketError(
                    "symmetric array format is not supported"
                )
            return CSRMatrix.from_dense(dense)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = r != c
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        r = np.concatenate([r, c[off]])
        c2 = np.concatenate([c, body[off, 0].astype(np.int64) - 1])
        v = np.concatenate([v, sign * v[off]])
        c = c2
    return COOMatrix(rows=rows, cols=cols, row_idx=r, col_idx=c, values=v).to_csr()


def write_matrix_market(path: str | os.PathLike, m: CSRMatrix) -> None:
    """Write CSR as general real coordinate Matrix Market."""
    coo = COOMatrix.from_csr(m)
    with open(path, "w", encoding="ascii") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write("% written by repro (AC-SpGEMM reproduction)\n")
        fh.write(f"{m.rows} {m.cols} {m.nnz}\n")
        for r, c, v in zip(coo.row_idx, coo.col_idx, coo.values):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")


def save_binary(path: str | os.PathLike, m: CSRMatrix) -> None:
    """Binary cache (analogue of the artifact's ``.hicoo`` files)."""
    np.savez_compressed(
        path,
        rows=np.int64(m.rows),
        cols=np.int64(m.cols),
        row_ptr=m.row_ptr,
        col_idx=m.col_idx,
        values=m.values,
    )


def load_binary(path: str | os.PathLike) -> CSRMatrix:
    """Load a matrix from the ``.npz`` binary cache format."""
    with np.load(path) as z:
        return CSRMatrix(
            rows=int(z["rows"]),
            cols=int(z["cols"]),
            row_ptr=z["row_ptr"],
            col_idx=z["col_idx"],
            values=z["values"],
        )


def load_matrix(
    path: str | os.PathLike, *, cache: bool = True, strict: bool = True
) -> CSRMatrix:
    """Load ``.mtx`` (building a ``.npz`` cache next to it, like the
    artifact's first-parse conversion) or a previously written ``.npz``."""
    p = Path(path)
    if p.suffix == ".npz":
        return load_binary(p)
    cache_path = p.with_suffix(".npz")
    if cache and cache_path.exists() and cache_path.stat().st_mtime >= p.stat().st_mtime:
        return load_binary(cache_path)
    m = read_matrix_market(p, strict=strict)
    if cache:
        save_binary(cache_path, m)
    return m

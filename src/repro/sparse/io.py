"""Matrix Market (.mtx) and binary matrix I/O.

The paper's artifact parses Matrix Market files from SuiteSparse and
caches a binary form ("``.hicoo``") for fast reloading (Appendix A.2.5).
We implement both: a self-contained ``.mtx`` reader/writer (coordinate
and array formats, general/symmetric/skew-symmetric, real/integer/
pattern) and an ``.npz``-based binary cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "MatrixMarketError",
    "read_matrix_market",
    "write_matrix_market",
    "save_binary",
    "load_binary",
    "load_matrix",
]


class MatrixMarketError(ValueError):
    """Malformed Matrix Market content."""


_VALID_FORMATS = {"coordinate", "array"}
_VALID_FIELDS = {"real", "integer", "pattern", "complex"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}


def _parse_header(line: str) -> tuple[str, str, str]:
    parts = line.strip().lower().split()
    if len(parts) < 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix":
        raise MatrixMarketError(f"bad MatrixMarket banner: {line!r}")
    fmt, field, symmetry = parts[2], parts[3], parts[4]
    if fmt not in _VALID_FORMATS:
        raise MatrixMarketError(f"unsupported format {fmt!r}")
    if field not in _VALID_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if field == "complex":
        raise MatrixMarketError("complex matrices are not supported")
    if symmetry not in _VALID_SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
    if symmetry == "hermitian":
        raise MatrixMarketError("hermitian matrices are not supported")
    return fmt, field, symmetry


def read_matrix_market(path: str | os.PathLike) -> CSRMatrix:
    """Parse a ``.mtx`` file into canonical CSR.

    Symmetric/skew-symmetric storage is expanded to general form
    (off-diagonal entries mirrored; skew mirrors with negated value).
    ``pattern`` entries get value 1.0.
    """
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline()
        fmt, field, symmetry = _parse_header(header)
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        size_parts = line.split()
        if fmt == "coordinate":
            if len(size_parts) != 3:
                raise MatrixMarketError(f"bad size line: {line!r}")
            rows, cols, nnz = (int(x) for x in size_parts)
            body = np.loadtxt(fh, ndmin=2) if nnz else np.zeros((0, 3))
            if body.shape[0] != nnz:
                raise MatrixMarketError(
                    f"expected {nnz} entries, found {body.shape[0]}"
                )
            if nnz == 0:
                return CSRMatrix.empty(rows, cols)
            r = body[:, 0].astype(np.int64) - 1
            c = body[:, 1].astype(np.int64) - 1
            if field == "pattern":
                v = np.ones(nnz, dtype=np.float64)
            else:
                if body.shape[1] < 3:
                    raise MatrixMarketError("missing value column")
                v = body[:, 2].astype(np.float64)
        else:  # array (dense column-major)
            if len(size_parts) != 2:
                raise MatrixMarketError(f"bad size line: {line!r}")
            rows, cols = (int(x) for x in size_parts)
            data = np.loadtxt(fh)
            dense = np.asarray(data, dtype=np.float64).reshape(cols, rows).T
            if symmetry in ("symmetric", "skew-symmetric"):
                raise MatrixMarketError(
                    "symmetric array format is not supported"
                )
            return CSRMatrix.from_dense(dense)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = r != c
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        r = np.concatenate([r, c[off]])
        c2 = np.concatenate([c, body[off, 0].astype(np.int64) - 1])
        v = np.concatenate([v, sign * v[off]])
        c = c2
    return COOMatrix(rows=rows, cols=cols, row_idx=r, col_idx=c, values=v).to_csr()


def write_matrix_market(path: str | os.PathLike, m: CSRMatrix) -> None:
    """Write CSR as general real coordinate Matrix Market."""
    coo = COOMatrix.from_csr(m)
    with open(path, "w", encoding="ascii") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write("% written by repro (AC-SpGEMM reproduction)\n")
        fh.write(f"{m.rows} {m.cols} {m.nnz}\n")
        for r, c, v in zip(coo.row_idx, coo.col_idx, coo.values):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")


def save_binary(path: str | os.PathLike, m: CSRMatrix) -> None:
    """Binary cache (analogue of the artifact's ``.hicoo`` files)."""
    np.savez_compressed(
        path,
        rows=np.int64(m.rows),
        cols=np.int64(m.cols),
        row_ptr=m.row_ptr,
        col_idx=m.col_idx,
        values=m.values,
    )


def load_binary(path: str | os.PathLike) -> CSRMatrix:
    """Load a matrix from the ``.npz`` binary cache format."""
    with np.load(path) as z:
        return CSRMatrix(
            rows=int(z["rows"]),
            cols=int(z["cols"]),
            row_ptr=z["row_ptr"],
            col_idx=z["col_idx"],
            values=z["values"],
        )


def load_matrix(path: str | os.PathLike, *, cache: bool = True) -> CSRMatrix:
    """Load ``.mtx`` (building a ``.npz`` cache next to it, like the
    artifact's first-parse conversion) or a previously written ``.npz``."""
    p = Path(path)
    if p.suffix == ".npz":
        return load_binary(p)
    cache_path = p.with_suffix(".npz")
    if cache and cache_path.exists() and cache_path.stat().st_mtime >= p.stat().st_mtime:
        return load_binary(cache_path)
    m = read_matrix_market(p)
    if cache:
        save_binary(cache_path, m)
    return m

"""Sparse matrix substrate: CSR/COO containers, conversions, reference
operations, I/O and statistics (systems S1–S2 of DESIGN.md)."""

from .coo import COOMatrix
from .convert import (
    extract_rows,
    lower_triangle,
    prune_explicit_zeros,
    sort_row_entries,
    transpose,
    upper_triangle,
)
from .csr import CSRMatrix
from .io import (
    MatrixMarketError,
    load_binary,
    load_matrix,
    read_matrix_market,
    save_binary,
    write_matrix_market,
)
from .ops import (
    add,
    count_intermediate_products,
    diagonal,
    hadamard,
    mask_by_pattern,
    scale,
    spgemm_dense_check,
    spgemm_reference,
    spmv,
    symbolic_nnz,
)
from .stats import (
    HIGHLY_SPARSE_SPLIT,
    MatrixStats,
    ProductStats,
    is_highly_sparse,
    matrix_stats,
    product_stats,
    squared_operands,
)
from .validate import CSRValidationError, is_canonical, validate_csr

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSRValidationError",
    "HIGHLY_SPARSE_SPLIT",
    "MatrixMarketError",
    "MatrixStats",
    "ProductStats",
    "add",
    "count_intermediate_products",
    "diagonal",
    "extract_rows",
    "hadamard",
    "mask_by_pattern",
    "is_canonical",
    "is_highly_sparse",
    "load_binary",
    "load_matrix",
    "lower_triangle",
    "matrix_stats",
    "product_stats",
    "prune_explicit_zeros",
    "read_matrix_market",
    "save_binary",
    "scale",
    "sort_row_entries",
    "spgemm_dense_check",
    "spgemm_reference",
    "spmv",
    "squared_operands",
    "symbolic_nnz",
    "transpose",
    "upper_triangle",
    "validate_csr",
    "write_matrix_market",
]

"""Structural validation of sparse containers.

Algorithms in this repository assume canonical CSR (sorted, de-duplicated
rows).  :func:`validate_csr` checks every invariant and raises
:class:`CSRValidationError` with a precise message on the first violation.
"""

from __future__ import annotations

import numpy as np

from ..resilience.errors import ReproError
from .csr import CSRMatrix

__all__ = ["CSRValidationError", "validate_csr", "is_canonical"]


class CSRValidationError(ReproError, ValueError):
    """A CSR structural invariant does not hold.

    Raised on adversarial or malformed inputs before any pipeline work
    starts; never subject to the degradation fallback (a bad input
    cannot be "recovered" into a correct product).  Also a
    :class:`ValueError` for backwards compatibility.
    """


def validate_csr(
    m: CSRMatrix,
    *,
    require_sorted: bool = True,
    require_unique: bool = True,
    require_finite: bool = False,
) -> None:
    """Raise :class:`CSRValidationError` unless ``m`` is well formed.

    Parameters
    ----------
    require_sorted:
        Column ids ascend within each row.
    require_unique:
        No duplicate column id within a row (implied by strictly
        ascending ids; checked together with ``require_sorted``).
    require_finite:
        No NaN/Inf values.

    A matrix that has passed the strict structural checks
    (``require_sorted`` and ``require_unique``) is stamped
    ``_validated`` and skips them on every later call — campaigns and
    benches validate the same immutable operand once per cell, and
    re-proving canonical form each time is pure host overhead.  The
    ``require_finite`` check is value-dependent and never memoised.
    """
    if m._validated:  # strict structural pass implies every weaker profile
        if require_finite and m.nnz and not np.isfinite(m.values).all():
            bad = int(np.nonzero(~np.isfinite(m.values))[0][0])
            raise CSRValidationError(f"non-finite value at entry {bad}")
        return
    ptr = m.row_ptr
    if ptr[0] != 0:
        raise CSRValidationError("row_ptr[0] must be 0")
    if ptr[-1] != m.nnz:
        raise CSRValidationError(
            f"row_ptr[-1] = {ptr[-1]} does not equal nnz = {m.nnz}"
        )
    diffs = np.diff(ptr)
    if (diffs < 0).any():
        bad = int(np.nonzero(diffs < 0)[0][0])
        raise CSRValidationError(f"row_ptr decreases at row {bad}")
    if m.nnz:
        if m.col_idx.min() < 0:
            raise CSRValidationError("negative column index")
        if m.col_idx.max() >= m.cols:
            bad = int(m.col_idx.argmax())
            raise CSRValidationError(
                f"column index {m.col_idx[bad]} out of range [0, {m.cols})"
            )
    if require_sorted and m.nnz:
        # within-row comparison: col[i] vs col[i+1] unless i+1 starts a row
        row_start = np.zeros(m.nnz, dtype=bool)
        starts = ptr[1:-1]
        row_start[starts[starts < m.nnz]] = True
        interior = ~row_start[1:]
        ascending = m.col_idx[1:] > m.col_idx[:-1]
        if require_unique:
            ok = ascending | ~interior
        else:
            ok = (m.col_idx[1:] >= m.col_idx[:-1]) | ~interior
        if not ok.all():
            bad = int(np.nonzero(~ok)[0][0])
            raise CSRValidationError(
                f"column ids not {'strictly ' if require_unique else ''}"
                f"ascending at entry {bad + 1}"
            )
    if require_finite and m.nnz and not np.isfinite(m.values).all():
        bad = int(np.nonzero(~np.isfinite(m.values))[0][0])
        raise CSRValidationError(f"non-finite value at entry {bad}")
    if require_sorted and require_unique:
        m._validated = True


def is_canonical(m: CSRMatrix) -> bool:
    """True iff ``m`` passes :func:`validate_csr` with default checks."""
    try:
        validate_csr(m)
    except CSRValidationError:
        return False
    return True

"""Format conversions and structural transforms on CSR matrices.

The paper computes ``A @ A.T`` for non-square inputs with ``A.T``
precomputed (§4); :func:`transpose` provides that precomputation.
"""

from __future__ import annotations

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "transpose",
    "sort_row_entries",
    "prune_explicit_zeros",
    "extract_rows",
    "lower_triangle",
    "upper_triangle",
]

_INDEX_DTYPE = np.int64


def transpose(m: CSRMatrix) -> CSRMatrix:
    """Permuted-transposition of a CSR matrix (Gustavson's second fast
    algorithm [18]): a counting pass over column ids followed by a
    scatter, O(nnz + rows + cols), no comparison sort."""
    if m.nnz == 0:
        return CSRMatrix.empty(m.cols, m.rows, dtype=m.dtype)
    col_counts = np.bincount(m.col_idx, minlength=m.cols)
    out_ptr = np.zeros(m.cols + 1, dtype=_INDEX_DTYPE)
    np.cumsum(col_counts, out=out_ptr[1:])
    # scatter: stable order of rows within each output row because we walk
    # entries in CSR (row-major) order via argsort(kind="stable")
    order = np.argsort(m.col_idx, kind="stable")
    row_ids = np.repeat(np.arange(m.rows, dtype=_INDEX_DTYPE), m.row_lengths())
    return CSRMatrix(
        rows=m.cols,
        cols=m.rows,
        row_ptr=out_ptr,
        col_idx=row_ids[order],
        values=m.values[order],
    )


def sort_row_entries(m: CSRMatrix) -> CSRMatrix:
    """Return a copy with column ids sorted ascending within every row.

    Entries produced by our algorithms are already sorted; this is the
    canonicalisation step for externally supplied matrices.
    """
    col_idx = m.col_idx.copy()
    values = m.values.copy()
    row_ids = np.repeat(np.arange(m.rows, dtype=_INDEX_DTYPE), m.row_lengths())
    order = np.lexsort((col_idx, row_ids))
    return CSRMatrix(
        rows=m.rows,
        cols=m.cols,
        row_ptr=m.row_ptr.copy(),
        col_idx=col_idx[order],
        values=values[order],
    )


def prune_explicit_zeros(m: CSRMatrix, *, tol: float = 0.0) -> CSRMatrix:
    """Drop stored entries with ``|value| <= tol``."""
    keep = np.abs(m.values) > tol
    if keep.all():
        return m.copy()
    row_ids = np.repeat(np.arange(m.rows, dtype=_INDEX_DTYPE), m.row_lengths())
    row_ids = row_ids[keep]
    counts = np.bincount(row_ids, minlength=m.rows)
    row_ptr = np.zeros(m.rows + 1, dtype=_INDEX_DTYPE)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRMatrix(
        rows=m.rows,
        cols=m.cols,
        row_ptr=row_ptr,
        col_idx=m.col_idx[keep],
        values=m.values[keep],
    )


def extract_rows(m: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Sub-matrix of the given rows (in the given order)."""
    rows = np.asarray(rows, dtype=_INDEX_DTYPE)
    lengths = m.row_lengths()[rows]
    row_ptr = np.zeros(rows.shape[0] + 1, dtype=_INDEX_DTYPE)
    np.cumsum(lengths, out=row_ptr[1:])
    idx_chunks = [np.arange(m.row_ptr[r], m.row_ptr[r + 1]) for r in rows]
    gather = (
        np.concatenate(idx_chunks) if idx_chunks else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    gather = gather.astype(_INDEX_DTYPE)
    return CSRMatrix(
        rows=rows.shape[0],
        cols=m.cols,
        row_ptr=row_ptr,
        col_idx=m.col_idx[gather],
        values=m.values[gather],
    )


def _triangle(m: CSRMatrix, keep_mask_fn) -> CSRMatrix:
    row_ids = np.repeat(np.arange(m.rows, dtype=_INDEX_DTYPE), m.row_lengths())
    keep = keep_mask_fn(row_ids, m.col_idx)
    counts = np.bincount(row_ids[keep], minlength=m.rows)
    row_ptr = np.zeros(m.rows + 1, dtype=_INDEX_DTYPE)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRMatrix(
        rows=m.rows,
        cols=m.cols,
        row_ptr=row_ptr,
        col_idx=m.col_idx[keep],
        values=m.values[keep],
    )


def lower_triangle(m: CSRMatrix, *, strict: bool = True) -> CSRMatrix:
    """Lower-triangular part (used by the triangle-counting example)."""
    if strict:
        return _triangle(m, lambda r, c: c < r)
    return _triangle(m, lambda r, c: c <= r)


def upper_triangle(m: CSRMatrix, *, strict: bool = True) -> CSRMatrix:
    """Upper-triangular part (strict by default)."""
    if strict:
        return _triangle(m, lambda r, c: c > r)
    return _triangle(m, lambda r, c: c >= r)

"""Compressed sparse row (CSR) matrix container.

This is the storage format the paper assumes throughout (§1): entries are
sorted by row, values and column ids are stored explicitly, and a row
pointer array of length ``rows + 1`` marks the beginning of each row in
the sorted arrays.

The container is deliberately minimal and immutable-ish: algorithms in
:mod:`repro.core` and :mod:`repro.baselines` treat the three arrays as
read-only device buffers.  Mutating helpers always return new matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRMatrix"]

_INDEX_DTYPE = np.int64


def _as_index_array(a, name: str) -> np.ndarray:
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=_INDEX_DTYPE)


@dataclass
class CSRMatrix:
    """A sparse matrix in CSR format.

    Parameters
    ----------
    rows, cols:
        Matrix dimensions.
    row_ptr:
        ``rows + 1`` monotonically non-decreasing offsets into
        ``col_idx`` / ``values``; ``row_ptr[0] == 0`` and
        ``row_ptr[-1] == nnz``.
    col_idx:
        Column index of every stored entry, sorted ascending within each
        row, each in ``[0, cols)``.
    values:
        Numeric value of every stored entry (float32 or float64; the
        paper evaluates both precisions).
    """

    rows: int
    cols: int
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.rows = int(self.rows)
        self.cols = int(self.cols)
        if self.rows < 0 or self.cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.row_ptr = _as_index_array(self.row_ptr, "row_ptr")
        self.col_idx = _as_index_array(self.col_idx, "col_idx")
        values = np.asarray(self.values)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional")
        if not np.issubdtype(values.dtype, np.floating):
            values = values.astype(np.float64)
        self.values = np.ascontiguousarray(values)
        if self.row_ptr.shape[0] != self.rows + 1:
            raise ValueError(
                f"row_ptr must have rows + 1 = {self.rows + 1} entries, "
                f"got {self.row_ptr.shape[0]}"
            )
        if self.col_idx.shape[0] != self.values.shape[0]:
            raise ValueError("col_idx and values must have the same length")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self.col_idx.shape[0]:
            raise ValueError("row_ptr must start at 0 and end at nnz")

    # -- basic properties -------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of explicitly stored entries."""
        return int(self.col_idx.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols)."""
        return (self.rows, self.cols)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (float32 or float64)."""
        return self.values.dtype

    @property
    def is_square(self) -> bool:
        """True when rows == cols."""
        return self.rows == self.cols

    def row_lengths(self) -> np.ndarray:
        """Length of every row (``np.diff`` of the row pointer)."""
        return np.diff(self.row_ptr)

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the column ids and values of row ``i``."""
        if not 0 <= i < self.rows:
            raise IndexError(f"row {i} out of range for {self.rows}-row matrix")
        a, b = self.row_ptr[i], self.row_ptr[i + 1]
        return self.col_idx[a:b], self.values[a:b]

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(row, col_idx_view, values_view)`` for non-empty rows."""
        for i in range(self.rows):
            a, b = self.row_ptr[i], self.row_ptr[i + 1]
            if b > a:
                yield i, self.col_idx[a:b], self.values[a:b]

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, rows: int, cols: int, dtype=np.float64) -> "CSRMatrix":
        """An all-zero matrix with no stored entries."""
        return cls(
            rows=rows,
            cols=cols,
            row_ptr=np.zeros(rows + 1, dtype=_INDEX_DTYPE),
            col_idx=np.zeros(0, dtype=_INDEX_DTYPE),
            values=np.zeros(0, dtype=dtype),
        )

    @classmethod
    def identity(cls, n: int, dtype=np.float64) -> "CSRMatrix":
        """The n x n identity matrix."""
        return cls(
            rows=n,
            cols=n,
            row_ptr=np.arange(n + 1, dtype=_INDEX_DTYPE),
            col_idx=np.arange(n, dtype=_INDEX_DTYPE),
            values=np.ones(n, dtype=dtype),
        )

    @classmethod
    def from_dense(cls, dense, *, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping entries with ``|x| <= tol``."""
        d = np.asarray(dense)
        if d.ndim != 2:
            raise ValueError("dense input must be two-dimensional")
        mask = np.abs(d) > tol
        rows, cols = d.shape
        row_counts = mask.sum(axis=1)
        row_ptr = np.zeros(rows + 1, dtype=_INDEX_DTYPE)
        np.cumsum(row_counts, out=row_ptr[1:])
        r, c = np.nonzero(mask)
        return cls(rows=rows, cols=cols, row_ptr=row_ptr, col_idx=c, values=d[r, c])

    @classmethod
    def from_arrays(
        cls, rows: int, cols: int, row_ptr, col_idx, values
    ) -> "CSRMatrix":
        """Explicit-array constructor (alias of the dataclass constructor)."""
        return cls(rows=rows, cols=cols, row_ptr=row_ptr, col_idx=col_idx, values=values)

    # -- conversions -------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=self.values.dtype)
        row_ids = np.repeat(np.arange(self.rows), self.row_lengths())
        # += via np.add.at so duplicate (row, col) pairs accumulate
        np.add.at(out, (row_ids, self.col_idx), self.values)
        return out

    def astype(self, dtype) -> "CSRMatrix":
        """Copy with values cast to ``dtype`` (e.g. float32 for the paper's
        single-precision experiments)."""
        return CSRMatrix(
            rows=self.rows,
            cols=self.cols,
            row_ptr=self.row_ptr.copy(),
            col_idx=self.col_idx.copy(),
            values=self.values.astype(dtype),
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy of all three arrays."""
        return CSRMatrix(
            rows=self.rows,
            cols=self.cols,
            row_ptr=self.row_ptr.copy(),
            col_idx=self.col_idx.copy(),
            values=self.values.copy(),
        )

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (testing helper)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values, self.col_idx, self.row_ptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, m) -> "CSRMatrix":
        """Build from any scipy sparse matrix (testing helper)."""
        csr = m.tocsr()
        csr.sort_indices()
        return cls(
            rows=csr.shape[0],
            cols=csr.shape[1],
            row_ptr=csr.indptr.astype(_INDEX_DTYPE),
            col_idx=csr.indices.astype(_INDEX_DTYPE),
            values=np.asarray(csr.data),
        )

    # -- memory accounting (used by Table 3 / Fig. 8 benches) --------------

    def nbytes(self) -> int:
        """Bytes occupied by the three CSR arrays."""
        return int(self.row_ptr.nbytes + self.col_idx.nbytes + self.values.nbytes)

    # -- comparisons ---------------------------------------------------

    def exactly_equal(self, other: "CSRMatrix") -> bool:
        """Bitwise equality of structure and values (the paper's
        *bit-stable* criterion: repeated runs must produce exactly this)."""
        return (
            self.shape == other.shape
            and np.array_equal(self.row_ptr, other.row_ptr)
            and np.array_equal(self.col_idx, other.col_idx)
            and np.array_equal(
                self.values.view(np.uint8), other.values.view(np.uint8)
            )
        )

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-10, atol: float = 0.0) -> bool:
        """Numerical equality up to a tolerance, after canonicalisation.

        Unlike :meth:`exactly_equal` this tolerates differently ordered
        accumulation (what the non-bit-stable baselines produce).
        """
        if self.shape != other.shape:
            return False
        if not np.array_equal(self.row_ptr, other.row_ptr):
            return False
        if not np.array_equal(self.col_idx, other.col_idx):
            return False
        return bool(np.allclose(self.values, other.values, rtol=rtol, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"
        )

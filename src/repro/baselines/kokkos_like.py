"""Kokkos baseline [13, 14] (§2): portable two-level hashing.

Deveci et al. combine hierarchical (team/thread) partitioning with a
two-level hash data structure: a first-level scratchpad table backed by
a second-level global table that is "only used temporarily and
reclaimed".  The portability layer costs extra instructions per probe
relative to the hand-tuned nsparse, and the global second level engages
sooner, but binning/inspection overheads are comparable.

Hash accumulation order is scheduler dependent — not bit-stable (†).
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products
from .util import row_temp_counts

__all__ = ["KokkosLike"]


class KokkosLike(SpGEMMAlgorithm):
    """Two-level hash with hierarchical team parallelism."""

    name = "kokkos"
    bit_stable = False
    first_level_entries = 4096
    min_table_entries = 512
    collision_factor = 0.25
    portability_alu_per_probe = 6  # abstraction-layer instruction overhead
    team_size = 128  # one team per row: idle lanes on short rows

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        per_row = row_temp_counts(a, b)
        temp = int(per_row.sum())
        launches = 0

        def stage(name: str, mark: float) -> float:
            stage_cycles[name] = self._device_parallel(meter, meter.cycles - mark)
            return meter.cycles

        # ---- inspection + team partitioning ------------------------------
        mark = meter.cycles
        meter.global_read(a.nnz, 4)
        meter.global_read(a.nnz, 8, coalesced=False)
        meter.global_write(a.rows, 4)
        meter.scan(a.rows)
        launches += 2
        mark = stage("partition", mark)

        # ---- symbolic + numeric with the two-level table -----------------
        rows, cols, vals = expand_products(a, b, dtype)
        c = accumulate_products(
            rows, cols, vals, a.rows, b.cols,
            shuffle_seed=None if seed is None else seed + 2,
        )
        in_first = c.row_lengths()[: a.rows] <= self.first_level_entries
        temp_first = int(in_first[rows].sum()) if temp else 0
        temp_second = temp - temp_first
        # first-level tables are sized per row bin; initialising them
        # costs one scratchpad sweep of the table per processed row
        nnz_rows = c.row_lengths()[: a.rows]
        table_sizes = np.maximum(self.min_table_entries, 2 * nnz_rows[per_row > 0])
        table_init = int(np.minimum(table_sizes, self.first_level_entries).sum())
        # one team per row: short rows leave team lanes idle, which
        # cannot hide memory latency — charge the gather per team slot
        active_rows = int(np.count_nonzero(per_row))
        idle_slots = max(0, active_rows * self.team_size - temp)
        for phase in ("symbolic", "numeric"):
            phase_bytes = 4 + (dtype.itemsize if phase == "numeric" else 0)
            meter.global_read(temp, phase_bytes)
            # idle team slots stall on the same latency without moving
            # useful data — charged as wasted sectors
            meter.global_read(idle_slots, phase_bytes, coalesced=False)
            meter.scratchpad(table_init)
            meter.hash_probe(temp_first, in_scratchpad=True)
            meter.hash_probe(temp_second, in_scratchpad=False)
            meter.hash_collision(int(self.collision_factor * temp_first))
            meter.alu(self.portability_alu_per_probe * temp)
            launches += 3
            if phase == "numeric":
                meter.flops(2 * temp)
            else:
                # the portable two-level design stages compressed partial
                # results through global memory between the phases
                meter.global_write(temp, 8)
                meter.global_read(temp, 8)
            mark_next = stage(phase, mark)
            mark = mark_next

        # ---- output -------------------------------------------------------
        meter.radix_sort(c.nnz, 16)
        meter.global_write(c.nnz, 4 + dtype.itemsize)
        launches += 1
        stage("output", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        extra_mem = 8 * a.rows + temp_second * 12  # reclaimed global tables
        return c, extra_mem

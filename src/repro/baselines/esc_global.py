"""CUSP-style global ESC baseline [5, 8] (§2).

"In its original form all intermediate products go through slow global
GPU memory": the expansion writes every temporary product to a global
buffer, a device-wide radix sort orders them by (row, column), and a
compaction pass produces C.  Load balancing is excellent (every thread
handles the same number of products) but the memory traffic is
proportional to ``sort passes x temporary products`` — the cost AC-ESC's
local iterations avoid.

Bit-stable: the device-wide sort is stable, fixing the accumulation
order.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products

__all__ = ["EscGlobal"]


class EscGlobal(SpGEMMAlgorithm):
    """Expand to global memory, sort device-wide, compress."""

    name = "cusp-esc"
    bit_stable = True
    #: device-wide radix digests more bits per pass than the block-level
    #: sort, but every pass streams all pairs through global memory twice.
    device_radix_bits = 6

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        rows, cols, vals = expand_products(a, b, dtype)
        temp = rows.shape[0]
        pair_bytes = 8 + dtype.itemsize  # packed 64-bit key + value
        launches = 0

        def stage(name: str, mark: float) -> float:
            done = self._device_parallel(meter, meter.cycles - mark)
            stage_cycles[name] = done
            return meter.cycles

        # expansion kernel: stream A, gather B, write all pairs out
        mark = meter.cycles
        meter.global_read(a.nnz, 12)
        meter.global_read(temp, 4 + dtype.itemsize)
        meter.global_write(temp, pair_bytes)
        meter.flops(2 * temp)
        launches += 1
        mark = stage("expand", mark)

        # device-wide stable radix sort of packed 64-bit (row, col) keys;
        # without AC's dynamic bit reduction the full key width is sorted
        if temp:
            key_bits = 64
            passes = -(-key_bits // self.device_radix_bits)
            meter.global_read(passes * temp, pair_bytes)
            meter.global_write(passes * temp, pair_bytes)
            meter.alu(4 * passes * temp)
            meter.counters.sorted_elements += temp
            meter.counters.sort_passes += passes
            launches += passes
        mark = stage("sort", mark)

        # compaction: one streaming pass with a device-wide scan
        meter.global_read(temp, pair_bytes)
        meter.scan(temp)
        c = accumulate_products(rows, cols, vals, a.rows, b.cols)
        meter.global_write(c.nnz, 4 + dtype.itemsize)
        launches += 1
        stage("compress", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        extra_mem = 2 * temp * pair_bytes  # double-buffered sort storage
        return c, extra_mem

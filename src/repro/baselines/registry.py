"""Algorithm registry: name -> constructor, as used by the benches.

``GPU_ALGORITHMS`` is the evaluation line-up of the paper's figures
(AC-SpGEMM, cuSPARSE, bhSparse, RMerge, nsparse, Kokkos);
``ALL_ALGORITHMS`` adds the CUSP-style global ESC and the CPU reference.
"""

from __future__ import annotations

from ..backends.adapter import _backend_factory
from ..gpu.config import DeviceConfig, TITAN_XP
from ..gpu.cost import CostConstants, DEFAULT_COSTS
from .acspgemm_adapter import AcSpgemm
from .balanced_hash import BalancedHash
from .base import SpGEMMAlgorithm
from .bhsparse import BhSparse
from .cusparse_like import CusparseLike
from .esc_global import EscGlobal
from .gustavson import GustavsonCPU
from .hybrid import HybridAdaptive
from .kokkos_like import KokkosLike
from .mkl_like import MklLikeCPU
from .nsparse import NsparseHash
from .rmerge import RMerge

__all__ = [
    "GPU_ALGORITHMS",
    "BACKEND_ALGORITHMS",
    "ALL_ALGORITHMS",
    "make_algorithm",
    "make_lineup",
]

GPU_ALGORITHMS: dict[str, type[SpGEMMAlgorithm]] = {
    AcSpgemm.name: AcSpgemm,
    CusparseLike.name: CusparseLike,
    BhSparse.name: BhSparse,
    RMerge.name: RMerge,
    NsparseHash.name: NsparseHash,
    KokkosLike.name: KokkosLike,
}

#: first-class engines from ``repro.backends`` exposed as algorithms
#: (``ac-spgemm`` stays the dedicated adapter above); kept out of
#: ``GPU_ALGORITHMS`` so the paper's figure line-up is unchanged
BACKEND_ALGORITHMS: dict[str, object] = {
    name: _backend_factory(name)
    for name in ("adaptive", "hash-spgemm", "hashmap-spgemm")
}

ALL_ALGORITHMS: dict[str, type[SpGEMMAlgorithm]] = {
    **GPU_ALGORITHMS,
    EscGlobal.name: EscGlobal,
    BalancedHash.name: BalancedHash,
    GustavsonCPU.name: GustavsonCPU,
    MklLikeCPU.name: MklLikeCPU,
    HybridAdaptive.name: HybridAdaptive,
    **BACKEND_ALGORITHMS,
}


def make_algorithm(
    name: str,
    device: DeviceConfig = TITAN_XP,
    costs: CostConstants = DEFAULT_COSTS,
) -> SpGEMMAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        cls = ALL_ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALL_ALGORITHMS)}"
        ) from None
    return cls(device=device, costs=costs)


def make_lineup(
    names=None,
    device: DeviceConfig = TITAN_XP,
    costs: CostConstants = DEFAULT_COSTS,
) -> list[SpGEMMAlgorithm]:
    """The paper's evaluation line-up (or a named subset)."""
    if names is None:
        names = list(GPU_ALGORITHMS)
    return [make_algorithm(n, device=device, costs=costs) for n in names]

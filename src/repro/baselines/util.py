"""Shared statistics helpers for the baseline cost models."""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["row_temp_counts", "output_row_counts"]


def row_temp_counts(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Temporary products generated per row of A (the quantity every
    inspection-based approach bins rows by)."""
    counts = np.zeros(a.rows, dtype=np.int64)
    if a.nnz == 0 or b.nnz == 0:
        return counts
    expand = b.row_lengths()[a.col_idx]
    a_rows = np.repeat(np.arange(a.rows, dtype=np.int64), a.row_lengths())
    np.add.at(counts, a_rows, expand)
    return counts


def output_row_counts(c: CSRMatrix) -> np.ndarray:
    """nnz per output row (post-hoc stand-in for symbolic counts)."""
    return c.row_lengths()

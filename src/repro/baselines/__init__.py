"""Competing SpGEMM implementations (systems S12–S17 of DESIGN.md),
reimplemented on the shared simulated device for apples-to-apples
comparison with AC-SpGEMM."""

from .acspgemm_adapter import AcSpgemm
from .balanced_hash import BalancedHash
from .base import (
    SpGEMMAlgorithm,
    SpGEMMRun,
    accumulate_products,
    expand_products,
)
from .bhsparse import BhSparse
from .cusparse_like import CusparseLike
from .esc_global import EscGlobal
from .gustavson import GustavsonCPU
from .hybrid import HybridAdaptive
from .kokkos_like import KokkosLike
from .mkl_like import MklLikeCPU
from .nsparse import NsparseHash
from .registry import ALL_ALGORITHMS, GPU_ALGORITHMS, make_algorithm, make_lineup
from .rmerge import RMerge
from .util import row_temp_counts

__all__ = [
    "ALL_ALGORITHMS",
    "AcSpgemm",
    "BalancedHash",
    "BhSparse",
    "CusparseLike",
    "EscGlobal",
    "GPU_ALGORITHMS",
    "GustavsonCPU",
    "HybridAdaptive",
    "KokkosLike",
    "MklLikeCPU",
    "NsparseHash",
    "RMerge",
    "SpGEMMAlgorithm",
    "SpGEMMRun",
    "accumulate_products",
    "expand_products",
    "make_algorithm",
    "make_lineup",
    "row_temp_counts",
]

"""CPU baseline: Gustavson's row-wise SpGEMM with a sparse accumulator.

The paper notes (§4) that below ~1e4 non-zeros CPU implementations beat
the GPU (no launch overhead, no under-occupancy) and that from there on
the GPU takes over; this baseline regenerates that crossover
(``benchmarks/bench_cpu_crossover.py``).

The CPU cost model is deliberately simple: one multiply-add pipeline at
``cpu_clock_ghz`` with superscalar factor ``ipc``, a per-element memory
cost, and zero launch overhead.  That yields the ~1–3 GFLOPS a single
Xeon core achieves on SpGEMM — the right order of magnitude for the
crossover claim, which is the only claim this baseline supports.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from ..sparse.csr import CSRMatrix
from ..sparse.ops import spgemm_reference
from .base import SpGEMMAlgorithm

__all__ = ["GustavsonCPU"]


class GustavsonCPU(SpGEMMAlgorithm):
    """Sequential two-pass SPA SpGEMM on the host (bit-stable)."""

    name = "cpu-gustavson"
    bit_stable = True
    cpu_clock_ghz = 3.6  # the paper's host: Intel i7-7700 at 3.60 GHz
    ipc = 1.5  # sustained ops per cycle incl. SPA bookkeeping stalls
    #: each temporary product touches ~one cache line (B gather + SPA)
    line_bytes = 64
    #: random line throughput of one core: within the 8 MB L3 vs DRAM
    l3_bytes = 8 * 1024 * 1024
    l3_bytes_per_cycle = 25.0
    dram_bytes_per_cycle = 12e9 / 3.6e9

    def multiply(self, a, b, *, dtype=np.float64, scheduler_seed: int = 0):
        """Multiply on the host clock (overrides the GPU clock)."""
        run = super().multiply(a, b, dtype=dtype, scheduler_seed=scheduler_seed)
        run.clock_ghz = self.cpu_clock_ghz
        return run

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        c = spgemm_reference(
            a.astype(dtype) if a.dtype != dtype else a,
            b.astype(dtype) if b.dtype != dtype else b,
        )
        b_lengths = b.row_lengths()
        temp = int(b_lengths[a.col_idx].sum()) if a.nnz else 0
        # SPA pass 1 (symbolic) + pass 2 (numeric): each touches every
        # temporary product once; the run is the slower of the compute
        # and the random-line memory bound.  Inputs that fit L3 enjoy
        # cache-speed lines; beyond that DRAM throughput governs.
        work_ops = 2 * temp  # multiply + accumulate
        spa_ops = 2 * temp  # presence checks / scatter of both passes
        compute = (work_ops + spa_ops) / self.ipc
        working_set = a.nbytes() + b.nbytes() + c.nbytes()
        rate = (
            self.l3_bytes_per_cycle
            if working_set <= self.l3_bytes
            else self.dram_bytes_per_cycle
        )
        moved = temp * self.line_bytes
        cycles = max(compute, moved / rate)
        meter.cycles += cycles
        meter.counters.flops += work_ops
        meter.counters.global_bytes_read += moved
        stage_cycles["cpu"] = cycles
        return c, 0

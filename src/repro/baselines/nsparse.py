"""nsparse baseline [22] (§2): row-grouped scratchpad hashing.

Nagasaka et al.'s pipeline, the strongest competitor in the paper
(fastest on denser matrices, Table 1):

1. *Setup / load balancing*: count the temporary products of every row
   (a full inspection pass over A and B's row lengths) and group rows
   into bins by that count — "this entails a complete matrix inspection
   (which can consume up to 30% runtime; cf. [22] fig. 6)".
2. *Symbolic phase*: per row bin, expand the products and insert column
   ids into a scratchpad hash table sized for the bin to count nnz(C).
   Rows exceeding the largest table use a global-memory hash.
3. *Numeric phase*: re-expand (B is gathered a second time) and
   accumulate values through the same tables, then emit sorted rows.

Accumulation order is the hash-insertion order, which depends on the
hardware scheduler — not bit-stable (†).
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products
from .util import row_temp_counts

__all__ = ["NsparseHash"]


class NsparseHash(SpGEMMAlgorithm):
    """Two-phase binned scratchpad hashing (non-deterministic order)."""

    name = "nsparse"
    bit_stable = False
    #: largest scratchpad hash table (distinct column slots); rows whose
    #: output exceeds it fall back to a global-memory table.
    max_table_entries = 8192
    min_table_entries = 256
    #: expected extra probes per insert at the design load factor.
    collision_factor = 0.20
    #: bin setup + symbolic bins + numeric bins kernel launches.
    n_bins = 6

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        per_row = row_temp_counts(a, b)
        temp = int(per_row.sum())
        launches = 0

        def stage(name: str, mark: float) -> float:
            stage_cycles[name] = self._device_parallel(meter, meter.cycles - mark)
            return meter.cycles

        # ---- setup: full inspection + binning + prefix sums ------------
        mark = meter.cycles
        meter.global_read(a.nnz, 4)  # column ids of A
        meter.global_read(a.nnz, 8, coalesced=False)  # B row-pointer pairs
        meter.global_write(a.rows, 4)  # per-row product counts
        meter.global_read(a.rows, 4)  # binning pass
        meter.alu(4 * a.rows)
        meter.scan(a.rows)
        launches += 3  # count, bin, scan
        mark = stage("setup", mark)

        # ---- symbolic: hash-count distinct columns per row ---------------
        rows, cols, vals = expand_products(a, b, dtype)
        c = accumulate_products(
            rows, cols, vals, a.rows, b.cols, shuffle_seed=seed
        )
        # rows whose distinct-column count exceeds the largest
        # scratchpad table are processed through the global hash
        in_scratch = c.row_lengths()[: a.rows] <= self.max_table_entries
        row_of_product = rows
        local_product = (
            in_scratch[row_of_product] if temp else np.zeros(0, dtype=bool)
        )
        temp_local = int(local_product.sum())
        temp_global = temp - temp_local
        # per-row hash tables are sized to the bin; the smallest bin
        # still allocates (and clears) a 256-slot table, so very short
        # rows pay a fixed initialisation sweep — one of the per-row
        # overheads that hurts hashing on highly sparse matrices
        nnz_rows = c.row_lengths()[: a.rows]
        table_init = int(
            np.minimum(
                np.maximum(self.min_table_entries, 2 * nnz_rows[per_row > 0]),
                self.max_table_entries,
            ).sum()
        )
        meter.scratchpad(table_init)
        meter.global_read(temp, 4)  # gather B column ids
        meter.hash_probe(temp_local, in_scratchpad=True)
        meter.hash_probe(temp_global, in_scratchpad=False)
        meter.hash_collision(int(self.collision_factor * temp_local))
        meter.global_write(a.rows, 4)  # nnz(C) per row
        launches += self.n_bins
        mark = stage("symbolic", mark)

        # ---- numeric: re-expand, accumulate, emit sorted rows ------------
        meter.scratchpad(table_init)  # tables are rebuilt for the pass
        meter.global_read(temp, 4 + dtype.itemsize)  # gather B again
        meter.flops(2 * temp)
        meter.hash_probe(temp_local, in_scratchpad=True)
        meter.hash_probe(temp_global, in_scratchpad=False)
        meter.hash_collision(int(self.collision_factor * temp_local))
        # per-row sort of the hash-table contents before writing C
        meter.radix_sort(c.nnz, 16)
        meter.global_write(c.nnz, 4 + dtype.itemsize)
        launches += self.n_bins
        stage("numeric", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        # "nsparse requires hardly any additional memory" (§4.3)
        extra_mem = 8 * a.rows + temp_global * 8
        return c, extra_mem

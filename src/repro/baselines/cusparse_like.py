"""cuSPARSE-style baseline [12, 23] (§2): dual hash tables.

Demouth's design, used inside cuSPARSE's ``csrgemm``: a primary hash
table in scratchpad and a secondary one in global memory.  Compared with
nsparse it lacks size-adapted binning — the scratchpad table has a fixed
(small) size, so overflow into the slow global table happens much
earlier; the generic (non-specialised) kernel path also costs more
instructions per probe, and both the symbolic (``csrgemmNnz``) and
numeric phases pay the full expansion traffic.

Accumulation order is hash/scheduler dependent — not bit-stable (†).
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products
from .util import row_temp_counts

__all__ = ["CusparseLike"]


class CusparseLike(SpGEMMAlgorithm):
    """Fixed-size scratchpad hash with global overflow table."""

    name = "cusparse"
    bit_stable = False
    #: fixed primary table (distinct column slots) — no per-bin sizing.
    primary_table_entries = 2048
    collision_factor = 0.5  # fixed table size => high load factors
    generic_alu_per_probe = 12  # un-specialised kernel path

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        per_row = row_temp_counts(a, b)
        temp = int(per_row.sum())
        launches = 0

        def stage(name: str, mark: float) -> float:
            stage_cycles[name] = self._device_parallel(meter, meter.cycles - mark)
            return meter.cycles

        rows, cols, vals = expand_products(a, b, dtype)
        c = accumulate_products(
            rows, cols, vals, a.rows, b.cols,
            shuffle_seed=None if seed is None else seed + 1,
        )
        in_scratch = c.row_lengths()[: a.rows] <= self.primary_table_entries
        temp_local = int(in_scratch[rows].sum()) if temp else 0
        temp_global = temp - temp_local

        def hash_phase() -> None:
            # the fixed-size primary table is cleared for every row
            meter.scratchpad(int(np.count_nonzero(per_row)) * self.primary_table_entries)
            meter.hash_probe(temp_local, in_scratchpad=True)
            meter.hash_probe(temp_global, in_scratchpad=False)
            meter.hash_collision(int(self.collision_factor * temp_local))
            meter.alu(self.generic_alu_per_probe * temp)

        # ---- symbolic (csrgemmNnz): count output nnz ---------------------
        # the generic gather path does not exploit row-contiguity in B,
        # so B accesses are scattered (uncoalesced)
        mark = meter.cycles
        meter.global_read(a.nnz, 12)
        meter.global_read(temp, 4, coalesced=False)
        hash_phase()
        meter.global_write(a.rows, 4)
        launches += 6  # estimate, bin, scan + per-size kernels
        mark = stage("symbolic", mark)

        # ---- numeric (csrgemm): accumulate values (the value gather
        # walks B rows sequentially, so it coalesces) ----------------------
        meter.global_read(temp, 4 + dtype.itemsize)
        meter.flops(2 * temp)
        hash_phase()
        meter.radix_sort(c.nnz, 24)  # emit sorted rows, no bit reduction
        meter.global_write(c.nnz, 4 + dtype.itemsize)
        launches += 6
        stage("numeric", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        extra_mem = 8 * a.rows + temp_global * 12  # global overflow tables
        return c, extra_mem

"""bhSparse baseline [20] (§2): binned merge strategies.

Liu & Vinter's framework groups output rows by their number of
intermediate products and adaptively selects a merge algorithm per bin:

* tiny rows (<= 32 products) — a register heap per thread;
* medium rows — bitonic/merge sort in scratchpad;
* long rows — iterative merge passes through global memory.

The binning needs the same full inspection pass as every
product-counting load balancer, and each bin is a separate kernel.
Merging is order-deterministic, so bhSparse is bit-stable (no † in
Table 1).
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products
from .util import row_temp_counts

__all__ = ["BhSparse"]


class BhSparse(SpGEMMAlgorithm):
    """Per-row-bin merge selection (bit-stable)."""

    name = "bhsparse"
    bit_stable = True
    heap_limit = 32
    scratch_limit = 2048
    n_bins = 10  # the original uses 37 size classes; kernels batch ~10

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        per_row = row_temp_counts(a, b)
        temp = int(per_row.sum())
        launches = 0

        def stage(name: str, mark: float) -> float:
            stage_cycles[name] = self._device_parallel(meter, meter.cycles - mark)
            return meter.cycles

        # ---- inspection + binning ------------------------------------
        mark = meter.cycles
        meter.global_read(a.nnz, 4)
        meter.global_read(a.nnz, 8, coalesced=False)
        meter.global_write(a.rows, 4)
        meter.alu(4 * a.rows)
        meter.scan(a.rows)
        launches += 3
        mark = stage("binning", mark)

        # ---- per-bin merge kernels --------------------------------------
        heap_rows = per_row <= self.heap_limit
        scratch_rows = (~heap_rows) & (per_row <= self.scratch_limit)
        global_rows = per_row > self.scratch_limit
        temp_heap = int(per_row[heap_rows].sum())
        temp_scratch = int(per_row[scratch_rows].sum())
        temp_global = int(per_row[global_rows].sum())

        meter.global_read(a.nnz, 12)
        meter.global_read(temp, 4 + dtype.itemsize)
        meter.flops(2 * temp)
        # bhSparse materialises the expanded products in per-bin global
        # buffers before merging them (the "high intermediate memory" of
        # ESC-family approaches, §1)
        elem = 4 + dtype.itemsize
        meter.global_write(temp, elem)
        meter.global_read(temp, elem)

        # register heap: ~log2(heap) ALU steps per inserted product
        meter.alu(6 * temp_heap)
        # scratchpad merge: log2(row length) passes through scratchpad
        if temp_scratch:
            avg = max(2.0, temp_scratch / max(1, int(scratch_rows.sum())))
            passes = int(np.ceil(np.log2(avg)))
            meter.scratchpad(2 * passes * temp_scratch)
            meter.alu(2 * passes * temp_scratch)
        # global merge: each pass streams the long rows through DRAM
        if temp_global:
            avg = temp_global / max(1, int(global_rows.sum()))
            passes = max(1, int(np.ceil(np.log2(avg / self.scratch_limit))))
            meter.global_read(passes * temp_global, 4 + dtype.itemsize)
            meter.global_write(passes * temp_global, 4 + dtype.itemsize)
        launches += self.n_bins
        mark = stage("merge", mark)

        # ---- output ----------------------------------------------------
        rows, cols, vals = expand_products(a, b, dtype)
        c = accumulate_products(rows, cols, vals, a.rows, b.cols)
        meter.global_write(c.nnz, 4 + dtype.itemsize)
        launches += 1
        stage("output", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        # upper-bound intermediate buffers sized per bin
        extra_mem = temp * (4 + dtype.itemsize) + 8 * a.rows
        return c, extra_mem

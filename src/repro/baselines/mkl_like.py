"""Multi-threaded CPU baseline (Patwary et al. [24] / Intel MKL style).

bhSparse's authors report an average GPU speedup of 2.5/2.2 (single /
double precision) over an MKL CPU implementation (§2); the paper's own
CPU remark (§4) compares against "state-of-the-art CPU implementations
[14] on a consumer grade CPU of similar cost (Intel Xeon E5-2630)".

This baseline models a row-parallel SPA SpGEMM over ``n_threads`` cores
with cache-blocked accumulator accesses [24]: rows are distributed
dynamically, each core runs the two-pass Gustavson algorithm, and the
makespan is the maximum per-core work plus a parallel-section overhead.
Results are computed per row in ascending-column order — bit-stable, as
row-parallel CPU SpGEMM genuinely is.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from ..gpu.scheduler import schedule_blocks
from ..sparse.ops import spgemm_reference
from .base import SpGEMMAlgorithm
from .util import row_temp_counts

__all__ = ["MklLikeCPU"]


class MklLikeCPU(SpGEMMAlgorithm):
    """Row-parallel two-pass SPA SpGEMM on a multi-core host."""

    name = "cpu-mkl"
    bit_stable = True
    cpu_clock_ghz = 2.2  # Xeon E5-2630 v4 base clock
    n_threads = 16  # the paper's host: "Intel Xeon E5-2630 16 GB" (2x8C)
    ipc = 2.0
    parallel_overhead_cycles = 20000.0  # fork/join + dynamic scheduling
    #: bytes moved per product: the blocked accumulators of [24] give
    #: partial line reuse, so ~half a line per product on average; all
    #: threads share the aggregate L3 (in-cache) or DRAM (beyond)
    line_bytes = 32
    l3_bytes = 8 * 1024 * 1024
    l3_bytes_per_cycle = 100.0  # ~220 GB/s aggregate L3
    dram_bytes_per_cycle = 60e9 / 2.2e9

    def multiply(self, a, b, *, dtype=np.float64, scheduler_seed: int = 0):
        """Multiply on the host clock (overrides the GPU clock)."""
        run = super().multiply(a, b, dtype=dtype, scheduler_seed=scheduler_seed)
        run.clock_ghz = self.cpu_clock_ghz
        return run

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        c = spgemm_reference(
            a.astype(dtype) if a.dtype != dtype else a,
            b.astype(dtype) if b.dtype != dtype else b,
        )
        per_row = row_temp_counts(a, b)
        # per-row work: both passes touch each product, plus SPA resets
        # bounded by the row's output nnz
        c_rows = c.row_lengths()
        row_cycles = (4.0 * per_row + 2.0 * c_rows) / self.ipc + 12.0 * (
            per_row > 0
        )
        # dynamic row scheduling over the cores (greedy, like OpenMP
        # dynamic scheduling with chunk size 1 on sorted-by-id rows)
        timing = schedule_blocks(
            row_cycles.tolist(),
            self.n_threads,
            launch_overhead=self.parallel_overhead_cycles,
        )
        temp = int(per_row.sum())
        # all threads share the cache/memory system — the usual SpGEMM
        # scaling limit on multicore hosts
        working_set = a.nbytes() + b.nbytes() + c.nbytes()
        rate = (
            self.l3_bytes_per_cycle
            if working_set <= self.l3_bytes
            else self.dram_bytes_per_cycle
        )
        moved = temp * self.line_bytes
        makespan = max(timing.makespan_cycles, moved / rate)
        meter.cycles += makespan
        meter.counters.flops += 2 * temp
        meter.counters.global_bytes_read += moved
        stage_cycles["cpu-parallel"] = makespan
        return c, 8 * self.n_threads * max(b.cols, 1) // 64  # blocked SPAs

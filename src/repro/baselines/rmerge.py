"""RMerge baseline [17] (§2): iterative row merging.

Gremse et al. split B into factors with bounded row length and compute
the product as a sequence of merges that always complete in efficient
(on-chip) memory, processing the factors from right to left.  Each merge
level streams the current intermediate matrix through global memory, so
the total traffic scales with ``temp x levels`` where
``levels ≈ ceil(log_W(merge ways))`` for merge width W.

Special structures with uniform short rows need a single level — the
regime where RMerge occasionally leads (the paper's ``landmark`` case).
Merging is deterministic, so RMerge is bit-stable.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products

__all__ = ["RMerge"]


class RMerge(SpGEMMAlgorithm):
    """Hierarchical W-way row merging (bit-stable)."""

    name = "rmerge"
    bit_stable = True
    merge_width = 32  # rows merged per warp-level pass

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        launches = 0

        def stage(name: str, mark: float) -> float:
            stage_cycles[name] = self._device_parallel(meter, meter.cycles - mark)
            return meter.cycles

        # ---- preprocessing: split B / build merge schedule ---------------
        mark = meter.cycles
        meter.global_read(b.nnz, 4 + dtype.itemsize)
        meter.global_write(b.nnz, 4 + dtype.itemsize)
        meter.global_read(a.rows + 1, 8)
        launches += 2
        mark = stage("split", mark)

        # ---- iterative merge levels ------------------------------------
        # ways merged per output row = length of the A row; the level
        # count is the depth of the W-ary merge tree over the longest row
        a_lengths = a.row_lengths()
        max_ways = int(a_lengths.max()) if a.rows and a.nnz else 1
        levels = max(
            1, int(np.ceil(np.log(max(2, max_ways)) / np.log(self.merge_width)))
        )
        rows, cols, vals = expand_products(a, b, dtype)
        temp = rows.shape[0]
        elem = 4 + dtype.itemsize
        # The first level assigns one warp per output row: a warp merges
        # up to W rows of B, one per lane.  Rows of A shorter than W
        # leave lanes idle, so the charged work is per warp *slot*, not
        # per element — the under-utilisation that costs RMerge its lead
        # on irregular sparse matrices.
        per_row_temp = np.zeros(a.rows, dtype=np.int64)
        if temp:
            a_rows_of_products = rows
            np.add.at(per_row_temp, a_rows_of_products, 1)
        ways = a_lengths
        active = ways > 0
        warp_groups = np.ceil(ways[active] / self.merge_width)
        lane_load = per_row_temp[active] / np.maximum(ways[active], 1)
        slots = int((warp_groups * self.merge_width * np.ceil(lane_load)).sum())
        slots = max(slots, temp)
        # idle lanes cannot hide memory latency, so the gather is charged
        # per slot: at 20% utilisation the warp spends 5x longer fetching
        meter.global_read(slots, elem, coalesced=False)
        meter.alu(8 * slots)
        meter.global_write(temp, elem)
        launches += 1
        # deeper levels stream the surviving intermediate matrices; a
        # crude geometric shrink models in-level compaction
        level_elems = max(temp * 3 // 4, 1) if temp else 0
        for _ in range(levels - 1):
            meter.global_read(level_elems, elem)
            meter.global_write(level_elems, elem)
            meter.alu(8 * level_elems)  # warp-wide merge network steps
            launches += 1
            level_elems = max(level_elems * 3 // 4, 1) if level_elems else 0
        meter.flops(2 * temp)
        mark = stage("merge", mark)

        # ---- output -----------------------------------------------------
        c = accumulate_products(rows, cols, vals, a.rows, b.cols)
        meter.global_write(c.nnz, elem)
        launches += 1
        stage("output", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        # split factors + ping-pong intermediate matrices
        extra_mem = 2 * temp * elem + b.nnz * elem
        return c, extra_mem

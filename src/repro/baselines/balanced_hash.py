"""BalancedHash baseline [3] (§2): local-only hashing with size estimates.

Anh et al.'s approach "restricts itself to local hash tables and avoids
overflows using 'better size estimates' [2]" (Amossen/Campagna/Pagh
sketch-based nnz estimation).  The pipeline:

1. a sketch pass estimates nnz(C) per row bin (cheaper than nsparse's
   exact symbolic count but still a full read of A and B's lengths);
2. all rows run through *scratchpad* hash tables sized by the estimate;
   rows the estimate got wrong overflow and are retried with doubled
   tables (modelled as a re-run of the affected products);
3. a numeric pass accumulates and emits sorted rows.

Local-only tables avoid nsparse's global-memory fallback but pay a
retry penalty wherever the estimate undershoots.  Hash insertion order
is scheduler-dependent — not bit-stable.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from .base import SpGEMMAlgorithm, accumulate_products, expand_products
from .util import row_temp_counts

__all__ = ["BalancedHash"]


class BalancedHash(SpGEMMAlgorithm):
    """Estimate-driven local hashing (non-deterministic order)."""

    name = "balanced-hash"
    bit_stable = False
    max_table_entries = 8192
    min_table_entries = 256
    collision_factor = 0.25
    #: fraction of rows whose sketch estimate undershoots and retries
    retry_fraction = 0.08

    def _execute(self, a, b, dtype, meter: CostMeter, stage_cycles, seed):
        per_row = row_temp_counts(a, b)
        temp = int(per_row.sum())
        launches = 0

        def stage(name: str, mark: float) -> float:
            stage_cycles[name] = self._device_parallel(meter, meter.cycles - mark)
            return meter.cycles

        # ---- sketch-based size estimation ---------------------------------
        mark = meter.cycles
        meter.global_read(a.nnz, 4)
        meter.global_read(a.nnz, 8, coalesced=False)  # B row lengths
        meter.alu(8 * a.nnz)  # sketch updates
        meter.global_write(a.rows, 4)
        launches += 2
        mark = stage("estimate", mark)

        # ---- hashed expansion, local tables only ---------------------------
        rows, cols, vals = expand_products(a, b, dtype)
        c = accumulate_products(
            rows, cols, vals, a.rows, b.cols,
            shuffle_seed=None if seed is None else seed + 3,
        )
        nnz_rows = c.row_lengths()[: a.rows]
        table_init = int(
            np.minimum(
                np.maximum(self.min_table_entries, 2 * nnz_rows[per_row > 0]),
                self.max_table_entries,
            ).sum()
        )
        for phase in ("symbolic", "numeric"):
            meter.scratchpad(table_init)
            meter.global_read(
                temp, 4 + (dtype.itemsize if phase == "numeric" else 0)
            )
            meter.hash_probe(temp, in_scratchpad=True)
            meter.hash_collision(int(self.collision_factor * temp))
            # estimate misses: affected rows re-run with doubled tables
            retry = int(self.retry_fraction * temp)
            meter.hash_probe(retry, in_scratchpad=True)
            meter.scratchpad(int(self.retry_fraction * table_init) * 2)
            launches += 4
            if phase == "numeric":
                meter.flops(2 * temp)
            mark = stage(phase, mark)

        meter.radix_sort(c.nnz, 16)
        meter.global_write(c.nnz, 4 + dtype.itemsize)
        launches += 1
        stage("output", mark)

        meter.cycles = (
            sum(stage_cycles.values())
            + launches * self.costs.kernel_launch_cycles
        )
        meter.counters.kernel_launches += launches
        extra_mem = 8 * a.rows  # estimates only; tables live in scratchpad
        return c, extra_mem

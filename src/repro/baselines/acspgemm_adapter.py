"""Adapter presenting AC-SpGEMM through the common algorithm interface,
so the benchmark harness treats it exactly like the baselines."""

from __future__ import annotations

import numpy as np

from ..core.acspgemm import ac_spgemm
from ..core.options import AcSpgemmOptions
from ..gpu.config import DeviceConfig, TITAN_XP
from ..gpu.cost import CostConstants, DEFAULT_COSTS
from .base import SpGEMMAlgorithm, SpGEMMRun

__all__ = ["AcSpgemm"]


class AcSpgemm(SpGEMMAlgorithm):
    """The paper's contribution, wrapped for head-to-head comparison."""

    name = "ac-spgemm"
    bit_stable = True

    def __init__(
        self,
        device: DeviceConfig = TITAN_XP,
        costs: CostConstants = DEFAULT_COSTS,
        options: AcSpgemmOptions | None = None,
    ) -> None:
        super().__init__(device=device, costs=costs)
        self._options = options

    def options_for(self, dtype) -> AcSpgemmOptions:
        """Effective pipeline options for the requested precision."""
        base = self._options or AcSpgemmOptions(device=self.device, costs=self.costs)
        return base.with_(value_dtype=np.dtype(dtype), device=self.device, costs=self.costs)

    def multiply(self, a, b, *, dtype=np.float64, scheduler_seed: int = 0) -> SpGEMMRun:
        """Run AC-SpGEMM; the full result rides along as ``ac_result``."""
        result = ac_spgemm(a, b, self.options_for(dtype))
        run = SpGEMMRun(
            matrix=result.matrix,
            algorithm=self.name,
            cycles=result.total_cycles,
            counters=result.counters,
            clock_ghz=result.clock_ghz,
            bit_stable=True,
            extra_memory_bytes=result.memory.helper_bytes
            + result.memory.chunk_pool_bytes,
            stage_cycles=dict(result.stage_cycles),
        )
        run.ac_result = result  # full accounting for Table 3 / Figure 7
        return run

    def _execute(self, *args, **kwargs):  # pragma: no cover - not used
        raise NotImplementedError("AcSpgemm overrides multiply directly")

"""Common infrastructure for the competing SpGEMM implementations.

Every baseline evaluated in the paper (cuSPARSE, bhSparse, RMerge,
nsparse, Kokkos) plus the CUSP-style global ESC and a CPU Gustavson
reference is reimplemented here against the same simulated device and
cost model as AC-SpGEMM, so relative comparisons are apples-to-apples:
each algorithm charges the global traffic, on-chip work, kernel
launches and inspection passes its published design implies.

Numerical results are always the true product; what differs between
algorithms is (a) the cost profile and (b) the floating-point
*accumulation order*.  Hash-based algorithms accumulate in an order
determined by the hardware scheduler — modelled by a seeded shuffle —
and are therefore not bit-stable (†-rows of Table 1); sort- and
merge-based algorithms accumulate in deterministic sorted order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.config import DeviceConfig, TITAN_XP
from ..gpu.cost import CostConstants, CostMeter, DEFAULT_COSTS
from ..gpu.counters import TrafficCounters
from ..sparse.csr import CSRMatrix

__all__ = [
    "SpGEMMRun",
    "SpGEMMAlgorithm",
    "expand_products",
    "accumulate_products",
]

_INDEX_DTYPE = np.int64


@dataclass
class SpGEMMRun:
    """Result of one simulated SpGEMM execution."""

    matrix: CSRMatrix
    algorithm: str
    cycles: float
    counters: TrafficCounters
    clock_ghz: float
    bit_stable: bool
    extra_memory_bytes: int = 0
    stage_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Simulated execution time."""
        return self.cycles / (self.clock_ghz * 1e9)

    def gflops(self, temp_products: int) -> float:
        """GFLOPS by the paper's convention (2 FLOPs per temporary
        product) against simulated time."""
        if self.seconds <= 0:
            return 0.0
        return 2.0 * temp_products / self.seconds / 1e9


class SpGEMMAlgorithm:
    """Interface of a simulated SpGEMM implementation.

    Subclasses set ``name`` / ``bit_stable`` and implement
    :meth:`_execute`, returning the product matrix and charging all
    work to the provided meter.
    """

    name: str = "abstract"
    bit_stable: bool = True

    def __init__(
        self,
        device: DeviceConfig = TITAN_XP,
        costs: CostConstants = DEFAULT_COSTS,
    ) -> None:
        self.device = device
        self.costs = costs

    def multiply(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        *,
        dtype=np.float64,
        scheduler_seed: int = 0,
    ) -> SpGEMMRun:
        """Compute ``A @ B``; returns the matrix with full accounting.

        ``scheduler_seed`` perturbs the modelled hardware scheduling;
        bit-stable algorithms ignore it by construction.
        """
        if a.cols != b.rows:
            raise ValueError(
                f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
            )
        meter = CostMeter(config=self.device, constants=self.costs)
        stage_cycles: dict[str, float] = {}
        matrix, extra_mem = self._execute(
            a, b, np.dtype(dtype), meter, stage_cycles, scheduler_seed
        )
        return SpGEMMRun(
            matrix=matrix,
            algorithm=self.name,
            cycles=meter.cycles,
            counters=meter.counters,
            clock_ghz=self.device.clock_ghz,
            bit_stable=self.bit_stable,
            extra_memory_bytes=extra_mem,
            stage_cycles=stage_cycles,
        )

    # implemented by subclasses -------------------------------------------
    def _execute(
        self,
        a: CSRMatrix,
        b: CSRMatrix,
        dtype: np.dtype,
        meter: CostMeter,
        stage_cycles: dict[str, float],
        scheduler_seed: int,
    ) -> tuple[CSRMatrix, int]:
        raise NotImplementedError

    # shared helpers ---------------------------------------------------

    def _device_parallel(self, meter: CostMeter, serial_cycles: float) -> float:
        """Cycles of a device-wide pass spread over all SMs."""
        return serial_cycles / self.device.num_sms


def expand_products(
    a: CSRMatrix, b: CSRMatrix, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All temporary products of A @ B in deterministic CSR order.

    Returns ``(rows, cols, vals)`` with one entry per product
    ``A[i, k] * B[k, j]``; the order is row-major over A's entries and
    B-row order within each — the canonical expansion order.
    """
    if a.nnz == 0 or b.nnz == 0:
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        return empty, empty.copy(), np.zeros(0, dtype=dtype)
    b_lengths = b.row_lengths()
    expand_counts = b_lengths[a.col_idx]
    total = int(expand_counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        return empty, empty.copy(), np.zeros(0, dtype=dtype)

    a_rows = np.repeat(np.arange(a.rows, dtype=_INDEX_DTYPE), a.row_lengths())
    rows = np.repeat(a_rows, expand_counts)
    a_vals = np.repeat(a.values.astype(dtype, copy=False), expand_counts)

    # B element index of each product: per A-entry a run
    # [b_ptr[k], b_ptr[k] + len) — built with the cumsum-offset trick.
    starts = b.row_ptr[a.col_idx]
    offsets = np.arange(total, dtype=_INDEX_DTYPE)
    entry_of_product = np.repeat(
        np.arange(a.nnz, dtype=_INDEX_DTYPE), expand_counts
    )
    run_starts = np.concatenate(
        [[0], np.cumsum(expand_counts)[:-1]]
    ).astype(_INDEX_DTYPE)
    within = offsets - run_starts[entry_of_product]
    b_elem = starts[entry_of_product] + within

    cols = b.col_idx[b_elem]
    vals = a_vals * b.values[b_elem].astype(dtype, copy=False)
    return rows, cols, vals


def accumulate_products(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    n_rows: int,
    n_cols: int,
    *,
    shuffle_seed: int | None = None,
) -> CSRMatrix:
    """Sort products by (row, col) and sum duplicates into canonical CSR.

    With ``shuffle_seed=None`` the accumulation order within each output
    entry is the expansion order (stable sort) — deterministic, the
    behaviour of sort/merge-based algorithms.  With a seed, products are
    permuted within their group before summation, modelling the
    scheduler-dependent insertion order of hash-based algorithms.
    """
    dtype = vals.dtype
    if rows.shape[0] == 0:
        return CSRMatrix.empty(n_rows, n_cols, dtype=dtype)
    if shuffle_seed is None:
        order = np.lexsort((cols, rows))
    else:
        rng = np.random.default_rng(shuffle_seed)
        priority = rng.random(rows.shape[0])
        order = np.lexsort((priority, cols, rows))
    r = rows[order]
    c = cols[order]
    v = vals[order]
    new_group = np.empty(r.shape[0], dtype=bool)
    new_group[0] = True
    np.not_equal(r[1:], r[:-1], out=new_group[1:])
    np.logical_or(new_group[1:], c[1:] != c[:-1], out=new_group[1:])
    start_idx = np.nonzero(new_group)[0]
    out_vals = np.add.reduceat(v, start_idx)
    out_rows = r[start_idx]
    out_cols = c[start_idx]
    row_counts = np.bincount(out_rows, minlength=n_rows)
    row_ptr = np.zeros(n_rows + 1, dtype=_INDEX_DTYPE)
    np.cumsum(row_counts, out=row_ptr[1:])
    return CSRMatrix(
        rows=n_rows,
        cols=n_cols,
        row_ptr=row_ptr,
        col_idx=out_cols,
        values=out_vals,
    )

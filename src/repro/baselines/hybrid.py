"""Adaptive hybrid SpGEMM (§5 future work).

The paper's conclusion: "extending the adaptive behaviour of our
chunk-based approach to choose between alternative approaches (ESC,
hashing, merging) depending on the load currently seen by the work
distribution may lead to a further improvement of performance in those
scenarios where other strategies shine."

This baseline realises the coarse-grained version of that idea: a cheap
O(rows) pre-inspection of the operands estimates where the input lands
relative to the ESC/hashing crossover, and dispatches the whole product
to AC-SpGEMM or to the hash pipeline accordingly.  The dispatch
heuristic uses exactly the quantities the evaluation identifies as
decisive: average row length (the a <= 42 split) and the estimated
compaction regime.

Because the hash path may be chosen, the hybrid is *not* bit-stable —
the price the paper predicts for chasing the last factor on dense
inputs.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from ..sparse.csr import CSRMatrix
from .acspgemm_adapter import AcSpgemm
from .base import SpGEMMAlgorithm, SpGEMMRun
from .nsparse import NsparseHash

__all__ = ["HybridAdaptive"]


class HybridAdaptive(SpGEMMAlgorithm):
    """Dispatch between AC-SpGEMM and nsparse-style hashing."""

    name = "hybrid-adaptive"
    bit_stable = False  # the hash path may be selected

    #: dispatch threshold on the mean B-row length referenced by A —
    #: the empirical ESC/hashing crossover of the cost model (it sits
    #: near the paper's a = 42 split for uniform structures)
    row_length_threshold = 42.0
    #: rows whose columns spread over less than this fraction of the
    #: matrix width are "structured": dynamic bit reduction shrinks the
    #: sort keys enough that ESC stays competitive even on long rows
    structure_span_fraction = 0.25
    structure_sample_rows = 64

    def __init__(self, device=None, costs=None):
        from ..gpu.config import TITAN_XP
        from ..gpu.cost import DEFAULT_COSTS

        super().__init__(device or TITAN_XP, costs or DEFAULT_COSTS)
        self._ac = AcSpgemm(device=self.device, costs=self.costs)
        self._hash = NsparseHash(device=self.device, costs=self.costs)

    # -- dispatch heuristic ----------------------------------------------

    def choose(self, a: CSRMatrix, b: CSRMatrix) -> str:
        """Return "esc" or "hash" from an O(rows + nnz) inspection."""
        return self._inspect(a, b)[0]

    def _inspect(self, a: CSRMatrix, b: CSRMatrix) -> tuple[str, int]:
        """The dispatch decision plus the probe's actual read volume.

        The second element counts the 4-byte B-side reads the span probe
        really performed (row-pointer pair plus first/last column id per
        sampled row), so ``multiply`` can charge what was touched instead
        of a flat guess.
        """
        if a.nnz == 0 or b.nnz == 0:
            return "esc", 0
        mean_expansion = float(b.row_lengths()[a.col_idx].mean())
        if mean_expansion <= self.row_length_threshold:
            return "esc", 0
        if b.cols == 0:
            # width-degenerate B: no column span to measure (and nothing
            # for the hash tables to key on) — ESC handles it trivially
            return "esc", 0
        # estimate the column span a block will see: sample B rows and
        # measure each row's column spread relative to the matrix width
        step = max(1, b.rows // self.structure_sample_rows)
        spreads = []
        sampled_reads = 0
        for r in range(0, b.rows, step):
            lo, hi = b.row_ptr[r], b.row_ptr[r + 1]
            sampled_reads += 2  # the row-pointer pair
            if hi - lo >= 2:
                sampled_reads += 2  # first and last column id
                spreads.append(int(b.col_idx[hi - 1] - b.col_idx[lo]))
        if spreads and float(np.mean(spreads)) <= (
            self.structure_span_fraction * b.cols
        ):
            return "esc", sampled_reads  # structured: bit reduction wins
        return "hash", sampled_reads

    # -- execution ---------------------------------------------------------

    def multiply(
        self, a: CSRMatrix, b: CSRMatrix, *, dtype=np.float64, scheduler_seed: int = 0
    ) -> SpGEMMRun:
        """Inspect, dispatch, and execute the chosen pipeline."""
        if a.cols != b.rows:
            raise ValueError(
                f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
            )
        # the inspection itself costs one streaming pass plus whatever
        # the span probe actually touched (not a flat min(nnz, 512))
        decision, sampled_reads = self._inspect(a, b)
        probe = CostMeter(config=self.device, constants=self.costs)
        probe.global_read(a.nnz, 4)
        if a.nnz:
            # gathering B's row lengths for the expansion estimate
            probe.global_read(min(a.nnz, b.rows), 4, coalesced=False)
        if sampled_reads:
            probe.global_read(sampled_reads, 4, coalesced=False)
        probe.kernel_launch()
        inner = self._ac if decision == "esc" else self._hash
        run = inner.multiply(a, b, dtype=dtype, scheduler_seed=scheduler_seed)
        run.algorithm = self.name
        run.cycles += probe.cycles / self.device.num_sms
        run.counters.merge(probe.counters)
        run.bit_stable = inner is self._ac
        run.stage_cycles = {"dispatch": probe.cycles, **run.stage_cycles}
        run.dispatched_to = inner.name
        return run

    def _execute(self, *args, **kwargs):  # pragma: no cover - not used
        raise NotImplementedError("HybridAdaptive overrides multiply")

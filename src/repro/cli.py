"""Command-line runner mirroring the paper's artifact workflow.

The artifact (Appendix A.4) operates in two modes:

* **Single matrix** — run the framework for one matrix, optionally
  confirming the result against a host (CPU) implementation;
* **Complete testrun** — a ``runall`` script that calls the framework
  for every matrix in a folder, producing a ``.csv`` with matrix
  statistics and timing measurements.

Usage::

    python -m repro.cli single path/to/matrix.mtx [--verify] [--float]
    python -m repro.cli runall path/to/folder --out results.csv
    python -m repro.cli suite --out results.csv [--limit N]
    python -m repro.cli compare path/to/matrix.mtx
    python -m repro.cli serve --port 8080

``suite`` runs the built-in synthetic collection instead of a folder of
``.mtx`` files (useful offline); ``compare`` runs the full algorithm
line-up on one matrix.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import numpy as np

from .baselines import GPU_ALGORITHMS, make_algorithm
from .core import AcSpgemmOptions, ac_spgemm
from .resilience import ReproError
from .sparse import (
    count_intermediate_products,
    load_matrix,
    matrix_stats,
    spgemm_reference,
    squared_operands,
)

CSV_HEADERS = [
    "matrix",
    "rows",
    "cols",
    "nnz",
    "avg_row_len",
    "max_row_len",
    "temp_products",
    "nnz_c",
    "sim_ms",
    "gflops",
    "chunks",
    "shared_rows",
    "restarts",
    "degraded",
    "engine",
    "dispatched_to",
    "verified",
]

#: host execution engines of the AC-SpGEMM pipeline (identical results)
HOST_ENGINES = ("reference", "batched", "parallel", "process")

#: registered ``repro.backends`` engines selectable via ``--engine``
BACKEND_ENGINES = ("adaptive", "hash-spgemm", "hashmap-spgemm")

ENGINE_CHOICES = HOST_ENGINES + BACKEND_ENGINES


def _workers_arg(value: str):
    """``--workers`` accepts an integer or ``auto`` (one per core)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _run_one(
    name: str,
    matrix,
    *,
    dtype,
    verify: bool,
    engine: str = "reference",
    sanitize: bool = False,
    fallback: bool = False,
    estimator: str = "uniform",
) -> dict:
    a, b = squared_operands(matrix)
    use_backend = engine in BACKEND_ENGINES
    opts = AcSpgemmOptions(
        value_dtype=dtype,
        engine="reference" if use_backend else engine,
        estimator=estimator,
        sanitize=sanitize,
        on_failure="fallback" if fallback else "raise",
    )
    if use_backend:
        from .backends import run_backend

        result = run_backend(engine, a, b, opts)
    else:
        result = ac_spgemm(a, b, opts)
    temp = count_intermediate_products(a, b)
    verified = ""
    if verify:
        ref = spgemm_reference(a.astype(dtype), b.astype(dtype))
        verified = str(result.matrix.allclose(
            ref, rtol=1e-4 if dtype == np.float32 else 1e-10
        ))
    st = matrix_stats(matrix)
    return {
        "matrix": name,
        "rows": st.rows,
        "cols": st.cols,
        "nnz": st.nnz,
        "avg_row_len": round(st.mean_row_length, 2),
        "max_row_len": st.max_row_length,
        "temp_products": temp,
        "nnz_c": result.matrix.nnz,
        "sim_ms": round(result.seconds * 1e3, 4),
        "gflops": round(2.0 * temp / result.seconds / 1e9, 3)
        if result.seconds
        else 0.0,
        "chunks": result.n_chunks,
        "shared_rows": result.shared_rows,
        "restarts": result.restarts,
        # three-valued: "" = fallback not enabled, "False" = fallback
        # armed but the run stayed clean, "True" = degraded run
        "degraded": str(result.degraded) if fallback else "",
        "engine": engine,
        "dispatched_to": result.dispatched_to or "",
        "verified": verified,
    }


def _print_row(row: dict) -> None:
    for k, v in row.items():
        print(f"  {k:14s} {v}")


def cmd_single(args) -> int:
    """Run AC-SpGEMM on one matrix file, optionally CPU-verified."""
    matrix = load_matrix(args.matrix)
    dtype = np.float32 if args.float else np.float64
    row = _run_one(
        Path(args.matrix).stem, matrix,
        dtype=dtype, verify=args.verify, engine=args.engine,
        sanitize=args.sanitize, fallback=args.fallback,
        estimator=args.estimator,
    )
    label = args.engine if args.engine in BACKEND_ENGINES else "AC-SpGEMM"
    print(f"{label} on {args.matrix} "
          f"({'single' if args.float else 'double'} precision):")
    _print_row(row)
    if args.verify and row["verified"] != "True":
        print("VERIFICATION FAILED", file=sys.stderr)
        return 1
    return 0


def _write_rows(out: str | None, rows: list[dict]) -> None:
    if not out:
        return
    with open(out, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_HEADERS)
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {len(rows)} rows to {out}")


def cmd_runall(args) -> int:
    """Run every .mtx/.npz matrix in a folder; failures are isolated."""
    folder = Path(args.folder)
    files = sorted(folder.glob("*.mtx")) + sorted(folder.glob("*.npz"))
    if not files:
        print(f"no .mtx/.npz matrices under {folder}", file=sys.stderr)
        return 1
    dtype = np.float32 if args.float else np.float64
    rows = []
    for f in files:
        # each matrix is isolated: a failure must not impede the rest
        # (the artifact runs each test as a separate process for this)
        try:
            rows.append(
                _run_one(f.stem, load_matrix(f), dtype=dtype,
                         verify=args.verify, engine=args.engine,
                         sanitize=args.sanitize, fallback=args.fallback,
                         estimator=args.estimator)
            )
            print(f"{f.stem}: {rows[-1]['gflops']} GFLOPS")
        except Exception as exc:  # noqa: BLE001 - isolation by design
            print(f"{f.stem}: FAILED ({exc})", file=sys.stderr)
    _write_rows(args.out, rows)
    return 0


def cmd_suite(args) -> int:
    """Run the built-in synthetic suite (no matrix files needed)."""
    from .matrices import suite_entries

    dtype = np.float32 if args.float else np.float64
    rows = []
    for e in suite_entries()[: args.limit]:
        rows.append(_run_one(e.name, e.build(), dtype=dtype,
                             verify=args.verify, engine=args.engine,
                             sanitize=args.sanitize, fallback=args.fallback,
                             estimator=args.estimator))
        print(f"{e.name}: {rows[-1]['gflops']} GFLOPS")
    _write_rows(args.out, rows)
    return 0


def _load_profile_matrix(spec: str):
    """Resolve a matrix file path or a ``suite:NAME`` suite entry."""
    if spec.startswith("suite:"):
        from .matrices import suite_entries

        name = spec[len("suite:"):]
        for e in suite_entries():
            if e.name == name:
                return name, e.build()
        raise SystemExit(f"repro profile: unknown suite entry {name!r}")
    return Path(spec).stem, load_matrix(spec)


def cmd_profile(args) -> int:
    """Instrumented single run: per-stage report, trace and metrics."""
    from .obs.profile import profile_run

    name, matrix = _load_profile_matrix(args.matrix)
    a, b = squared_operands(matrix)
    opts = AcSpgemmOptions(
        value_dtype=np.float32 if args.float else np.float64,
        engine=args.engine,
        estimator=args.estimator,
        sanitize=args.sanitize,
        on_failure="fallback" if args.fallback else "raise",
        collect_trace=True,
    )
    report = profile_run(a, b, opts, matrix_name=name)
    print(report.text())
    if args.trace_out:
        out = report.write_trace(args.trace_out)
        print(f"wrote Perfetto trace to {out}")
    if args.metrics_out:
        out = report.write_metrics_json(args.metrics_out)
        print(f"wrote metrics JSON to {out}")
    if args.prom_out:
        out = report.write_prometheus(args.prom_out)
        print(f"wrote Prometheus metrics to {out}")
    return 0


def cmd_analyze(args) -> int:
    """Device-trace analysis: paper-figure reports from one traced run."""
    from .obs.analyze import analyze_result
    from .obs.export import perfetto_payload, write_perfetto

    name, matrix = _load_profile_matrix(args.matrix)
    a, b = squared_operands(matrix)
    use_backend = args.engine in BACKEND_ENGINES
    opts = AcSpgemmOptions(
        value_dtype=np.float32 if args.float else np.float64,
        engine="reference" if use_backend else args.engine,
        estimator=args.estimator,
        sanitize=args.sanitize,
        on_failure="fallback" if args.fallback else "raise",
        device_trace=True,
    )
    if use_backend:
        from .backends import run_backend

        result = run_backend(args.engine, a, b, opts)
        label = args.engine
        if result.dispatched_to:
            label = f"{args.engine}->{result.dispatched_to}"
    else:
        result = ac_spgemm(a, b, opts)
        label = ""
    report = analyze_result(result, opts, matrix_name=name, engine=label)
    print(report.text())
    if args.json_out:
        out = report.write_json(args.json_out)
        print(f"wrote analysis JSON to {out}")
    if args.metrics_out:
        out = report.write_metrics(args.metrics_out)
        print(f"wrote gate metrics to {out}")
    if args.html_out:
        out = report.write_html(args.html_out)
        print(f"wrote HTML report to {out}")
    if args.trace_out:
        out = Path(args.trace_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(result.device_trace.to_json())
        print(f"wrote device trace to {out}")
    if args.perfetto_out:
        out = write_perfetto(
            args.perfetto_out,
            perfetto_payload(
                spans=result.spans,
                device=result.device_trace,
                routing=getattr(result, "routing_audit", None),
                clock_ghz=result.clock_ghz,
            ),
        )
        print(f"wrote Perfetto timeline to {out}")
    return 0


def cmd_multinode(args) -> int:
    """Multi-device SUMMA run: pipelined rounds, link counters, verify."""
    import json as _json

    from .backends import run_backend
    from .multi import NodeConfig, summa_spgemm
    from .obs.export import summa_perfetto_payload, write_perfetto

    name, matrix = _load_profile_matrix(args.matrix)
    a, b = squared_operands(matrix)
    node = NodeConfig(devices=args.devices)
    opts = AcSpgemmOptions(
        value_dtype=np.float32 if args.float else np.float64,
        engine=args.engine,
        on_failure="fallback" if args.fallback else "raise",
        device_trace=bool(args.perfetto_out),
    )
    res = summa_spgemm(
        a, b, node, opts,
        backend=args.backend,
        pipelined=not args.blocking,
    )
    recon = res.reconcile()
    print(f"matrix         {name}")
    print(f"devices        {res.devices} ({res.grid}x{res.grid} grid, "
          f"backend={args.backend}, "
          f"{'blocking' if args.blocking else 'pipelined'})")
    print(f"C              {res.matrix.rows}x{res.matrix.cols}, "
          f"nnz={res.matrix.nnz}")
    print(f"makespan       {res.makespan_cycles:.0f} cycles "
          f"({res.seconds * 1e3:.4f} ms)")
    print(f"  pipelined    {res.makespan_pipelined:.0f}")
    print(f"  blocking     {res.makespan_blocking:.0f}")
    print(f"  overlap hid  {res.overlap_saved_cycles:.0f}")
    for rec in res.round_records:
        print(f"round {rec['round']}  color={rec['color']}  "
              f"[{rec['start']:.0f}, {rec['end']:.0f}]  "
              f"exposed bcast {rec['exposed_broadcast_cycles']:.0f}")
    for key in sorted(res.link_counters):
        snap = res.link_counters[key].snapshot()
        print(f"link {key:12s} broadcasts={snap['broadcasts']} "
              f"bytes={snap['bytes_sent']} busy={snap['busy_cycles']:.0f}")
    print(f"reconcile      exact ({', '.join(k for k in sorted(recon) if recon[k] is True)})")
    if res.degraded_tiles:
        print(f"degraded tiles {res.degraded_tiles}")
    verified = None
    if args.verify:
        single = run_backend(args.backend, a, b, opts)
        exact = res.matrix.exactly_equal(single.matrix)
        pattern = (
            res.matrix.row_ptr.tobytes() == single.matrix.row_ptr.tobytes()
            and res.matrix.col_idx.tobytes() == single.matrix.col_idx.tobytes()
        )
        close = res.matrix.allclose(single.matrix, rtol=1e-10)
        verified = {"exact": exact, "pattern": pattern, "allclose": close}
        print(f"verify         vs single device: exact={exact} "
              f"pattern={pattern} allclose={close}")
        if not (pattern and close):
            return 1
    if args.json_out:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {"matrix": name, **res.summary(), "reconcile": recon}
        if verified is not None:
            payload["verified"] = verified
        out.write_text(_json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote summary JSON to {out}")
    if args.perfetto_out:
        out = write_perfetto(args.perfetto_out, summa_perfetto_payload(res))
        print(f"wrote Perfetto timeline to {out}")
    return 0


def cmd_campaign(args) -> int:
    """Sharded, resumable sweep campaign over a matrix collection."""
    from .campaign import CampaignConfig, CampaignRunner

    config = CampaignConfig(
        suite=args.suite,
        limit=args.limit,
        algorithms=tuple(args.algorithms.split(","))
        if args.algorithms
        else CampaignConfig().algorithms,
        dtypes=("float32", "float64")
        if args.dtypes == "both"
        else (args.dtypes,),
        engine=args.engine,
        estimator=args.estimator,
        sanitize=args.sanitize,
        fallback=args.fallback,
        verify=args.verify,
        retries=args.retries,
    )

    def progress(done: int, total: int) -> None:
        print(f"\rcampaign: {done}/{total} cells", end="", flush=True)

    runner = CampaignRunner(
        args.dir,
        config,
        workers=args.workers,
        cache_path=args.cache,
        progress=progress if not args.quiet else None,
        throttle=args.throttle,
    )
    result = runner.run()
    if not args.quiet:
        print()
    s = result.stats
    print(
        f"campaign complete: {s['cells']} cells "
        f"({s['resumed']} resumed, {s['seeded']} cache-seeded, "
        f"{s['executed']} executed) in {s['wall_seconds']:.2f}s "
        f"with {s['workers']} worker(s)"
    )
    print(f"merged artifact: {result.artifact_path}")
    if args.metrics_out:
        import json

        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result.metrics.to_json(), indent=2))
        print(f"wrote campaign metrics JSON to {out}")
    if args.prom_out:
        out = Path(args.prom_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(result.metrics.to_prometheus())
        print(f"wrote campaign Prometheus metrics to {out}")
    failed = result.failed_cells
    if failed:
        print(
            f"{len(failed)} cells failed after retries "
            f"(first: {failed[0]})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve(args) -> int:
    """Run the SpGEMM-as-a-service daemon until SIGTERM/SIGINT."""
    from .resilience.faults import FaultPlan
    from .serve import ServeConfig, make_server, run_server

    fault_plan = None
    if args.fault_plan:
        text = args.fault_plan
        if text.startswith("@"):
            text = Path(text[1:]).read_text(encoding="utf-8")
        fault_plan = FaultPlan.from_json(text)
    config = ServeConfig(
        engine=args.engine,
        backend=args.backend,
        executors=args.executors,
        max_queue=args.queue,
        default_deadline_ms=args.deadline_ms,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        cache_size=args.cache,
        supervise_interval_s=args.supervise_interval,
        shm_prefix=args.shm_prefix,
        fault_plan=fault_plan,
        flight_log=args.flight_log,
        trace_store=args.trace_store,
    )
    server = make_server(config, host=args.host, port=args.port,
                         verbose=args.verbose)
    return run_server(server, quiet=args.quiet)


def cmd_compare(args) -> int:
    """Run the full GPU algorithm line-up on one matrix."""
    matrix = load_matrix(args.matrix)
    a, b = squared_operands(matrix)
    temp = count_intermediate_products(a, b)
    dtype = np.float32 if args.float else np.float64
    print(f"{args.matrix}: nnz={matrix.nnz}, temp={temp}")
    results = {}
    lineup = list(GPU_ALGORITHMS) + list(BACKEND_ENGINES)
    for name in lineup:
        run = make_algorithm(name).multiply(a, b, dtype=dtype)
        results[name] = run
        stable = "bit-stable" if run.bit_stable else "not bit-stable"
        routed = getattr(run, "dispatched_to", None)
        suffix = f"  -> {routed}" if routed else ""
        print(f"  {name:16s} {run.gflops(temp):8.3f} GFLOPS  "
              f"({stable}){suffix}")
    best = max(results, key=lambda k: results[k].gflops(temp))
    print(f"fastest: {best}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="AC-SpGEMM reproduction runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("single", help="run AC-SpGEMM on one matrix file")
    p.add_argument("matrix")
    p.add_argument("--verify", action="store_true",
                   help="confirm against the CPU reference (artifact A.6)")
    p.add_argument("--float", action="store_true", help="single precision")
    p.add_argument("--engine", default="reference",
                   choices=ENGINE_CHOICES,
                   help="host execution engine, or a registered backend "
                        "('adaptive' routes each multiply per its structure)")
    p.add_argument("--estimator", default="uniform",
                   choices=("uniform", "sampling"),
                   help="chunk-pool size estimator (sampling = OCEAN-style "
                        "sampled symbolic pass)")
    p.add_argument("--sanitize", action="store_true",
                   help="check pipeline invariants at stage boundaries")
    p.add_argument("--fallback", action="store_true",
                   help="degrade to the global-ESC baseline on failure")
    p.set_defaults(func=cmd_single)

    p = sub.add_parser("runall", help="run every matrix in a folder")
    p.add_argument("folder")
    p.add_argument("--out", default=None, help="CSV output path")
    p.add_argument("--verify", action="store_true")
    p.add_argument("--float", action="store_true")
    p.add_argument("--engine", default="reference", choices=ENGINE_CHOICES)
    p.add_argument("--estimator", default="uniform",
                   choices=("uniform", "sampling"))
    p.add_argument("--sanitize", action="store_true")
    p.add_argument("--fallback", action="store_true")
    p.set_defaults(func=cmd_runall)

    p = sub.add_parser("suite", help="run the built-in synthetic suite")
    p.add_argument("--out", default=None)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--verify", action="store_true")
    p.add_argument("--float", action="store_true")
    p.add_argument("--engine", default="reference", choices=ENGINE_CHOICES)
    p.add_argument("--estimator", default="uniform",
                   choices=("uniform", "sampling"))
    p.add_argument("--sanitize", action="store_true")
    p.add_argument("--fallback", action="store_true")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "profile",
        help="instrumented single run: stage report, Perfetto trace, metrics",
    )
    p.add_argument("matrix",
                   help="matrix file path, or suite:NAME for a suite entry")
    p.add_argument("--float", action="store_true", help="single precision")
    p.add_argument("--engine", default="reference",
                   choices=("reference", "batched", "parallel", "process"))
    p.add_argument("--estimator", default="uniform",
                   choices=("uniform", "sampling"))
    p.add_argument("--sanitize", action="store_true")
    p.add_argument("--fallback", action="store_true")
    p.add_argument("--trace-out", default=None,
                   help="write a Perfetto/chrome://tracing JSON timeline")
    p.add_argument("--metrics-out", default=None,
                   help="write the metrics JSON artifact (bench_compare input)")
    p.add_argument("--prom-out", default=None,
                   help="write Prometheus text-format metrics")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "analyze",
        help="device-trace analysis: per-SM timelines, paper-figure reports",
    )
    p.add_argument("matrix",
                   help="matrix file path, or suite:NAME for a suite entry")
    p.add_argument("--float", action="store_true", help="single precision")
    p.add_argument("--engine", default="reference", choices=ENGINE_CHOICES)
    p.add_argument("--estimator", default="uniform",
                   choices=("uniform", "sampling"))
    p.add_argument("--sanitize", action="store_true")
    p.add_argument("--fallback", action="store_true",
                   help="degrade on failure (trace gets a truncation marker)")
    p.add_argument("--json-out", default=None,
                   help="write the full analysis report JSON")
    p.add_argument("--metrics-out", default=None,
                   help="write the flat gate metrics (bench_compare input)")
    p.add_argument("--html-out", default=None,
                   help="write the self-contained HTML report")
    p.add_argument("--trace-out", default=None,
                   help="write the raw device trace JSON (byte-identical "
                        "across engines)")
    p.add_argument("--perfetto-out", default=None,
                   help="write a Perfetto timeline with per-SM tracks")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "multinode",
        help="multi-device SUMMA run with 4-colour pipelined broadcasts",
    )
    p.add_argument("matrix",
                   help="matrix file path, or suite:NAME for a suite entry")
    p.add_argument("--devices", type=int, default=4,
                   help="simulated devices P (perfect square; 1, 4, 9, ...)")
    p.add_argument("--backend", default="adaptive",
                   choices=("ac-spgemm",) + BACKEND_ENGINES,
                   help="registered backend executing each local tile "
                        "multiply ('adaptive' routes per tile)")
    p.add_argument("--engine", default="reference",
                   choices=("reference", "batched", "parallel", "process"),
                   help="host execution engine for the tile pipelines")
    p.add_argument("--blocking", action="store_true",
                   help="single-buffer blocking broadcasts instead of the "
                        "4-colour pipeline (for overlap A/B comparisons)")
    p.add_argument("--float", action="store_true", help="single precision")
    p.add_argument("--fallback", action="store_true",
                   help="degrade failing tiles instead of raising")
    p.add_argument("--verify", action="store_true",
                   help="compare the merged C against a single-device run "
                        "(pattern must match bytewise; exit 1 otherwise)")
    p.add_argument("--json-out", default=None,
                   help="write the summary + reconcile JSON")
    p.add_argument("--perfetto-out", default=None,
                   help="write a per-device Perfetto timeline (distinct "
                        "process rows per device)")
    p.set_defaults(func=cmd_multinode)

    p = sub.add_parser(
        "campaign",
        help="sharded, resumable sweep campaign over a matrix collection",
    )
    p.add_argument("--suite", default="suite",
                   choices=("tiny", "suite", "named", "full"),
                   help="matrix collection (full = suite + named, the "
                        "figure 9-12 population)")
    p.add_argument("--limit", type=int, default=None,
                   help="only the first N matrices of the collection")
    p.add_argument("--workers", type=_workers_arg, default=1,
                   help="worker processes (1 = inline execution, "
                        "'auto' = one per CPU core)")
    p.add_argument("--dir", default="results/campaign",
                   help="campaign directory (plan, shards, artifact)")
    p.add_argument("--algorithms", default=None,
                   help="comma-separated algorithm subset")
    p.add_argument("--dtypes", default="float64",
                   choices=("float32", "float64", "both"))
    p.add_argument("--engine", default="reference",
                   choices=("reference", "batched", "parallel", "process"))
    p.add_argument("--estimator", default="uniform",
                   choices=("uniform", "sampling"),
                   help="chunk-pool size estimator for AC-SpGEMM cells")
    p.add_argument("--sanitize", action="store_true")
    p.add_argument("--fallback", action="store_true",
                   help="degrade failing cells to global ESC instead of "
                        "recording a failure")
    p.add_argument("--verify", action="store_true",
                   help="CPU-verify every cell (slow)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts per failing cell before it is "
                        "recorded as failed")
    p.add_argument("--throttle", type=float, default=0.0,
                   help=argparse.SUPPRESS)  # kill/resume test hook
    p.add_argument("--cache", default=None,
                   help="shared sweep cache to seed from and fold into")
    p.add_argument("--metrics-out", default=None,
                   help="write campaign metrics JSON")
    p.add_argument("--prom-out", default=None,
                   help="write campaign Prometheus text metrics")
    p.add_argument("--quiet", action="store_true",
                   help="suppress live progress output")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="SpGEMM-as-a-service daemon on the warm process pool",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral; the chosen port is "
                        "printed in the listening line)")
    p.add_argument("--engine", default="process",
                   choices=("reference", "batched", "parallel", "process"),
                   help="primary execution engine (identical results)")
    p.add_argument("--backend", default="ac-spgemm",
                   choices=("ac-spgemm",) + BACKEND_ENGINES,
                   help="registered backend serving primary multiplies "
                        "('adaptive' routes each request per its structure)")
    p.add_argument("--executors", type=int, default=2,
                   help="executor threads draining the admission queue")
    p.add_argument("--queue", type=int, default=8,
                   help="bounded admission queue capacity (full = HTTP 429)")
    p.add_argument("--deadline-ms", type=float, default=30000.0,
                   help="default per-request deadline (expired = HTTP 504)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget for transient worker crashes")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive failures that trip the circuit breaker")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   help="seconds the tripped breaker stays open")
    p.add_argument("--cache", type=int, default=128,
                   help="content-addressed result cache entries")
    p.add_argument("--supervise-interval", type=float, default=1.0,
                   help="supervisor period (worker health, shm sweep)")
    p.add_argument("--shm-prefix", default="repro-serve-",
                   help="deterministic shared-memory segment namespace")
    p.add_argument("--fault-plan", default=None,
                   help="chaos FaultPlan as JSON, or @path to a JSON file")
    p.add_argument("--flight-log", default=None,
                   help="rotating JSONL path for selector dispatch events")
    p.add_argument("--trace-store", type=int, default=256,
                   help="request traces kept for /traces inspection (LRU)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the listening/drained lines")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("compare", help="full algorithm line-up on one matrix")
    p.add_argument("matrix")
    p.add_argument("--float", action="store_true")
    p.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # typed failures get a one-line diagnostic, never a traceback
        print(f"repro: {exc.one_line()}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

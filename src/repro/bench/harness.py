"""Benchmark harness: cases, runs, and a persistent result cache.

Every experiment in the paper's evaluation section reduces to "run a set
of algorithms over a set of matrices and report simulated GFLOPS plus
side statistics".  The harness centralises that: :class:`MatrixCase`
wraps a matrix with its benchmark operands (``A @ A`` or ``A @ A.T`` per
§4), :func:`run_case` executes one (case, algorithm, dtype) cell, and
:class:`ResultCache` memoises cells on disk so the per-figure bench
files can share one sweep.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

try:  # POSIX-only; cache locking degrades gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..baselines.base import SpGEMMAlgorithm
from ..baselines.registry import make_algorithm
from ..sparse.csr import CSRMatrix
from ..sparse.ops import count_intermediate_products, spgemm_reference
from ..sparse.stats import matrix_stats, squared_operands

__all__ = ["MatrixCase", "RunRecord", "ResultCache", "run_case", "default_cache"]

#: bump when generators / cost model / record schema change incompatibly
CACHE_VERSION = 10


@dataclass
class MatrixCase:
    """One benchmark input: the matrix and its squared-product operands.

    Operands, the intermediate-product count and the row statistics are
    computed lazily and memoised: a warm-cache sweep that answers every
    cell from the :class:`ResultCache` never touches them (they are the
    expensive part — ``A @ A.T`` transposes and a full product count).
    """

    name: str
    matrix: CSRMatrix
    family: str = ""
    _operands: tuple[CSRMatrix, CSRMatrix] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _temp: int | None = field(default=None, init=False, repr=False, compare=False)
    _stats: object | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def materialized(self) -> bool:
        """Whether the benchmark operands have been constructed yet."""
        return self._operands is not None

    @property
    def a(self) -> CSRMatrix:
        """Left operand of the benchmark product."""
        if self._operands is None:
            self._operands = squared_operands(self.matrix)
        return self._operands[0]

    @property
    def b(self) -> CSRMatrix:
        """Right operand (``A`` or the precomputed ``A.T``)."""
        if self._operands is None:
            self._operands = squared_operands(self.matrix)
        return self._operands[1]

    @property
    def temp(self) -> int:
        """Intermediate products of the benchmark product."""
        if self._temp is None:
            self._temp = count_intermediate_products(self.a, self.b)
        return self._temp

    @property
    def stats(self):
        """Row-structure statistics of the input matrix."""
        if self._stats is None:
            self._stats = matrix_stats(self.matrix)
        return self._stats

    @property
    def mean_row_length(self) -> float:
        """Average non-zeros per row of the input matrix."""
        return self.stats.mean_row_length

    @property
    def highly_sparse(self) -> bool:
        """The paper's a <= 42 classification."""
        return self.stats.highly_sparse


@dataclass(frozen=True)
class RunRecord:
    """One cell of the sweep: algorithm x matrix x dtype."""

    matrix: str
    algorithm: str
    dtype: str
    gflops: float
    seconds: float
    cycles: float
    temp: int
    nnz_c: int
    mean_row_length: float
    extra_memory_bytes: int
    bit_stable: bool
    correct: bool
    stage_cycles: dict[str, float] = field(default_factory=dict)
    ac_extras: dict[str, float] = field(default_factory=dict)
    #: engine the adaptive selector routed this cell to ("" when the
    #: algorithm does not dispatch)
    dispatched_to: str = ""

    def to_json(self) -> dict:
        """Serialisable form for the on-disk cache."""
        d = self.__dict__.copy()
        return d

    @classmethod
    def from_json(cls, d: dict) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return cls(**d)


def run_case(
    case: MatrixCase,
    algorithm: str | SpGEMMAlgorithm,
    dtype=np.float64,
    *,
    verify: bool = True,
) -> RunRecord:
    """Execute one algorithm on one case and collect the record."""
    alg = (
        make_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    )
    run = alg.multiply(case.a, case.b, dtype=dtype)
    correct = True
    if verify:
        ref = spgemm_reference(case.a.astype(dtype), case.b.astype(dtype))
        correct = run.matrix.allclose(ref, rtol=1e-4 if dtype == np.float32 else 1e-10)
    extras: dict[str, float] = {}
    ac = getattr(run, "ac_result", None)
    if ac is not None:
        extras = {
            "degraded": 1.0 if getattr(ac, "degraded", False) else 0.0,
            "restarts": ac.restarts,
            "mp_load": ac.multiprocessor_load,
            "n_chunks": ac.n_chunks,
            "shared_rows": ac.shared_rows,
            "helper_bytes": ac.memory.helper_bytes,
            "chunk_pool_bytes": ac.memory.chunk_pool_bytes,
            "chunk_used_bytes": ac.memory.chunk_used_bytes,
            "output_bytes": ac.memory.output_bytes,
        }
    return RunRecord(
        matrix=case.name,
        algorithm=run.algorithm,
        dtype=np.dtype(dtype).name,
        gflops=run.gflops(case.temp),
        seconds=run.seconds,
        cycles=run.cycles,
        temp=case.temp,
        nnz_c=run.matrix.nnz,
        mean_row_length=case.mean_row_length,
        extra_memory_bytes=run.extra_memory_bytes,
        bit_stable=run.bit_stable,
        correct=correct,
        stage_cycles=dict(run.stage_cycles),
        ac_extras=extras,
        dispatched_to=getattr(run, "dispatched_to", "") or "",
    )


class ResultCache:
    """Disk-backed memo of :class:`RunRecord` cells.

    The simulator is deterministic, so a cell never changes for a fixed
    cache version; the per-figure benches share one sweep through this
    cache instead of re-running the full cross product.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, dict] = self._read_disk_cells()

    def _read_disk_cells(self) -> dict[str, dict]:
        """Current on-disk cells (empty on corruption/version mismatch)."""
        if not self.path.exists():
            return {}
        try:
            payload = json.loads(self.path.read_text())
            if payload.get("version") == CACHE_VERSION:
                return payload.get("cells", {})
        except (json.JSONDecodeError, OSError):
            pass
        return {}

    @staticmethod
    def key(matrix: str, algorithm: str, dtype: str, options=None) -> str:
        """Cache key of one sweep cell.

        Non-default pipeline options key their cells separately: the
        engine name (human-readable) plus a fingerprint of every option
        field, so tweaked runs can never collide with default ones.
        """
        if options is None:
            return f"{matrix}|{algorithm}|{dtype}"
        return (
            f"{matrix}|{algorithm}|{dtype}"
            f"|{options.engine}|{options.cache_fingerprint()}"
        )

    def get_or_run(
        self,
        case: MatrixCase,
        algorithm: str,
        dtype=np.float64,
        *,
        verify: bool = True,
        options=None,
    ) -> RunRecord:
        """Return the memoised record, executing the cell on a miss.

        ``options`` (an :class:`~repro.core.options.AcSpgemmOptions`)
        customises the AC-SpGEMM pipeline for this cell; it becomes part
        of the cache key.
        """
        k = self.key(case.name, algorithm, np.dtype(dtype).name, options)
        if k in self._data:
            return RunRecord.from_json(self._data[k])
        alg: str | SpGEMMAlgorithm = algorithm
        if options is not None:
            from ..backends.adapter import BackendAlgorithm
            from ..baselines.acspgemm_adapter import AcSpgemm
            from ..baselines.registry import BACKEND_ALGORITHMS

            if algorithm in BACKEND_ALGORITHMS:
                alg = BackendAlgorithm(algorithm, options=options)
            else:
                base = make_algorithm(algorithm)
                if not isinstance(base, AcSpgemm):
                    raise ValueError(
                        f"options only apply to ac-spgemm or a registered "
                        f"backend, not {algorithm!r}"
                    )
                alg = AcSpgemm(
                    device=base.device, costs=base.costs, options=options
                )
        rec = run_case(case, alg, dtype, verify=verify)
        self._data[k] = rec.to_json()
        return rec

    def save(self) -> None:
        """Persist the cache to disk, safely under concurrent writers.

        The old implementation rewrote the JSON file in place, so a
        concurrent writer lost the other's cells and a mid-write kill
        left a torn (unparseable) file.  Now the writer takes an
        exclusive file lock, merges the current on-disk cells with its
        own (its own cells win, though for a deterministic simulator
        they can only ever agree), writes a temp file in the same
        directory and atomically renames it over the cache.  Readers
        therefore always see either the old or the new complete file.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        lock = open(lock_path, "a+")
        try:
            if fcntl is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            merged = self._read_disk_cells()
            merged.update(self._data)
            self._data = merged
            tmp = self.path.with_name(
                f".{self.path.name}.tmp.{os.getpid()}"
            )
            tmp.write_text(
                json.dumps(
                    {"version": CACHE_VERSION, "cells": merged},
                    sort_keys=True,
                )
            )
            os.replace(tmp, self.path)
        finally:
            if fcntl is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
            lock.close()

    def __len__(self) -> int:
        return len(self._data)


def default_cache(root: str | Path = "results") -> ResultCache:
    """The shared on-disk sweep cache used by the benches."""
    return ResultCache(Path(root) / "sweep_cache.json")

"""Aggregation metrics used by the paper's tables and trend plots."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "harmonic_mean",
    "SpeedupSummary",
    "speedup_summary",
    "trend_bins",
]


def harmonic_mean(values) -> float:
    """The paper's aggregate for relative speedups (Table 1 "h. mean")."""
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        return float("nan")
    if (v <= 0).any():
        raise ValueError("harmonic mean requires positive values")
    return float(v.size / np.sum(1.0 / v))


@dataclass(frozen=True)
class SpeedupSummary:
    """One row of Table 1: AC-SpGEMM versus one competitor."""

    competitor: str
    n_matrices: int
    min_speedup: float
    max_speedup: float
    h_mean: float
    pct_better_than_ac: float  # competitor faster than AC ("better than")
    pct_best_overall: float  # competitor fastest of all ("best")


def speedup_summary(
    competitor: str,
    ac_seconds: dict[str, float],
    comp_seconds: dict[str, float],
    best_algorithm: dict[str, str],
) -> SpeedupSummary:
    """Summarise AC vs one competitor over the matrices both completed.

    ``speedup = competitor_time / AC_time`` (>1 means AC faster), as in
    Table 1.
    """
    common = sorted(set(ac_seconds) & set(comp_seconds))
    if not common:
        raise ValueError(f"no common matrices for {competitor}")
    speedups = np.asarray(
        [comp_seconds[m] / ac_seconds[m] for m in common], dtype=np.float64
    )
    better = np.asarray(
        [comp_seconds[m] < ac_seconds[m] for m in common], dtype=bool
    )
    best = np.asarray(
        [best_algorithm[m] == competitor for m in common], dtype=bool
    )
    return SpeedupSummary(
        competitor=competitor,
        n_matrices=len(common),
        min_speedup=float(speedups.min()),
        max_speedup=float(speedups.max()),
        h_mean=harmonic_mean(speedups),
        pct_better_than_ac=float(100.0 * better.mean()),
        pct_best_overall=float(100.0 * best.mean()),
    )


def trend_bins(
    temp_counts, values, n_bins: int = 10
) -> list[tuple[float, float, int]]:
    """Geometric binning over intermediate-product counts for the
    Figure 5 trend lines; returns (bin centre, mean value, n) tuples."""
    t = np.asarray(list(temp_counts), dtype=np.float64)
    v = np.asarray(list(values), dtype=np.float64)
    if t.size == 0:
        return []
    lo, hi = t.min(), t.max()
    if lo <= 0:
        raise ValueError("temporary-product counts must be positive")
    edges = np.geomspace(lo, hi * 1.0001, n_bins + 1)
    out = []
    for i in range(n_bins):
        mask = (t >= edges[i]) & (t < edges[i + 1])
        if mask.any():
            centre = float(np.sqrt(edges[i] * edges[i + 1]))
            out.append((centre, float(v[mask].mean()), int(mask.sum())))
    return out

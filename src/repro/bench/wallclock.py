"""Host wall-clock benchmark of the execution engines.

Unlike every other bench in this repo — which reports *simulated* device
time — this one measures how long the **host** takes to run the
simulator, comparing the execution engines (see :mod:`repro.engine`).
Correctness is checked in the same pass: every engine must produce
bit-identical values and identical simulated statistics, otherwise the
speedup would be meaningless.

The JSON payload (``BENCH_pr1.json``) records, per case, the seconds per
engine, the speedup over the reference engine and the equivalence
verdict, plus the geometric-mean speedups across cases.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.acspgemm import ac_spgemm
from ..core.options import AcSpgemmOptions
from ..matrices.generators import (
    banded,
    long_row_matrix,
    power_law,
    random_uniform,
)
from ..obs.span import host_span_profile
from ..sparse.stats import squared_operands

__all__ = [
    "WallclockCase",
    "wallclock_cases",
    "run_wallclock",
    "run_hotspots",
    "run_trace_overhead",
]

DEFAULT_ENGINES = ("reference", "batched", "parallel", "process")

#: geometric-mean host-speedup floors over the reference engine.  The
#: batched floor holds unconditionally on the full case set; the
#: parallel floor only where parallelism exists to pay for the dispatch
#: (``os.cpu_count() >= 2`` — on one core the thread/process machinery
#: can only break even at best, so the bench reports but does not gate).
SPEEDUP_TARGETS = {"batched": 3.5, "parallel": 1.5}


def tune_allocator() -> bool:
    """Stop glibc from bouncing large buffers between heap and OS.

    The batched engine allocates multi-MB arrays every round; with the
    default ``M_MMAP_THRESHOLD``/``M_TRIM_THRESHOLD`` glibc hands each
    one back to the kernel on free, so every round re-faults its pages
    — on this class of host that triples the cost of a fresh-array
    binary op.  Raising both thresholds keeps the pages resident.  A
    no-op (returns False) off glibc.
    """
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        m_mmap_threshold, m_trim_threshold = -3, -1
        ok = libc.mallopt(m_mmap_threshold, 1 << 30)
        ok &= libc.mallopt(m_trim_threshold, 1 << 30)
        return bool(ok)
    except Exception:  # noqa: BLE001 - musl/macOS/windows: keep defaults
        return False


@dataclass
class WallclockCase:
    """One matrix (squared) to time the engines on."""

    name: str
    a: object
    b: object
    dtype: str = "float64"


def _case(name: str, matrix, dtype: str = "float64") -> WallclockCase:
    a, b = squared_operands(matrix)
    return WallclockCase(name=name, a=a, b=b, dtype=dtype)


def wallclock_cases(smoke: bool = False) -> list[WallclockCase]:
    """The benchmark inputs: a cross-section of the suite families.

    ``smoke`` shrinks the matrices for CI — the speedup claim is made on
    the full set, the smoke set only proves the harness end to end.
    """
    if smoke:
        return [
            _case("uniform-800-avg10", random_uniform(800, 800, 10.0, seed=1)),
            _case("banded-1200-bw8", banded(1200, 8, seed=2)),
            _case(
                "powerlaw-800", power_law(800, avg_row_len=8.0, seed=3),
                dtype="float32",
            ),
        ]
    return [
        _case("uniform-3000-avg20", random_uniform(3000, 3000, 20.0, seed=1)),
        _case("uniform-2000-avg40", random_uniform(2000, 2000, 40.0, seed=2)),
        _case("banded-6000-bw16", banded(6000, 16, seed=3)),
        _case("powerlaw-2500", power_law(2500, avg_row_len=12.0, seed=4)),
        _case(
            "longrow-3000",
            long_row_matrix(3000, 4.0, n_long_rows=4, long_row_len=2000, seed=5),
        ),
        _case(
            "uniform-2000-avg25-f32",
            random_uniform(2000, 2000, 25.0, seed=6),
            dtype="float32",
        ),
    ]


def _signature(result) -> dict:
    """Everything that must be invariant across engines."""
    return {
        "row_ptr": result.matrix.row_ptr.tobytes(),
        "col_idx": result.matrix.col_idx.tobytes(),
        "values": result.matrix.values.tobytes(),
        "stage_cycles": dict(result.stage_cycles),
        "counters": result.counters,
        "restarts": result.restarts,
        "mp_load": result.multiprocessor_load,
        "n_chunks": result.n_chunks,
        "memory": result.memory,
    }


def _time_engines(
    case: WallclockCase, engines: tuple[str, ...], repeats: int
) -> tuple[dict[str, float], dict[str, dict]]:
    """Best-of-``repeats`` seconds and result signature per engine.

    Repeats are interleaved across engines (engine A, engine B, ...,
    engine A, ...) so that slow phases of a shared host hit every
    engine alike instead of biasing whichever ran during them.
    """
    opts = {
        e: AcSpgemmOptions(value_dtype=np.dtype(case.dtype), engine=e)
        for e in engines
    }
    best = {e: math.inf for e in engines}
    sigs: dict[str, dict] = {}
    for _ in range(repeats):
        for engine in engines:
            t0 = time.perf_counter()
            result = ac_spgemm(case.a, case.b, opts[engine])
            best[engine] = min(best[engine], time.perf_counter() - t0)
            sigs[engine] = _signature(result)
    return best, sigs


def run_wallclock(
    smoke: bool = False,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    repeats: int | None = None,
) -> dict:
    """Time every engine on every case and verify equivalence.

    Returns the JSON-serialisable payload; ``geomean_speedup`` maps each
    non-reference engine to its geometric-mean host speedup.
    """
    if repeats is None:
        repeats = 1 if smoke else 3
    engines = tuple(dict.fromkeys(("reference",) + tuple(engines)))
    tuned = tune_allocator()
    cases = wallclock_cases(smoke)
    rows = []
    speedups: dict[str, list[float]] = {e: [] for e in engines if e != "reference"}
    for case in cases:
        best, sigs = _time_engines(case, engines, repeats)
        ref_s, ref_sig = best["reference"], sigs["reference"]
        row = {
            "case": case.name,
            "dtype": case.dtype,
            "nnz_a": int(case.a.nnz),
            "seconds": {"reference": ref_s},
            "speedup": {},
            "identical": {},
        }
        for engine in engines:
            if engine == "reference":
                continue
            s, sig = best[engine], sigs[engine]
            identical = all(ref_sig[k] == sig[k] for k in ref_sig)
            row["seconds"][engine] = s
            row["speedup"][engine] = ref_s / s if s else math.inf
            row["identical"][engine] = identical
            if identical:
                speedups[engine].append(ref_s / s)
        rows.append(row)

    geomean = {
        e: (math.exp(sum(math.log(x) for x in xs) / len(xs)) if xs else 0.0)
        for e, xs in speedups.items()
    }
    # the speedup claim is made on the full case set; smoke shrinks the
    # matrices until fixed overheads dominate, so smoke mode reports the
    # targets without gating on them.  The parallel target additionally
    # needs real cores to pay for its dispatch machinery.
    cpu_count = os.cpu_count() or 1
    enforced = {
        e: t
        for e, t in SPEEDUP_TARGETS.items()
        if e in geomean and not smoke and (e == "batched" or cpu_count >= 2)
    }
    return {
        "bench": "engine-wallclock",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "allocator_tuned": tuned,
        "cpu_count": cpu_count,
        "engines": list(engines),
        "cases": rows,
        "all_identical": all(
            ok for r in rows for ok in r["identical"].values()
        ),
        "geomean_speedup": geomean,
        "speedup_targets": dict(SPEEDUP_TARGETS),
        "targets_enforced": sorted(enforced),
        "within_targets": all(geomean[e] >= t for e, t in enforced.items()),
    }


def run_hotspots(
    smoke: bool = False,
    engine: str = "batched",
    top: int = 10,
) -> dict:
    """Span-attributed host hotspot table for one engine.

    Runs every case once under :func:`~repro.obs.span.host_span_profile`
    and joins the resulting per-span host seconds with the simulated
    cycles each span name accumulates in the (engine-invariant) span
    tree.  The result answers the optimisation question directly: a
    span whose share of host seconds dwarfs its share of simulated
    cycles is pure host overhead — that is where the next fast path
    goes.  ``top`` bounds the table to the heaviest span names by host
    seconds; anything dropped is summed under ``other_host_seconds`` so
    the table never silently hides cost.
    """
    tuned = tune_allocator()
    cases = wallclock_cases(smoke)
    sim_cycles: dict[str, float] = {}
    with host_span_profile() as prof:
        t0 = time.perf_counter()
        for case in cases:
            opts = AcSpgemmOptions(
                value_dtype=np.dtype(case.dtype), engine=engine
            )
            result = ac_spgemm(case.a, case.b, opts)
            for s in result.spans.walk():
                sim_cycles[s.name] = sim_cycles.get(s.name, 0.0) + s.duration
        total = time.perf_counter() - t0
    rows = [
        {
            "span": name,
            "calls": ent["calls"],
            "host_seconds": ent["host_seconds"],
            "sim_cycles": sim_cycles.get(name, 0.0),
        }
        for name, ent in prof.table().items()
    ]
    rows.sort(key=lambda r: (-r["host_seconds"], r["span"]))
    kept, dropped = rows[:top], rows[top:]
    return {
        "bench": "host-hotspots",
        "mode": "smoke" if smoke else "full",
        "engine": engine,
        "allocator_tuned": tuned,
        "total_host_seconds": total,
        "attributed_host_seconds": sum(r["host_seconds"] for r in rows),
        "top_spans": kept,
        "other_host_seconds": sum(r["host_seconds"] for r in dropped),
    }


#: Host-overhead budget for the opt-in device trace (fraction of the
#: untraced run).  The trace is record-keeping only — no extra passes —
#: so anything past this points at an accidental hot-path allocation.
TRACE_OVERHEAD_BUDGET = 0.10


def run_trace_overhead(
    smoke: bool = False,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    repeats: int | None = None,
) -> dict:
    """Host cost of ``device_trace=True``, per engine and case.

    Times every engine twice per case — trace off and trace on —
    interleaved like :func:`run_wallclock` so host noise hits both
    variants alike.  Also asserts the two contracts the trace makes:
    the traced run's result signature matches the untraced run exactly
    (tracing observes, never perturbs), and the trace bytes are
    identical across engines.  Per-cell ``overhead`` (``on/off - 1``)
    is informational — single cells of tens of ms swing ±10% on a
    shared host even best-of-5.  The gated quantity is
    ``total_overhead``: summed traced over summed untraced seconds
    across every case and engine, which averages the noise and weights
    the larger (more trustworthy) cases; ``within_budget`` holds it to
    :data:`TRACE_OVERHEAD_BUDGET`.  When the trace is *disabled* the
    driver never constructs a :class:`~repro.obs.device.DeviceTrace`,
    so the off-variant here *is* the disabled cost — there is no third
    state to measure.
    """
    # best-of needs warm runs even in smoke mode: a single repeat times
    # the cold first pass and reports pure noise, and the smoke cases
    # are so small (tens of ms) that only a deeper best-of converges
    if repeats is None:
        repeats = 5 if smoke else 3
    engines = tuple(dict.fromkeys(("reference",) + tuple(engines)))
    tuned = tune_allocator()
    cases = wallclock_cases(smoke)
    rows = []
    max_overhead = 0.0
    for case in cases:
        opts_off = {
            e: AcSpgemmOptions(value_dtype=np.dtype(case.dtype), engine=e)
            for e in engines
        }
        opts_on = {
            e: AcSpgemmOptions(
                value_dtype=np.dtype(case.dtype), engine=e, device_trace=True
            )
            for e in engines
        }
        best_off = {e: math.inf for e in engines}
        best_on = {e: math.inf for e in engines}
        sigs_off: dict[str, dict] = {}
        traces: dict[str, str] = {}
        for _ in range(repeats):
            for engine in engines:
                t0 = time.perf_counter()
                r_off = ac_spgemm(case.a, case.b, opts_off[engine])
                best_off[engine] = min(
                    best_off[engine], time.perf_counter() - t0
                )
                t0 = time.perf_counter()
                r_on = ac_spgemm(case.a, case.b, opts_on[engine])
                best_on[engine] = min(best_on[engine], time.perf_counter() - t0)
                sigs_off[engine] = _signature(r_off)
                if _signature(r_on) != sigs_off[engine]:
                    raise AssertionError(
                        f"{case.name}/{engine}: tracing changed the result"
                    )
                traces[engine] = r_on.device_trace.to_json()
        trace_identical = len(set(traces.values())) == 1
        overhead = {
            e: (best_on[e] / best_off[e] - 1.0) if best_off[e] else 0.0
            for e in engines
        }
        max_overhead = max(max_overhead, *overhead.values())
        rows.append(
            {
                "case": case.name,
                "dtype": case.dtype,
                "nnz_a": int(case.a.nnz),
                "trace_bytes": len(traces[engines[0]]),
                "seconds_off": best_off,
                "seconds_on": best_on,
                "overhead": overhead,
                "trace_identical_across_engines": trace_identical,
            }
        )
    sum_off = sum(s for r in rows for s in r["seconds_off"].values())
    sum_on = sum(s for r in rows for s in r["seconds_on"].values())
    total_overhead = (sum_on / sum_off - 1.0) if sum_off else 0.0
    return {
        "bench": "device-trace-overhead",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "allocator_tuned": tuned,
        "engines": list(engines),
        "overhead_budget": TRACE_OVERHEAD_BUDGET,
        "cases": rows,
        "max_overhead": max_overhead,
        "total_overhead": total_overhead,
        "within_budget": total_overhead <= TRACE_OVERHEAD_BUDGET,
        "all_traces_identical": all(
            r["trace_identical_across_engines"] for r in rows
        ),
    }


def write_payload(payload: dict, out: str | Path) -> Path:
    """Write the payload as JSON and return the path."""
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

"""Console table formatting and CSV output for the benches."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "write_csv", "human_bytes"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered: list[list[str]] = []
    for row in rows:
        out = []
        for cell in row:
            if isinstance(cell, float):
                out.append(float_fmt.format(cell))
            else:
                out.append(str(cell))
        rendered.append(out)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]
) -> Path:
    """Write rows to ``path`` (parents created), returning the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return p


def human_bytes(n: float) -> str:
    """Format a byte count with a binary unit suffix."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024:
            return f"{n:.2f}{unit}"
        n /= 1024
    return f"{n:.2f}TB"

"""Experiment drivers: one function per paper table/figure.

Each function returns plain data (lists of tuples) that the bench files
print and write to CSV; everything flows through the shared
:class:`~repro.bench.harness.ResultCache` so the full cross product of
(matrix x algorithm x dtype) is executed once per cache version.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..baselines.registry import GPU_ALGORITHMS
from ..core.acspgemm import STAGE_KEYS, ac_spgemm
from ..core.options import AcSpgemmOptions
from ..matrices.collection import NAMED_COLLECTION
from ..matrices.suite import suite_entries
from ..sparse.stats import HIGHLY_SPARSE_SPLIT
from .harness import MatrixCase, ResultCache, RunRecord
from .metrics import SpeedupSummary, speedup_summary, trend_bins

__all__ = [
    "GPU_LINEUP",
    "suite_cases",
    "named_cases",
    "sweep",
    "table1_rows",
    "ac_best_percentage",
    "figure5_trends",
    "figure6_rows",
    "figure7_rows",
    "figure8_rows",
    "table2_rows",
    "table3_rows",
    "fullset_rows",
    "restart_study",
    "cpu_crossover",
    "ablation_rows",
]

GPU_LINEUP = list(GPU_ALGORITHMS)  # ac-spgemm, cusparse, bhsparse, rmerge, nsparse, kokkos

_case_cache: dict[str, list[MatrixCase]] = {}


def suite_cases(limit: int | None = None) -> list[MatrixCase]:
    """Materialised (and memoised) suite benchmark cases."""
    key = f"suite-{limit}"
    if key not in _case_cache:
        _case_cache[key] = [
            MatrixCase(e.name, e.build(), family=e.family)
            for e in suite_entries()[:limit]
        ]
    return _case_cache[key]


def named_cases() -> list[MatrixCase]:
    """Materialised (and memoised) Table 2 named-analogue cases."""
    if "named" not in _case_cache:
        _case_cache["named"] = [
            MatrixCase(m.name, m.build(), family=m.family)
            for m in NAMED_COLLECTION
        ]
    return _case_cache["named"]


def sweep(
    cases: list[MatrixCase],
    algorithms: list[str],
    dtypes,
    cache: ResultCache,
    *,
    verify: bool = True,
) -> list[RunRecord]:
    """Run (or recall) every cell of the cross product."""
    records = []
    for case in cases:
        for dtype in dtypes:
            for alg in algorithms:
                records.append(
                    cache.get_or_run(case, alg, dtype, verify=verify)
                )
    cache.save()
    return records


def _by_matrix(records: list[RunRecord], dtype: str):
    """{matrix: {algorithm: record}} for one dtype."""
    out: dict[str, dict[str, RunRecord]] = defaultdict(dict)
    for r in records:
        if r.dtype == dtype:
            out[r.matrix][r.algorithm] = r
    return out


# ---------------------------------------------------------------- Table 1


def table1_rows(
    records: list[RunRecord], dtype: str, *, sparse: bool
) -> list[SpeedupSummary]:
    """Relative speedups of AC-SpGEMM per competitor, for one dtype and
    one side of the a <= 42 split."""
    cells = _by_matrix(records, dtype)
    ac_seconds: dict[str, float] = {}
    comp_seconds: dict[str, dict[str, float]] = defaultdict(dict)
    best: dict[str, str] = {}
    for matrix, by_alg in cells.items():
        any_rec = next(iter(by_alg.values()))
        if (any_rec.mean_row_length <= HIGHLY_SPARSE_SPLIT) != sparse:
            continue
        if "ac-spgemm" not in by_alg:
            continue
        ac_seconds[matrix] = by_alg["ac-spgemm"].seconds
        best[matrix] = min(by_alg.items(), key=lambda kv: kv[1].seconds)[0]
        for alg, rec in by_alg.items():
            if alg != "ac-spgemm":
                comp_seconds[alg][matrix] = rec.seconds
    return [
        speedup_summary(alg, ac_seconds, comp_seconds[alg], best)
        for alg in GPU_LINEUP
        if alg != "ac-spgemm" and comp_seconds[alg]
    ]


def ac_best_percentage(records: list[RunRecord], dtype: str, *, sparse: bool) -> float:
    """Percentage of matrices where AC-SpGEMM is the fastest (the
    AC-SpGEMM row of Table 1)."""
    cells = _by_matrix(records, dtype)
    wins = total = 0
    for matrix, by_alg in cells.items():
        any_rec = next(iter(by_alg.values()))
        if (any_rec.mean_row_length <= HIGHLY_SPARSE_SPLIT) != sparse:
            continue
        total += 1
        if min(by_alg.items(), key=lambda kv: kv[1].seconds)[0] == "ac-spgemm":
            wins += 1
    return 100.0 * wins / total if total else float("nan")


# ---------------------------------------------------------------- Figure 5


def figure5_trends(
    records: list[RunRecord], dtype: str, n_bins: int = 8
) -> dict[str, list[tuple[float, float, int]]]:
    """GFLOPS trend over temporary elements, highly sparse matrices."""
    out = {}
    for alg in GPU_LINEUP:
        pts = [
            (r.temp, r.gflops)
            for r in records
            if r.dtype == dtype
            and r.algorithm == alg
            and r.mean_row_length <= HIGHLY_SPARSE_SPLIT
        ]
        if pts:
            out[alg] = trend_bins(*zip(*pts), n_bins=n_bins)
    return out


# ------------------------------------------------------- Figures 6-8, Tables 2-3


def figure6_rows(records: list[RunRecord]) -> list[tuple]:
    """Double-precision GFLOPS per named matrix per algorithm."""
    cells = _by_matrix(records, "float64")
    rows = []
    for case in named_cases():
        by_alg = cells.get(case.name, {})
        rows.append(
            (case.name,)
            + tuple(
                by_alg[a].gflops if a in by_alg else float("nan")
                for a in GPU_LINEUP
            )
        )
    return rows


def figure7_rows(records: list[RunRecord]) -> list[tuple]:
    """Relative per-stage runtime of AC-SpGEMM (GLB/ESC/MCC/MM/PM/SM/CC)."""
    cells = _by_matrix(records, "float64")
    rows = []
    for case in named_cases():
        rec = cells.get(case.name, {}).get("ac-spgemm")
        if rec is None or not rec.stage_cycles:
            continue
        total = sum(rec.stage_cycles.values())
        rows.append(
            (case.name,)
            + tuple(rec.stage_cycles.get(k, 0.0) / total for k in STAGE_KEYS)
        )
    return rows


def table2_rows() -> list[tuple]:
    """Matrix statistics of the named collection (analogue values) next
    to the paper's Table 2 numbers."""
    rows = []
    for m, case in zip(NAMED_COLLECTION, named_cases()):
        from ..sparse.ops import spgemm_reference

        c = spgemm_reference(case.a, case.b)
        c_len = c.nnz / c.rows if c.rows else 0.0
        rows.append(
            (
                m.name,
                case.stats.rows,
                case.stats.cols,
                case.stats.nnz,
                round(case.stats.mean_row_length, 1),
                case.stats.max_row_length,
                c.nnz,
                round(c_len, 1),
                case.temp,
                m.paper.a_len,
                m.paper.compaction and round(m.paper.compaction, 1),
                round(case.temp / max(c.nnz, 1), 1),
            )
        )
    return rows


def table3_rows(records: list[RunRecord]) -> list[tuple]:
    """AC-SpGEMM memory/restart/load statistics per named matrix."""
    cells = _by_matrix(records, "float64")
    rows = []
    for case in named_cases():
        rec = cells.get(case.name, {}).get("ac-spgemm")
        if rec is None or not rec.ac_extras:
            continue
        e = rec.ac_extras
        used = e["chunk_used_bytes"]
        rows.append(
            (
                case.name,
                e["helper_bytes"] / 1e6,
                e["chunk_pool_bytes"] / 1e6,
                used / 1e6,
                100.0 * used / max(e["chunk_pool_bytes"], 1),
                used / max(e["output_bytes"], 1),
                int(e["restarts"]),
                100.0 * e["mp_load"],
            )
        )
    return rows


def figure8_rows(records: list[RunRecord]) -> list[tuple]:
    """Memory consumption comparison: AC helper/used/allocated versus
    RMerge, bhSparse and nsparse extra memory."""
    cells = _by_matrix(records, "float64")
    rows = []
    for case in named_cases():
        by_alg = cells.get(case.name, {})
        ac = by_alg.get("ac-spgemm")
        if ac is None:
            continue
        e = ac.ac_extras
        rows.append(
            (
                case.name,
                e["helper_bytes"] / 1e6,
                e["chunk_used_bytes"] / 1e6,
                e["chunk_pool_bytes"] / 1e6,
                by_alg["rmerge"].extra_memory_bytes / 1e6 if "rmerge" in by_alg else float("nan"),
                by_alg["bhsparse"].extra_memory_bytes / 1e6 if "bhsparse" in by_alg else float("nan"),
                by_alg["nsparse"].extra_memory_bytes / 1e6 if "nsparse" in by_alg else float("nan"),
            )
        )
    return rows


# ------------------------------------------------------ Figures 9-12 (full set)


def fullset_rows(records: list[RunRecord], dtype: str, *, sparse: bool) -> list[tuple]:
    """Per-matrix GFLOPS marker-plot data (small = a < 42, large otherwise)."""
    cells = _by_matrix(records, dtype)
    rows = []
    for matrix in sorted(cells):
        by_alg = cells[matrix]
        any_rec = next(iter(by_alg.values()))
        if (any_rec.mean_row_length < HIGHLY_SPARSE_SPLIT) != sparse:
            continue
        rows.append(
            (matrix, round(any_rec.mean_row_length, 1))
            + tuple(
                round(by_alg[a].gflops, 3) if a in by_alg else float("nan")
                for a in GPU_LINEUP
            )
        )
    return rows


# ------------------------------------------------------------- §4.3 restarts


def restart_study(pool_fractions=(1.0, 0.6, 0.35, 0.2, 0.12)) -> list[tuple]:
    """Runtime versus restart count on the webbase analogue, shrinking
    the chunk pool (the paper's 0..63-restart experiment)."""
    case = next(c for c in named_cases() if c.name == "webbase-1M")
    base = ac_spgemm(
        case.a, case.b, AcSpgemmOptions(chunk_pool_lower_bound_bytes=1 << 20)
    )
    needed = base.memory.chunk_used_bytes
    rows = []
    for frac in pool_fractions:
        opts = AcSpgemmOptions(
            chunk_pool_bytes=max(int(needed * frac), 1 << 14),
            pool_growth_factor=1.5,
        )
        res = ac_spgemm(case.a, case.b, opts)
        rows.append(
            (
                frac,
                res.restarts,
                res.seconds * 1e3,
                res.memory.chunk_pool_bytes / 1e6,
            )
        )
    return rows


# ------------------------------------------------------------ CPU crossover


def cpu_crossover(cache: ResultCache) -> list[tuple]:
    """AC-SpGEMM versus the CPU baseline over matrix size (§4: the GPU
    takes over from ~1e4 non-zeros upward)."""
    from ..matrices.generators import random_uniform

    rows = []
    for n, avg in ((200, 4), (400, 5), (800, 6), (1600, 6), (3200, 6), (6400, 6), (12800, 6)):
        case = MatrixCase(f"crossover-n{n}", random_uniform(n, n, avg, seed=77))
        ac = cache.get_or_run(case, "ac-spgemm", np.float64)
        cpu = cache.get_or_run(case, "cpu-gustavson", np.float64)
        rows.append(
            (
                n,
                case.matrix.nnz,
                case.temp,
                ac.gflops,
                cpu.gflops,
                cpu.seconds / ac.seconds,
            )
        )
    cache.save()
    return rows


# ---------------------------------------------------------------- ablations


def ablation_rows(case_names=("webbase-1M", "cant", "language", "poisson3Da")) -> list[tuple]:
    """Design-choice ablations: keep-last-row, dynamic bit reduction,
    long-row handling, and the NNZ_PER_BLOCK granularity."""
    variants = {
        "baseline": {},
        "no-keep-last-row": {"enable_keep_last_row": False},
        "no-bit-reduction": {"enable_bit_reduction": False},
        "no-long-rows": {"enable_long_row_handling": False},
        "nnz-per-block-512": {},
    }
    rows = []
    for case in named_cases():
        if case.name not in case_names:
            continue
        base_opts = AcSpgemmOptions(chunk_pool_lower_bound_bytes=1 << 22)
        for vname, kw in variants.items():
            opts = base_opts.with_(**kw)
            if vname == "nnz-per-block-512":
                opts = opts.with_(device=opts.device.with_(nnz_per_block_glb=512))
            res = ac_spgemm(case.a, case.b, opts)
            rows.append(
                (
                    case.name,
                    vname,
                    res.seconds * 1e3,
                    2.0 * case.temp / res.seconds / 1e9,
                    res.n_chunks,
                    res.shared_rows,
                )
            )
    return rows

"""Execution tracing — the artifact's "Debug" mode (Appendix A.4).

"The output of the script are timing measurements and when enabling
Debug within the framework ... also detailed measurements as well as
memory measurements."

:class:`TraceRecorder` collects one event per simulated kernel launch
(stage, sequence number, device-clock interval, block count, per-block
cycle distribution) plus point events (host round trips, allocations).
The trace can be rendered as a text summary or exported as a Chrome
``chrome://tracing`` / Perfetto JSON timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..gpu.scheduler import KernelTiming

__all__ = ["KernelEvent", "PointEvent", "TraceRecorder"]


@dataclass(frozen=True)
class KernelEvent:
    """One simulated kernel launch on the device timeline."""

    stage: str
    sequence: int
    start_cycle: float
    end_cycle: float
    n_blocks: int
    min_block_cycles: float
    max_block_cycles: float
    mean_block_cycles: float
    multiprocessor_load: float
    #: chunk-pool occupancy after this kernel (0/0 before the pool
    #: exists or when the caller does not track it)
    pool_used_bytes: int = 0
    pool_capacity_bytes: int = 0
    #: cumulative global-memory traffic of the run at this kernel's end
    global_bytes_read: int = 0
    global_bytes_written: int = 0

    @property
    def duration(self) -> float:
        """Kernel makespan in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass(frozen=True)
class PointEvent:
    """An instantaneous device/host event (restart, allocation, ...)."""

    label: str
    cycle: float
    detail: str = ""


@dataclass
class TraceRecorder:
    """Accumulates the device timeline of one AC-SpGEMM execution."""

    clock_ghz: float = 1.582
    kernels: list[KernelEvent] = field(default_factory=list)
    points: list[PointEvent] = field(default_factory=list)
    _clock: float = 0.0

    @property
    def now(self) -> float:
        """Current device clock in cycles."""
        return self._clock

    def record_kernel(
        self, stage: str, timing: KernelTiming, block_cycles=None, *,
        pool=None, counters=None,
    ) -> None:
        """Append one kernel launch and advance the device clock.

        ``pool`` and ``counters`` (the driver's running chunk pool and
        :class:`~repro.gpu.counters.TrafficCounters`) are sampled at
        record time so the Perfetto export can render pool-occupancy and
        global-traffic counter tracks.
        """
        blocks = np.asarray(
            block_cycles if block_cycles is not None else [], dtype=np.float64
        )
        self.kernels.append(
            KernelEvent(
                stage=stage,
                sequence=len(self.kernels),
                start_cycle=self._clock,
                end_cycle=self._clock + timing.makespan_cycles,
                n_blocks=timing.n_blocks,
                min_block_cycles=float(blocks.min()) if blocks.size else 0.0,
                max_block_cycles=float(blocks.max()) if blocks.size else 0.0,
                mean_block_cycles=float(blocks.mean()) if blocks.size else 0.0,
                multiprocessor_load=timing.multiprocessor_load,
                pool_used_bytes=pool.used_bytes if pool is not None else 0,
                pool_capacity_bytes=(
                    pool.capacity_bytes if pool is not None else 0
                ),
                global_bytes_read=(
                    counters.global_bytes_read if counters is not None else 0
                ),
                global_bytes_written=(
                    counters.global_bytes_written if counters is not None else 0
                ),
            )
        )
        self._clock += timing.makespan_cycles

    def record_span(
        self, stage: str, cycles: float, *, pool=None, counters=None
    ) -> None:
        """A device-wide pass without per-block structure."""
        self.record_kernel(
            stage,
            KernelTiming(
                makespan_cycles=cycles, sm_busy_cycles=(), n_blocks=0
            ),
            pool=pool,
            counters=counters,
        )

    def record_point(self, label: str, detail: str = "") -> None:
        """Record an instantaneous event at the current clock."""
        self.points.append(
            PointEvent(label=label, cycle=self._clock, detail=detail)
        )
        # host round trips consume device-idle wall time; callers add the
        # cycles explicitly via record_span where applicable

    # -- reporting ---------------------------------------------------

    def total_cycles(self) -> float:
        """Device clock after the last recorded event."""
        return self._clock

    def stage_totals(self) -> dict[str, float]:
        """Cycles per pipeline stage, summed over its kernels."""
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.stage] = out.get(k.stage, 0.0) + k.duration
        return out

    def summary(self) -> str:
        """Human-readable per-kernel report (the Debug printout)."""
        us = 1e6 / (self.clock_ghz * 1e9)
        lines = [
            "kernel timeline "
            f"(total {self.total_cycles() * us:.2f} us simulated):"
        ]
        for k in self.kernels:
            lines.append(
                f"  [{k.sequence:3d}] {k.stage:4s} "
                f"{k.start_cycle * us:9.2f} -> {k.end_cycle * us:9.2f} us  "
                f"blocks={k.n_blocks:5d}  "
                f"block cycles min/mean/max = "
                f"{k.min_block_cycles:9.0f}/{k.mean_block_cycles:9.0f}/"
                f"{k.max_block_cycles:9.0f}  mpL={k.multiprocessor_load:.2f}"
            )
        for p in self.points:
            lines.append(f"  event @ {p.cycle * us:9.2f} us: {p.label} {p.detail}")
        return "\n".join(lines)

    #: minimum rendered width (us) of a zero-duration kernel, so the
    #: slice stays clickable in the Perfetto UI
    MIN_VISIBLE_DUR_US = 1e-3

    def to_events(self, *, pid: int = 1) -> list[dict]:
        """Chrome-trace / Perfetto event dicts for this timeline.

        Cycles are mapped to microseconds on the simulated clock; each
        pipeline stage gets its own thread row.  Zero-duration kernels
        are widened to :attr:`MIN_VISIBLE_DUR_US` **only up to the gap
        before the next kernel on the same row** — the old unconditional
        clamp made back-to-back zero-cycle kernels overlap, which
        Perfetto renders as a corrupt nested track.  Process and thread
        ``M``-phase name records are always emitted so every row is
        labelled.
        """
        us = 1e6 / (self.clock_ghz * 1e9)
        stages = list(dict.fromkeys(k.stage for k in self.kernels))
        tid_of = {s: i + 1 for i, s in enumerate(stages)}
        # per-row clamp budget: a kernel may widen at most to the start
        # of the next kernel on its own tid
        next_start: dict[int, float] = {}
        budget = [float("inf")] * len(self.kernels)
        for i in range(len(self.kernels) - 1, -1, -1):
            k = self.kernels[i]
            tid = tid_of[k.stage]
            if tid in next_start:
                budget[i] = next_start[tid] - k.start_cycle * us
            next_start[tid] = k.start_cycle * us
        events = []
        for i, k in enumerate(self.kernels):
            dur = k.duration * us
            if dur <= 0.0:
                dur = max(0.0, min(self.MIN_VISIBLE_DUR_US, budget[i]))
            events.append(
                {
                    "name": f"{k.stage}#{k.sequence}",
                    "cat": "kernel",
                    "ph": "X",
                    "ts": k.start_cycle * us,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid_of[k.stage],
                    "args": {
                        "blocks": k.n_blocks,
                        "mp_load": k.multiprocessor_load,
                        "max_block_cycles": k.max_block_cycles,
                    },
                }
            )
        # counter tracks: chunk-pool occupancy and cumulative global
        # traffic, one sample at each kernel's end (Perfetto steps the
        # value until the next sample)
        for k in self.kernels:
            if k.pool_capacity_bytes:
                events.append(
                    {
                        "name": "chunk pool occupancy",
                        "ph": "C",
                        "ts": k.end_cycle * us,
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            "used_bytes": k.pool_used_bytes,
                            "free_bytes": k.pool_capacity_bytes
                            - k.pool_used_bytes,
                        },
                    }
                )
            if k.global_bytes_read or k.global_bytes_written:
                events.append(
                    {
                        "name": "global traffic (cumulative)",
                        "ph": "C",
                        "ts": k.end_cycle * us,
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            "bytes_read": k.global_bytes_read,
                            "bytes_written": k.global_bytes_written,
                        },
                    }
                )
        for p in self.points:
            events.append(
                {
                    "name": p.label,
                    "cat": "event",
                    "ph": "i",
                    "ts": p.cycle * us,
                    "pid": pid,
                    "tid": 0,
                    "s": "g",
                    "args": {"detail": p.detail},
                }
            )
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "simulated device"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "host events"},
            },
        ]
        meta.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"stage {stage}"},
            }
            for stage, tid in tid_of.items()
        )
        return meta + events

    def to_chrome_trace(self, path: str | Path) -> Path:
        """Write a chrome://tracing / Perfetto compatible JSON file."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({"traceEvents": self.to_events()}))
        return out

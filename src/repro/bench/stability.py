"""Bit-stability verification (§4.4 and the † marks of Table 1).

An algorithm is *bit-stable* when repeated executions produce bitwise
identical output.  Sort/merge-based algorithms accumulate in a fixed
order; hash-based ones accumulate in hardware-scheduler order, modelled
here by varying the scheduler seed across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.registry import make_algorithm
from ..sparse.csr import CSRMatrix

__all__ = ["StabilityReport", "check_bit_stability"]


@dataclass(frozen=True)
class StabilityReport:
    """Outcome of a repeated-run bitwise comparison."""

    algorithm: str
    claims_stable: bool
    observed_stable: bool
    n_runs: int
    max_value_deviation: float

    @property
    def consistent(self) -> bool:
        """Claimed and observed stability agree."""
        return self.claims_stable == self.observed_stable


def check_bit_stability(
    algorithm: str,
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    n_runs: int = 4,
    dtype=np.float64,
) -> StabilityReport:
    """Run ``n_runs`` times under different modelled schedules and
    compare results bitwise."""
    alg = make_algorithm(algorithm)
    runs = [
        alg.multiply(a, b, dtype=dtype, scheduler_seed=seed)
        for seed in range(n_runs)
    ]
    first = runs[0].matrix
    stable = all(r.matrix.exactly_equal(first) for r in runs[1:])
    max_dev = 0.0
    for r in runs[1:]:
        if (
            r.matrix.nnz == first.nnz
            and np.array_equal(r.matrix.col_idx, first.col_idx)
        ):
            diff = np.abs(r.matrix.values - first.values)
            if diff.size:
                max_dev = max(max_dev, float(diff.max()))
    return StabilityReport(
        algorithm=algorithm,
        claims_stable=alg.bit_stable,
        observed_stable=stable,
        n_runs=n_runs,
        max_value_deviation=max_dev,
    )

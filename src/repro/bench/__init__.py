"""Benchmark harness, metrics, experiment drivers and reporting
(system S19 of DESIGN.md)."""

from .experiments import (
    GPU_LINEUP,
    ablation_rows,
    ac_best_percentage,
    cpu_crossover,
    figure5_trends,
    figure6_rows,
    figure7_rows,
    figure8_rows,
    fullset_rows,
    named_cases,
    restart_study,
    suite_cases,
    sweep,
    table1_rows,
    table2_rows,
    table3_rows,
)
from .harness import MatrixCase, ResultCache, RunRecord, default_cache, run_case
from .metrics import SpeedupSummary, harmonic_mean, speedup_summary, trend_bins
from .report import format_table, human_bytes, write_csv
from .stability import StabilityReport, check_bit_stability
from .trace import KernelEvent, PointEvent, TraceRecorder

__all__ = [
    "GPU_LINEUP",
    "KernelEvent",
    "MatrixCase",
    "PointEvent",
    "TraceRecorder",
    "ResultCache",
    "RunRecord",
    "SpeedupSummary",
    "StabilityReport",
    "ablation_rows",
    "ac_best_percentage",
    "check_bit_stability",
    "cpu_crossover",
    "default_cache",
    "figure5_trends",
    "figure6_rows",
    "figure7_rows",
    "figure8_rows",
    "format_table",
    "fullset_rows",
    "harmonic_mean",
    "human_bytes",
    "named_cases",
    "restart_study",
    "run_case",
    "speedup_summary",
    "suite_cases",
    "sweep",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "trend_bins",
    "write_csv",
]

"""Deterministic simulated GPU substrate (systems S3–S4 of DESIGN.md).

Provides the device model, scratchpad capacity enforcement, cycle cost
model, deterministic block scheduler and block-wide primitives that
AC-SpGEMM (:mod:`repro.core`) and the baselines (:mod:`repro.baselines`)
execute on.
"""

from .block import BlockContext
from .config import SMALL_DEVICE, TITAN_XP, DeviceConfig
from .cost import DEFAULT_COSTS, CostConstants, CostMeter
from .counters import AtomicCounter, TrafficCounters
from .memory import DeviceAllocationTracker, Scratchpad, ScratchpadOverflow
from .primitives import (
    block_reduce_minmax,
    blocked_to_striped,
    exclusive_prefix_sum,
    inclusive_max_scan,
    inclusive_prefix_sum,
    striped_to_blocked,
)
from .radix import bits_required, radix_sort_pairs, radix_sort_permutation
from .scheduler import KernelTiming, schedule_blocks

__all__ = [
    "AtomicCounter",
    "BlockContext",
    "CostConstants",
    "CostMeter",
    "DEFAULT_COSTS",
    "DeviceAllocationTracker",
    "DeviceConfig",
    "KernelTiming",
    "SMALL_DEVICE",
    "Scratchpad",
    "ScratchpadOverflow",
    "TITAN_XP",
    "TrafficCounters",
    "bits_required",
    "block_reduce_minmax",
    "blocked_to_striped",
    "exclusive_prefix_sum",
    "inclusive_max_scan",
    "inclusive_prefix_sum",
    "radix_sort_pairs",
    "radix_sort_permutation",
    "schedule_blocks",
    "striped_to_blocked",
]

"""Execution context of one simulated thread block."""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import DeviceConfig
from .cost import CostConstants, CostMeter, DEFAULT_COSTS
from .memory import Scratchpad

__all__ = ["BlockContext"]


@dataclass
class BlockContext:
    """Everything one thread block sees while executing a kernel.

    The meter accumulates the block's cycles (fed to the scheduler for
    the makespan) and its traffic counters (merged device-wide).  The
    scratchpad enforces the on-chip capacity for this block's layout.
    """

    config: DeviceConfig
    block_id: int
    constants: CostConstants = field(default=DEFAULT_COSTS)
    meter: CostMeter = field(init=False)
    scratchpad: Scratchpad = field(init=False)

    def __post_init__(self) -> None:
        self.meter = CostMeter(config=self.config, constants=self.constants)
        self.scratchpad = Scratchpad.for_device(self.config)

    @property
    def threads(self) -> int:
        """Threads in this block."""
        return self.config.threads_per_block

    @property
    def cycles(self) -> float:
        """Cycles charged by this block so far."""
        return self.meter.cycles

"""Simulated GPU device description.

The paper's test platform is an NVIDIA Titan Xp (compute capability 6.1):
30 streaming multiprocessors (SMs), 48 KiB scratchpad ("shared") memory
per thread block, 32-lane warps, ~1.58 GHz boost clock.  The defaults
below mirror those numbers so capacity-driven behaviour (how many
temporary products fit in scratchpad, when AC-ESC must spill to chunks)
matches the published configuration: with 256 threads and 8 elements per
thread a block holds 2048 temporaries — the "up to 4000 temporary
elements" head-room discussed in §3 for 512-thread blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceConfig", "TITAN_XP", "SMALL_DEVICE"]


@dataclass(frozen=True)
class DeviceConfig:
    """Static parameters of the simulated device and kernel launch.

    Attributes
    ----------
    num_sms:
        Streaming multiprocessors; blocks are scheduled across these.
    warp_size:
        SIMD width; memory coalescing and instruction costs are charged
        per warp-wide operation.
    clock_ghz:
        Core clock used to convert model cycles into simulated seconds.
    scratchpad_bytes:
        On-chip scratchpad available to one thread block.  Allocations
        beyond this raise — the simulator enforces the same hard limit
        that shapes the paper's algorithm.
    threads_per_block:
        Threads in one block (the paper uses 256).
    nnz_per_thread:
        Elements sorted per thread in local ESC ("sorts 8 elements per
        thread", §4).
    keep_per_thread:
        Elements retained from one ESC iteration to the next ("keeps up
        to 4 elements per thread", §4).
    nnz_per_block_glb:
        Non-zeros of A assigned to each block by global load balancing
        ("block size of 256/512 non-zeros", §4).
    global_transaction_bytes:
        Bytes served by one coalesced global-memory transaction.
    """

    num_sms: int = 30
    warp_size: int = 32
    clock_ghz: float = 1.582
    scratchpad_bytes: int = 48 * 1024
    threads_per_block: int = 256
    nnz_per_thread: int = 8
    keep_per_thread: int = 4
    nnz_per_block_glb: int = 256
    global_transaction_bytes: int = 128

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError("warp_size must be a positive power of two")
        if self.threads_per_block % self.warp_size:
            raise ValueError("threads_per_block must be a multiple of warp_size")
        if self.nnz_per_thread <= 0 or self.keep_per_thread < 0:
            raise ValueError("per-thread element counts must be positive")
        if self.keep_per_thread >= self.nnz_per_thread:
            raise ValueError(
                "keep_per_thread must be smaller than nnz_per_thread "
                "(otherwise local ESC can never drain the work distribution)"
            )
        if self.nnz_per_block_glb <= 0:
            raise ValueError("nnz_per_block_glb must be positive")

    @property
    def elements_per_block(self) -> int:
        """Temporary products processed by one local ESC iteration."""
        return self.threads_per_block * self.nnz_per_thread

    @property
    def keep_elements(self) -> int:
        """Maximum temporaries carried over between ESC iterations."""
        return self.threads_per_block * self.keep_per_thread

    @property
    def warps_per_block(self) -> int:
        """Warps per thread block."""
        return self.threads_per_block // self.warp_size

    def with_(self, **kwargs) -> "DeviceConfig":
        """Copy with replaced fields (ablation helper)."""
        return replace(self, **kwargs)


#: The paper's evaluation GPU.
TITAN_XP = DeviceConfig()

#: A scaled-down device for fast unit tests: tiny blocks force many ESC
#: iterations, chunk spills, merges and restarts on small matrices, so
#: tests exercise every code path cheaply.
SMALL_DEVICE = DeviceConfig(
    num_sms=4,
    threads_per_block=32,
    nnz_per_thread=4,
    keep_per_thread=2,
    nnz_per_block_glb=16,
    scratchpad_bytes=8 * 1024,
)

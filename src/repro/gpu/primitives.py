"""Block-wide cooperative primitives (the CUB analogue, §3.2 [21]).

All primitives operate on numpy arrays representing the lanes of one
thread block, charge their cost to a :class:`~repro.gpu.cost.CostMeter`,
and are deterministic: the same input always produces the same output,
which is the foundation of the paper's bit-stability guarantee.
"""

from __future__ import annotations

import numpy as np

from .cost import CostMeter

__all__ = [
    "inclusive_prefix_sum",
    "exclusive_prefix_sum",
    "inclusive_max_scan",
    "blocked_to_striped",
    "striped_to_blocked",
    "block_reduce_minmax",
]


def inclusive_prefix_sum(meter: CostMeter, values: np.ndarray) -> np.ndarray:
    """Block-wide inclusive sum scan."""
    meter.scan(values.shape[0])
    return np.cumsum(values)


def exclusive_prefix_sum(
    meter: CostMeter, values: np.ndarray
) -> tuple[np.ndarray, int]:
    """Block-wide exclusive sum scan; returns ``(scan, total)``."""
    meter.scan(values.shape[0])
    inc = np.cumsum(values)
    total = int(inc[-1]) if inc.shape[0] else 0
    out = np.empty_like(inc)
    if out.shape[0]:
        out[0] = 0
        out[1:] = inc[:-1]
    return out, total


def inclusive_max_scan(meter: CostMeter, values: np.ndarray) -> np.ndarray:
    """Block-wide inclusive maximum scan (Algorithm 2, line 24)."""
    meter.scan(values.shape[0])
    return np.maximum.accumulate(values)


def blocked_to_striped(
    meter: CostMeter, values: np.ndarray, threads: int, per_thread: int
) -> np.ndarray:
    """Layout exchange from *blocked* (thread t owns a contiguous run of
    ``per_thread`` items) to *striped* (thread t owns items ``t``,
    ``t + threads``, ...), via scratchpad (Algorithm 2, line 25).

    Ensures coalesced loads when each lane subsequently fetches its
    assigned element from global memory.
    """
    n = threads * per_thread
    if values.shape[0] != n:
        raise ValueError(
            f"blocked_to_striped expects {n} values "
            f"({threads} threads x {per_thread}), got {values.shape[0]}"
        )
    meter.scratchpad(2 * n)  # one write + one read per element
    return values.reshape(threads, per_thread).T.reshape(-1)


def striped_to_blocked(
    meter: CostMeter, values: np.ndarray, threads: int, per_thread: int
) -> np.ndarray:
    """Inverse of :func:`blocked_to_striped`."""
    n = threads * per_thread
    if values.shape[0] != n:
        raise ValueError(
            f"striped_to_blocked expects {n} values, got {values.shape[0]}"
        )
    meter.scratchpad(2 * n)
    return values.reshape(per_thread, threads).T.reshape(-1)


def block_reduce_minmax(
    meter: CostMeter, values: np.ndarray
) -> tuple[int, int]:
    """Block-wide (min, max) reduction — used for the dynamic sort-bit
    reduction over fetched column ids (§3.2.3)."""
    if values.shape[0] == 0:
        raise ValueError("cannot reduce an empty array")
    meter.scan(values.shape[0])  # tree reduction ~ scan cost
    return int(values.min()), int(values.max())

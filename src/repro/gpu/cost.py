"""Cycle cost model for the simulated GPU.

The reproduction cannot measure wall time on a Titan Xp, so every
algorithm charges its work to a :class:`CostMeter`, and simulated time is
``cycles / clock``.  GFLOPS reported by the benches are derived from this
simulated time.  Absolute numbers are therefore *model* numbers; the
claims we reproduce are relative (who is faster on which matrix class).

Calibration of the constants (all per-SM, in core cycles):

* **Global memory.**  Titan Xp: ~547 GB/s over 30 SMs at 1.582 GHz gives
  ``547e9 / (30 * 1.582e9) ≈ 11.5`` bytes per SM-cycle.  A coalesced
  access moves ``ceil(n*b / 128)`` 128-byte transactions; an uncoalesced
  access wastes a 32-byte sector per element.
* **Scratchpad.**  32 banks × 4 bytes per cycle → a warp-wide conflict-
  free access costs 1 cycle, i.e. ``n / 32`` cycles for n elements.
* **ALU.**  128 FMA lanes per SM → ``n / 128`` cycles for n scalar ops.
* **Radix sort.**  CUB-style block radix sort processes ``RADIX_BITS``
  bits per pass; each pass ranks and scatters every element through
  scratchpad (several scratchpad round trips + rank arithmetic per
  element).  Crucially the number of passes is ``ceil(bits /
  RADIX_BITS)`` — this is what makes the paper's dynamic bit-length
  reduction (§3.2.3) pay off.
* **Atomics.**  Fire-and-forget adds/exchanges (row counts, list heads,
  bump allocation) pipeline to ~2 cycles amortised; scratchpad atomics
  are cheaper still, global hash CAS round trips dearer.
* **Hash probes.**  A scratchpad hash insert costs a handful of
  scratchpad accesses plus an atomic CAS; collisions re-probe.
* **Kernel launch.**  ~4 µs of host/driver latency per launch, charged to
  the device makespan (not to one SM).  Approaches that launch many
  kernels (binning pipelines) pay proportionally — one of the overheads
  the paper's single-pass design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import DeviceConfig
from .counters import TrafficCounters

__all__ = ["CostMeter", "CostConstants", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostConstants:
    """Tunable model constants (see module docstring for derivations)."""

    bytes_per_cycle: float = 11.5
    uncoalesced_sector_bytes: int = 32
    scratchpad_lanes: int = 32
    alu_lanes: int = 128
    radix_bits_per_pass: int = 4
    radix_pass_alu_per_element: float = 20.0
    radix_pass_scratch_per_element: float = 6.0
    #: amortised global atomic under pipelining (fire-and-forget adds /
    #: exchanges as used for row counts, list heads, bump allocation)
    atomic_cycles: float = 2.0
    hash_probe_scratch_accesses: float = 3.0
    hash_probe_alu: float = 4.0
    #: scratchpad atomics pipeline well: ~0.2 cycles amortised per op
    scratchpad_atomic_cycles: float = 0.2
    #: global hash probes: one 32-byte sector round trip + an amortised
    #: global atomic (~4 cycles under heavy pipelining)
    global_hash_probe_bytes: int = 64
    global_hash_atomic_cycles: float = 4.0
    kernel_launch_cycles: float = 6500.0  # ~4.1 us at 1.582 GHz
    host_round_trip_cycles: float = 40000.0  # ~25 us: sync + alloc + relaunch


DEFAULT_COSTS = CostConstants()


@dataclass
class CostMeter:
    """Accumulates cycles and raw counters for one execution scope.

    One meter is created per simulated thread block (so the scheduler can
    compute the makespan over SMs) and per sequential kernel section.
    """

    config: DeviceConfig
    constants: CostConstants = field(default=DEFAULT_COSTS)
    cycles: float = 0.0
    counters: TrafficCounters = field(default_factory=TrafficCounters)
    #: when set to a list (device tracing), every radix sort appends
    #: ``(n_elements, key_bits)``; ``None`` keeps the default path free
    sort_log: list | None = field(default=None, repr=False)

    # -- global memory ------------------------------------------------

    def global_read(
        self, n_elements: int, element_bytes: int, *, coalesced: bool = True
    ) -> None:
        """Charge a global-memory read of ``n_elements`` items."""
        if n_elements <= 0:
            return
        self._global_access(n_elements, element_bytes, coalesced, write=False)

    def global_write(
        self, n_elements: int, element_bytes: int, *, coalesced: bool = True
    ) -> None:
        """Charge a global-memory write of ``n_elements`` items."""
        if n_elements <= 0:
            return
        self._global_access(n_elements, element_bytes, coalesced, write=True)

    def _global_access(
        self, n: int, b: int, coalesced: bool, write: bool
    ) -> None:
        k = self.constants
        payload = n * b
        if coalesced:
            tx_bytes = self.config.global_transaction_bytes
            transactions = -(-payload // tx_bytes)
            moved = transactions * tx_bytes
        else:
            transactions = n
            moved = n * max(b, k.uncoalesced_sector_bytes)
        self.cycles += moved / k.bytes_per_cycle
        self.counters.global_transactions += transactions
        if write:
            self.counters.global_bytes_written += payload
        else:
            self.counters.global_bytes_read += payload

    # -- on-chip work ---------------------------------------------------

    def scratchpad(self, n_accesses: int) -> None:
        """Charge ``n_accesses`` on-chip scratchpad accesses."""
        if n_accesses <= 0:
            return
        self.cycles += n_accesses / self.constants.scratchpad_lanes
        self.counters.scratchpad_accesses += n_accesses

    def alu(self, n_ops: int) -> None:
        """Charge ``n_ops`` scalar ALU operations."""
        if n_ops <= 0:
            return
        self.cycles += n_ops / self.constants.alu_lanes

    def flops(self, n: int) -> None:
        """Useful arithmetic (multiply-adds of the actual SpGEMM)."""
        if n <= 0:
            return
        self.alu(n)
        self.counters.flops += n

    def radix_sort(self, n_elements: int, key_bits: int) -> None:
        """Block-wide stable radix sort of ``n_elements`` by ``key_bits``."""
        if n_elements <= 0:
            return
        k = self.constants
        passes = max(1, -(-int(key_bits) // k.radix_bits_per_pass))
        self.alu(int(passes * n_elements * k.radix_pass_alu_per_element))
        self.scratchpad(int(passes * n_elements * k.radix_pass_scratch_per_element))
        self.counters.sorted_elements += n_elements
        self.counters.sort_passes += passes
        if self.sort_log is not None:
            self.sort_log.append((int(n_elements), int(key_bits)))

    def scan(self, n_elements: int) -> None:
        """Block-wide prefix scan (any operator)."""
        if n_elements <= 0:
            return
        # Work-efficient scan: ~2 scratchpad sweeps + log-depth ALU work.
        self.scratchpad(2 * n_elements)
        self.alu(2 * n_elements)

    def atomic(self, n: int = 1) -> None:
        """Charge ``n`` pipelined global atomic operations."""
        if n <= 0:
            return
        self.cycles += n * self.constants.atomic_cycles
        self.counters.atomic_ops += n

    def hash_probe(self, n: int, *, in_scratchpad: bool = True) -> None:
        """n hash-table insert/accumulate probes."""
        if n <= 0:
            return
        k = self.constants
        if in_scratchpad:
            self.scratchpad(int(n * k.hash_probe_scratch_accesses))
            self.alu(int(n * k.hash_probe_alu))
            self.cycles += n * k.scratchpad_atomic_cycles
            self.counters.atomic_ops += n
        else:
            self._global_access(n, k.global_hash_probe_bytes, False, write=True)
            self.cycles += n * k.global_hash_atomic_cycles
            self.counters.atomic_ops += n
        self.counters.hash_probes += n

    def hash_collision(self, n: int) -> None:
        """Charge ``n`` extra re-probes caused by hash collisions."""
        if n <= 0:
            return
        self.scratchpad(int(n * self.constants.hash_probe_scratch_accesses))
        self.counters.hash_collisions += n

    # -- device-level events (charged to the makespan, see scheduler) ---

    def kernel_launch(self, n: int = 1) -> None:
        """Charge ``n`` kernel-launch latencies (device makespan)."""
        self.cycles += n * self.constants.kernel_launch_cycles
        self.counters.kernel_launches += n

    def host_round_trip(self, n: int = 1) -> None:
        """Charge ``n`` host synchronisation round trips (restarts)."""
        self.cycles += n * self.constants.host_round_trip_cycles
        self.counters.host_round_trips += n

    # -- helpers --------------------------------------------------------

    def seconds(self) -> float:
        """Simulated seconds for the accumulated cycles."""
        return self.cycles / (self.config.clock_ghz * 1e9)

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's counters (NOT cycles) into this one."""
        self.counters.merge(other.counters)

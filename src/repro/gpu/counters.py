"""Work and traffic counters for the simulated device.

Every algorithm (AC-SpGEMM and all baselines) charges its work through
these counters; the cost model converts them into cycles.  Keeping the
raw counts separate from the cycle conversion makes the accounting
auditable: a bench can report "bytes moved through global memory" or
"radix passes executed" independently of the calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["TrafficCounters", "AtomicCounter", "COUNTER_DOC"]

#: one-line description per counter field, surfaced as the ``# HELP``
#: text of the observability layer's Prometheus export
#: (``repro.obs.metrics``) and in the ``repro profile`` report
COUNTER_DOC: dict[str, str] = {
    "global_bytes_read": "Bytes read from simulated global memory.",
    "global_bytes_written": "Bytes written to simulated global memory.",
    "global_transactions": "Coalesced global-memory transactions issued.",
    "scratchpad_accesses": "On-chip scratchpad (shared memory) accesses.",
    "atomic_ops": "Device-global atomic operations.",
    "sorted_elements": "Elements pushed through the radix sorts.",
    "sort_passes": "LSD radix-sort passes executed.",
    "flops": "Floating-point operations (2 per temporary product).",
    "kernel_launches": "Simulated kernel launches.",
    "host_round_trips": "Host synchronisation round trips (restarts).",
    "hash_probes": "Hash-table probe steps (hash-based baselines).",
    "hash_collisions": "Hash-table collisions (hash-based baselines).",
}


@dataclass
class TrafficCounters:
    """Raw operation counts accumulated during a simulated execution."""

    global_bytes_read: int = 0
    global_bytes_written: int = 0
    global_transactions: int = 0
    scratchpad_accesses: int = 0
    atomic_ops: int = 0
    sorted_elements: int = 0
    sort_passes: int = 0
    flops: int = 0
    kernel_launches: int = 0
    host_round_trips: int = 0
    hash_probes: int = 0
    hash_collisions: int = 0

    def merge(self, other: "TrafficCounters") -> None:
        """Accumulate another counter set into this one, in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __sub__(self, other: "TrafficCounters") -> "TrafficCounters":
        """Checked delta: ``self - other``, field by field.

        Counters are monotone within one execution, so a later snapshot
        minus an earlier one can never be negative; a negative field means
        the operands are swapped or come from different runs.  Raising
        here turns that silent underflow into an immediate error.
        """
        if not isinstance(other, TrafficCounters):
            return NotImplemented
        delta = TrafficCounters()
        for f in fields(self):
            value = getattr(self, f.name) - getattr(other, f.name)
            if value < 0:
                raise ValueError(
                    f"negative counter delta for {f.name!r}: "
                    f"{getattr(self, f.name)} - {getattr(other, f.name)} = {value} "
                    "(operands swapped, or snapshots from different runs?)"
                )
            setattr(delta, f.name, value)
        return delta

    def snapshot(self) -> dict[str, int]:
        """Counter values as a plain dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass
class AtomicCounter:
    """A device-global atomic counter (bump allocation, list heads).

    The simulator executes blocks deterministically, so atomics are just
    integers — but routing every increment through this class lets the
    cost model charge atomic-operation latency and lets tests assert on
    contention counts.
    """

    value: int = 0
    operations: int = field(default=0, repr=False)

    def fetch_add(self, amount: int) -> int:
        """Atomically add ``amount``; return the previous value."""
        old = self.value
        self.value += amount
        self.operations += 1
        return old

    def exchange(self, new: int) -> int:
        """Atomically replace the value; return the previous value."""
        old = self.value
        self.value = new
        self.operations += 1
        return old

    def load(self) -> int:
        """Read the current value."""
        return self.value

"""Deterministic block scheduler and makespan model.

The hardware scheduler dispatches ready blocks to SMs as they drain.  We
model that with a greedy earliest-available-SM assignment in block-id
order, which is fully deterministic — the property AC-SpGEMM's chunk
ordering relies on is that *our algorithm's results* do not depend on the
schedule; the schedule itself only determines simulated time and the
multiprocessor-load statistic (Table 3, "mpL").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["KernelTiming", "BlockPlacement", "schedule_blocks", "partition_aborted"]


@dataclass(frozen=True)
class BlockPlacement:
    """Where one block ran: SM id plus start/end relative to launch start."""

    sm: int
    start_cycle: float
    end_cycle: float


@dataclass(frozen=True)
class KernelTiming:
    """Timing result of one simulated kernel launch."""

    makespan_cycles: float
    sm_busy_cycles: tuple[float, ...]
    n_blocks: int
    #: per-block placements in dispatch (block-id) order; only populated
    #: when the launch was scheduled with ``record_placements=True`` and
    #: deliberately excluded from equality (it is derived data)
    placements: tuple[BlockPlacement, ...] | None = field(default=None, compare=False)

    @property
    def total_block_cycles(self) -> float:
        """Sum of per-SM busy time (work conservation check)."""
        return float(sum(self.sm_busy_cycles))

    @property
    def multiprocessor_load(self) -> float:
        """min SM busy time / max SM busy time — 1.0 is a perfect load
        balance (the paper reports "virtually perfect in all cases").

        When the launch dispatched fewer blocks than the device has SMs
        (small per-tile launches on a multi-device node), only the SMs
        that could receive a block participate: the greedy scheduler
        fills SMs 0..n_blocks-1 first, so the trailing all-idle SMs
        would otherwise report a spurious 0.0 load for a perfectly
        balanced launch.
        """
        if not self.sm_busy_cycles or max(self.sm_busy_cycles) == 0:
            return 1.0
        occupied = self.sm_busy_cycles
        if 0 < self.n_blocks < len(self.sm_busy_cycles):
            occupied = self.sm_busy_cycles[: self.n_blocks]
        return min(occupied) / max(self.sm_busy_cycles)

    @property
    def utilization(self) -> float:
        """Fraction of SM-cycles busy during this launch (1.0 when the
        launch ran no blocks or took zero time).

        An empty launch is vacuously fully utilised even when a launch
        overhead gives it a non-zero makespan — returning
        ``0 / capacity`` there mis-reported pure-overhead launches.
        """
        if self.n_blocks == 0:
            return 1.0
        capacity = len(self.sm_busy_cycles) * self.makespan_cycles
        if capacity == 0:
            return 1.0
        return self.total_block_cycles / capacity


def schedule_blocks(
    block_cycles: Sequence[float],
    num_sms: int,
    *,
    launch_overhead: float = 0.0,
    record_placements: bool = False,
) -> KernelTiming:
    """Greedy list scheduling of blocks onto SMs.

    Blocks are issued in id order to the SM that becomes free first
    (ties broken by SM id).  Returns the kernel makespan including the
    launch overhead and per-SM busy times.  With ``record_placements``
    the per-block (SM, start, end) assignments are kept for the device
    trace; the accumulation order is unchanged, so busy times stay
    bit-identical whether or not placements are recorded.
    """
    if num_sms <= 0:
        raise ValueError("num_sms must be positive")
    busy = [0.0] * num_sms
    placements: list[BlockPlacement] | None = [] if record_placements else None
    if block_cycles:
        heap: list[tuple[float, int]] = [(0.0, sm) for sm in range(num_sms)]
        heapq.heapify(heap)
        for cycles in block_cycles:
            if cycles < 0:
                raise ValueError("block cycle counts must be non-negative")
            available, sm = heapq.heappop(heap)
            finish = available + cycles
            busy[sm] += cycles
            if placements is not None:
                placements.append(
                    BlockPlacement(sm=sm, start_cycle=available, end_cycle=finish)
                )
            heapq.heappush(heap, (finish, sm))
        # heap entries hold each SM's finish time; makespan is the latest
        makespan = max(t for t, _ in heap)
    else:
        makespan = 0.0
    return KernelTiming(
        makespan_cycles=makespan + launch_overhead,
        sm_busy_cycles=tuple(busy),
        n_blocks=len(block_cycles),
        placements=tuple(placements) if placements is not None else None,
    )


def partition_aborted(
    workers: Sequence, abort_positions: frozenset[int] | set[int]
) -> tuple[list, list]:
    """Split a round's workers into (dispatched, aborted), both in order.

    Models a scheduler-level block abort (fault injection, see
    ``repro.resilience.faults``): the aborted positions never reach an
    SM this launch; the driver re-queues them in their original order
    and the round costs one restart, like a real mid-kernel casualty.
    Positions past the end of the list are ignored.
    """
    if not abort_positions:
        return list(workers), []
    dispatched: list = []
    aborted: list = []
    for i, w in enumerate(workers):
        (aborted if i in abort_positions else dispatched).append(w)
    return dispatched, aborted

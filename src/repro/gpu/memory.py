"""Simulated device memory: per-block scratchpad and global allocations.

The scratchpad enforces the hard on-chip capacity that shapes AC-SpGEMM
(§3: "Considering register sizes of current GPUs and reasonably small
thread block sizes, up to 4000 temporary elements can be held").  Global
allocations are tracked so Table 3 / Figure 8 (memory consumption) can be
reproduced exactly as "helper", "chunk pool" and "used" byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.errors import ReproError
from .config import DeviceConfig

__all__ = ["ScratchpadOverflow", "Scratchpad", "DeviceAllocationTracker"]


class ScratchpadOverflow(ReproError, MemoryError):
    """A block requested more scratchpad than the device provides.

    Unlike pool exhaustion this is not recoverable by growing anything —
    the on-chip capacity is a hard device property — so it propagates
    (or triggers the degradation fallback).  Also a :class:`MemoryError`
    for backwards compatibility.
    """


@dataclass
class Scratchpad:
    """Named-allocation scratchpad with a hard byte capacity.

    Algorithms declare their scratchpad layout up front (as a CUDA kernel
    does statically); the simulator rejects layouts that exceed the
    device capacity instead of silently using more memory — this is what
    keeps the Python reproduction honest about on-chip residency.
    """

    capacity_bytes: int
    allocations: dict[str, int] = field(default_factory=dict)
    #: largest concurrent footprint ever observed; survives ``free``/``reset``
    #: so the device trace can report per-block scratchpad residency
    high_water: int = 0

    @classmethod
    def for_device(cls, config: DeviceConfig) -> "Scratchpad":
        """A scratchpad with the device's per-block capacity."""
        return cls(capacity_bytes=config.scratchpad_bytes)

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def alloc(self, name: str, n_bytes: int) -> None:
        """Reserve ``n_bytes`` under ``name``; raises on overflow."""
        if n_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self.allocations:
            raise ValueError(f"scratchpad allocation {name!r} already exists")
        if self.used_bytes + n_bytes > self.capacity_bytes:
            raise ScratchpadOverflow(
                f"scratchpad overflow: {name!r} needs {n_bytes} B but only "
                f"{self.free_bytes} of {self.capacity_bytes} B remain "
                f"(existing: {self.allocations})"
            )
        self.allocations[name] = n_bytes
        used = self.used_bytes
        if used > self.high_water:
            self.high_water = used

    def alloc_array(self, name: str, n_elements: int, element_bytes: int) -> None:
        """Reserve an ``n_elements`` array of ``element_bytes`` items."""
        self.alloc(name, n_elements * element_bytes)

    def free(self, name: str) -> None:
        """Release a named allocation."""
        try:
            del self.allocations[name]
        except KeyError:
            raise KeyError(f"no scratchpad allocation named {name!r}") from None

    def reset(self) -> None:
        """Drop every allocation (block retirement)."""
        self.allocations.clear()


@dataclass
class DeviceAllocationTracker:
    """Tracks global-memory allocations by category.

    Categories used by the benches: ``"helper"`` (load-balancing arrays,
    list heads, restart state, ...), ``"chunk_pool"`` and ``"output"``.
    ``used`` bytes within the chunk pool are recorded separately by the
    pool itself.
    """

    allocated: dict[str, int] = field(default_factory=dict)
    peak: dict[str, int] = field(default_factory=dict)

    def alloc(self, category: str, n_bytes: int) -> None:
        """Record a global allocation under ``category``."""
        if n_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        new = self.allocated.get(category, 0) + n_bytes
        self.allocated[category] = new
        if new > self.peak.get(category, 0):
            self.peak[category] = new

    def free(self, category: str, n_bytes: int) -> None:
        """Record a release from ``category``."""
        cur = self.allocated.get(category, 0)
        if n_bytes > cur:
            raise ValueError(
                f"freeing {n_bytes} B from {category!r} which holds {cur} B"
            )
        self.allocated[category] = cur - n_bytes

    def total_allocated(self) -> int:
        """Currently allocated bytes across categories."""
        return sum(self.allocated.values())

    def peak_total(self) -> int:
        """Sum of per-category allocation peaks."""
        return sum(self.peak.values())

    def bytes_of(self, category: str) -> int:
        """Peak bytes of one category."""
        return self.peak.get(category, 0)

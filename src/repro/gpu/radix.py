"""Stable LSD block radix sort (CUB analogue used by local ESC, §3.2).

The paper's key property: radix-sort runtime is proportional to the
sorted bit length, so AC-SpGEMM's dynamic bit reduction directly reduces
cost.  The implementation here runs genuine least-significant-digit
passes (stable counting sort per digit) and charges the cost model per
pass; sorting fewer bits executes — and is charged — fewer passes.
"""

from __future__ import annotations

import contextlib

import numpy as np

from .cost import CostMeter

__all__ = [
    "radix_sort_permutation",
    "radix_sort_pairs",
    "bits_required",
    "fast_stable_sort",
]

_fast_stable = False


@contextlib.contextmanager
def fast_stable_sort():
    """Execute narrow sorts as one numpy radix argsort while active.

    A stable LSD radix sort is, by composition of its stable passes, the
    stable sort by the full key — so for keys at most 16 bits wide the
    permutation can be produced by a single ``np.argsort(kind="stable")``
    over a uint8/uint16 view, which numpy implements as an O(n) radix
    sort.  This is an execution switch only: permutations and every
    :class:`~repro.gpu.cost.CostMeter` charge (pass counts included) are
    identical to the pass-by-pass path.  Batch-oriented engines enable it
    around shared fallback stages; the reference engine never does.
    """
    global _fast_stable
    prev = _fast_stable
    _fast_stable = True
    try:
        yield
    finally:
        _fast_stable = prev


def bits_required(max_value: int) -> int:
    """Number of bits needed to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return max(1, int(max_value).bit_length())


def _stable_counting_argsort(digits: np.ndarray, radix: int) -> np.ndarray:
    """One LSD pass: the permutation a stable counting sort would apply.

    numpy's stable argsort over a bounded digit array produces exactly
    the counting-sort permutation (elements grouped by digit, original
    order preserved within a group), which is all a radix pass needs.
    """
    if digits.shape[0] and (digits.min() < 0 or digits.max() >= radix):
        raise ValueError("digit out of range for the pass radix")
    return np.argsort(digits, kind="stable")


def radix_sort_permutation(
    meter: CostMeter, keys: np.ndarray, key_bits: int, *, bits_per_pass: int = 8
) -> np.ndarray:
    """Return the permutation that stably sorts ``keys`` by their low
    ``key_bits`` bits, charging ``ceil(key_bits / radix_bits)`` passes.

    Stability is load-bearing: ties (equal row+column keys) keep their
    expansion order, which fixes the floating-point accumulation order
    and hence bit-stable results.
    """
    n = keys.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if key_bits <= 0:
        raise ValueError("key_bits must be positive")
    keys = np.asarray(keys, dtype=np.uint64)
    order = np.arange(n, dtype=np.int64)
    current = keys.copy()
    # Any digit decomposition of a stable LSD sort composes to the stable
    # sort by the full key, so the executed digit width is free to differ
    # from the charged one: under fast_stable_sort() we run 16-bit uint16
    # digits (numpy argsorts them with an O(n) radix kernel; one pass
    # covers the common <=16-bit keys) while charges stay keyed to
    # ``key_bits`` alone.
    exec_bits = 16 if _fast_stable else bits_per_pass
    digit_dtype = np.uint16 if _fast_stable else np.int64
    for shift in range(0, key_bits, exec_bits):
        # the final pass masks only the remaining bits: bits at or above
        # key_bits must not influence the order
        pass_bits = min(exec_bits, key_bits - shift)
        mask = np.uint64((1 << pass_bits) - 1)
        digits = ((current >> np.uint64(shift)) & mask).astype(digit_dtype)
        if digits[0] == digits[-1] and (digits == digits[0]).all():
            continue  # all digits equal: the stable pass is the identity
        pass_order = _stable_counting_argsort(digits, 1 << pass_bits)
        order = order[pass_order]
        current = current[pass_order]
    meter.radix_sort(n, key_bits)
    return order


def radix_sort_pairs(
    meter: CostMeter,
    keys: np.ndarray,
    values: np.ndarray,
    key_bits: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``(keys, values)`` pairs stably by key; returns sorted copies."""
    perm = radix_sort_permutation(meter, keys, key_bits)
    return np.asarray(keys)[perm], np.asarray(values)[perm]

"""Synthetic sparse matrix generators.

The paper benchmarks the SuiteSparse collection; without network access
we synthesise matrices whose *statistics* — average/max row length,
dimensions, structure class (stencil, graph, LP, design, block-dense,
road network, power law) — span the same regimes.  All generators are
seeded and deterministic.

Every generator returns canonical CSR with values in (0, 1].

Randomness is threaded explicitly: every generator accepts either an
integer seed or a ready :class:`numpy.random.Generator` (``SeedLike``)
and never touches the global NumPy RNG state, so campaign workers in
separate processes generate bit-identical matrices for the same seed.
For a fixed integer seed the emitted matrices are byte-identical to
every earlier release.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix

__all__ = [
    "SeedLike",
    "as_generator",
    "derive_seed",
    "random_uniform",
    "banded",
    "stencil_2d",
    "stencil_3d",
    "power_law",
    "road_network",
    "block_dense",
    "long_row_matrix",
    "bipartite_design",
    "lp_matrix",
    "diagonal_dominant",
    "poisson_2d",
    "aggregation_prolongation",
]

_I = np.int64

#: what every generator accepts as its ``seed`` argument
SeedLike = Union[int, np.random.Generator]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Resolve a ``SeedLike`` into a :class:`numpy.random.Generator`.

    Integers map through :func:`numpy.random.default_rng` (process- and
    platform-independent); an existing generator passes through so a
    caller can thread one stream across several generators.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: SeedLike, offset: int) -> SeedLike:
    """Deterministic sub-seed for a nested generator call.

    Integer seeds keep the historical ``seed + offset`` arithmetic so
    existing matrices stay byte-identical; generators spawn an
    independent child stream instead of aliasing the parent state.
    """
    if isinstance(seed, np.random.Generator):
        return seed.spawn(1)[0]
    return seed + offset


def _coo_to_csr(rows, cols, vals, n_rows, n_cols) -> CSRMatrix:
    return COOMatrix(
        rows=n_rows,
        cols=n_cols,
        row_idx=np.asarray(rows, dtype=_I),
        col_idx=np.asarray(cols, dtype=_I),
        values=np.asarray(vals, dtype=np.float64),
    ).to_csr()


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Strictly positive values (no accidental explicit zeros)."""
    return rng.random(n) * 0.999 + 0.001


def random_uniform(
    rows: int, cols: int, avg_row_len: float, seed: SeedLike = 0
) -> CSRMatrix:
    """Erdős–Rényi-style matrix: each row draws ~Poisson(avg) distinct
    columns uniformly.  The workhorse for sweeping average row length."""
    rng = as_generator(seed)
    lengths = np.minimum(rng.poisson(avg_row_len, size=rows), cols)
    total = int(lengths.sum())
    r = np.repeat(np.arange(rows, dtype=_I), lengths)
    c = rng.integers(0, cols, size=total, dtype=_I)
    return _coo_to_csr(r, c, _values(rng, total), rows, cols)


def banded(n: int, bandwidth: int, seed: SeedLike = 0, fill: float = 1.0) -> CSRMatrix:
    """Banded matrix (1-D FEM / tridiagonal-family structure)."""
    rng = as_generator(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows_parts, cols_parts = [], []
    for off in offsets:
        rr = np.arange(max(0, -off), min(n, n - off), dtype=_I)
        if fill < 1.0:
            keep = rng.random(rr.shape[0]) < fill
            rr = rr[keep]
        rows_parts.append(rr)
        cols_parts.append(rr + off)
    r = np.concatenate(rows_parts)
    c = np.concatenate(cols_parts)
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def stencil_2d(side: int, seed: SeedLike = 0) -> CSRMatrix:
    """5-point Laplacian stencil on a side x side grid (poisson-like)."""
    n = side * side
    idx = np.arange(n, dtype=_I)
    x, y = idx % side, idx // side
    rows = [idx]
    cols = [idx]
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ok = (0 <= x + dx) & (x + dx < side) & (0 <= y + dy) & (y + dy < side)
        rows.append(idx[ok])
        cols.append(idx[ok] + dx + dy * side)
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    rng = as_generator(seed)
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def stencil_3d(side: int, seed: SeedLike = 0) -> CSRMatrix:
    """7-point stencil on a side^3 grid (atmosmodl-like)."""
    n = side**3
    idx = np.arange(n, dtype=_I)
    x = idx % side
    y = (idx // side) % side
    z = idx // (side * side)
    rows = [idx]
    cols = [idx]
    for d, coord in ((1, x), (-1, x)):
        ok = (0 <= coord + d) & (coord + d < side)
        rows.append(idx[ok])
        cols.append(idx[ok] + d)
    for d, coord in ((1, y), (-1, y)):
        ok = (0 <= coord + d) & (coord + d < side)
        rows.append(idx[ok])
        cols.append(idx[ok] + d * side)
    for d, coord in ((1, z), (-1, z)):
        ok = (0 <= coord + d) & (coord + d < side)
        rows.append(idx[ok])
        cols.append(idx[ok] + d * side * side)
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    rng = as_generator(seed)
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def power_law(
    n: int,
    avg_row_len: float,
    exponent: float = 2.1,
    max_row_len: int | None = None,
    seed: SeedLike = 0,
) -> CSRMatrix:
    """Scale-free matrix: row lengths follow a truncated power law and
    columns are drawn preferentially (web graphs, webbase-like).  A few
    hub rows become the paper's "individual long rows"."""
    rng = as_generator(seed)
    if max_row_len is None:
        max_row_len = n
    # Zipf-ish row lengths rescaled to the target average
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, max_row_len)
    lengths = np.minimum(
        np.maximum(1, (raw * (avg_row_len / raw.mean())).astype(_I)), max_row_len
    )
    lengths = np.minimum(lengths, n)
    total = int(lengths.sum())
    r = np.repeat(np.arange(n, dtype=_I), lengths)
    # preferential column attachment: square a uniform to bias low ids
    c = (rng.random(total) ** 2 * n).astype(_I)
    return _coo_to_csr(r, c, _values(rng, total), n, n)


def road_network(n: int, seed: SeedLike = 0) -> CSRMatrix:
    """Near-planar graph with degree ~2-3 (asia_osm / hugebubbles-like):
    a long path plus sparse chords to nearby nodes."""
    rng = as_generator(seed)
    idx = np.arange(n - 1, dtype=_I)
    rows = [idx, idx + 1]
    cols = [idx + 1, idx]
    n_chords = n // 3
    src = rng.integers(0, n, size=n_chords, dtype=_I)
    dst = np.minimum(n - 1, src + rng.integers(2, 50, size=n_chords))
    rows += [src, dst]
    cols += [dst, src]
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def block_dense(
    n: int, block_size: int, n_blocks: int | None = None, seed: SeedLike = 0,
    background_avg: float = 2.0,
) -> CSRMatrix:
    """Sparse background with locally dense square blocks on the
    diagonal (TSOPF / power-flow structure: very long average rows)."""
    rng = as_generator(seed)
    if n_blocks is None:
        n_blocks = max(1, n // (4 * block_size))
    rows_parts, cols_parts = [], []
    starts = rng.choice(max(1, n - block_size), size=n_blocks, replace=False)
    for s in np.sort(starts):
        local = np.arange(s, min(n, s + block_size), dtype=_I)
        rr = np.repeat(local, local.shape[0])
        cc = np.tile(local, local.shape[0])
        keep = rng.random(rr.shape[0]) < 0.8
        rows_parts.append(rr[keep])
        cols_parts.append(cc[keep])
    bg = random_uniform(n, n, background_avg, seed=derive_seed(seed, 1))
    from ..sparse.coo import COOMatrix as _C

    bg_coo = _C.from_csr(bg)
    r = np.concatenate(rows_parts + [bg_coo.row_idx])
    c = np.concatenate(cols_parts + [bg_coo.col_idx])
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def long_row_matrix(
    n: int,
    avg_row_len: float,
    n_long_rows: int,
    long_row_len: int,
    seed: SeedLike = 0,
) -> CSRMatrix:
    """Very sparse matrix with a few extremely long rows (the regime of
    the paper's best-case speedups: ``language``, ``webbase-1M``)."""
    rng = as_generator(seed)
    base = random_uniform(n, n, avg_row_len, seed=seed)
    long_rows = rng.choice(n, size=n_long_rows, replace=False).astype(_I)
    r_extra = np.repeat(long_rows, min(long_row_len, n))
    c_extra = np.concatenate(
        [
            rng.choice(n, size=min(long_row_len, n), replace=False)
            for _ in range(n_long_rows)
        ]
    ).astype(_I)
    from ..sparse.coo import COOMatrix as _C

    base_coo = _C.from_csr(base)
    r = np.concatenate([base_coo.row_idx, r_extra])
    c = np.concatenate([base_coo.col_idx, c_extra])
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def bipartite_design(
    rows: int, cols: int, row_len: int, seed: SeedLike = 0
) -> CSRMatrix:
    """Few rows, many columns, every row equally long (bibd-like
    combinatorial design; multiplied as A @ A.T in the benchmark)."""
    rng = as_generator(seed)
    row_len = min(row_len, cols)
    c = np.concatenate(
        [rng.choice(cols, size=row_len, replace=False) for _ in range(rows)]
    ).astype(_I)
    r = np.repeat(np.arange(rows, dtype=_I), row_len)
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), rows, cols)


def lp_matrix(
    rows: int, cols: int, avg_row_len: float, seed: SeedLike = 0
) -> CSRMatrix:
    """Non-square linear-programming constraint matrix (stat96v2-like):
    wide, with moderately long structured rows."""
    rng = as_generator(seed)
    lengths = np.minimum(
        np.maximum(1, rng.poisson(avg_row_len, size=rows)), cols
    )
    total = int(lengths.sum())
    r = np.repeat(np.arange(rows, dtype=_I), lengths)
    # block-structured columns: each row concentrates in a random window
    centers = rng.integers(0, cols, size=rows)
    spread = np.maximum(8, (4 * avg_row_len)).astype(int)
    c = (
        np.repeat(centers, lengths)
        + rng.integers(-spread, spread + 1, size=total)
    ) % cols
    return _coo_to_csr(r, c.astype(_I), _values(rng, total), rows, cols)


def diagonal_dominant(n: int, avg_off: float, seed: SeedLike = 0) -> CSRMatrix:
    """Diagonal plus random off-diagonals (circuit simulation style)."""
    rng = as_generator(seed)
    base = random_uniform(n, n, avg_off, seed=seed)
    from ..sparse.coo import COOMatrix as _C

    coo = _C.from_csr(base)
    r = np.concatenate([coo.row_idx, np.arange(n, dtype=_I)])
    c = np.concatenate([coo.col_idx, np.arange(n, dtype=_I)])
    return _coo_to_csr(r, c, _values(rng, r.shape[0]), n, n)


def poisson_2d(side: int) -> CSRMatrix:
    """Standard 5-point Laplacian on a ``side`` x ``side`` grid.

    Integer-valued (4 / -1 entries), so chained Galerkin products over
    it are exact in float64 under any summation order — the workload
    class the multi-device byte-identity gates are built on (see
    ``repro.multi.summa``).
    """
    n = side * side
    idx = np.arange(n)
    x, y = idx % side, idx // side
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0)]
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ok = (0 <= x + dx) & (x + dx < side) & (0 <= y + dy) & (y + dy < side)
        rows.append(idx[ok])
        cols.append(idx[ok] + dx + dy * side)
        vals.append(np.full(int(ok.sum()), -1.0))
    return COOMatrix(
        rows=n,
        cols=n,
        row_idx=np.concatenate(rows),
        col_idx=np.concatenate(cols),
        values=np.concatenate(vals),
    ).to_csr()


def aggregation_prolongation(side: int, factor: int = 2) -> CSRMatrix:
    """Piecewise-constant AMG prolongation over factor x factor aggregates."""
    n = side * side
    coarse_side = (side + factor - 1) // factor
    idx = np.arange(n)
    x, y = idx % side, idx // side
    aggregate = (x // factor) + (y // factor) * coarse_side
    return COOMatrix(
        rows=n,
        cols=coarse_side * coarse_side,
        row_idx=idx,
        col_idx=aggregate,
        values=np.ones(n),
    ).to_csr()

"""The synthetic benchmark suite: a SuiteSparse-like population.

The paper evaluates ~1800 matrices spanning average row lengths from
~1 to ~400 (Figure 1), 80% of which are "highly sparse" (a <= 42).  The
suite below mirrors that population with ~150 seeded synthetic matrices
drawn from all generator families, with the same 80/20 sparse/dense
split and a wide spread of intermediate-product counts (the x-axis of
Figure 5), scaled so a full multi-algorithm sweep runs in minutes in the
simulator.

Matrices are described lazily (:class:`SuiteEntry`) and built on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..sparse.csr import CSRMatrix
from . import generators as g

__all__ = ["SuiteEntry", "suite_entries", "build_suite", "iter_suite"]


@dataclass(frozen=True)
class SuiteEntry:
    """A lazily built suite matrix."""

    name: str
    family: str
    builder: Callable[[], CSRMatrix] = field(repr=False)

    def build(self) -> CSRMatrix:
        """Materialise the suite matrix."""
        return self.builder()


def _uniform_entries() -> list[SuiteEntry]:
    """Erdős–Rényi sweep over average row length.

    Sparse entries (a <= 32) keep intermediate products ~n * a^2 inside a
    small budget; the dense entries (a > 42) use *large* n so that — as
    in the paper's dense population — the column range per block stays
    wide and hashing's per-product advantage shows.
    """
    out = []
    for i, avg in enumerate((1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32)):
        for j, budget in enumerate((6e4, 1.5e5, 3e5)):
            n = int(np.clip(budget / (avg * avg), 200, 30000))
            if n <= 4 * avg:
                continue
            out.append(
                SuiteEntry(
                    f"uniform-a{avg}-{j}",
                    "uniform",
                    lambda n=n, avg=avg, s=1000 + i * 10 + j: g.random_uniform(
                        n, n, avg, seed=s
                    ),
                )
            )
    for i, (avg, n) in enumerate(
        (
            (48, 800),
            (52, 1200),
            (56, 900),
            (60, 1500),
            (64, 1100),
            (72, 1300),
            (80, 800),
            (96, 700),
        )
    ):
        out.append(
            SuiteEntry(
                f"uniform-a{avg}-dense",
                "uniform",
                lambda n=n, avg=avg, s=1500 + i: g.random_uniform(
                    n, n, avg, seed=s
                ),
            )
        )
    return out


def _banded_entries() -> list[SuiteEntry]:
    out = []
    for i, bw in enumerate((1, 2, 4, 8, 16)):
        budget = 4e5
        n = int(np.clip(budget / ((2 * bw + 1) ** 2), 300, 60000))
        out.append(
            SuiteEntry(
                f"banded-bw{bw}",
                "fem-banded",
                lambda n=n, bw=bw, s=2000 + i: g.banded(n, bw, seed=s, fill=0.98),
            )
        )
    # dense FEM bands (the cant/hood regime): sized so the product work
    # dominates launch overheads
    for i, (bw, n) in enumerate(((24, 1100), (32, 800))):
        out.append(
            SuiteEntry(
                f"banded-bw{bw}",
                "fem-banded",
                lambda n=n, bw=bw, s=2100 + i: g.banded(n, bw, seed=s, fill=0.98),
            )
        )
    return out


def _stencil_entries() -> list[SuiteEntry]:
    out = []
    for i, side in enumerate((40, 80, 140, 200)):
        out.append(
            SuiteEntry(
                f"grid2d-{side}",
                "stencil",
                lambda side=side, s=3000 + i: g.stencil_2d(side, seed=s),
            )
        )
    for i, side in enumerate((12, 18, 26, 34)):
        out.append(
            SuiteEntry(
                f"grid3d-{side}",
                "stencil",
                lambda side=side, s=3100 + i: g.stencil_3d(side, seed=s),
            )
        )
    return out


def _power_law_entries() -> list[SuiteEntry]:
    out = []
    for i, (n, avg) in enumerate(
        (
            (4000, 2.5),
            (8000, 3),
            (15000, 3.5),
            (6000, 6),
            (3000, 10),
            (2000, 20),
            (10000, 2.2),
            (5000, 4.5),
            (2500, 15),
        )
    ):
        out.append(
            SuiteEntry(
                f"powerlaw-n{n}-a{avg}",
                "power-law",
                lambda n=n, avg=avg, s=4000 + i: g.power_law(
                    n, avg, max_row_len=max(200, n // 12), seed=s
                ),
            )
        )
    return out


def _road_entries() -> list[SuiteEntry]:
    return [
        SuiteEntry(
            f"road-{n}",
            "road",
            lambda n=n, s=5000 + i: g.road_network(n, seed=s),
        )
        for i, n in enumerate((5000, 15000, 40000, 80000, 25000, 60000))
    ]


def _block_entries() -> list[SuiteEntry]:
    out = []
    for i, (n, bs, nb) in enumerate(
        ((1200, 40, 6), (900, 80, 3), (600, 120, 2), (2000, 25, 10))
    ):
        out.append(
            SuiteEntry(
                f"blockdense-{n}-{bs}",
                "block-dense",
                lambda n=n, bs=bs, nb=nb, s=6000 + i: g.block_dense(
                    n, bs, n_blocks=nb, seed=s
                ),
            )
        )
    return out


def _lp_entries() -> list[SuiteEntry]:
    out = []
    for i, (r, c, avg) in enumerate(
        ((500, 8000, 40), (300, 15000, 90), (1500, 6000, 15), (800, 4000, 25))
    ):
        out.append(
            SuiteEntry(
                f"lp-{r}x{c}",
                "lp",
                lambda r=r, c=c, avg=avg, s=7000 + i: g.lp_matrix(r, c, avg, seed=s),
            )
        )
    return out


def _design_entries() -> list[SuiteEntry]:
    out = []
    for i, (r, c, length) in enumerate(
        ((60, 6000, 1200), (120, 4000, 500), (400, 2000, 60))
    ):
        out.append(
            SuiteEntry(
                f"design-{r}x{c}",
                "design",
                lambda r=r, c=c, length=length, s=8000 + i: g.bipartite_design(
                    r, c, length, seed=s
                ),
            )
        )
    return out


def _long_row_entries() -> list[SuiteEntry]:
    out = []
    for i, (n, avg, nl, ll) in enumerate(
        ((8000, 2.5, 2, 600), (15000, 3, 4, 400), (5000, 4, 1, 1500))
    ):
        out.append(
            SuiteEntry(
                f"longrow-{n}-{nl}",
                "long-row",
                lambda n=n, avg=avg, nl=nl, ll=ll, s=9000 + i: g.long_row_matrix(
                    n, avg, n_long_rows=nl, long_row_len=ll, seed=s
                ),
            )
        )
    return out


def _diagonal_entries() -> list[SuiteEntry]:
    return [
        SuiteEntry(
            f"circuit-{n}",
            "circuit",
            lambda n=n, avg=avg, s=9500 + i: g.diagonal_dominant(n, avg, seed=s),
        )
        for i, (n, avg) in enumerate(((4000, 3), (10000, 5), (2500, 9)))
    ]


def suite_entries(families: set[str] | None = None) -> list[SuiteEntry]:
    """All suite descriptors (optionally filtered by family), with
    deterministic naming and seeding."""
    entries = (
        _uniform_entries()
        + _banded_entries()
        + _stencil_entries()
        + _power_law_entries()
        + _road_entries()
        + _block_entries()
        + _lp_entries()
        + _design_entries()
        + _long_row_entries()
        + _diagonal_entries()
    )
    if families is not None:
        entries = [e for e in entries if e.family in families]
    return entries


def build_suite(
    families: set[str] | None = None, limit: int | None = None
) -> list[tuple[str, CSRMatrix]]:
    """Materialise the suite (or a prefix of it)."""
    entries = suite_entries(families)
    if limit is not None:
        entries = entries[:limit]
    return [(e.name, e.build()) for e in entries]


def iter_suite(
    families: set[str] | None = None, limit: int | None = None
) -> Iterator[tuple[SuiteEntry, CSRMatrix]]:
    """Yield ``(entry, matrix)`` pairs lazily."""
    entries = suite_entries(families)
    if limit is not None:
        entries = entries[:limit]
    for e in entries:
        yield e, e.build()

"""Synthetic matrix generators, the Table 2 named collection and the
SuiteSparse-like benchmark suite (system S18 of DESIGN.md)."""

from .collection import NAMED_COLLECTION, NamedMatrix, PaperStats, build, names
from .generators import (
    banded,
    bipartite_design,
    block_dense,
    diagonal_dominant,
    long_row_matrix,
    lp_matrix,
    power_law,
    random_uniform,
    road_network,
    stencil_2d,
    stencil_3d,
)
from .suite import SuiteEntry, build_suite, iter_suite, suite_entries

__all__ = [
    "NAMED_COLLECTION",
    "NamedMatrix",
    "PaperStats",
    "SuiteEntry",
    "banded",
    "bipartite_design",
    "block_dense",
    "build",
    "build_suite",
    "diagonal_dominant",
    "iter_suite",
    "long_row_matrix",
    "lp_matrix",
    "names",
    "power_law",
    "random_uniform",
    "road_network",
    "stencil_2d",
    "stencil_3d",
    "suite_entries",
]

"""Named synthetic analogues of the paper's Table 2 matrices.

SuiteSparse is not downloadable in this environment, so each of the 16
matrices the paper discusses individually (Figures 6–8, Tables 2–3) is
replaced by a generator configured to reproduce its *regime*: structure
class, average/maximum row length, squareness and compaction behaviour,
scaled down so a full multi-algorithm sweep stays tractable in the
simulator.  The original Table 2 statistics are attached to every entry
so benches can print paper-vs-analogue side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..sparse.csr import CSRMatrix
from . import generators as g

__all__ = ["PaperStats", "NamedMatrix", "NAMED_COLLECTION", "build", "names"]


@dataclass(frozen=True)
class PaperStats:
    """Row of Table 2 (counts in absolute units, lengths as reported)."""

    rows: float
    cols: float
    nnz: float
    a_len: float
    a_max: float
    c_nnz: float
    c_len: float
    c_max: float
    temp: float  # intermediate products

    @property
    def compaction(self) -> float:
        """Temporary products per output non-zero."""
        return self.temp / self.c_nnz if self.c_nnz else 0.0


@dataclass(frozen=True)
class NamedMatrix:
    """A Table 2 matrix and its synthetic stand-in."""

    name: str
    family: str
    paper: PaperStats
    builder: Callable[[], CSRMatrix] = field(repr=False)

    def build(self) -> CSRMatrix:
        """Materialise the synthetic analogue."""
        return self.builder()


def _m(x: float) -> float:
    return x * 1e6


#: The 16 matrices of Table 2, in the paper's order.  ``family``
#: documents which structural regime the analogue reproduces.
NAMED_COLLECTION: tuple[NamedMatrix, ...] = (
    NamedMatrix(
        "language", "graph / few long rows",
        PaperStats(_m(0.40), _m(0.40), _m(1.22), 3.0, 11.5e3, _m(4.61), 11.6, 32.0e3, _m(5.5)),
        lambda: g.long_row_matrix(12000, 2.6, n_long_rows=3, long_row_len=3000, seed=101),
    ),
    NamedMatrix(
        "scircuit", "circuit (diagonal + random)",
        PaperStats(_m(0.17), _m(0.17), _m(0.96), 5.6, 353, _m(5.22), 30.5, 1.9e3, _m(8.7)),
        lambda: g.diagonal_dominant(9000, 4.6, seed=102),
    ),
    NamedMatrix(
        "stat96v2", "linear programming (non-square)",
        PaperStats(_m(0.03), _m(0.96), _m(2.85), 98.1, 3.2e3, _m(0.35), 12.1, 1.6e3, _m(8.7)),
        lambda: g.lp_matrix(450, 14000, 98.0, seed=103),
    ),
    NamedMatrix(
        "poisson3Da", "3-D FEM",
        PaperStats(_m(0.01), _m(0.01), _m(0.35), 26.1, 110, _m(2.96), 218.8, 584, _m(11.8)),
        lambda: g.banded(2600, 13, seed=104, fill=0.97),
    ),
    NamedMatrix(
        "144", "FEM graph",
        PaperStats(_m(0.14), _m(0.14), _m(2.15), 14.9, 26, _m(10.42), 72.0, 116, _m(33.0)),
        lambda: g.banded(6000, 7, seed=105, fill=0.99),
    ),
    NamedMatrix(
        "asia_osm", "road network",
        PaperStats(_m(11.95), _m(11.95), _m(25.42), 2.1, 9, _m(42.75), 3.6, 24, _m(56.9)),
        lambda: g.road_network(40000, seed=106),
    ),
    NamedMatrix(
        "webbase-1M", "web graph / power law",
        PaperStats(_m(1.00), _m(1.00), _m(3.11), 3.1, 4.7e3, _m(51.11), 51.1, 12.4e3, _m(69.5)),
        lambda: g.power_law(22000, 3.1, max_row_len=4000, seed=107),
    ),
    NamedMatrix(
        "atmosmodl", "3-D stencil",
        PaperStats(_m(1.49), _m(1.49), _m(10.32), 6.9, 7, _m(36.49), 24.5, 25, _m(71.6)),
        lambda: g.stencil_3d(26, seed=108),
    ),
    NamedMatrix(
        "filter3D", "3-D FEM (denser)",
        PaperStats(_m(0.11), _m(0.11), _m(2.71), 25.4, 112, _m(20.16), 189.4, 550, _m(86.0)),
        lambda: g.banded(2200, 13, seed=109, fill=0.95),
    ),
    NamedMatrix(
        "bibd_19_9", "combinatorial design (very long rows)",
        PaperStats(171, 92378, _m(3.3), 19.4e3, 19.4e3, _m(0.03), 171.0, 171, _m(119.7)),
        lambda: g.bipartite_design(60, 9000, 1900, seed=110),
    ),
    NamedMatrix(
        "TSOPF_RS_b2383", "power flow (local dense blocks)",
        PaperStats(_m(0.04), _m(0.04), _m(16.17), 424.2, 983, _m(74.32), 1.9e3, 3.3e3, _m(128.0)),
        lambda: g.block_dense(600, 115, n_blocks=3, seed=111, background_avg=2.0),
    ),
    NamedMatrix(
        "hugebubbles-00020", "uniform mesh (huge, tiny rows)",
        PaperStats(_m(21.20), _m(21.20), _m(63.58), 3.0, 3, _m(132.69), 6.3, 7, _m(190.7)),
        lambda: g.banded(60000, 1, seed=112),
    ),
    NamedMatrix(
        "cant", "FEM cantilever (dense bands)",
        PaperStats(_m(0.06), _m(0.06), _m(4.01), 64.2, 78, _m(17.44), 279.3, 375, _m(269.5)),
        lambda: g.banded(900, 32, seed=113, fill=0.98),
    ),
    NamedMatrix(
        "landmark", "tall-skinny least squares",
        PaperStats(_m(0.07), 2.7e3, _m(1.15), 16.0, 16, _m(101.82), 1.4e3, 1.6e3, _m(549.2)),
        lambda: g.bipartite_design(400, 50, 20, seed=114),
    ),
    NamedMatrix(
        "hood", "FEM shell",
        PaperStats(_m(0.22), _m(0.22), _m(10.77), 48.8, 77, _m(34.24), 155.3, 231, _m(562.0)),
        lambda: g.banded(1100, 24, seed=115, fill=0.99),
    ),
    NamedMatrix(
        "TSC_OPF_1047", "power flow (extreme compaction)",
        PaperStats(_m(0.01), _m(0.01), _m(2.02), 247.8, 1.5e3, _m(8.83), 1.1e3, 3.5e3, _m(1352.4)),
        lambda: g.block_dense(500, 140, n_blocks=2, seed=116, background_avg=1.0),
    ),
)


def names() -> list[str]:
    """Table 2 names in the paper's order."""
    return [m.name for m in NAMED_COLLECTION]


def build(name: str) -> CSRMatrix:
    """Build a named analogue by its Table 2 name."""
    for m in NAMED_COLLECTION:
        if m.name == name:
            return m.build()
    raise KeyError(f"unknown named matrix {name!r}; available: {names()}")

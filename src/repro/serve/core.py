"""The serve daemon's engine-facing core: admission, execution, caching.

:class:`ServeCore` is the HTTP-free heart of ``repro serve``.  It owns
the request lifecycle end to end and guarantees the daemon's contract:
**every admitted request resolves to exactly one typed outcome** —

``success``
    The adaptive pipeline produced the result (possibly served from the
    content-addressed cache without executing anything).
``degraded``
    The pipeline failed (or the circuit breaker is open) and the
    global-ESC fallback computed the result instead — degraded, never
    dropped, and still correct (see :mod:`repro.resilience.degrade`).
``rejected``
    The request was shed with a typed error: the bounded admission
    queue was full (:class:`~repro.resilience.errors.ServerOverloaded`,
    HTTP 429) or the deadline expired before a result was ready
    (:class:`~repro.resilience.errors.DeadlineExceeded`, HTTP 504).
``error``
    The request itself was invalid (unparseable matrix, unknown name);
    deterministic, never retried (HTTP 400/404).

Hardening layers, outermost first:

* **Bounded admission** — ``queue.Queue(maxsize=max_queue)``; a full
  queue rejects immediately instead of buffering without bound.
* **Deadlines** — each request waits at most ``deadline_ms`` for its
  job to finish; an expired wait is surfaced as a typed rejection.  The
  executor still finishes (and caches) the abandoned job, so the work
  is not wasted.
* **Retry with backoff** — transient errors (a warm worker crashed past
  the pool's own healing budget) are retried with exponential backoff
  before anything is degraded.
* **Circuit breaker** — ``breaker_threshold`` consecutive primary
  failures trip the breaker: requests route straight to the global-ESC
  fallback (degraded-not-dropped) until a cooldown elapses, then one
  half-open probe decides whether to close it again.
* **Supervision** — a daemon thread health-checks the warm pool,
  respawns crashed workers and sweeps stale ``/dev/shm`` segments a
  previous SIGKILLed incarnation may have leaked (the pool's
  deterministic ``segment_prefix`` names make them enumerable).

Chaos is first-class: a :class:`~repro.resilience.faults.FaultPlan`
with serve-level faults (``worker_kill`` / ``shm_drop`` /
``request_delay``) is consulted at one deterministic chokepoint — the
1-based *execution ordinal* assigned when an executor picks a request
up — so a chaos run is reproducible given the plan.
"""

from __future__ import annotations

import hashlib
import queue
import tempfile
import threading
import time
from collections import OrderedDict, deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..bench.harness import CACHE_VERSION
from ..core import AcSpgemmOptions, ac_spgemm
from ..engine import process as process_mod
from ..engine.shm import list_segments, sweep_segments
from ..obs.flight import get_flight_recorder, install_flight_recorder
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from ..obs.trace import (
    RequestTrace,
    TraceContext,
    TraceStore,
    payload_fingerprint,
    use_trace,
)
from ..resilience.degrade import fallback_multiply
from ..resilience.errors import (
    DeadlineExceeded,
    ReproError,
    ServerOverloaded,
    WorkerCrashed,
)
from ..resilience.faults import FaultPlan
from ..sparse import COOMatrix, read_matrix_market, squared_operands

__all__ = ["ServeConfig", "ServeCore"]

_DTYPES = {"float32": np.float32, "float64": np.float64}

#: errors worth retrying — the failure is environmental, not a property
#: of the input, so an identical resend can succeed
_TRANSIENT = (WorkerCrashed, ConnectionError)

_BREAKER_CLOSED = 0
_BREAKER_HALF_OPEN = 1
_BREAKER_OPEN = 2


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serve daemon (all runtime knobs, never cached)."""

    engine: str = "process"  # pipeline engine for primary execution
    backend: str = "ac-spgemm"  # registered backend for primary execution
    executors: int = 2  # executor threads draining the queue
    max_queue: int = 8  # bounded admission queue capacity
    default_deadline_ms: float = 30_000.0  # per-request wait budget
    retries: int = 2  # extra attempts for transient errors
    backoff_base_ms: float = 10.0  # first backoff sleep
    backoff_cap_ms: float = 200.0  # backoff ceiling
    breaker_threshold: int = 3  # consecutive failures to trip open
    breaker_cooldown_s: float = 5.0  # open -> half-open delay
    cache_size: int = 128  # content-addressed result cache entries
    supervise_interval_s: float = 1.0  # supervisor loop period
    shm_prefix: str = "repro-serve-"  # deterministic segment namespace
    fault_plan: FaultPlan | None = None  # serve-level chaos, or None
    flight_log: str | None = None  # selector flight-recorder JSONL path
    trace_store: int = 256  # finalized request traces kept (LRU)

    def to_json(self) -> dict:
        return {
            "engine": self.engine,
            "backend": self.backend,
            "executors": self.executors,
            "max_queue": self.max_queue,
            "default_deadline_ms": self.default_deadline_ms,
            "retries": self.retries,
            "backoff_base_ms": self.backoff_base_ms,
            "backoff_cap_ms": self.backoff_cap_ms,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "cache_size": self.cache_size,
            "supervise_interval_s": self.supervise_interval_s,
            "shm_prefix": self.shm_prefix,
            "fault_plan": self.fault_plan.to_dict() if self.fault_plan else None,
            "flight_log": self.flight_log,
            "trace_store": self.trace_store,
        }


@dataclass
class _Job:
    """One admitted multiply travelling from handler to executor."""

    a: object
    b: object
    dtype: np.dtype
    cache_key: str
    matrix_fp: str
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None
    abandoned: bool = False  # requester gave up (deadline); finish anyway
    trace: RequestTrace | None = None  # retained for the executor thread
    request_id: str = ""
    t_enqueue: float = 0.0  # admission timestamp (queue-wait span)


class _Breaker:
    """Consecutive-failure circuit breaker (closed / open / half-open).

    Not thread-safe on its own — the core serialises calls under its
    lock.  ``clock`` is injectable so tests control the cooldown.
    """

    def __init__(self, threshold: int, cooldown_s: float, clock=time.monotonic):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.failures = 0
        self.opened_at: float | None = None
        self.probing = False
        self.opens = 0  # lifetime trips, for metrics

    @property
    def state(self) -> int:
        if self.opened_at is None:
            return _BREAKER_CLOSED
        if self.clock() - self.opened_at >= self.cooldown_s:
            return _BREAKER_HALF_OPEN
        return _BREAKER_OPEN

    def route_primary(self) -> bool:
        """Should the next request try the primary pipeline?

        Closed: yes.  Open: no.  Half-open: yes for exactly one probe
        at a time; concurrent requests keep falling back until the
        probe's verdict is in.
        """
        st = self.state
        if st == _BREAKER_CLOSED:
            return True
        if st == _BREAKER_HALF_OPEN and not self.probing:
            self.probing = True
            return True
        return False

    def succeeded(self) -> None:
        self.failures = 0
        self.opened_at = None
        self.probing = False

    def failed(self) -> None:
        self.failures += 1
        self.probing = False
        if self.opened_at is not None:
            # a failed half-open probe re-opens with a fresh cooldown
            self.opened_at = self.clock()
        elif self.failures >= self.threshold:
            self.opened_at = self.clock()
            self.opens += 1

    def state_name(self) -> str:
        return ("closed", "half-open", "open")[self.state]


class ServeCore:
    """Request lifecycle owner of the serve daemon (HTTP-free).

    ``multiply`` is injectable for tests (defaults to
    :func:`repro.core.ac_spgemm`); it must accept ``(a, b, options)``
    and return an ``AcSpgemmResult``.  ``clock`` feeds the breaker.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 multiply=None, clock=time.monotonic):
        self.config = config or ServeConfig()
        if multiply is not None:
            self._multiply = multiply
        elif self.config.backend != "ac-spgemm":
            from ..backends import run_backend

            backend_name = self.config.backend

            def _backend_multiply(a, b, options):
                return run_backend(backend_name, a, b, options)

            self._multiply = _backend_multiply
        else:
            self._multiply = ac_spgemm
        self._selections: dict[str, int] = {}
        self._lock = threading.RLock()
        self.metrics = MetricsRegistry(const_labels={"service": "repro-serve"})
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.max_queue)
        self._breaker = _Breaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
            clock,
        )
        self._cache: OrderedDict[str, dict] = OrderedDict()
        self._latencies: deque[float] = deque(maxlen=512)
        self._injector = (
            self.config.fault_plan.activate() if self.config.fault_plan else None
        )
        self.traces = TraceStore(self.config.trace_store)
        self.flight = (
            install_flight_recorder(self.config.flight_log)
            if self.config.flight_log
            else get_flight_recorder()
        )
        self._routing_errors: deque[float] = deque(maxlen=128)
        self._admitted = 0  # admission ordinals handed out (trace ids)
        self._executed = 0  # execution ordinals handed out (chaos chokepoint)
        self._accepting = True
        self._stop = threading.Event()
        # matrix registries: name -> built CSR, fingerprint -> name
        self._matrices: dict[str, object] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._entries = None  # lazy name -> SuiteEntry map

        # The daemon executes on the process-wide warm pool (that is
        # what engine="process" dispatches to); adopt it and give it
        # this daemon's deterministic segment namespace so a previous
        # SIGKILLed incarnation's leaked segments are enumerable.
        self.pool = process_mod.warm_pool()
        self.pool.segment_prefix = self.config.shm_prefix
        swept = self.sweep_stale_segments()
        if swept:
            self.metrics.inc(
                "repro_serve_shm_swept_total", swept,
                help="Stale shared-memory segments reclaimed.",
            )

        self._executors = [
            threading.Thread(
                target=self._executor_loop, name=f"serve-exec-{i}", daemon=True
            )
            for i in range(max(1, self.config.executors))
        ]
        for t in self._executors:
            t.start()
        self._supervisor = threading.Thread(
            target=self._supervisor_loop, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- request resolution -------------------------------------------

    def _entry_map(self):
        if self._entries is None:
            from ..campaign.plan import tiny_entries
            from ..matrices.collection import NAMED_COLLECTION
            from ..matrices.suite import suite_entries

            self._entries = {}
            for e in list(tiny_entries()) + list(suite_entries()) + list(
                NAMED_COLLECTION
            ):
                self._entries.setdefault(e.name, e)
        return self._entries

    def _register_matrix(self, name: str, matrix) -> str:
        from ..campaign.plan import matrix_fingerprint

        fp = matrix_fingerprint(matrix)
        with self._lock:
            self._matrices[name] = matrix
            self._by_fingerprint[fp] = name
        return fp

    def _resolve_matrix(self, payload: dict):
        """The operand matrix of one request: ``(name, matrix, fp)``.

        Raises ``LookupError`` for unknown identifiers (HTTP 404) and
        ``ValueError`` / typed I-O errors for malformed inline matrices
        (HTTP 400).
        """
        from ..campaign.plan import matrix_fingerprint

        if "matrix" in payload:
            name = str(payload["matrix"])
            with self._lock:
                m = self._matrices.get(name)
            if m is None:
                entry = self._entry_map().get(name)
                if entry is None:
                    raise LookupError(f"unknown matrix {name!r}")
                m = entry.build()
                return name, m, self._register_matrix(name, m)
            return name, m, matrix_fingerprint(m)
        if "matrix_hash" in payload:
            fp = str(payload["matrix_hash"])
            with self._lock:
                name = self._by_fingerprint.get(fp)
                m = self._matrices.get(name) if name else None
            if m is None:
                raise LookupError(
                    f"unknown matrix hash {fp!r} (matrices are registered "
                    "the first time they are served by name or inline)"
                )
            return name, m, fp
        if "coo" in payload:
            d = payload["coo"]
            try:
                m = COOMatrix(
                    rows=int(d["rows"]),
                    cols=int(d["cols"]),
                    row_idx=np.asarray(d["row_idx"], dtype=np.int64),
                    col_idx=np.asarray(d["col_idx"], dtype=np.int64),
                    values=np.asarray(d["values"], dtype=np.float64),
                ).to_csr()
            except KeyError as exc:  # a 400, not the 404 LookupError means
                raise ValueError(f"coo payload missing field {exc}") from None
            fp = self._register_matrix(f"inline-{matrix_fingerprint(m)}", m)
            return f"inline-{fp}", m, fp
        if "mtx" in payload:
            with tempfile.NamedTemporaryFile(
                "w", suffix=".mtx", delete=False
            ) as fh:
                fh.write(str(payload["mtx"]))
                path = fh.name
            try:
                m = read_matrix_market(path, strict=True)
            finally:
                Path(path).unlink(missing_ok=True)
            fp = self._register_matrix(f"inline-{matrix_fingerprint(m)}", m)
            return f"inline-{fp}", m, fp
        raise ValueError(
            "request needs one of: matrix, matrix_hash, coo, mtx"
        )

    def _options(self, dtype) -> AcSpgemmOptions:
        return AcSpgemmOptions(
            value_dtype=np.dtype(dtype),
            engine=self.config.engine,
            on_failure="raise",  # the core owns degradation, not the driver
        )

    def _cache_key(self, matrix_fp: str, options: AcSpgemmOptions) -> str:
        """Campaign-style content address of one multiply's result."""
        payload = "|".join(
            (
                matrix_fp,
                options.cache_fingerprint(),
                str(CACHE_VERSION),
                self.config.backend,  # routed engines never share cells
                "squared",  # the request semantics: C = A' @ A''
            )
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:16]

    # -- admission -----------------------------------------------------

    def _start_trace(
        self, content: str, ordinal: int, client, request_id: str,
        t0: float, **attrs,
    ) -> RequestTrace:
        """One request's trace, registered in the store immediately so
        in-flight requests are inspectable via ``/trace/<id>``."""
        ctx = TraceContext.for_request(content, ordinal, client)
        trace = RequestTrace(
            ctx, request_id=request_id, ordinal=ordinal, **attrs
        )
        trace.root.t_start = t0
        self.traces.add(trace)
        return trace

    def handle(self, payload: dict, *, traceparent: str | None = None) -> dict:
        """Resolve one request to a typed outcome (never raises).

        Returns the response body; ``status`` carries the HTTP code for
        the transport layer.  ``traceparent`` is the client's W3C-style
        header: a valid one joins the caller's trace, and every response
        body carries ``request_id`` / ``trace_id`` / ``traceparent`` so
        even rejected work is correlatable with server-side telemetry.
        """
        t0 = time.monotonic()
        with self._lock:
            self._admitted += 1
            ordinal = self._admitted
        request_id = f"req-{ordinal:06d}"
        client = TraceContext.from_traceparent(traceparent)
        try:
            deadline_ms = float(
                payload.get("deadline_ms", self.config.default_deadline_ms)
            )
            dtype_name = str(payload.get("dtype", "float64"))
            if dtype_name not in _DTYPES:
                raise ValueError(f"unknown dtype {dtype_name!r}")
            name, matrix, fp = self._resolve_matrix(payload)
        except LookupError as exc:
            trace = self._start_trace(
                payload_fingerprint(payload), ordinal, client, request_id, t0
            )
            return self._reply(
                "error", 404, t0, trace=trace, reason=str(exc)
            )
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            trace = self._start_trace(
                payload_fingerprint(payload), ordinal, client, request_id, t0
            )
            return self._reply(
                "error", 400, t0, trace=trace, reason=str(exc)
            )

        trace = self._start_trace(
            fp, ordinal, client, request_id, t0, matrix=name
        )
        trace.add_span("resolve", t_start=t0, matrix=name)

        options = self._options(_DTYPES[dtype_name])
        cache_key = self._cache_key(fp, options)
        t_cache = time.monotonic()
        with self._lock:
            hit = self._cache.get(cache_key)
            if hit is not None:
                self._cache.move_to_end(cache_key)
        trace.add_span("cache.lookup", t_start=t_cache, hit=hit is not None)
        if hit is not None:
            self.metrics.inc(
                "repro_serve_cache_hits_total",
                help="Requests answered from the result cache.",
            )
            return self._reply(
                "success", 200, t0, trace=trace,
                matrix=name, cached=True, result=dict(hit),
            )

        a, b = squared_operands(matrix)
        job = _Job(a=a, b=b, dtype=np.dtype(_DTYPES[dtype_name]),
                   cache_key=cache_key, matrix_fp=fp,
                   trace=trace, request_id=request_id,
                   t_enqueue=time.monotonic())
        if not self._accepting:
            err = ServerOverloaded("server is shutting down", stage="serve")
            return self._reply(
                "rejected", 503, t0, trace=trace,
                matrix=name, reason=err.one_line(),
            )
        trace.retain()  # the executor thread's reference
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            trace.release()  # no executor will ever pick the job up
            err = ServerOverloaded(
                f"admission queue full ({self.config.max_queue} pending)",
                stage="serve",
            )
            self.metrics.inc(
                "repro_serve_rejected_total", reason="overload",
                help="Requests shed with a typed rejection.",
            )
            return self._reply(
                "rejected", 429, t0, trace=trace,
                matrix=name, reason=err.one_line(),
            )
        depth = self._queue.qsize()
        self.metrics.set(
            "repro_serve_queue_depth", depth,
            help="Admission queue depth at the last sample.",
        )
        self.metrics.set_max(
            "repro_serve_queue_high_water", depth,
            help="Deepest admission queue observed.",
        )

        if not job.done.wait(timeout=deadline_ms / 1000.0):
            job.abandoned = True  # executor will still finish + cache it
            err = DeadlineExceeded(
                f"no result within {deadline_ms:.0f} ms "
                "(queue wait + execution)",
                stage="serve",
            )
            self.metrics.inc(
                "repro_serve_rejected_total", reason="deadline",
                help="Requests shed with a typed rejection.",
            )
            trace.event(trace.root, "deadline", err.one_line())
            return self._reply(
                "rejected", 504, t0, trace=trace,
                matrix=name, reason=err.one_line(),
            )
        resp = dict(job.response or {})
        outcome = resp.pop("outcome", "degraded")
        reason = resp.pop("reason", None)
        return self._reply(
            outcome, 200, t0, trace=trace, matrix=name, cached=False,
            reason=reason, result=resp or None,
        )

    def _reply(self, outcome: str, status: int, t0: float, *,
               trace: RequestTrace | None = None, **extra) -> dict:
        latency_ms = (time.monotonic() - t0) * 1e3
        with self._lock:
            self._latencies.append(latency_ms)
            lats = sorted(self._latencies)
            p50 = lats[len(lats) // 2]
            p99 = lats[min(len(lats) - 1, int(len(lats) * 0.99))]
        self.metrics.inc(
            "repro_serve_requests_total", outcome=outcome,
            help="Requests resolved, by typed outcome.",
        )
        self.metrics.set("repro_serve_latency_ms", p50, quantile="p50",
                         help="Recent request latency quantiles.")
        self.metrics.set("repro_serve_latency_ms", p99, quantile="p99",
                         help="Recent request latency quantiles.")
        body = {"outcome": outcome, "status": status,
                "latency_ms": round(latency_ms, 3)}
        if trace is not None:
            body["request_id"] = trace.root.attrs.get("request_id", "")
            body["trace_id"] = trace.trace_id
            body["traceparent"] = TraceContext(
                trace.trace_id, trace.root.span_id
            ).to_traceparent()
            self.metrics.observe(
                "repro_serve_request_ms", latency_ms, outcome=outcome,
                buckets=DEFAULT_LATENCY_BUCKETS_MS,
                exemplar={"trace_id": trace.trace_id},
                help="End-to-end request latency, by typed outcome.",
            )
            trace.release(outcome=outcome, status=status)
        for k, v in extra.items():
            if v is not None:
                body[k] = v
        return body

    # -- execution -----------------------------------------------------

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                break
            try:
                job.response = self._execute(job)
            except Exception as exc:  # noqa: BLE001 - never hang a waiter
                job.response = {
                    "outcome": "degraded",
                    "reason": f"unexpected executor error: {exc!r}",
                }
            finally:
                if job.trace is not None:
                    # the executor's reference from admission; on an
                    # abandoned (deadline-expired) job this is the last
                    # one, so the trace still finalizes exactly once
                    job.trace.release(
                        executed_outcome=(job.response or {}).get(
                            "outcome", "unknown"
                        )
                    )
                job.done.set()
                self._queue.task_done()

    def _apply_chaos(self, ordinal: int) -> None:
        """Fire this execution ordinal's serve-level faults, if any."""
        if self._injector is None:
            return
        for spec in self._injector.serve_faults(ordinal):
            if spec.kind == "worker_kill":
                self.pool.ensure(process_mod.resolve_process_workers())
                self.pool.kill_worker(spec.worker)
            elif spec.kind == "shm_drop":
                # an external /dev/shm sweep: unlink everything the pool
                # has exported; load() re-exports on the next multiply
                sweep_segments(sorted(self.pool.exported_segment_names()))
            elif spec.kind == "request_delay":
                time.sleep(spec.delay_ms / 1000.0)

    def _execute(self, job: _Job) -> dict:
        trace = job.trace
        with self._lock:
            self._executed += 1
            ordinal = self._executed
            try_primary = self._breaker.route_primary()
            breaker = self._breaker.state_name()
        if trace is not None:
            trace.add_span(
                "queue.wait", t_start=job.t_enqueue, ordinal=ordinal
            )
            self.metrics.observe(
                "repro_serve_queue_wait_ms",
                (time.monotonic() - job.t_enqueue) * 1e3,
                buckets=DEFAULT_LATENCY_BUCKETS_MS,
                exemplar={"trace_id": trace.trace_id},
                help="Admission-queue wait before an executor picked up.",
            )
        self._apply_chaos(ordinal)
        options = self._options(job.dtype)
        t_exec = time.monotonic()
        exec_span = (
            trace.start_span("execute", ordinal=ordinal, breaker=breaker)
            if trace is not None
            else None
        )

        def _observe_execute(outcome: str) -> None:
            if trace is None:
                return
            self.metrics.observe(
                "repro_serve_execute_ms",
                (time.monotonic() - t_exec) * 1e3,
                outcome=outcome,
                buckets=DEFAULT_LATENCY_BUCKETS_MS,
                exemplar={"trace_id": trace.trace_id},
                help="Executor time per job, by outcome.",
            )

        failure = None
        if try_primary:
            attempt = 0
            while True:
                att_span = (
                    trace.start_span(
                        "attempt", parent=exec_span,
                        attempt=attempt, breaker=breaker,
                    )
                    if trace is not None
                    else None
                )
                scope = (
                    use_trace(trace, att_span, breaker=breaker)
                    if trace is not None
                    else nullcontext()
                )
                try:
                    with scope:
                        result = self._multiply(job.a, job.b, options)
                    if trace is not None:
                        trace.end_span(att_span)
                        trace.graft_result(exec_span, result)
                    with self._lock:
                        self._breaker.succeeded()
                    _observe_execute("success")
                    return self._finish_primary(job, result, attempt, ordinal)
                except _TRANSIENT as exc:
                    failure = exc
                    if trace is not None:
                        trace.end_span(
                            att_span, status="error", error=exc.__class__.__name__
                        )
                    if attempt >= self.config.retries:
                        break
                    attempt += 1
                    self.metrics.inc(
                        "repro_serve_retries_total",
                        help="Transient-error retries of primary execution.",
                    )
                    backoff = min(
                        self.config.backoff_base_ms * (2 ** (attempt - 1)),
                        self.config.backoff_cap_ms,
                    )
                    t_back = time.monotonic()
                    time.sleep(backoff / 1000.0)
                    if trace is not None:
                        trace.add_span(
                            "backoff", parent=exec_span,
                            t_start=t_back, backoff_ms=backoff,
                        )
                except ReproError as exc:
                    failure = exc  # deterministic failure: degrade, no retry
                    if trace is not None:
                        trace.end_span(
                            att_span, status="error", error=exc.one_line()
                        )
                    break
            with self._lock:
                self._breaker.failed()
                self.metrics.set(
                    "repro_serve_breaker_state",
                    self._breaker.state,
                    help="Circuit breaker: 0 closed, 1 half-open, 2 open.",
                )
        self.metrics.inc(
            "repro_serve_degraded_total",
            reason="breaker-open" if not try_primary else "pipeline-failure",
            help="Requests served by the global-ESC fallback.",
        )
        reason = (
            failure.one_line()
            if isinstance(failure, ReproError)
            else f"circuit breaker {self._breaker.state_name()}"
        )
        fb_span = (
            trace.start_span(
                "fallback", parent=exec_span,
                breaker=self._breaker.state_name(), reason=reason,
            )
            if trace is not None
            else None
        )
        fb_scope = (
            use_trace(trace, fb_span, breaker=self._breaker.state_name())
            if trace is not None
            else nullcontext()
        )
        with fb_scope:
            run = fallback_multiply(job.a, job.b, options)
        if trace is not None:
            trace.end_span(fb_span)
            trace.end_span(exec_span, outcome="degraded")
        _observe_execute("degraded")
        from ..campaign.plan import matrix_fingerprint

        return {
            "outcome": "degraded",
            "reason": reason,
            "ordinal": ordinal,
            "digest": matrix_fingerprint(run.matrix),
            "nnz": run.matrix.nnz,
            "rows": run.matrix.rows,
            "cols": run.matrix.cols,
        }

    def _finish_primary(self, job: _Job, result, retries: int,
                        ordinal: int) -> dict:
        from ..campaign.plan import matrix_fingerprint

        summary = {
            "digest": matrix_fingerprint(result.matrix),
            "nnz": result.matrix.nnz,
            "rows": result.matrix.rows,
            "cols": result.matrix.cols,
            "sim_ms": round(result.seconds * 1e3, 4),
            "chunks": result.n_chunks,
            "restarts": result.restarts,
            "engine": self.config.engine,
            "backend": self.config.backend,
        }
        routed = getattr(result, "dispatched_to", None)
        if routed:
            summary["dispatched_to"] = routed
        audit = getattr(result, "routing_audit", None)
        if audit:
            with self._lock:
                self._routing_errors.append(float(audit.get("rel_error", 0.0)))
                mean_err = (
                    sum(self._routing_errors) / len(self._routing_errors)
                )
            self.metrics.set(
                "repro_serve_routing_prediction_error", mean_err,
                help="Rolling mean relative selector prediction error.",
            )
            self.metrics.inc(
                "repro_serve_routing_dispatch_total",
                engine=str(audit.get("chosen", "")),
                help="Adaptive dispatches, by chosen engine.",
            )
            summary["routing"] = {
                k: audit[k]
                for k in (
                    "chosen", "predicted_chosen", "actual_cycles",
                    "rel_error", "regret_bound",
                )
                if k in audit
            }
        selected = routed or (
            self.config.backend if self.config.backend != "ac-spgemm" else None
        )
        if selected:
            self.metrics.inc(
                "repro_serve_selected_total", engine=selected,
                help="Primary multiplies by the engine that executed them.",
            )
        with self._lock:
            if selected:
                self._selections[selected] = (
                    self._selections.get(selected, 0) + 1
                )
            if not result.degraded:  # only clean primaries are cacheable
                self._cache[job.cache_key] = summary
                self._cache.move_to_end(job.cache_key)
                while len(self._cache) > self.config.cache_size:
                    self._cache.popitem(last=False)
            self.metrics.set(
                "repro_serve_cache_entries", len(self._cache),
                help="Result-cache population.",
            )
        self.metrics.record_result(result)
        return {"outcome": "success", "ordinal": ordinal,
                "retries": retries, **summary}

    # -- supervision ---------------------------------------------------

    def sweep_stale_segments(self) -> int:
        """Unlink prefixed ``/dev/shm`` segments this pool does not own."""
        prefix = self.config.shm_prefix
        if not prefix:
            return 0
        owned = self.pool.exported_segment_names()
        stale = [n for n in list_segments(prefix) if n not in owned]
        return sweep_segments(stale)

    def _supervisor_loop(self) -> None:
        target = process_mod.resolve_process_workers()
        while not self._stop.wait(self.config.supervise_interval_s):
            # heal the pool once it has ever been used (alive or reaped
            # workers exist) — an idle daemon spawns nothing eagerly
            if self.config.engine == "process" and (
                self.pool.alive_count() or self.pool.worker_deaths
            ):
                restarted = self.pool.restart_crashed(target)
                if restarted:
                    self.metrics.inc(
                        "repro_serve_worker_restarts_total", restarted,
                        help="Warm-pool workers respawned by the supervisor.",
                    )
            swept = self.sweep_stale_segments()
            if swept:
                self.metrics.inc(
                    "repro_serve_shm_swept_total", swept,
                    help="Stale shared-memory segments reclaimed.",
                )
            self.metrics.set(
                "repro_serve_queue_depth", self._queue.qsize(),
                help="Admission queue depth at the last supervisor tick.",
            )
            with self._lock:
                self.metrics.set(
                    "repro_serve_breaker_state", self._breaker.state,
                    help="Circuit breaker: 0 closed, 1 half-open, 2 open.",
                )
            self.metrics.set(
                "repro_serve_pool_workers_alive", self.pool.alive_count(),
                help="Live warm-pool workers.",
            )
            self.metrics.set(
                "repro_serve_pool_worker_deaths", self.pool.worker_deaths,
                help="Warm-pool workers reaped since pool creation.",
            )

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """Deterministically ordered live counters for ``/stats``."""
        with self._lock:
            return {
                "accepting": self._accepting,
                "breaker": self._breaker.state_name(),
                "breaker_opens": self._breaker.opens,
                "cache_entries": len(self._cache),
                "config": self.config.to_json(),
                "executed": self._executed,
                "faults_fired": list(self._injector.fired)
                if self._injector
                else [],
                "pool_worker_deaths": self.pool.worker_deaths,
                "pool_workers_respawned": self.pool.workers_respawned,
                "queue_depth": self._queue.qsize(),
                "requests_admitted": self._admitted,
                "routing": {
                    "dispatches": self.flight.recorded,
                    "prediction_error": self.flight.prediction_error(),
                },
                "selections": dict(sorted(self._selections.items())),
                "traces_stored": len(self.traces),
            }

    def healthy(self) -> bool:
        return self._accepting and not self._stop.is_set()

    # -- teardown ------------------------------------------------------

    def close(self, *, drain: bool = True, teardown_pool: bool = False) -> None:
        """Stop accepting, optionally drain in-flight work, stop threads.

        ``drain=True`` (the SIGTERM path) lets queued jobs finish so
        every admitted request still resolves; ``drain=False`` abandons
        the queue.  The warm pool is shared process state and outlives
        the core unless ``teardown_pool`` is set (the daemon's exit
        path — its segments must not survive the process).
        """
        self._accepting = False
        if drain:
            self._queue.join()
        self._stop.set()
        for _ in self._executors:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                pass
        for t in self._executors:
            t.join(timeout=5)
        self._supervisor.join(timeout=5)
        self.flight.flush()  # the drained event log must parse whole
        if teardown_pool:
            self.pool.shutdown()
        self.pool.segment_prefix = None

"""SpGEMM-as-a-service: the supervised, overload-tolerant serve daemon.

``repro serve`` keeps the expensive state of the process engine — warm
worker processes and shared-memory operands — alive across requests
and puts a hardened admission pipeline in front of it: bounded queue,
deadlines, retry with backoff, a circuit breaker that degrades to the
global-ESC fallback, and a supervisor that heals crashed workers and
sweeps stale shared memory.  See :mod:`repro.serve.core` for the
policy and :mod:`repro.serve.server` for the HTTP transport.
"""

from .core import ServeConfig, ServeCore
from .server import ReproServer, make_server, run_server

__all__ = [
    "ReproServer",
    "ServeConfig",
    "ServeCore",
    "make_server",
    "run_server",
]

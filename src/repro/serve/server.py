"""The serve daemon's HTTP transport (stdlib ``http.server`` only).

A thin, boring layer over :class:`~repro.serve.core.ServeCore`: parse
the request, call the core, map the core's typed outcome to an HTTP
status.  All resilience policy lives in the core — this module adds
nothing but sockets and signal handling.

Endpoints::

    GET  /healthz      liveness: 200 {"status": "ok", ...} while serving
    GET  /metrics      Prometheus text exposition (0.0.4)
    GET  /stats        live counters, breaker state, fired chaos faults
    GET  /traces       trace ids held by the core's bounded trace store
    GET  /trace/<id>   one request trace as JSON (rooted span tree)
    POST /multiply     execute one multiply; JSON body, JSON reply

``POST /multiply`` accepts a W3C-style ``traceparent`` request header
(the server joins the caller's trace) and every response carries the
request's ``traceparent`` back as a header and in the JSON body.

``SIGTERM`` drains: the listener stops accepting, queued jobs finish,
in-flight responses are written, the flight-recorder event log is
flushed to a parseable state, the warm pool is torn down (its shared
memory must not outlive the process) and the daemon exits 0.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .core import ServeConfig, ServeCore

__all__ = ["ReproServer", "make_server", "run_server"]

#: request body size cap (an inline .mtx of the suite's largest matrix
#: is far below this; anything bigger is a client error, not a DoS)
_MAX_BODY = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    @property
    def core(self) -> ServeCore:
        return self.server.core  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc: dict) -> None:
        self._send(
            status,
            (json.dumps(doc, sort_keys=True) + "\n").encode(),
            "application/json",
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            ok = self.core.healthy()
            self._send_json(
                200 if ok else 503,
                {
                    "status": "ok" if ok else "draining",
                    "workers_alive": self.core.pool.alive_count(),
                },
            )
        elif self.path == "/metrics":
            self._send(
                200, self.core.metrics.to_prometheus().encode(),
                "text/plain; version=0.0.4",
            )
        elif self.path == "/stats":
            self._send_json(200, self.core.stats())
        elif self.path == "/traces":
            self._send_json(200, {"traces": self.core.traces.ids()})
        elif self.path.startswith("/trace/"):
            trace = self.core.traces.get(self.path[len("/trace/"):])
            if trace is None:
                self._send_json(404, {"outcome": "error",
                                      "reason": "unknown trace id"})
            else:
                self._send_json(200, trace.to_dict())
        else:
            self._send_json(404, {"outcome": "error",
                                  "reason": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/multiply":
            self._send_json(404, {"outcome": "error",
                                  "reason": f"no route {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            if not 0 < length <= _MAX_BODY:
                raise ValueError(f"body length {length} out of range")
            payload = json.loads(self.rfile.read(length))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"outcome": "error", "reason": str(exc)})
            return
        body = self.core.handle(
            payload, traceparent=self.headers.get("traceparent")
        )
        if "traceparent" in body:
            # echo the trace identity as a header too, so W3C-style
            # clients correlate without parsing the body
            self.send_response(int(body.get("status", 200)))
            doc = (json.dumps(body, sort_keys=True) + "\n").encode()
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(doc)))
            self.send_header("traceparent", body["traceparent"])
            self.end_headers()
            self.wfile.write(doc)
        else:
            self._send_json(int(body.get("status", 200)), body)


class ReproServer(ThreadingHTTPServer):
    """One listening daemon: a core plus a threading HTTP server."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], core: ServeCore,
                 *, verbose: bool = False):
        super().__init__(address, _Handler)
        self.core = core
        self.verbose = verbose


def make_server(
    config: ServeConfig | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ReproServer:
    """Bind a daemon (``port=0`` picks an ephemeral port)."""
    return ReproServer((host, port), ServeCore(config), verbose=verbose)


def run_server(server: ReproServer, *, quiet: bool = False) -> int:
    """Serve until SIGTERM/SIGINT, then drain and exit cleanly.

    ``BaseServer.shutdown`` must be called from another thread than the
    one inside ``serve_forever`` — the signal handler hands it off.
    """
    stop_reason: list[str] = []

    def _stop(signum, frame):
        stop_reason.append(signal.Signals(signum).name)
        threading.Thread(target=server.shutdown, daemon=True).start()

    prev = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        prev[sig] = signal.signal(sig, _stop)
    host, port = server.server_address[:2]
    if not quiet:
        print(f"repro serve listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, handler in prev.items():
            signal.signal(sig, handler)
        server.server_close()
        # drain: every admitted request resolves before the pool dies
        server.core.close(drain=True, teardown_pool=True)
    if not quiet:
        why = stop_reason[0] if stop_reason else "shutdown"
        print(f"repro serve drained and stopped ({why})", flush=True)
    return 0

"""Sanitizer-mode invariant checks (``AcSpgemmOptions.sanitize``).

The pipeline's correctness rests on a handful of structural invariants
that no single stage can check for itself: the chunk pool's bump
bookkeeping, the per-row chunk lists, the global chunk order keys and
row-coverage completeness.  With ``sanitize=True`` the driver evaluates
these at every stage boundary and raises
:class:`~repro.resilience.errors.SanitizerError` on the first violation
— a corruption detector for engine work (races in the parallel engine,
replay bookkeeping bugs in the batched engine), in the spirit of
``compute-sanitizer`` for the original CUDA kernels.

Everything here is duck-typed over the pool/tracker/scratchpad
protocols and imports only numpy plus the error type, so the checks can
be reused against the shadow objects of the optimistic engines as well.

Invariants
----------

* **Scratchpad balance** — after a block retires (or parks for a
  restart) its named allocations must be empty: every ``alloc`` had a
  matching ``free``.
* **Pool bookkeeping** — allocated chunks tile the pool contiguously in
  allocation order (the bump-allocator property); the used-byte counter
  equals the sum of chunk sizes and never exceeds capacity.
* **Chunk key integrity** — global chunk order keys are unique, so the
  deterministic ``order_key`` sort consumers rely on is a total order.
* **List linkage** — every chunk linked into a row's list is registered
  with the pool and actually carries data for that row.
* **Row coverage** — per row, the tracker's element count equals the
  sum of the row's per-chunk segment lengths (after ESC these are the
  locally compacted counts; after the merge stages the exact output
  counts), so no products were dropped or double-linked.
"""

from __future__ import annotations

import numpy as np

from .errors import SanitizerError

__all__ = [
    "check_scratchpad_clean",
    "check_chunk_pool",
    "check_tracker",
    "check_stage_boundary",
]


def check_scratchpad_clean(scratchpad, *, stage: str, block_id: int | None = None) -> None:
    """Alloc/free balance: no named allocation survives block retirement."""
    if scratchpad.allocations:
        leaked = ", ".join(sorted(scratchpad.allocations))
        raise SanitizerError(
            f"scratchpad allocations leaked after {stage}: {leaked}",
            stage=stage,
            block_id=block_id,
        )


def check_chunk_pool(pool, *, stage: str) -> None:
    """Bump-allocator bookkeeping: contiguous tiling, exact used bytes."""
    used = pool.used_bytes
    if used > pool.capacity_bytes:
        raise SanitizerError(
            f"pool used bytes {used} exceed capacity {pool.capacity_bytes}",
            stage=stage,
        )
    offset = 0
    for chunk in pool.chunks:
        if chunk.nbytes <= 0:
            raise SanitizerError(
                f"chunk {chunk.order_key} registered with {chunk.nbytes} B",
                stage=stage,
                block_id=chunk.order_key[0],
            )
        if chunk.pool_offset != offset:
            raise SanitizerError(
                f"chunk {chunk.order_key} at pool offset {chunk.pool_offset}, "
                f"expected {offset} (bump allocation is contiguous)",
                stage=stage,
                block_id=chunk.order_key[0],
            )
        offset += chunk.nbytes
    if offset != used:
        raise SanitizerError(
            f"sum of chunk sizes {offset} != pool used bytes {used}",
            stage=stage,
        )
    keys = [c.order_key for c in pool.chunks]
    if len(set(keys)) != len(keys):
        seen = set()
        dup = next(k for k in keys if k in seen or seen.add(k))
        raise SanitizerError(
            f"duplicate global chunk order key {dup}",
            stage=stage,
            block_id=dup[0],
        )


def _row_segment_count(chunk, row: int) -> int:
    """Elements ``chunk`` stores for ``row`` (0 when it does not cover it)."""
    if chunk.kind == "pointer":
        return chunk.b_length if row == chunk.first_row else 0
    lo = int(np.searchsorted(chunk.rows, row, side="left"))
    hi = int(np.searchsorted(chunk.rows, row, side="right"))
    return hi - lo


def check_tracker(tracker, pool, *, stage: str) -> None:
    """List linkage and row-coverage completeness."""
    registered = {id(c) for c in pool.chunks}
    for row, lst in tracker.row_lists.items():
        if not lst:
            continue
        keys = [c.order_key for c in lst]
        if len(set(keys)) != len(keys):
            raise SanitizerError(
                f"row {row} links chunks with duplicate order keys",
                stage=stage,
            )
        total = 0
        for chunk in lst:
            if id(chunk) not in registered:
                raise SanitizerError(
                    f"row {row} links chunk {chunk.order_key} that is not "
                    f"registered with the pool",
                    stage=stage,
                    block_id=chunk.order_key[0],
                )
            count = _row_segment_count(chunk, row)
            if count == 0:
                raise SanitizerError(
                    f"row {row} links chunk {chunk.order_key} that carries "
                    f"no data for it",
                    stage=stage,
                    block_id=chunk.order_key[0],
                )
            total += count
        recorded = int(tracker.row_counts[row])
        if total != recorded:
            raise SanitizerError(
                f"row {row} coverage mismatch: chunks carry {total} elements "
                f"but the tracker records {recorded}",
                stage=stage,
            )


def check_stage_boundary(pool, tracker, *, stage: str) -> None:
    """All pool/tracker invariants at one stage boundary."""
    check_chunk_pool(pool, stage=stage)
    check_tracker(tracker, pool, stage=stage)

"""Typed failure hierarchy of the reproduction.

Every engineered failure path raises a :class:`ReproError` subclass
carrying structured context — the pipeline stage, the simulated block
and the restart count at the time of failure — so callers (the CLI, the
fault campaign, the degradation policy) can react without parsing
message strings.  The hierarchy:

* :class:`ReproError` — common base.

  * :class:`~repro.core.chunks.PoolExhausted` — a chunk-pool allocation
    did not fit (also a :class:`MemoryError`; normally *recoverable*
    through the restart loop, it only escapes when recovery itself is
    impossible).
  * :class:`RestartBudgetExceeded` — the restart loop gave up after
    ``max_restarts`` host round trips.
  * :class:`~repro.gpu.memory.ScratchpadOverflow` — a block layout
    exceeded the on-chip capacity (also a :class:`MemoryError`).
  * :class:`~repro.sparse.validate.CSRValidationError` — a CSR
    structural invariant does not hold (also a :class:`ValueError`).
  * :class:`~repro.sparse.io.MatrixMarketError` — malformed ``.mtx``
    input (also a :class:`ValueError`).
  * :class:`SanitizerError` — a sanitizer-mode invariant check failed
    at a stage boundary (state corruption detector).
  * :class:`WorkerCrashed` — a warm worker process died mid-round and
    the pool's retry budget could not mask it.
  * :class:`WorkerStarved` — a campaign worker waited on a wedged work
    queue past the starvation window.
  * :class:`ServerOverloaded` — the serve daemon's bounded admission
    queue is full; the request is rejected with backpressure instead
    of buffering without bound.
  * :class:`DeadlineExceeded` — a request (or campaign cell) ran past
    its wallclock deadline.

This module is import-light on purpose: it must be importable from
``repro.sparse``, ``repro.gpu`` and ``repro.core`` alike without
creating cycles.
"""

from __future__ import annotations

__all__ = [
    "DeadlineExceeded",
    "ReproError",
    "RestartBudgetExceeded",
    "SanitizerError",
    "ServerOverloaded",
    "WorkerCrashed",
    "WorkerStarved",
]


class ReproError(Exception):
    """Base class of every engineered failure in the reproduction.

    Parameters
    ----------
    message:
        Human-readable description.
    stage:
        Pipeline stage key at failure time (``"GLB"``, ``"ESC"``,
        ``"MCC"``, ``"MM"``, ``"PM"``, ``"SM"``, ``"CC"``) or a
        subsystem label (``"io"``, ``"validate"``), when known.
    block_id:
        Simulated block (or worker index within the stage) the failure
        is attributed to, when known.
    restarts:
        Restart count of the run at failure time, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        block_id: int | None = None,
        restarts: int | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.block_id = block_id
        self.restarts = restarts

    def context(self) -> dict:
        """Structured failure context (stable keys, JSON-friendly)."""
        return {
            "kind": type(self).__name__,
            "stage": self.stage,
            "block_id": self.block_id,
            "restarts": self.restarts,
            "message": str(self),
        }

    def one_line(self) -> str:
        """Single-line diagnostic: ``Kind [stage=.., block=..]: message``."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.block_id is not None:
            parts.append(f"block={self.block_id}")
        if self.restarts is not None:
            parts.append(f"restarts={self.restarts}")
        where = f" [{', '.join(parts)}]" if parts else ""
        return f"{type(self).__name__}{where}: {self}"


class RestartBudgetExceeded(ReproError):
    """The restart loop exhausted ``max_restarts`` host round trips.

    Raised by the driver with the stage whose round could not complete,
    the first still-pending block and the restart count; with
    ``on_failure="fallback"`` the driver degrades to the global-ESC
    baseline instead of raising.
    """


class SanitizerError(ReproError):
    """A sanitizer-mode invariant does not hold at a stage boundary.

    Indicates corrupted pipeline state (pool bookkeeping, chunk linked
    lists, row coverage) rather than a recoverable resource condition;
    the sanitizer exists to catch races and bookkeeping bugs in engine
    work early.
    """


class WorkerCrashed(ReproError):
    """A warm worker process died and recovery could not mask it.

    :meth:`~repro.engine.process.WarmProcessPool.run_esc` reaps dead
    workers, redistributes their pending block states and respawns
    replacements; this error escapes only once the retry budget is
    spent.  It is *transient* by nature — the serve daemon retries it
    with backoff before degrading.
    """


class WorkerStarved(ReproError):
    """A campaign worker's work queue stayed empty past the starvation
    window.

    A wedged queue (dead parent, lost sentinel) used to make workers
    exit silently after a 60 s timeout; now the worker checkpoints this
    typed diagnostic to its shard before exiting so the stall is
    attributable post-mortem.
    """


class ServerOverloaded(ReproError):
    """The serve daemon's bounded admission queue is full.

    Backpressure, not OOM: the request is rejected immediately with a
    typed error (HTTP 429) instead of queueing without bound.  Clients
    are expected to back off and retry.
    """


class DeadlineExceeded(ReproError):
    """A request or campaign cell ran past its wallclock deadline.

    For serve requests the deadline covers queue wait plus execution;
    an expired request is cancelled if still queued and surfaced as a
    typed rejection (HTTP 504) either way.  For campaign cells the
    timeout counts against the per-cell retry budget.
    """

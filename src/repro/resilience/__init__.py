"""Resilience layer: typed failures, fault injection, sanitizer, degradation.

See ``docs/ARCHITECTURE.md`` ("Failure handling and fault injection")
for the full design.  Public surface:

* :mod:`~repro.resilience.errors` — the :class:`ReproError` hierarchy
  every engineered failure path raises.
* :mod:`~repro.resilience.faults` — seeded, serialisable
  :class:`FaultPlan` / :class:`FaultInjector` plus adversarial-input
  corruption.
* :mod:`~repro.resilience.sanitize` — stage-boundary invariant checks
  behind ``AcSpgemmOptions(sanitize=True)``.
* :mod:`~repro.resilience.degrade` — the global-ESC fallback behind
  ``AcSpgemmOptions(on_failure="fallback")``.
"""

from .errors import (
    DeadlineExceeded,
    ReproError,
    RestartBudgetExceeded,
    SanitizerError,
    ServerOverloaded,
    WorkerCrashed,
    WorkerStarved,
)
from .faults import (
    ADVERSARIAL_MODES,
    FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_csr,
)
from .sanitize import (
    check_chunk_pool,
    check_scratchpad_clean,
    check_stage_boundary,
    check_tracker,
)
from .degrade import conservative_pool_bytes, fallback_multiply

__all__ = [
    "DeadlineExceeded",
    "ReproError",
    "RestartBudgetExceeded",
    "SanitizerError",
    "ServerOverloaded",
    "WorkerCrashed",
    "WorkerStarved",
    "FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "ADVERSARIAL_MODES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "corrupt_csr",
    "check_scratchpad_clean",
    "check_chunk_pool",
    "check_tracker",
    "check_stage_boundary",
    "conservative_pool_bytes",
    "fallback_multiply",
]

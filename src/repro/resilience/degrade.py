"""Graceful degradation: global-ESC fallback after unrecoverable failure.

When the adaptive pipeline cannot finish — restart budget exhausted,
non-recoverable overflow, sanitizer-detected corruption — and the caller
opted in via ``AcSpgemmOptions(on_failure="fallback")``, the driver
recomputes C with the CUSP-style global ESC baseline instead of
raising.  Global ESC needs no chunk pool: it gets one fresh conservative
allocation sized for *every* temporary product (the known worst case,
``temp × pair bytes`` double-buffered for the device-wide sort), so it
cannot hit the failure again.

The fallback is **correct and bit-stable**: global ESC expands in the
canonical row-major order and accumulates each output entry in a fixed
order behind a stable sort, so it yields exactly the Gustavson
reference's sparsity pattern with values equal up to FP summation-tree
rounding (``allclose`` at 1e-10, the repo's reference tolerance), and
repeated/degraded runs are bit-identical to each other on every engine.
A degraded ``multiply()`` still returns a correct C, merely slower and
with a worst-case memory footprint.  The degradation is recorded on the
result (``result.degraded`` / ``result.failure``) rather than hidden.

Imports are function-level: this module sits below ``repro.core`` in the
import graph but needs the baseline implementation, which must never be
imported during ``repro.resilience`` package init.
"""

from __future__ import annotations

__all__ = ["conservative_pool_bytes", "fallback_multiply"]


def conservative_pool_bytes(a, b, options) -> int:
    """Worst-case allocation for the fallback: every temporary product.

    ``2 × temp × (8-byte packed key + value)`` — the double-buffered
    device-wide sort storage of global ESC, never undersized because the
    intermediate-product count is exact, not estimated.
    """
    from ..sparse.ops import count_intermediate_products

    temp = count_intermediate_products(a, b)
    pair_bytes = 8 + options.value_dtype.itemsize
    return 2 * temp * pair_bytes


def fallback_multiply(a, b, options, spans=None):
    """Recompute ``A @ B`` with the global-ESC baseline.

    Returns the baseline's :class:`~repro.baselines.base.SpGEMMRun`
    (matrix plus its own cost accounting) computed on the same simulated
    device and cost constants as the failed adaptive run.  When a
    :class:`~repro.obs.span.SpanRecorder` is passed, the recompute is
    recorded as a ``fallback`` leaf span so degraded runs stay visible
    in the unified timeline.
    """
    from ..baselines.esc_global import EscGlobal

    algo = EscGlobal(device=options.device, costs=options.costs)
    run = algo.multiply(a, b, dtype=options.value_dtype)
    if spans is not None:
        spans.leaf("fallback", run.cycles, stage="FB", algorithm=algo.name)
    return run

"""Deterministic fault injection for the AC-SpGEMM pipeline.

A :class:`FaultPlan` is a seeded, serialisable description of faults to
inject into one ``ac_spgemm`` run.  Activating a plan produces a fresh
:class:`FaultInjector` holding the plan's mutable runtime counters, so
the same plan can drive any number of runs — and the acceptance bar of
the resilience layer is exactly that: **the same plan produces the same
exceptions, the same restart counts and a bit-identical recovered C on
every engine** (reference / batched / parallel).

Fault classes
-------------

``pool_exhaust``
    Force :class:`~repro.core.chunks.PoolExhausted` at the ``at``-th
    chunk-pool admission attempt (1-based, counted across the whole
    run).  The hook sits in the single admission chokepoint
    (:meth:`ChunkPool.admission_ok`), which the reference engine hits
    inside ``ChunkPool.allocate`` and the batched/parallel engines hit
    during the serial replay — in *provably the same sequence*: both
    walk blocks in block order and stop a block at its first failed
    admission, so the Nth admission attempt names the same allocation
    everywhere.  This exercises the real restart machinery.

``scratchpad_overflow``
    Raise :class:`~repro.gpu.memory.ScratchpadOverflow` when the driver
    enters round ``round`` of stage ``stage`` (``ESC``/``MM``/``PM``/
    ``SM``), attributed to ``block``.  Raised by the driver *before*
    the engine runs the round, so it is trivially engine-identical; it
    exercises the non-recoverable error path and the degradation
    policy.

``block_abort``
    Scheduler-level abort: the block at position ``block`` of round
    ``round`` in stage ``stage`` is pulled from the round before the
    engine sees it and re-queued, consuming one restart (host round
    trip + pool growth) like a real mid-kernel casualty.  Decided in
    the driver from the round's pending list, so engine-identical.

Process-level (serve) fault classes
-----------------------------------

These move the failure surface up a level — from one multiply to the
long-running serve daemon — and are consumed at a single chokepoint:
the server consults :meth:`FaultInjector.serve_faults` with the
1-based request admission ordinal before executing each request, so a
chaos run is deterministic given the plan.

``worker_kill``
    ``SIGKILL`` warm-pool worker ``worker`` when request ``at`` starts
    executing.  Exercises the pool's mid-round reap/redistribute/respawn
    healing and the server's retry-with-backoff path.

``shm_drop``
    Unlink the shared-memory segments of the pool's oldest exported
    operand pair when request ``at`` starts executing (an external
    ``/dev/shm`` sweep or tmpfs eviction).  Exercises the pool's
    re-export heal in :meth:`~repro.engine.process.WarmProcessPool.load`.

``request_delay``
    Sleep ``delay_ms`` before executing request ``at`` — the "slow
    request that starves the queue" scenario; pushes the request (and
    queued followers) toward their deadlines.

Adversarial inputs (NaN/Inf values, index-dtype overflow, non-canonical
CSR) are not runtime faults but input corruptions; :func:`corrupt_csr`
produces them deterministically from a seed and input validation is
expected to reject them with a typed
:class:`~repro.sparse.validate.CSRValidationError`.

This module deliberately imports nothing from ``repro.core``/``gpu``/
``sparse`` (the injector reports *what* to fail; the driver owns the
raising) so the error types can be rebased onto
:class:`~repro.resilience.errors.ReproError` without import cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "ADVERSARIAL_MODES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "corrupt_csr",
]

#: per-multiply pipeline faults (engine-identical chokepoints)
PIPELINE_FAULT_KINDS = ("pool_exhaust", "scratchpad_overflow", "block_abort")

#: process-level faults consumed by the serve daemon per request ordinal
SERVE_FAULT_KINDS = ("worker_kill", "shm_drop", "request_delay")

FAULT_KINDS = PIPELINE_FAULT_KINDS + SERVE_FAULT_KINDS

#: input corruption modes understood by :func:`corrupt_csr`
ADVERSARIAL_MODES = (
    "nan_value",
    "inf_value",
    "index_overflow",
    "negative_index",
    "unsorted_columns",
    "duplicate_columns",
)

_STAGES = ("ESC", "MM", "PM", "SM")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject (see the module docstring for semantics)."""

    kind: str
    stage: str | None = None  # scratchpad_overflow / block_abort
    at: int | None = None  # 1-based ordinal (pool admission / serve request)
    round: int | None = None  # round index within the stage (from 0)
    block: int | None = None  # position within the round's pending list
    worker: int | None = None  # worker_kill: warm-pool worker index
    delay_ms: float | None = None  # request_delay: injected latency

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "pool_exhaust" or self.kind in SERVE_FAULT_KINDS:
            if self.at is None or self.at < 1:
                raise ValueError(f"{self.kind} needs a 1-based 'at' ordinal")
            if self.kind == "worker_kill":
                if self.worker is None or self.worker < 0:
                    raise ValueError("worker_kill needs a worker index >= 0")
            if self.kind == "request_delay":
                if self.delay_ms is None or self.delay_ms <= 0:
                    raise ValueError("request_delay needs delay_ms > 0")
        else:
            if self.stage not in _STAGES:
                raise ValueError(
                    f"{self.kind} needs a stage in {_STAGES}, got {self.stage!r}"
                )
            if self.round is None or self.round < 0:
                raise ValueError(f"{self.kind} needs a round index >= 0")
            if self.block is None or self.block < 0:
                raise ValueError(f"{self.kind} needs a block position >= 0")

    def to_dict(self) -> dict:
        return {
            k: v
            for k, v in (
                ("kind", self.kind),
                ("stage", self.stage),
                ("at", self.at),
                ("round", self.round),
                ("block", self.block),
                ("worker", self.worker),
                ("delay_ms", self.delay_ms),
            )
            if v is not None
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable set of faults for one run.

    The ``seed`` documents how the plan was generated (campaigns derive
    fault positions from it) and rides through serialisation so a
    failing campaign case can be replayed exactly from its JSON record.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- construction ---------------------------------------------------

    @classmethod
    def single(cls, kind: str, *, seed: int = 0, **kwargs) -> "FaultPlan":
        """A plan with one fault."""
        return cls(seed=seed, faults=(FaultSpec(kind=kind, **kwargs),))

    @classmethod
    def pool_exhaust_at(cls, *ordinals: int, seed: int = 0) -> "FaultPlan":
        """Force pool exhaustion at each given admission ordinal."""
        return cls(
            seed=seed,
            faults=tuple(FaultSpec(kind="pool_exhaust", at=n) for n in ordinals),
        )

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            faults=tuple(FaultSpec(**f) for f in d.get("faults", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- runtime ---------------------------------------------------------

    def activate(self) -> "FaultInjector":
        """A fresh injector (fresh counters) for one run."""
        return FaultInjector(self)


class FaultInjector:
    """Mutable runtime state of one activated :class:`FaultPlan`.

    One injector drives exactly one ``ac_spgemm`` run; the driver
    consults it at the three deterministic chokepoints described in the
    module docstring.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pool_ordinals = frozenset(
            f.at for f in plan.faults if f.kind == "pool_exhaust"
        )
        self._overflows = {
            (f.stage, f.round): f
            for f in plan.faults
            if f.kind == "scratchpad_overflow"
        }
        self._aborts: dict[tuple[str, int], set[int]] = {}
        for f in plan.faults:
            if f.kind == "block_abort":
                self._aborts.setdefault((f.stage, f.round), set()).add(f.block)
        self._serve: dict[int, list[FaultSpec]] = {}
        for f in plan.faults:
            if f.kind in SERVE_FAULT_KINDS:
                self._serve.setdefault(f.at, []).append(f)
        self.admissions = 0  # pool admission attempts seen so far
        self.fired: list[dict] = []  # injection log (campaign reporting)

    # -- chokepoint 1: chunk-pool admission ------------------------------

    def pool_gate(self, nbytes: int) -> bool:
        """Count one admission attempt; True forces it to fail.

        Installed as ``ChunkPool.fault_hook``; consulted by
        ``ChunkPool.allocate`` (reference path) and by the serial
        replay (batched/parallel paths) — once per admission attempt in
        the identical block-major sequence.
        """
        self.admissions += 1
        if self.admissions in self._pool_ordinals:
            self.fired.append(
                {"kind": "pool_exhaust", "at": self.admissions, "nbytes": nbytes}
            )
            return True
        return False

    # -- chokepoint 2: stage-round entry ---------------------------------

    def overflow_for(self, stage: str, round_index: int) -> FaultSpec | None:
        """The scratchpad-overflow spec for this stage round, if any.

        The driver raises the typed exception itself (keeps this module
        import-light); the spec is logged as fired when returned.
        """
        spec = self._overflows.get((stage, round_index))
        if spec is not None:
            self.fired.append(spec.to_dict())
        return spec

    def aborts_for(self, stage: str, round_index: int) -> frozenset[int]:
        """Block positions to abort out of this stage round."""
        positions = self._aborts.get((stage, round_index))
        if not positions:
            return frozenset()
        self.fired.append(
            {
                "kind": "block_abort",
                "stage": stage,
                "round": round_index,
                "blocks": sorted(positions),
            }
        )
        return frozenset(positions)

    # -- chokepoint 3: serve request execution ----------------------------

    def serve_faults(self, request_ordinal: int) -> list[FaultSpec]:
        """Process-level faults to apply before executing request N.

        The serve daemon owns the effects (killing a pool worker,
        unlinking a segment, sleeping) — this module stays import-light.
        Returned specs are logged as fired, in plan order.
        """
        specs = self._serve.get(request_ordinal, [])
        for spec in specs:
            self.fired.append(spec.to_dict())
        return list(specs)


# ---------------------------------------------------------------------------
# adversarial input corruption
# ---------------------------------------------------------------------------


def corrupt_csr(m, mode: str, seed: int = 0):
    """Return a deterministically corrupted copy of a CSR matrix.

    ``mode`` is one of :data:`ADVERSARIAL_MODES`; ``seed`` picks the
    corrupted entry.  The result is built through the input's own class
    (duck-typed; only the structural ``rows``/``cols``/``row_ptr``/
    ``col_idx``/``values`` contract is assumed), and is expected to be
    rejected by ``validate_csr`` / strict I/O — never to crash the
    pipeline some other way.
    """
    if mode not in ADVERSARIAL_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}")
    if m.nnz == 0:
        raise ValueError("cannot corrupt an empty matrix")
    rng = np.random.default_rng(seed)
    pos = int(rng.integers(0, m.nnz))
    col_idx = np.array(m.col_idx, dtype=np.int64, copy=True)
    values = np.array(m.values, copy=True)

    if mode == "nan_value":
        values[pos] = np.nan
    elif mode == "inf_value":
        values[pos] = np.inf
    elif mode == "index_overflow":
        # an index far past the int32 range the 4-byte column ids assume
        col_idx[pos] = np.int64(2) ** 31 + 7
    elif mode == "negative_index":
        # what an overflowed 32-bit index looks like after wraparound
        col_idx[pos] = -(int(col_idx[pos]) + 1)
    elif mode == "unsorted_columns":
        row = int(np.searchsorted(m.row_ptr, pos, side="right")) - 1
        lo, hi = int(m.row_ptr[row]), int(m.row_ptr[row + 1])
        if hi - lo < 2:  # need a row with >= 2 entries; take the widest
            lengths = np.diff(m.row_ptr)
            row = int(lengths.argmax())
            lo, hi = int(m.row_ptr[row]), int(m.row_ptr[row + 1])
            if hi - lo < 2:
                raise ValueError("matrix has no row with two entries")
        col_idx[lo], col_idx[hi - 1] = col_idx[hi - 1], col_idx[lo]
    elif mode == "duplicate_columns":
        row = int(np.searchsorted(m.row_ptr, pos, side="right")) - 1
        lo, hi = int(m.row_ptr[row]), int(m.row_ptr[row + 1])
        if hi - lo < 2:
            lengths = np.diff(m.row_ptr)
            row = int(lengths.argmax())
            lo, hi = int(m.row_ptr[row]), int(m.row_ptr[row + 1])
            if hi - lo < 2:
                raise ValueError("matrix has no row with two entries")
        col_idx[lo + 1] = col_idx[lo]

    return m.__class__(
        rows=m.rows,
        cols=m.cols,
        row_ptr=np.array(m.row_ptr, copy=True),
        col_idx=col_idx,
        values=values,
    )

"""First-class simulated-GPU hash SpGEMM engines.

Two engines, promoted from the host-side cost sketches in
``repro.baselines`` to full pipeline drivers on the simulated device:

``hash-spgemm``
    An nsparse/balanced-hash style binned engine: a device-wide binning
    pass groups A's rows by their temporary-product count, per-bin
    symbolic kernels count nnz per output row in power-of-two
    scratchpad hash tables (rows whose table cannot fit scratchpad run
    against global-memory tables), a device-wide scan builds the row
    pointer, and per-bin numeric kernels accumulate values and emit
    each row sorted by column.

``hashmap-spgemm``
    A Deveci-style (KokkosKernels) multi-level hashmap engine: one
    partitioning pass splits A into contiguous row blocks, then a
    *single* symbolic and a *single* numeric launch run every block
    with a two-level linked-list hashmap — an L1 in scratchpad and an
    L2 spill region in global memory.  Fewer kernel launches and no
    per-row sort (rows are emitted through a cheap compaction
    traversal), at the price of chain-chasing ALU work per probe.

Both engines execute the launch/record protocol of the AC-SpGEMM
driver exactly — per-block :class:`~repro.gpu.cost.CostMeter`\\ s,
real :class:`~repro.gpu.memory.Scratchpad` occupancy,
:func:`~repro.gpu.scheduler.schedule_blocks` makespans, span trees and
device traces — so :func:`repro.obs.analyze.reconcile` holds with zero
tolerance.  Numerically they model the scheduler-dependent hash
insertion order with a seeded shuffle, so they are *not* bit-stable
(the †-rows of Table 1).

The op list each run executes is built by ``_build_ops`` from pure
row statistics (temporary products and output nnz per row).  The
selector's :meth:`predict_cycles` builds the same op list from
*estimated* per-row output sizes — so the prediction shares every cost
constant and scheduling decision with the execution, and its only
error source is the sampled nnz estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.base import accumulate_products, expand_products
from ..baselines.util import row_temp_counts
from ..core.acspgemm import AcSpgemmResult, MemoryReport
from ..core.options import AcSpgemmOptions, DEFAULT_OPTIONS
from ..gpu.counters import TrafficCounters
from ..gpu.memory import Scratchpad
from ..gpu.scheduler import schedule_blocks
from ..obs.device import BlockMeta, DeviceTrace
from ..obs.span import SpanRecorder
from ..sparse.validate import validate_csr
from .base import Backend
from .registry import register_backend

__all__ = ["NsparseHashBackend", "DeveciHashmapBackend"]


@dataclass
class _BlockWork:
    """One block of a launch: its meter plus trace metadata."""

    block_id: int
    row_lo: int
    row_hi: int
    meter: object
    scratch_high_water: int = 0


@dataclass
class _DevicePass:
    """A device-wide pass (perfect SM parallelism plus one launch)."""

    stage: str
    label: str
    meter: object
    attrs: dict


@dataclass
class _Launch:
    """One scheduled kernel launch over ``works`` blocks."""

    stage: str
    round_index: int
    works: list


def _pow2_ceil(x: np.ndarray) -> np.ndarray:
    """Element-wise next power of two (inputs >= 1)."""
    return (1 << np.ceil(np.log2(np.maximum(x, 1))).astype(np.int64)).astype(
        np.int64
    )


class _SimulatedHashEngine(Backend):
    """Shared driver loop of the two hash engines."""

    bit_stable = False
    stage_keys: tuple[str, ...] = ()

    # -- per-engine plan construction ---------------------------------

    def _build_ops(
        self,
        *,
        temps: np.ndarray,
        nnz_rows: np.ndarray,
        a_lengths: np.ndarray,
        rows: int,
        cols: int,
        nnz_a: int,
        b_rows: int,
        opts: AcSpgemmOptions,
    ) -> tuple[list, dict]:
        """The chronological op list plus memory/blocks info."""
        raise NotImplementedError

    # -- execution -----------------------------------------------------

    def run(self, a, b, options=None, *, spans=None, dtrace=None, scheduler_seed=0):
        opts = options or DEFAULT_OPTIONS
        if a.cols != b.rows:
            raise ValueError(
                f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
            )
        cfg = opts.device
        launch = opts.costs.kernel_launch_cycles
        owns_spans = spans is None
        if owns_spans:
            spans = SpanRecorder(clock_ghz=cfg.clock_ghz)
        anchor = spans.start(
            self.name,
            rows=a.rows,
            inner=a.cols,
            cols=b.cols,
            nnz_a=a.nnz,
            nnz_b=b.nnz,
        )
        with spans.span("setup", validated=opts.validate_inputs):
            if opts.validate_inputs:
                validate_csr(a)
                validate_csr(b)
        if dtrace is None and opts.device_trace:
            dtrace = DeviceTrace(clock_ghz=cfg.clock_ghz, num_sms=cfg.num_sms)

        # the true product; the seeded shuffle models the
        # scheduler-dependent hash insertion order (not bit-stable)
        rows_e, cols_e, vals_e = expand_products(a, b, opts.value_dtype)
        c = accumulate_products(
            rows_e, cols_e, vals_e, a.rows, b.cols, shuffle_seed=scheduler_seed
        )
        temps = np.asarray(row_temp_counts(a, b), dtype=np.int64)
        nnz_rows = np.asarray(c.row_lengths(), dtype=np.int64)

        ops, info = self._build_ops(
            temps=temps,
            nnz_rows=nnz_rows,
            a_lengths=np.asarray(a.row_lengths(), dtype=np.int64),
            rows=a.rows,
            cols=b.cols,
            nnz_a=a.nnz,
            b_rows=b.rows,
            opts=opts,
        )

        stage_cycles = {k: 0.0 for k in self.stage_keys}
        counters = TrafficCounters()
        min_mp_load = 1.0
        util_busy = 0.0
        util_cap = 0.0

        for op in ops:
            if isinstance(op, _DevicePass):
                cycles = op.meter.cycles / cfg.num_sms + launch
                stage_cycles[op.stage] += cycles
                counters.merge(op.meter.counters)
                counters.kernel_launches += 1
                if dtrace is not None:
                    attr = op.meter.counters.snapshot()
                    attr["kernel_launches"] += 1
                    dtrace.record_device_wide(
                        op.stage,
                        op.label,
                        start_cycle=spans.now,
                        cycles=cycles,
                        counters=attr,
                    )
                spans.leaf(op.label, cycles, stage=op.stage, **op.attrs)
                continue
            timing = schedule_blocks(
                [w.meter.cycles for w in op.works],
                cfg.num_sms,
                launch_overhead=launch,
                record_placements=dtrace is not None,
            )
            stage_cycles[op.stage] += timing.makespan_cycles
            for w in op.works:
                counters.merge(w.meter.counters)
            counters.kernel_launches += 1
            if timing.n_blocks >= cfg.num_sms:
                min_mp_load = min(min_mp_load, timing.multiprocessor_load)
            if timing.n_blocks:
                util_busy += timing.total_block_cycles
                util_cap += len(timing.sm_busy_cycles) * timing.makespan_cycles
            if dtrace is not None:
                dtrace.record_launch(
                    op.stage,
                    round_index=op.round_index,
                    start_cycle=spans.now,
                    timing=timing,
                    launch_overhead=launch,
                    workers=[
                        BlockMeta(
                            worker_id=w.block_id,
                            row_lo=w.row_lo,
                            row_hi=w.row_hi,
                            cycles=w.meter.cycles,
                            done=True,
                            scratch_high_water=w.scratch_high_water,
                            counters=w.meter.counters.snapshot(),
                        )
                        for w in op.works
                    ],
                    counters={"kernel_launches": 1},
                )
            spans.leaf(
                f"{op.stage.lower()}.round",
                timing.makespan_cycles,
                stage=op.stage,
                round=op.round_index,
                blocks=len(op.works),
            )

        memory = MemoryReport(
            helper_bytes=info["helper_bytes"],
            chunk_pool_bytes=info["global_table_bytes"],
            chunk_used_bytes=info["global_table_bytes"],
            output_bytes=c.nbytes(),
        )
        return AcSpgemmResult(
            matrix=c,
            stage_cycles=stage_cycles,
            counters=counters,
            memory=memory,
            restarts=0,
            multiprocessor_load=min_mp_load,
            n_chunks=0,
            n_blocks=info["n_blocks"],
            clock_ghz=cfg.clock_ghz,
            spans=self._finish_spans(spans, owns_spans, anchor),
            sm_utilization=util_busy / util_cap if util_cap else 1.0,
            device_trace=dtrace,
        )

    # -- prediction ----------------------------------------------------

    def predict_cycles(self, features, options: AcSpgemmOptions | None = None) -> float:
        """Replay the engine's own op construction on estimated per-row
        output sizes: the prediction shares every cost constant and
        scheduling decision with the execution."""
        opts = options or DEFAULT_OPTIONS
        cfg = opts.device
        launch = opts.costs.kernel_launch_cycles
        f = features
        temps = np.asarray(f.row_temps, dtype=np.int64)
        compaction = max(1.0, f.compaction)
        nnz_est = np.minimum(
            temps, np.ceil(temps / compaction).astype(np.int64)
        )
        if f.cols:
            np.minimum(nnz_est, f.cols, out=nnz_est)
        ops, _ = self._build_ops(
            temps=temps,
            nnz_rows=nnz_est,
            a_lengths=np.asarray(f.row_lengths_a, dtype=np.int64),
            rows=f.rows,
            cols=f.cols,
            nnz_a=f.nnz_a,
            b_rows=f.inner,
            opts=opts,
        )
        total = 0.0
        for op in ops:
            if isinstance(op, _DevicePass):
                total += op.meter.cycles / cfg.num_sms + launch
            else:
                total += schedule_blocks(
                    [w.meter.cycles for w in op.works],
                    cfg.num_sms,
                    launch_overhead=launch,
                ).makespan_cycles
        return total


@register_backend
class NsparseHashBackend(_SimulatedHashEngine):
    """Binned scratchpad-hash engine (nsparse / balanced hash style)."""

    name = "hash-spgemm"
    stage_keys = ("BIN", "SYM", "PTR", "NUM")

    #: smallest per-row hash table (entries); nsparse's smallest bin
    min_table_entries = 256
    #: fraction of probes that collide and re-probe
    collision_factor = 0.2

    def _capacity_entries(self, opts: AcSpgemmOptions) -> int:
        """Largest power-of-two table fitting scratchpad in the numeric
        phase (entry = column id + value); the same capacity classifies
        rows as local/global in both phases so the binning is stable."""
        cap = opts.device.scratchpad_bytes // opts.element_bytes
        return 1 << int(np.floor(np.log2(max(cap, 2))))

    def _build_ops(
        self, *, temps, nnz_rows, a_lengths, rows, cols, nnz_a, b_rows, opts
    ):
        cfg = opts.device
        make = lambda: self._fresh_meter(opts)  # noqa: E731
        key_bits = self._key_bits(cols)
        ops: list = []

        # ---- BIN: product counts and bin bucketing (device-wide) ----
        m = make()
        m.global_read(rows + 1, 4)
        m.global_read(nnz_a, 4)
        if nnz_a:
            m.global_read(min(nnz_a, b_rows), 4, coalesced=False)
        m.alu(2 * nnz_a + rows)
        m.global_write(rows, 4)
        m.scan(rows)
        m.global_write(rows, 4)
        ops.append(_DevicePass("BIN", "bin", m, {"rows": rows}))

        # ---- binning plan (mirrors what the BIN kernel computed) ----
        cap = self._capacity_entries(opts)
        active = np.nonzero(temps)[0]
        need = np.maximum(self.min_table_entries, 2 * temps[active])
        is_global = need > cap
        local_rows = active[~is_global]
        global_rows = active[is_global]
        sizes = _pow2_ceil(need[~is_global])
        bins = []  # (table_entries, rows in row order)
        for size in np.unique(sizes):
            bins.append((int(size), local_rows[sizes == size]))

        def local_blocks(size: int, bin_rows: np.ndarray, start_id: int):
            rpb = max(1, cap // size)
            blocks = []
            for i in range(0, len(bin_rows), rpb):
                blocks.append((start_id + len(blocks), bin_rows[i : i + rpb]))
            return blocks

        block_id = 0
        sym_launches: list[_Launch] = []
        num_plan: list[tuple[int, list]] = []  # (table size or 0, blocks)
        for rnd, (size, bin_rows) in enumerate(bins):
            blocks = local_blocks(size, bin_rows, block_id)
            block_id += len(blocks)
            num_plan.append((size, blocks))
            works = []
            for bid, blk_rows in blocks:
                bm = make()
                scratch = Scratchpad.for_device(cfg)
                n_r = len(blk_rows)
                scratch.alloc("tables", n_r * size * 4)  # 4-byte keys
                temp_blk = int(temps[blk_rows].sum())
                bm.global_read(2 * n_r, 4)  # row list + pointer pairs
                bm.global_read(int(a_lengths[blk_rows].sum()), 4)
                bm.global_read(temp_blk, 4, coalesced=False)  # gather B cols
                bm.scratchpad(n_r * size)  # table init
                bm.hash_probe(temp_blk, in_scratchpad=True)
                bm.hash_collision(int(self.collision_factor * temp_blk))
                bm.scratchpad(n_r * size)  # count sweep
                bm.global_write(n_r, 4)
                works.append(
                    _BlockWork(
                        bid,
                        int(blk_rows[0]),
                        int(blk_rows[-1]),
                        bm,
                        scratch.high_water,
                    )
                )
            sym_launches.append(_Launch("SYM", rnd, works))
        if len(global_rows):
            works = []
            gblocks = []
            for r in global_rows.tolist():
                bid = block_id
                block_id += 1
                gblocks.append((bid, np.array([r], dtype=np.int64)))
                bm = make()
                temp_r = int(temps[r])
                bm.global_read(2, 4)
                bm.global_read(int(a_lengths[r]), 4)
                bm.global_read(temp_r, 4, coalesced=False)
                bm.hash_probe(temp_r, in_scratchpad=False)
                bm.hash_probe(
                    int(self.collision_factor * temp_r), in_scratchpad=False
                )
                bm.global_write(1, 4)
                works.append(_BlockWork(bid, r, r, bm))
            sym_launches.append(_Launch("SYM", len(bins), works))
            num_plan.append((0, gblocks))
        ops.extend(sym_launches)

        # ---- PTR: row-pointer prefix scan (device-wide) -------------
        m = make()
        m.global_read(rows, 4)
        m.scan(rows)
        m.global_write(rows + 1, 4)
        ops.append(_DevicePass("PTR", "row_ptr", m, {}))

        # ---- NUM: accumulate values, sort each row, write C ---------
        for rnd, (size, blocks) in enumerate(num_plan):
            works = []
            for bid, blk_rows in blocks:
                bm = make()
                n_r = len(blk_rows)
                temp_blk = int(temps[blk_rows].sum())
                nnz_blk = int(nnz_rows[blk_rows].sum())
                high_water = 0
                if size:  # scratchpad bin
                    scratch = Scratchpad.for_device(cfg)
                    scratch.alloc("tables", n_r * size * opts.element_bytes)
                    high_water = scratch.high_water
                    bm.global_read(2 * n_r, 4)
                    bm.global_read(
                        int(a_lengths[blk_rows].sum()), opts.element_bytes
                    )
                    bm.global_read(temp_blk, opts.element_bytes, coalesced=False)
                    bm.scratchpad(n_r * size)  # table init
                    bm.hash_probe(temp_blk, in_scratchpad=True)
                    bm.hash_collision(int(self.collision_factor * temp_blk))
                else:  # global-table bin
                    bm.global_read(2 * n_r, 4)
                    bm.global_read(
                        int(a_lengths[blk_rows].sum()), opts.element_bytes
                    )
                    bm.global_read(temp_blk, opts.element_bytes, coalesced=False)
                    bm.hash_probe(temp_blk, in_scratchpad=False)
                    bm.hash_probe(
                        int(self.collision_factor * temp_blk), in_scratchpad=False
                    )
                bm.flops(2 * temp_blk)
                bm.radix_sort(nnz_blk, key_bits)  # emit rows column-sorted
                bm.global_write(nnz_blk, opts.element_bytes)
                works.append(
                    _BlockWork(
                        bid,
                        int(blk_rows[0]),
                        int(blk_rows[-1]),
                        bm,
                        high_water,
                    )
                )
            ops.append(_Launch("NUM", rnd, works))

        global_table_bytes = int(
            (2 * temps[global_rows]).sum() * opts.element_bytes
        )
        info = {
            "n_blocks": block_id,
            "global_table_bytes": global_table_bytes,
            # temp counts, bin permutation, row pointer scratch
            "helper_bytes": 8 * rows + 4 * (rows + 1),
        }
        return ops, info


@register_backend
class DeveciHashmapBackend(_SimulatedHashEngine):
    """Two-level linked-list hashmap engine (Deveci et al. style)."""

    name = "hashmap-spgemm"
    stage_keys = ("PART", "SYM", "OUT", "NUM")

    #: ALU ops per probe spent chasing the collision chain
    chain_alu = 2

    def _l1_entries(self, opts: AcSpgemmOptions, *, numeric: bool) -> int:
        """L1 hashmap capacity: key + chain pointer (+ value)."""
        entry = 4 + 4 + (opts.value_dtype.itemsize if numeric else 0)
        return max(1, opts.device.scratchpad_bytes // entry)

    def _build_ops(
        self, *, temps, nnz_rows, a_lengths, rows, cols, nnz_a, b_rows, opts
    ):
        cfg = opts.device
        make = lambda: self._fresh_meter(opts)  # noqa: E731
        ops: list = []

        # ---- PART: product counts and team partition (device-wide) --
        m = make()
        m.global_read(rows + 1, 4)
        m.global_read(nnz_a, 4)
        if nnz_a:
            m.global_read(min(nnz_a, b_rows), 4, coalesced=False)
        m.alu(2 * nnz_a + rows)
        m.scan(rows)
        m.global_write(rows, 4)

        # contiguous row blocks, one team each; a block closes once it
        # holds elements_per_block temporary products (huge rows get a
        # block of their own — the L2 spill absorbs them)
        cap_temp = cfg.elements_per_block
        blocks: list[tuple[int, int]] = []
        start = 0
        acc = 0
        for r in range(rows):
            t = int(temps[r])
            if acc and acc + t > cap_temp:
                blocks.append((start, r))
                start, acc = r, 0
            acc += t
        if rows:
            blocks.append((start, rows))
        ops.append(_DevicePass("PART", "partition", m, {"blocks": len(blocks)}))

        def phase(stage: str, numeric: bool) -> _Launch:
            l1 = self._l1_entries(opts, numeric=numeric)
            entry_bytes = 4 + 4 + (opts.value_dtype.itemsize if numeric else 0)
            works = []
            for bid, (lo, hi) in enumerate(blocks):
                bm = make()
                blk_temps = temps[lo:hi]
                temp_blk = int(blk_temps.sum())
                spilled = 2 * blk_temps > l1
                l2_temp = int(blk_temps[spilled].sum())
                l1_temp = temp_blk - l2_temp
                used = min(l1, 2 * temp_blk)
                high_water = 0
                if used:
                    scratch = Scratchpad.for_device(cfg)
                    scratch.alloc("l1", used * entry_bytes)
                    high_water = scratch.high_water
                bm.global_read(2, 4)  # block descriptor
                bm.global_read(
                    int(a_lengths[lo:hi].sum()), opts.element_bytes if numeric else 4
                )
                bm.global_read(
                    temp_blk, opts.element_bytes if numeric else 4, coalesced=False
                )
                bm.scratchpad(used)  # head-array init
                bm.hash_probe(l1_temp, in_scratchpad=True)
                bm.alu(self.chain_alu * l1_temp)  # chain chase
                bm.hash_probe(l2_temp, in_scratchpad=False)
                bm.alu(self.chain_alu * l2_temp)
                nnz_blk = int(nnz_rows[lo:hi].sum())
                if numeric:
                    bm.flops(2 * temp_blk)
                    l2_nnz = int(nnz_rows[lo:hi][spilled].sum())
                    if l2_nnz:
                        bm.global_read(l2_nnz, opts.element_bytes, coalesced=False)
                    # compaction traversal instead of a per-row sort
                    bm.scratchpad(2 * nnz_blk)
                    bm.alu(2 * nnz_blk)
                    bm.global_write(nnz_blk, opts.element_bytes)
                else:
                    bm.global_write(hi - lo, 4)  # per-row nnz counts
                works.append(_BlockWork(bid, lo, hi - 1, bm, high_water))
            return _Launch(stage, 0, works)

        if blocks:
            ops.append(phase("SYM", numeric=False))

        m = make()
        m.global_read(rows, 4)
        m.scan(rows)
        m.global_write(rows + 1, 4)
        ops.append(_DevicePass("OUT", "row_ptr", m, {}))

        if blocks:
            ops.append(phase("NUM", numeric=True))

        l1_num = self._l1_entries(opts, numeric=True)
        spill_temps = temps[2 * temps > l1_num]
        info = {
            "n_blocks": len(blocks),
            # L2 spill pool: chained (key, value, next) nodes
            "global_table_bytes": int(
                (2 * spill_temps).sum() * (opts.element_bytes + 4)
            ),
            "helper_bytes": 8 * rows + 4 * (rows + 1),
        }
        return ops, info

"""First-class SpGEMM engine registry and adaptive selection.

See ``docs/ARCHITECTURE.md`` §10.  Importing this package registers
the built-in engines: ``ac-spgemm``, ``hash-spgemm`` (nsparse-style
binned scratchpad hash), ``hashmap-spgemm`` (Deveci-style multi-level
hashmap) and ``adaptive`` (per-multiply routing over the other three).
"""

from .base import Backend
from .registry import (
    available_backends,
    get_backend,
    is_backend,
    register_backend,
    run_backend,
)
from .selector import AdaptiveSelector, SelectionFeatures, collect_features

__all__ = [
    "AdaptiveSelector",
    "Backend",
    "SelectionFeatures",
    "available_backends",
    "collect_features",
    "get_backend",
    "is_backend",
    "register_backend",
    "run_backend",
]

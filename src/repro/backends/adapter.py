"""Adapter presenting registered backends through the common
``SpGEMMAlgorithm`` interface, so the bench harness and the campaign
runner treat a backend exactly like a baseline.

Mirrors :class:`repro.baselines.acspgemm_adapter.AcSpgemm`: the full
:class:`~repro.core.acspgemm.AcSpgemmResult` rides along on the run as
``ac_result``, and the selector's routing outcome as ``dispatched_to``.
"""

from __future__ import annotations

import numpy as np

from ..core.options import AcSpgemmOptions
from ..gpu.config import DeviceConfig, TITAN_XP
from ..gpu.cost import CostConstants, DEFAULT_COSTS
from .registry import get_backend

__all__ = ["BackendAlgorithm"]

from ..baselines.base import SpGEMMAlgorithm, SpGEMMRun


class BackendAlgorithm(SpGEMMAlgorithm):
    """One registered backend wrapped for the bench/campaign line-up."""

    def __init__(
        self,
        backend_name: str,
        device: DeviceConfig = TITAN_XP,
        costs: CostConstants = DEFAULT_COSTS,
        options: AcSpgemmOptions | None = None,
    ) -> None:
        super().__init__(device=device, costs=costs)
        self._backend = get_backend(backend_name)
        self.name = self._backend.name
        self.bit_stable = self._backend.bit_stable
        self._options = options

    def options_for(self, dtype) -> AcSpgemmOptions:
        base = self._options or AcSpgemmOptions(device=self.device, costs=self.costs)
        return base.with_(
            value_dtype=np.dtype(dtype), device=self.device, costs=self.costs
        )

    def multiply(self, a, b, *, dtype=np.float64, scheduler_seed: int = 0) -> SpGEMMRun:
        result = self._backend.run(
            a, b, self.options_for(dtype), scheduler_seed=scheduler_seed
        )
        run = SpGEMMRun(
            matrix=result.matrix,
            algorithm=self.name,
            cycles=result.total_cycles,
            counters=result.counters,
            clock_ghz=result.clock_ghz,
            bit_stable=self.bit_stable,
            extra_memory_bytes=result.memory.helper_bytes
            + result.memory.chunk_pool_bytes,
            stage_cycles=dict(result.stage_cycles),
        )
        run.ac_result = result
        if result.dispatched_to is not None:
            run.dispatched_to = result.dispatched_to
        return run

    def _execute(self, *args, **kwargs):  # pragma: no cover - not used
        raise NotImplementedError("BackendAlgorithm overrides multiply")


def _backend_factory(backend_name: str):
    """An ``ALL_ALGORITHMS``-compatible constructor for one backend."""

    def factory(device=TITAN_XP, costs=DEFAULT_COSTS, options=None):
        return BackendAlgorithm(
            backend_name, device=device, costs=costs, options=options
        )

    factory.name = backend_name
    return factory

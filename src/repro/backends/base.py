"""Backend protocol for first-class SpGEMM engines.

A *backend* is a full simulated-GPU SpGEMM implementation: it runs
through ``repro.gpu`` (scratchpad occupancy, traffic counters, kernel
scheduling), emits a span tree, optionally records a device trace, and
returns the same :class:`~repro.core.acspgemm.AcSpgemmResult` the
AC-SpGEMM driver produces — so every downstream consumer (bench
harness, campaign runner, serve daemon, analyzers) works unchanged.

This is the tier above the ``baselines`` package: baselines are
host-side cost sketches compared in a lineup; backends are engines a
multiply can actually be routed to, including by the adaptive selector
(the paper's §5 "choose between alternative approaches" future work).
"""

from __future__ import annotations

import numpy as np

from ..core.options import AcSpgemmOptions
from ..gpu.cost import CostMeter
from ..obs.device import DeviceTrace
from ..obs.span import SpanRecorder

__all__ = ["Backend"]


class Backend:
    """One registered SpGEMM engine.

    Subclasses set ``name`` / ``bit_stable`` and implement :meth:`run`
    plus :meth:`predict_cycles` (the closed-form cost estimate the
    adaptive selector ranks engines by).
    """

    #: registry key; also what ``--engine`` and ``dispatched_to`` carry
    name: str = "abstract"
    #: True when repeated runs (any scheduler seed) are byte-identical
    #: to the sorted-accumulation reference product
    bit_stable: bool = True

    def run(
        self,
        a,
        b,
        options: AcSpgemmOptions | None = None,
        *,
        spans: SpanRecorder | None = None,
        dtrace: DeviceTrace | None = None,
        scheduler_seed: int = 0,
    ):
        """Compute ``C = A @ B`` on the simulated device.

        ``spans``/``dtrace`` support nesting inside a caller's recording
        context (the adaptive selector); by default the backend owns
        both.  Returns an :class:`~repro.core.acspgemm.AcSpgemmResult`.
        """
        raise NotImplementedError

    def predict_cycles(self, features, options: AcSpgemmOptions) -> float:
        """Estimated total cycles for a multiply with these
        :class:`~repro.backends.selector.SelectionFeatures` — computed
        from the same cost constants the engine charges, so predictions
        track the model instead of hand-tuned thresholds."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    @staticmethod
    def _finish_spans(spans: SpanRecorder, owns: bool, anchor, **attrs):
        """Close an owned recorder, or unwind to the injected anchor."""
        if owns:
            return spans.close(**attrs)
        while spans.current is not anchor:
            spans.finish()
        spans.finish(**attrs)
        return anchor

    @staticmethod
    def _fresh_meter(opts: AcSpgemmOptions) -> CostMeter:
        return CostMeter(config=opts.device, constants=opts.costs)

    @staticmethod
    def _key_bits(n_cols: int) -> int:
        """Sort-key width for full column indices."""
        return max(1, int(np.ceil(np.log2(max(2, n_cols)))))

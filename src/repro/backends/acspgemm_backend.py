"""AC-SpGEMM as a registered backend.

A thin adapter: the driver in ``repro.core.acspgemm`` already produces
the full result contract; this class adds the registry name, the
span/device-trace injection passthrough the selector needs, and the
partition-faithful cycle prediction used for routing.
"""

from __future__ import annotations

import numpy as np

from ..core.acspgemm import ac_spgemm
from ..core.options import AcSpgemmOptions, DEFAULT_OPTIONS
from ..gpu.radix import bits_required
from ..gpu.scheduler import schedule_blocks
from .base import Backend
from .registry import register_backend

__all__ = ["AcSpgemmBackend"]


@register_backend
class AcSpgemmBackend(Backend):
    """The paper's adaptive chunk-based ESC pipeline."""

    name = "ac-spgemm"
    bit_stable = True

    def run(self, a, b, options=None, *, spans=None, dtrace=None, scheduler_seed=0):
        # bit-stable by construction: the scheduler seed cannot change
        # the sorted accumulation order, so it is ignored
        return ac_spgemm(a, b, options, spans=spans, dtrace=dtrace)

    def predict_cycles(self, features, options: AcSpgemmOptions | None = None) -> float:
        """Sum of the predicted per-stage makespans."""
        return float(sum(self.predict_stage_cycles(features, options).values()))

    def predict_stage_cycles(
        self, features, options: AcSpgemmOptions | None = None
    ) -> dict[str, float]:
        """Per-stage cycle prediction replaying the pipeline's shape.

        Rebuilds the decisions the driver would actually take from the
        Table-2 row statistics: the GLB partition (uniform slices of
        A's non-zeros), per-block ESC iteration counts, the shared rows
        produced by block and iteration cuts, the Multi/Path Merge
        split and the capacity-packed merge groups.  Every term is
        charged to a meter and scheduled over the SMs exactly like the
        execution, so the estimate moves with the cost constants and
        tracks the measured stage makespans to within a few percent —
        close enough for the adaptive selector to resolve engine gaps
        of ~5%.
        """
        opts = options or DEFAULT_OPTIONS
        cfg = opts.device
        costs = opts.costs
        launch = costs.kernel_launch_cycles
        eb = opts.element_bytes
        f = features

        if f.nnz_a == 0 or f.temp_products == 0:
            # GLB over an empty partition plus the trivial output pass
            m = self._fresh_meter(opts)
            m.global_read(f.rows + 1, 8)
            m.scan(f.rows)
            return {"GLB": launch + m.cycles / cfg.num_sms, "CC": launch}

        temps = np.asarray(f.row_temps, dtype=np.int64)
        lens = np.asarray(f.row_lengths_a, dtype=np.int64)
        npb = cfg.nnz_per_block_glb
        epb = cfg.elements_per_block
        n_blocks = -(-f.nnz_a // npb)
        bounds = np.minimum(np.arange(n_blocks + 1) * npb, f.nnz_a)
        cum_e = np.concatenate([[0], np.cumsum(lens)])
        cum_t = np.concatenate([[0], np.cumsum(temps)])
        # per-block temp load / row span, linearly interpolated within
        # rows (entries of one row share its temp count uniformly)
        t_at = np.interp(bounds, cum_e, cum_t)
        r_at = np.interp(bounds, cum_e, np.arange(f.rows + 1))
        block_t = np.diff(t_at)
        block_e = np.diff(bounds)
        block_r = np.maximum(1.0, np.diff(r_at))

        compaction = max(1.0, f.compaction)
        span_cols = max(2.0, f.span_fraction * max(f.cols, 2))
        col_bits = int(
            np.clip(
                np.ceil(np.log2(span_cols)), 4, bits_required(max(f.cols - 1, 1))
            )
        )
        if not opts.enable_bit_reduction:
            col_bits = bits_required(max(f.cols - 1, 1))

        # ---- ESC: one meter per GLB block, scheduled over the SMs ----
        block_cycles = []
        for e, t, rws in zip(block_e, block_t, block_r):
            m = self._fresh_meter(opts)
            e = int(e)
            # A fetch, local row ids, unique-row count, B row lengths
            m.global_read(e, eb)
            m.global_read(e, 4)
            m.alu(2 * e)
            m.global_read(e, 8, coalesced=False)
            n_it = max(1, int(np.ceil(t / epb)))
            row_bits = bits_required(int(rws))
            tb = t / n_it
            w = (t / compaction) / n_it
            for _ in range(n_it):
                m.global_read(int(tb), eb)  # expansion gather
                m.flops(int(2 * tb))
                m.scan(int(2 * tb))  # min/max bit-reduction sweeps
                m.radix_sort(int(tb), row_bits + col_bits)
                m.scan(int(tb))  # compaction scan
                m.alu(int(2 * tb))  # neighbour comparisons
                m.scratchpad(int(2 * w))  # chunk staging round trip
                m.global_write(int(w), eb)
                m.global_write(1, 32)  # chunk header
            block_cycles.append(m.cycles)
        esc = schedule_blocks(
            block_cycles, cfg.num_sms, launch_overhead=launch
        ).makespan_cycles

        glb = self._fresh_meter(opts)
        glb.global_read(f.rows + 1, 8)
        glb.global_write(n_blocks, 4)
        glb.alu(2 * f.rows)
        stage_glb = launch + glb.cycles / cfg.num_sms

        # ---- shared rows: block cuts plus iteration-overflow cuts ----
        interior = bounds[1:-1]
        cut_pos = interior[~np.isin(interior, cum_e)]
        cuts = np.zeros(f.rows, dtype=np.int64)
        np.add.at(cuts, np.searchsorted(cum_e, cut_pos, "right") - 1, 1)
        # a row also splits across chunks when its compacted tail cannot
        # be carried between ESC iterations (keep-last-row capacity)
        remaining = np.maximum(1, temps // int(max(1.0, compaction)))
        overflow = remaining > cfg.keep_elements
        cuts += np.where(overflow, np.maximum(0, -(-temps // epb) - 1), 0)
        shared_rows = np.nonzero(cuts > 0)[0]
        n_shared = int(shared_rows.size)
        n_chunks_r = cuts[shared_rows] + 1
        rem_r = remaining[shared_rows]

        mcc = self._fresh_meter(opts)
        mcc.scan(n_shared)
        mcc.global_read(n_shared, 8)
        stage_mcc = launch + mcc.cycles / cfg.num_sms

        mm_mask = (n_chunks_r <= opts.multi_merge_max_chunks) & (rem_r <= epb)

        def merge_block_cost(n_rows: int, elems: int, n_segs: int) -> float:
            m = self._fresh_meter(opts)
            # gather: each segment is its own (transaction-quantised) read
            seg = max(1, int(elems / max(1, n_segs)))
            for _ in range(int(n_segs)):
                m.global_read(seg, eb)
            m.scan(int(2 * elems))  # min/max reduction
            m.radix_sort(
                int(elems), bits_required(max(1, int(n_rows) - 1)) + col_bits
            )
            m.scan(int(elems))
            m.alu(int(2 * elems))
            m.scratchpad(int(2 * elems))
            m.global_write(int(elems), eb)
            m.global_write(1, 32)
            m.atomic(int(n_rows))
            return m.cycles

        # ---- MM: greedy capacity packing, one block per group --------
        stage_mm = launch
        if mm_mask.any():
            mm_rem = rem_r[mm_mask]
            mm_chunks = n_chunks_r[mm_mask]
            csum = np.cumsum(mm_rem)
            group_id = (csum - mm_rem) // epb
            group_costs = [
                merge_block_cost(
                    int(sel.sum()),
                    int(mm_rem[sel].sum()),
                    int(mm_chunks[sel].sum()),
                )
                for gid in np.unique(group_id)
                for sel in ((group_id == gid),)
            ]
            stage_mm = schedule_blocks(
                group_costs, cfg.num_sms, launch_overhead=launch
            ).makespan_cycles

        # ---- PM/SM: one block per oversized shared row ---------------
        stage_pm = 0.0
        if (~mm_mask).any():
            pm_costs = [
                merge_block_cost(1, int(r), int(c))
                for r, c in zip(rem_r[~mm_mask], n_chunks_r[~mm_mask])
            ]
            stage_pm = schedule_blocks(
                pm_costs, cfg.num_sms, launch_overhead=launch
            ).makespan_cycles

        # ---- CC: row pointer scan + chunk copy -----------------------
        est_nnz = max(1.0, f.est_nnz_c)
        cc = self._fresh_meter(opts)
        cc.scan(f.rows)
        cc.global_read(f.rows, 4)
        cc.global_write(f.rows + 1, 8)
        cc.global_read(int(est_nnz), eb)
        cc.global_write(int(est_nnz), eb)
        stage_cc = launch + cc.cycles / cfg.num_sms

        return {
            "GLB": stage_glb,
            "ESC": esc,
            "MCC": stage_mcc,
            "MM": stage_mm,
            "PM": stage_pm,
            "CC": stage_cc,
        }

"""Adaptive engine selection (§5 "choose between alternative approaches").

The selector runs one cheap inspection kernel — the Table-2-style row
statistics plus the OCEAN-style sampled output estimate — and routes
the multiply to whichever registered engine predicts the fewest cycles
for that structure.  The probe is charged like any device pass: its
cycles land in a ``SEL`` stage, its traffic in the result counters,
and its device-trace record reconciles exactly; the chosen engine then
runs *inside* the selector's span tree, so a traced adaptive run looks
like one pipeline with a routing prologue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.util import row_temp_counts
from ..core.estimate_sampling import sampled_output_estimate
from ..core.options import AcSpgemmOptions, DEFAULT_OPTIONS
from ..gpu.counters import TrafficCounters
from ..obs.device import DeviceTrace
from ..obs.flight import get_flight_recorder
from ..obs.span import SpanRecorder
from ..obs.trace import current_trace_attrs, trace_note
from .base import Backend
from .registry import get_backend, register_backend

__all__ = ["SelectionFeatures", "collect_features", "AdaptiveSelector"]

#: rows of B sampled for the column-span probe (as in HybridAdaptive)
SPAN_SAMPLE_ROWS = 64


@dataclass
class SelectionFeatures:
    """Table-2-style statistics of one multiply, plus sampled estimates."""

    rows: int
    cols: int
    inner: int
    nnz_a: int
    nnz_b: int
    temp_products: int
    mean_row_a: float
    max_row_a: float
    mean_temp_row: float
    max_temp_row: int
    #: temporary products per A non-zero (the expansion factor)
    expansion: float
    #: OCEAN-style sampled estimate of nnz(C)
    est_nnz_c: float
    #: temp products per (estimated) output entry — the compaction ratio
    compaction: float
    #: mean sampled B-row column spread over the matrix width (0.0 for
    #: width-degenerate B — the guard HybridAdaptive was missing)
    span_fraction: float
    row_temps: np.ndarray = field(repr=False, default=None)
    row_lengths_a: np.ndarray = field(repr=False, default=None)


def collect_features(a, b, meter=None, *, seed: int = 0) -> SelectionFeatures:
    """One inspection pass over the operands, charged to ``meter``.

    Degenerate inputs (0×n, n×0, zero nnz, ``b.cols == 0``) produce
    well-defined all-zero statistics instead of division errors.
    """
    a_lengths = np.asarray(a.row_lengths(), dtype=np.int64)
    temps = np.asarray(row_temp_counts(a, b), dtype=np.int64)
    temp = int(temps.sum())
    if meter is not None:
        meter.global_read(a.rows + 1, 4)
        meter.global_read(a.nnz, 4)
        if a.nnz:
            meter.global_read(min(a.nnz, b.rows), 4, coalesced=False)
        meter.alu(2 * a.nnz + a.rows)

    # column-span probe: first/last column id of sampled B rows
    span_fraction = 0.0
    if b.cols > 0 and b.nnz > 0:
        step = max(1, b.rows // SPAN_SAMPLE_ROWS)
        spreads = []
        sampled_reads = 0
        for r in range(0, b.rows, step):
            lo, hi = b.row_ptr[r], b.row_ptr[r + 1]
            sampled_reads += 2
            if hi - lo >= 2:
                sampled_reads += 2
                spreads.append(int(b.col_idx[hi - 1] - b.col_idx[lo]))
        if meter is not None:
            meter.global_read(sampled_reads, 4, coalesced=False)
        if spreads:
            span_fraction = float(np.mean(spreads)) / b.cols

    est_nnz_c = sampled_output_estimate(a, b, seed=seed, meter=meter)
    return SelectionFeatures(
        rows=a.rows,
        cols=b.cols,
        inner=a.cols,
        nnz_a=a.nnz,
        nnz_b=b.nnz,
        temp_products=temp,
        mean_row_a=float(a_lengths.mean()) if a.rows else 0.0,
        max_row_a=float(a_lengths.max()) if a.rows else 0.0,
        mean_temp_row=temp / a.rows if a.rows else 0.0,
        max_temp_row=int(temps.max()) if a.rows else 0,
        expansion=temp / a.nnz if a.nnz else 0.0,
        est_nnz_c=est_nnz_c,
        compaction=temp / est_nnz_c if est_nnz_c > 0 else 1.0,
        span_fraction=span_fraction,
        row_temps=temps,
        row_lengths_a=a_lengths,
    )


@register_backend
class AdaptiveSelector(Backend):
    """Route each multiply to the engine predicting the fewest cycles."""

    name = "adaptive"
    #: the hash engines may be selected
    bit_stable = False

    #: candidate order doubles as the deterministic tie-break: the
    #: bit-stable reference engine wins exact ties
    candidates = ("ac-spgemm", "hash-spgemm", "hashmap-spgemm")

    def select(self, features, options: AcSpgemmOptions | None = None) -> str:
        """The candidate with the lowest predicted cycle count."""
        opts = options or DEFAULT_OPTIONS
        if features.temp_products == 0:
            # nothing to multiply: any engine is free; keep bit-stable
            return self.candidates[0]
        best_name = None
        best = float("inf")
        for name in self.candidates:
            predicted = get_backend(name).predict_cycles(features, opts)
            if predicted < best:
                best_name, best = name, predicted
        return best_name

    def predictions(self, features, options: AcSpgemmOptions | None = None):
        """Per-candidate predicted cycles (bench/debug helper)."""
        opts = options or DEFAULT_OPTIONS
        return {
            name: get_backend(name).predict_cycles(features, opts)
            for name in self.candidates
        }

    def predict_cycles(self, features, options: AcSpgemmOptions | None = None) -> float:
        opts = options or DEFAULT_OPTIONS
        return min(
            get_backend(name).predict_cycles(features, opts)
            for name in self.candidates
        )

    def run(self, a, b, options=None, *, spans=None, dtrace=None, scheduler_seed=0):
        opts = options or DEFAULT_OPTIONS
        if a.cols != b.rows:
            raise ValueError(
                f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
            )
        cfg = opts.device
        launch = opts.costs.kernel_launch_cycles
        owns_spans = spans is None
        if owns_spans:
            spans = SpanRecorder(clock_ghz=cfg.clock_ghz)
        anchor = spans.start(
            "adaptive",
            rows=a.rows,
            inner=a.cols,
            cols=b.cols,
            nnz_a=a.nnz,
            nnz_b=b.nnz,
        )
        if dtrace is None and opts.device_trace:
            dtrace = DeviceTrace(clock_ghz=cfg.clock_ghz, num_sms=cfg.num_sms)

        # the routing probe is one fused inspection kernel: the
        # statistics gather and the sampled symbolic estimate share a
        # launch, so the device-side work parallelises over the SMs and
        # exactly one launch overhead reaches the makespan
        probe = self._fresh_meter(opts)
        features = collect_features(a, b, probe)
        preds = self.predictions(features, opts)
        choice = self.select(features, opts)
        trace_note("selector.choice", choice)
        sel_cycles = (
            probe.cycles
            - probe.counters.kernel_launches * launch
        ) / cfg.num_sms + launch
        probe.counters.kernel_launches = 1
        if dtrace is not None:
            dtrace.record_device_wide(
                "SEL",
                "select",
                start_cycle=spans.now,
                cycles=sel_cycles,
                counters=probe.counters.snapshot(),
            )
        spans.leaf(
            "select",
            sel_cycles,
            stage="SEL",
            engine=choice,
            est_nnz_c=int(features.est_nnz_c),
            expansion=round(features.expansion, 3),
        )

        inner = get_backend(choice)
        result = inner.run(
            a,
            b,
            opts,
            spans=spans,
            dtrace=dtrace,
            scheduler_seed=scheduler_seed,
        )
        result.stage_cycles = {"SEL": sel_cycles, **result.stage_cycles}
        merged = TrafficCounters()
        merged.merge(probe.counters)
        merged.merge(result.counters)
        result.counters = merged
        result.spans = self._finish_spans(
            spans, owns_spans, anchor, dispatched_to=choice
        )
        result.dispatched_to = choice

        # flight-recorder dispatch event: the predicted makespan of each
        # candidate against what the routed engine actually spent (the
        # run minus the probe itself), with the per-decision regret
        # bound.  No wall-clock fields — replays log byte-identically.
        actual = result.total_cycles - sel_cycles
        predicted_chosen = float(preds[choice])
        abs_error = abs(actual - predicted_chosen)
        audit = {
            "kind": "dispatch",
            "chosen": choice,
            "predicted": {k: float(preds[k]) for k in sorted(preds)},
            "predicted_chosen": predicted_chosen,
            "actual_cycles": float(actual),
            "abs_error": abs_error,
            "rel_error": abs_error / actual if actual > 0 else 0.0,
            "regret_bound": max(0.0, actual - min(preds.values())),
            "degraded": result.degraded,
            "rows": a.rows,
            "cols": b.cols,
            "nnz_a": a.nnz,
            "nnz_b": b.nnz,
            "temp_products": features.temp_products,
            **current_trace_attrs(),
        }
        result.routing_audit = get_flight_recorder().record(audit)
        return result

"""Plugin-style registry of first-class SpGEMM backends.

Engines self-register at import time via the :func:`register_backend`
decorator; consumers look them up by name.  The registry deliberately
mirrors the lightweight plugin-registry shape (a module-level dict, a
registration decorator with duplicate detection, and enumeration
helpers) rather than an entry-point mechanism: every engine ships in
this package and determinism matters more than late binding.

``available_backends()`` is the single source of truth for what
``--engine`` accepts beyond the host execution engines, what the
campaign validates against, and what the CI registry smoke enumerates.
"""

from __future__ import annotations

__all__ = [
    "register_backend",
    "get_backend",
    "available_backends",
    "is_backend",
    "run_backend",
]

#: name -> Backend subclass (not instance: backends are stateless, but
#: a fresh instance per lookup keeps accidental state from leaking)
_BACKENDS: dict[str, type] = {}


def register_backend(cls):
    """Class decorator: register a :class:`~repro.backends.base.Backend`.

    Raises on duplicate names — two engines silently shadowing each
    other is exactly the failure mode a registry exists to prevent.
    """
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"backend {cls.__name__} must set a concrete name")
    if name in _BACKENDS:
        raise ValueError(
            f"duplicate backend name {name!r}: "
            f"{_BACKENDS[name].__name__} is already registered"
        )
    _BACKENDS[name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the engine modules so their decorators have run."""
    from . import acspgemm_backend, hash_engines, selector  # noqa: F401


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted for deterministic enumeration."""
    _ensure_loaded()
    return tuple(sorted(_BACKENDS))


def is_backend(name: str) -> bool:
    """True when ``name`` is a registered backend."""
    _ensure_loaded()
    return name in _BACKENDS


def get_backend(name: str):
    """A fresh instance of the backend registered under ``name``."""
    _ensure_loaded()
    try:
        cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise KeyError(f"unknown backend {name!r}; registered: {known}") from None
    return cls()


def run_backend(name: str, a, b, options=None, **kwargs):
    """Convenience: look up ``name`` and run one multiply."""
    return get_backend(name).run(a, b, options, **kwargs)

"""The original per-block execution path, unchanged.

One :class:`~repro.gpu.block.BlockContext` per simulated block per
round; blocks are stepped sequentially in block order, mutating the
shared chunk pool and row tracker directly.  This is the semantic
ground truth the other engines replicate.
"""

from __future__ import annotations

import numpy as np

from ..core.chunks import PoolExhausted
from ..core.output import copy_chunks
from ..gpu.block import BlockContext
from .base import Engine, EngineContext, RoundOutcome

__all__ = ["ReferenceEngine"]


class ReferenceEngine(Engine):
    """Step every simulated block one at a time (the seed behaviour)."""

    name = "reference"

    def esc_round(self, ectx: EngineContext, pending: list) -> list[RoundOutcome]:
        opts = ectx.options
        self.count("esc_rounds")
        self.count("blocks_stepped", len(pending))
        out: list[RoundOutcome] = []
        for blk in pending:
            ctx = BlockContext(
                config=opts.device, block_id=blk.block_id, constants=opts.costs
            )
            if opts.device_trace:
                ctx.meter.sort_log = []
            outcome = blk.run(ctx, ectx.pool, ectx.tracker)
            out.append(
                RoundOutcome(
                    outcome.cycles,
                    outcome.done,
                    ctx.meter.counters,
                    scratch_high_water=ctx.scratchpad.high_water,
                    sort_log=tuple(ctx.meter.sort_log or ()),
                )
            )
        return out

    def merge_round(
        self, ectx: EngineContext, stage: str, workers: list
    ) -> list[RoundOutcome]:
        opts = ectx.options
        self.count("merge_rounds")
        self.count("merge_workers_stepped", len(workers))
        out: list[RoundOutcome] = []
        for idx, w in enumerate(workers):
            ctx = BlockContext(
                config=opts.device, block_id=idx, constants=opts.costs
            )
            if opts.device_trace:
                ctx.meter.sort_log = []
            if stage == "MM":
                # Multi Merge restart starts from scratch (§3.3)
                try:
                    w.run(ctx, ectx.tracker, ectx.pool, ectx.b, opts)
                    done = True
                except PoolExhausted:
                    done = False
            else:
                done = w.run(ctx, ectx.tracker, ectx.pool, ectx.b, opts)
            out.append(
                RoundOutcome(
                    ctx.meter.cycles,
                    done,
                    ctx.meter.counters,
                    scratch_high_water=ctx.scratchpad.high_water,
                    sort_log=tuple(ctx.meter.sort_log or ()),
                )
            )
        return out

    def copy_output(
        self, ectx: EngineContext, row_ptr: np.ndarray, counter_sink
    ):
        self.count("copy_launches")
        return copy_chunks(
            ectx.pool, ectx.tracker, row_ptr, ectx.b, ectx.options, counter_sink
        )

"""Engine interface shared by all host execution strategies.

An engine executes one *round* (one simulated kernel launch) of a
block-level stage: the ESC restart loop, the three merge kernels and the
final chunk copy.  The driver (:mod:`repro.core.acspgemm`) owns the
restart loop, scheduling and stage accounting; the engine only decides
*how the host steps the blocks* and must report, per block, exactly the
cycles and counters the reference per-block execution would have
charged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chunks import ChunkPool, RowChunkTracker
from ..core.load_balance import GlobalLoadBalance
from ..core.options import AcSpgemmOptions
from ..gpu.counters import TrafficCounters
from ..sparse.csr import CSRMatrix

__all__ = ["EngineContext", "RoundOutcome", "Engine"]


@dataclass
class EngineContext:
    """Shared pipeline state handed to every engine call."""

    a: CSRMatrix
    b: CSRMatrix
    glb: GlobalLoadBalance
    options: AcSpgemmOptions
    pool: ChunkPool
    tracker: RowChunkTracker


@dataclass
class RoundOutcome:
    """Per-block result of one kernel round.

    ``cycles`` feeds the SM scheduler (makespan / mpL); ``counters`` are
    merged device-wide; ``done=False`` re-queues the block for the next
    round after a pool growth.
    """

    cycles: float
    done: bool
    counters: TrafficCounters
    #: device-trace extras (populated only when ``options.device_trace``):
    #: the block's scratchpad high-water mark in bytes and the radix sorts
    #: it executed this round as ``(n_elements, key_bits)`` tuples
    scratch_high_water: int = 0
    sort_log: tuple = ()


class Engine:
    """Host execution strategy for the block-level stages.

    ``host_stats`` is per-instance host-side telemetry (blocks stepped,
    fused launches, thread-pool tasks...).  Unlike every simulated
    statistic it is *engine-specific by design* — the observability layer
    exports it under ``repro_host_ops_total`` and excludes it from the
    cross-engine parity comparisons.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.host_stats: dict[str, int] = {}

    def count(self, key: str, n: int = 1) -> None:
        """Bump one host-telemetry counter."""
        self.host_stats[key] = self.host_stats.get(key, 0) + n

    def esc_round(self, ectx: EngineContext, pending: list) -> list[RoundOutcome]:
        """Run one ESC kernel launch over the pending blocks."""
        raise NotImplementedError

    def merge_round(
        self, ectx: EngineContext, stage: str, workers: list
    ) -> list[RoundOutcome]:
        """Run one merge kernel launch (stage in {"MM", "PM", "SM"})."""
        raise NotImplementedError

    def copy_output(
        self, ectx: EngineContext, row_ptr: np.ndarray, counter_sink
    ) -> tuple[CSRMatrix, list[float]]:
        """Stage 4 chunk copy; returns the matrix and per-chunk cycles."""
        raise NotImplementedError

"""Pluggable host execution engines for the block-level stages.

The simulator's observable outputs — the result matrix, per-stage cycle
counts, traffic counters, restart counts, multiprocessor load and the
Table 3 memory statistics — are fully determined by the pipeline's
semantics, not by how the host happens to step the simulated blocks.
That makes the *host execution strategy* pluggable:

``reference``
    The original path: every simulated thread block is stepped one at a
    time in pure Python (:mod:`repro.engine.reference`).  Simple,
    obviously correct, slow.
``batched``
    All ready blocks of a kernel launch are fused into flat numpy
    batches (:mod:`repro.engine.batched`): expansion via one global
    ``searchsorted``, the per-block stable LSD radix sorts replaced by a
    single composite-key ``np.argsort(kind="stable")`` over
    ``(block_id << key_bits) | key``, segment-boundary flags for
    compaction and ``np.add.reduceat`` for accumulation.  Charges the
    identical per-block :class:`~repro.gpu.cost.CostMeter` numbers.
``parallel``
    The unmodified per-block code on a thread pool
    (:mod:`repro.engine.parallel`), with allocations recorded against
    shadow objects and committed serially in block order so pool
    exhaustion, chunk offsets and shared-row attribution stay
    deterministic.
``process``
    The parallel engine with ESC rounds forced onto persistent warm
    worker processes (:mod:`repro.engine.process`): operands travel
    once per pair via ``multiprocessing.shared_memory`` and workers map
    them zero-copy, sidestepping the GIL that caps the thread pool.

Every engine produces bit-identical results and identical simulated
statistics; they differ only in host wall-clock time (see
``benchmarks/bench_wallclock.py``).
"""

from __future__ import annotations

from .base import Engine, EngineContext, RoundOutcome

__all__ = ["Engine", "EngineContext", "RoundOutcome", "ENGINES", "get_engine"]


def get_engine(name: str) -> Engine:
    """Instantiate the engine registered under ``name``."""
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    return cls()


def _registry() -> dict:
    from .batched import BatchedEngine
    from .parallel import ParallelEngine
    from .process import ProcessEngine
    from .reference import ReferenceEngine

    return {
        ReferenceEngine.name: ReferenceEngine,
        BatchedEngine.name: BatchedEngine,
        ParallelEngine.name: ParallelEngine,
        ProcessEngine.name: ProcessEngine,
    }


class _LazyRegistry(dict):
    """Engine name -> class, resolved on first access (avoids importing
    every engine implementation at package import time)."""

    def _ensure(self) -> None:
        if not super().__len__():
            super().update(_registry())

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self) -> int:
        self._ensure()
        return super().__len__()

    def __contains__(self, key) -> bool:
        self._ensure()
        return super().__contains__(key)


ENGINES: dict = _LazyRegistry()

"""Optimistic execution with serial replay/commit.

The reference engine steps blocks **in block order**, and each block
stops at its *first* failed chunk-pool allocation — so which blocks hit
:class:`~repro.core.chunks.PoolExhausted` in a round depends on the
block-major allocation order.  A batched or parallel host cannot
preserve that order while executing, so it must not touch the shared
pool or tracker during execution.  Instead every block runs
*optimistically* against unlimited virtual space, recording an ordered
list of :class:`AllocationRecord`; afterwards :func:`replay_and_commit`
replays all allocations serially in block order against the real pool:

* a record that fits commits for real — the bump offset is fetched, the
  chunk registered, and its rows linked into the tracker;
* the first record that does not fit fails its block exactly as the
  reference would: the block's restart state is rolled back to the
  snapshot taken when the record was created, its cycles/counters are
  truncated to the pre-allocation snapshot, and the block's remaining
  records are discarded.

Shared-row attribution is the other order-dependent effect: the block
that inserts the *second* chunk of a row pays one extra atomic
(:meth:`RowChunkTracker.insert`).  Which block that is only becomes
known during the serial commit, so optimistic runs skip that charge and
the replay adds it to the committing block's cycles and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.chunks import Chunk, ChunkPool, RowChunkTracker
from ..gpu.cost import CostConstants, CostMeter
from ..gpu.counters import TrafficCounters
from .base import RoundOutcome

__all__ = ["AllocationRecord", "OptimisticRun", "replay_and_commit"]


@dataclass
class AllocationRecord:
    """One pool allocation attempted by an optimistically executed block.

    ``pre_cycles`` / ``pre_counters`` snapshot the block's meter just
    before the allocation (what the reference block would report when
    this allocation raises), ``restore`` the worker state to roll back
    to, and ``commit`` the tracker mutation to apply on success:
    ``("insert", rows, counts)`` links the chunk into each covered
    row's list, ``("replace", rows, counts)`` swaps merged rows over,
    and ``("none", (), ())`` registers the chunk in the pool without
    touching the tracker (iterative merges defer their row swap to the
    run's ``final_commit``, because the replacement spans every chunk
    the worker produced, across rounds).
    """

    chunk: Chunk
    nbytes: int
    pre_cycles: float
    pre_counters: TrafficCounters
    commit: tuple
    restore: dict = field(default_factory=dict)
    #: device-trace snapshots taken with ``pre_cycles``: the scratchpad
    #: high-water mark and sort-log length at the moment the reference
    #: execution would have attempted (and failed) this allocation
    pre_scratch_high: int = 0
    pre_sort_len: int = 0


@dataclass
class OptimisticRun:
    """One block's optimistic execution: its meter, its allocation
    records in emission order, and how to finalise it."""

    worker: object
    meter: CostMeter
    records: list[AllocationRecord]
    #: applied on success with the final outcome cycles
    on_success: Callable[[object, float], None] | None = None
    #: applied on failure with the failing record and truncated cycles
    on_fail: Callable[[object, AllocationRecord, float], None] | None = None
    #: the block's scratchpad, when the stage uses one (device trace)
    scratchpad: object | None = None
    #: tracker mutation applied once all records committed — the
    #: reference executes it at the same point of the serial order (a
    #: retiring worker's last act, before the next block allocates)
    final_commit: Callable[[], None] | None = None


def snapshot_counters(c: TrafficCounters) -> TrafficCounters:
    """A value copy of a counter set (hot path: avoid dataclasses.replace)."""
    return TrafficCounters(
        c.global_bytes_read,
        c.global_bytes_written,
        c.global_transactions,
        c.scratchpad_accesses,
        c.atomic_ops,
        c.sorted_elements,
        c.sort_passes,
        c.flops,
        c.kernel_launches,
        c.host_round_trips,
        c.hash_probes,
        c.hash_collisions,
    )


def replay_and_commit(
    pool: ChunkPool,
    tracker: RowChunkTracker,
    runs: list[OptimisticRun],
    constants: CostConstants,
) -> list[RoundOutcome]:
    """Serially commit optimistic runs in list (block) order.

    Returns one :class:`RoundOutcome` per run with exactly the cycles
    and counters the reference execution would have produced.
    """
    outcomes: list[RoundOutcome] = []
    for run in runs:
        extra_shared = 0  # deferred second-chunk atomics committed so far
        failed: AllocationRecord | None = None
        for rec in run.records:
            # the same admission chokepoint as ChunkPool.allocate — the
            # fault-injection hook sees one attempt here exactly when the
            # reference execution would have attempted this allocation
            if not pool.admission_ok(rec.nbytes):
                failed = rec
                break
            rec.chunk.pool_offset = pool.offset.fetch_add(rec.nbytes)
            rec.chunk.nbytes = rec.nbytes
            pool.chunks.append(rec.chunk)
            kind, rows, counts = rec.commit
            if kind == "insert":
                row_lists = tracker.row_lists
                row_counts = tracker.row_counts
                for row, count in zip(rows, counts):
                    lst = row_lists.setdefault(row, [])
                    lst.append(rec.chunk)
                    row_counts[row] += count
                    if len(lst) == 2:
                        tracker.shared_rows.append(row)
                        extra_shared += 1
            elif kind == "replace":
                for row, count in zip(rows, counts):
                    tracker.replace_row(row, [rec.chunk], count)
            # "none": pool registration only (final_commit owns the swap)

        correction = extra_shared * constants.atomic_cycles
        sort_log = run.meter.sort_log
        if failed is None:
            if run.final_commit is not None:
                run.final_commit()
            counters = snapshot_counters(run.meter.counters)
            counters.atomic_ops += extra_shared
            cycles = run.meter.cycles + correction
            if run.on_success is not None:
                run.on_success(run.worker, cycles)
            outcomes.append(
                RoundOutcome(
                    cycles,
                    True,
                    counters,
                    scratch_high_water=(
                        run.scratchpad.high_water if run.scratchpad is not None else 0
                    ),
                    sort_log=tuple(sort_log) if sort_log is not None else (),
                )
            )
        else:
            counters = snapshot_counters(failed.pre_counters)
            counters.atomic_ops += extra_shared
            cycles = failed.pre_cycles + correction
            if run.on_fail is not None:
                run.on_fail(run.worker, failed, cycles)
            # truncate the trace extras to the failure point, mirroring
            # what the reference block had done when the allocation raised
            outcomes.append(
                RoundOutcome(
                    cycles,
                    False,
                    counters,
                    scratch_high_water=failed.pre_scratch_high,
                    sort_log=(
                        tuple(sort_log[: failed.pre_sort_len])
                        if sort_log is not None
                        else ()
                    ),
                )
            )
    return outcomes

"""Opt-in parallel host dispatcher over independent blocks.

Runs the **unmodified** per-block code (:class:`~repro.core.esc.EscBlock`,
:class:`~repro.core.merge.MultiMergeBlock`) on a thread pool.  Blocks in
one kernel round are independent except for two shared mutations — the
chunk-pool bump allocator and the row tracker — so each block executes
against *shadow* objects that record its allocations without touching
shared state, and :func:`repro.engine.replay.replay_and_commit` then
applies them serially in block order.  That keeps pool exhaustion, chunk
offsets, shared-row attribution and therefore every simulated statistic
bit-identical to the reference engine.

Path and Search Merge rounds stay sequential (their workers keep
mid-run restart cursors that interact with the pool more intricately),
as does the final chunk copy; ESC dominates the host time anyway.

ESC rounds can instead be dispatched to persistent warm worker
*processes* (:mod:`repro.engine.process`): the per-block Python dispatch
is GIL-bound, so on multi-core hosts processes — fed the CSR operands
once via shared memory — parallelise what threads cannot.  MM rounds and
everything touching the real tracker stay on the persistent thread pool.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..gpu.block import BlockContext
from .base import EngineContext, RoundOutcome
from .reference import ReferenceEngine
from .replay import AllocationRecord, OptimisticRun, replay_and_commit, snapshot_counters

__all__ = ["ParallelEngine"]

#: one persistent pool for the whole process, sized from the machine —
#: constructing a fresh ThreadPoolExecutor per kernel round spends more
#: host time starting threads than small rounds spend computing
_SHARED_POOL: ThreadPoolExecutor | None = None


def shared_thread_pool() -> ThreadPoolExecutor:
    """The process-wide persistent executor (created on first use)."""
    global _SHARED_POOL
    if _SHARED_POOL is None:
        _SHARED_POOL = ThreadPoolExecutor(
            max_workers=os.cpu_count() or 1,
            thread_name_prefix="repro-engine",
        )
        atexit.register(_SHARED_POOL.shutdown)
    return _SHARED_POOL


class _ShadowPool:
    """Chunk-pool facade with unlimited virtual space.

    ``allocate`` never raises; it snapshots the meter (the state the
    reference would report if this allocation failed), charges the bump
    atomic and appends an :class:`AllocationRecord`.  The real offsets
    are assigned during the serial replay.
    """

    def __init__(
        self,
        real_pool,
        records: list,
        state_fn: Callable[[], dict],
        scratchpad=None,
    ):
        self._records = records
        self._state_fn = state_fn
        self._scratchpad = scratchpad
        self.data_bytes = real_pool.data_bytes

    def allocate(self, chunk, nbytes: int, meter):
        if nbytes <= 0:
            raise ValueError("chunk allocation must be positive")
        rec = AllocationRecord(
            chunk=chunk,
            nbytes=nbytes,
            pre_cycles=meter.cycles,
            pre_counters=snapshot_counters(meter.counters),
            commit=("insert", [], []),
            restore=self._state_fn(),
            pre_scratch_high=(
                self._scratchpad.high_water if self._scratchpad is not None else 0
            ),
            pre_sort_len=len(meter.sort_log or ()),
        )
        meter.atomic(1)
        self._records.append(rec)
        return chunk


class _ShadowTracker:
    """Row-tracker facade: reads delegate to the real tracker (safe —
    nothing mutates it while blocks execute optimistically), writes
    attach the commit action to the block's latest allocation record."""

    def __init__(self, real_tracker, records: list):
        self._real = real_tracker
        self._records = records
        self.n_rows = real_tracker.n_rows

    # -- reads (Multi Merge gathering) ----------------------------------
    def chunks_for(self, row: int):
        return self._real.chunks_for(row)

    def is_shared(self, row: int) -> bool:
        return self._real.is_shared(row)

    @property
    def shared_rows(self):
        # EscBlock.run counts new shared rows to settle their deferred
        # atomics at exit; the real tracker never mutates while blocks
        # run optimistically, so that count is 0 here and the replay's
        # correction is the one that lands — same addition, same order.
        return self._real.shared_rows

    # -- writes ----------------------------------------------------------
    def insert_chunk(self, chunk, b, meter) -> None:
        rec = self._records[-1]
        assert rec.chunk is chunk, "insert must follow the chunk's allocation"
        if chunk.kind == "pointer":
            rows, counts = [chunk.first_row], [chunk.b_length]
        else:
            r, c = np.unique(chunk.rows, return_counts=True)
            rows, counts = r.tolist(), [int(x) for x in c.tolist()]
        # list-head exchange + row-count add per covered row; the extra
        # shared-row atomic is order-dependent and deferred to the replay
        meter.atomic(2 * len(rows))
        rec.commit = ("insert", rows, counts)

    def replace_row(self, row: int, new_chunks: list, new_count: int) -> None:
        rec = self._records[-1]
        assert len(new_chunks) == 1 and new_chunks[0] is rec.chunk
        if rec.commit[0] != "replace":
            rec.commit = ("replace", [], [])
        rec.commit[1].append(row)
        rec.commit[2].append(int(new_count))


def _want_process_dispatch() -> bool:
    """Whether ESC rounds should go to warm worker processes.

    ``REPRO_PROCESS_WORKERS=N`` forces it on (N > 0) or off (0) — the
    test hook for exercising the process path on any machine; otherwise
    processes are used whenever the host has more than one core.
    """
    env = os.environ.get("REPRO_PROCESS_WORKERS", "").strip()
    if env:
        if env == "auto":
            return (os.cpu_count() or 1) >= 2
        try:
            return int(env) > 0
        except ValueError:
            return False
    return (os.cpu_count() or 1) >= 2


class ParallelEngine(ReferenceEngine):
    """Thread-pool execution of the per-block reference code."""

    name = "parallel"

    #: subclass switch: dispatch ESC rounds to warm worker processes
    use_processes = False

    def __init__(self, max_workers: int | None = None):
        super().__init__()
        self._max_workers = max_workers

    def _executor(self) -> ThreadPoolExecutor:
        if self._max_workers is not None:
            # explicit sizing (tests): a private pool of that exact width
            return ThreadPoolExecutor(self._max_workers)
        return shared_thread_pool()

    def _run_tasks(self, execute, tasks: list) -> list:
        ex = self._executor()
        if ex is _SHARED_POOL:
            return list(ex.map(execute, tasks))
        with ex:
            return list(ex.map(execute, tasks))

    def esc_round(self, ectx: EngineContext, pending: list) -> list[RoundOutcome]:
        opts = ectx.options
        if self.use_processes or _want_process_dispatch():
            from .process import process_esc_runs

            runs = process_esc_runs(self, ectx, pending)
            if runs is not None:
                self.count("proc_esc_rounds")
                self.count("proc_esc_tasks", len(pending))
                return replay_and_commit(
                    ectx.pool, ectx.tracker, runs, opts.costs
                )
        self.count("pool_esc_rounds")
        self.count("pool_esc_tasks", len(pending))
        from ..obs.trace import current_span, current_trace

        trace = current_trace()
        t_parent = current_span()
        round_span = (
            trace.start_span(
                "esc.thread_round", parent=t_parent, blocks=len(pending)
            )
            if trace is not None and t_parent is not None
            else None
        )

        def execute(blk):
            records: list[AllocationRecord] = []
            ctx = BlockContext(
                config=opts.device, block_id=blk.block_id, constants=opts.costs
            )
            if opts.device_trace:
                ctx.meter.sort_log = []
            shadow_pool = _ShadowPool(
                ectx.pool,
                records,
                lambda blk=blk: {
                    "committed": blk.committed,
                    "n_long_emitted": blk.n_long_emitted,
                    "esc_iterations": blk.esc_iterations,
                },
                scratchpad=ctx.scratchpad,
            )
            shadow_tracker = _ShadowTracker(ectx.tracker, records)
            blk.run(ctx, shadow_pool, shadow_tracker)
            return ctx.meter, records, ctx.scratchpad

        results = self._run_tasks(execute, pending)
        if round_span is not None:
            trace.end_span(round_span)

        runs: list[OptimisticRun] = []
        for blk, (meter, records, scratch) in zip(pending, results):
            # blk.run already booked the full optimistic attempt (cycles
            # into total_cycles, done=True, final restart state); the
            # callbacks correct it to the replay outcome.
            full = meter.cycles

            def on_success(worker, cycles, _full=full):
                worker.total_cycles += cycles - _full

            def on_fail(worker, rec, cycles, _full=full):
                worker.committed = rec.restore["committed"]
                worker.n_long_emitted = rec.restore["n_long_emitted"]
                worker.esc_iterations = rec.restore["esc_iterations"]
                worker.chunk_seq = rec.chunk.order_key[1]
                worker.done = False
                worker.total_cycles += cycles - _full

            runs.append(
                OptimisticRun(
                    blk, meter, records, on_success, on_fail, scratchpad=scratch
                )
            )
        return replay_and_commit(ectx.pool, ectx.tracker, runs, opts.costs)

    def merge_round(
        self, ectx: EngineContext, stage: str, workers: list
    ) -> list[RoundOutcome]:
        if stage != "MM":
            return super().merge_round(ectx, stage, workers)
        opts = ectx.options
        self.count("pool_mm_rounds")
        self.count("pool_mm_tasks", len(workers))

        def execute(task):
            idx, w = task
            records: list[AllocationRecord] = []
            ctx = BlockContext(
                config=opts.device, block_id=idx, constants=opts.costs
            )
            if opts.device_trace:
                ctx.meter.sort_log = []
            shadow_pool = _ShadowPool(ectx.pool, records, dict)
            shadow_tracker = _ShadowTracker(ectx.tracker, records)
            w.run(ctx, shadow_tracker, shadow_pool, ectx.b, opts)
            return ctx.meter, records

        results = self._run_tasks(execute, list(enumerate(workers)))

        runs = [
            OptimisticRun(w, meter, records)
            for w, (meter, records) in zip(workers, results)
        ]
        return replay_and_commit(ectx.pool, ectx.tracker, runs, opts.costs)

"""Persistent warm worker processes for ESC rounds.

The per-block Python dispatch of an ESC round is GIL-bound — threads
cannot parallelise it — so on multi-core hosts the parallel engine ships
each round's blocks to a pool of *warm* spawn processes that stay alive
across rounds and runs.  The expensive state (the CSR operands and the
global load-balance arrays) is placed once per operand pair: the parent
exports A and B to shared memory (:class:`~repro.engine.shm.SharedCSR`),
workers map them zero-copy and re-derive the (deterministic) load
balance locally.  Per round only the tiny restart states travel to the
workers and the optimistic execution results travel back.

Workers never see the real chunk pool or row tracker.  Each block runs
against the same shadow objects the thread path uses, so the returned
``(meter, records)`` feed the identical serial replay
(:func:`repro.engine.replay.replay_and_commit`) — results, cycles and
every simulated statistic stay bit-identical to the reference engine no
matter how many workers run.

Failure policy: any worker error or lost pipe tears the pool down and
returns ``None``, and the caller falls back to the thread path *before*
mutating any block — correctness never depends on process health.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import traceback

import numpy as np

from ..core.chunks import ChunkPool
from ..core.esc import EscBlock
from ..core.load_balance import global_load_balance
from ..gpu.block import BlockContext
from ..gpu.cost import CostMeter
from .parallel import ParallelEngine, _ShadowPool, _ShadowTracker
from .replay import AllocationRecord, OptimisticRun
from .shm import SharedCSR

__all__ = [
    "ProcessEngine",
    "WarmProcessPool",
    "process_esc_runs",
    "resolve_process_workers",
    "warm_pool",
]

#: operand pairs kept exported (parent) / mapped (workers) at once
_EXPORT_CACHE = 4


def resolve_process_workers() -> int:
    """Worker count: ``REPRO_PROCESS_WORKERS`` or the core count."""
    env = os.environ.get("REPRO_PROCESS_WORKERS", "").strip()
    if env and env != "auto":
        try:
            return max(0, int(env))
        except ValueError:
            return 0
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _StubTracker:
    """The tracker surface an optimistic ESC block touches: it counts
    ``shared_rows`` growth (zero while running optimistically) and never
    reads chunk lists."""

    def __init__(self, n_rows: int):
        self.n_rows = n_rows
        self.shared_rows: list[int] = []


def _run_esc_block(a, b, glb, options, pool_proto, st: dict) -> dict:
    blk = EscBlock(
        block_id=st["block_id"],
        a=a,
        b=b,
        glb=glb,
        options=options,
        committed=st["committed"],
        n_long_emitted=st["n_long_emitted"],
        chunk_seq=st["chunk_seq"],
        done=False,
        attempts=st["attempts"],
        total_cycles=0.0,
        esc_iterations=st["esc_iterations"],
    )
    records: list[AllocationRecord] = []
    ctx = BlockContext(
        config=options.device, block_id=blk.block_id, constants=options.costs
    )
    if options.device_trace:
        ctx.meter.sort_log = []
    shadow_pool = _ShadowPool(
        pool_proto,
        records,
        lambda blk=blk: {
            "committed": blk.committed,
            "n_long_emitted": blk.n_long_emitted,
            "esc_iterations": blk.esc_iterations,
        },
        scratchpad=ctx.scratchpad,
    )
    shadow_tracker = _ShadowTracker(_StubTracker(a.rows), records)
    blk.run(ctx, shadow_pool, shadow_tracker)
    return {
        "meter": ctx.meter,
        "records": records,
        "scratchpad": ctx.scratchpad,
        "final": {
            "committed": blk.committed,
            "n_long_emitted": blk.n_long_emitted,
            "chunk_seq": blk.chunk_seq,
            "done": blk.done,
            "attempts": blk.attempts,
            "esc_iterations": blk.esc_iterations,
            "total_cycles_delta": blk.total_cycles,
        },
    }


def _drop_entry(entry) -> None:
    _, _, _, _, handles = entry
    for h in handles:
        h.close()


def worker_main(conn) -> None:
    """Entry point of one warm worker (spawn context)."""
    cache: dict[str, tuple] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            cmd = msg[0]
            if cmd == "exit":
                break
            try:
                if cmd == "load":
                    _, token, meta_a, meta_b, options = msg
                    ha = SharedCSR.attach(meta_a)
                    hb = SharedCSR.attach(meta_b)
                    a = ha.matrix()
                    b = hb.matrix()
                    scratch_meter = CostMeter(
                        config=options.device, constants=options.costs
                    )
                    glb = global_load_balance(
                        a, options.device.nnz_per_block_glb, scratch_meter
                    )
                    cache[token] = (a, b, glb, options, (ha, hb))
                    conn.send(("ok",))
                elif cmd == "esc":
                    _, token, states = msg
                    a, b, glb, options, _ = cache[token]
                    pool_proto = ChunkPool(capacity_bytes=0)
                    results = [
                        _run_esc_block(a, b, glb, options, pool_proto, st)
                        for st in states
                    ]
                    conn.send(("esc", results))
                elif cmd == "drop":
                    # parent evicted this operand pair; no reply expected
                    entry = cache.pop(msg[1], None)
                    if entry is not None:
                        _drop_entry(entry)
                else:
                    conn.send(("err", f"unknown command {cmd!r}"))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
    finally:
        for entry in cache.values():
            _drop_entry(entry)
        conn.close()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Worker:
    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.loaded: set[str] = set()


class WarmProcessPool:
    """Parent-side handle on the persistent worker processes.

    Owns every exported shared-memory segment: segments are unlinked
    when their operand pair is evicted from the LRU and, unconditionally,
    at :meth:`shutdown` (registered via ``atexit``) — so a crashed
    worker can never leak a segment past the parent's lifetime.
    """

    def __init__(self):
        self._ctx = mp.get_context("spawn")
        self._workers: list[_Worker] = []
        self._exports: dict[str, tuple[SharedCSR, SharedCSR, object]] = {}

    # -- workers --------------------------------------------------------

    def ensure(self, n: int) -> int:
        """Grow the pool to ``n`` workers; returns the live count."""
        self._reap()
        while len(self._workers) < n:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._workers.append(_Worker(proc, parent_conn))
        return len(self._workers)

    def _reap(self) -> None:
        self._workers = [w for w in self._workers if w.proc.is_alive()]

    # -- operand placement ----------------------------------------------

    @staticmethod
    def operand_token(a, b, options) -> str:
        h = hashlib.blake2b(digest_size=16)
        for m in (a, b):
            h.update(np.int64(m.rows).tobytes())
            h.update(np.int64(m.cols).tobytes())
            for arr in (m.row_ptr, m.col_idx, m.values):
                h.update(np.ascontiguousarray(arr).data)
        h.update(options.cache_fingerprint().encode())
        return h.hexdigest()

    def load(self, a, b, options) -> str:
        """Export ``(a, b)`` once and return the pair's token."""
        token = self.operand_token(a, b, options)
        if token in self._exports:
            self._exports[token] = self._exports.pop(token)  # refresh LRU
        else:
            while len(self._exports) >= _EXPORT_CACHE:
                old = next(iter(self._exports))
                sa, sb, _ = self._exports.pop(old)
                for w in self._workers:
                    if old in w.loaded:
                        w.loaded.discard(old)
                        try:
                            w.conn.send(("drop", old))
                        except (BrokenPipeError, OSError):
                            pass
                sa.release()
                sb.release()
            self._exports[token] = (
                SharedCSR.export(a),
                SharedCSR.export(b),
                options,
            )
        return token

    def _ensure_worker_loaded(self, w: _Worker, token: str) -> None:
        if token in w.loaded:
            return
        sa, sb, options = self._exports[token]
        w.conn.send(("load", token, sa.meta(), sb.meta(), options))
        reply = w.conn.recv()
        if reply[0] != "ok":
            raise RuntimeError(f"worker load failed: {reply[1:]}")
        w.loaded.add(token)

    # -- dispatch -------------------------------------------------------

    def run_esc(self, token: str, states: list[dict], n_workers: int) -> list[dict]:
        """Fan block states over ``n_workers`` contiguous slices.

        Returns per-block result dicts in input order; raises on any
        worker failure (callers tear the pool down and fall back).
        """
        n = min(n_workers, len(self._workers), len(states))
        if n < 1:
            raise RuntimeError("no live workers")
        bounds = np.linspace(0, len(states), n + 1).astype(int)
        tasks: list[tuple[_Worker, int, int]] = []
        for i in range(n):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if lo == hi:
                continue
            w = self._workers[i]
            self._ensure_worker_loaded(w, token)
            w.conn.send(("esc", token, states[lo:hi]))
            tasks.append((w, lo, hi))
        results: list[dict | None] = [None] * len(states)
        for w, lo, hi in tasks:
            reply = w.conn.recv()
            if reply[0] != "esc":
                raise RuntimeError(f"worker esc failed: {reply[1:]}")
            results[lo:hi] = reply[1]
        return results  # type: ignore[return-value]

    # -- teardown -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers and unlink every exported segment."""
        for w in self._workers:
            try:
                w.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            w.proc.join(timeout=2)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.kill()
                w.proc.join(timeout=2)
            w.conn.close()
        self._workers = []
        for sa, sb, _ in self._exports.values():
            sa.release()
            sb.release()
        self._exports = {}


_POOL: WarmProcessPool | None = None


def warm_pool() -> WarmProcessPool:
    """The process-wide warm pool (created on first use)."""
    global _POOL
    if _POOL is None:
        _POOL = WarmProcessPool()
        atexit.register(_POOL.shutdown)
    return _POOL


def _teardown_pool() -> None:
    global _POOL
    if _POOL is not None:
        try:
            _POOL.shutdown()
        finally:
            _POOL = None


def process_esc_runs(engine, ectx, pending: list) -> list[OptimisticRun] | None:
    """Execute one ESC round on the warm pool.

    Returns the optimistic runs for :func:`replay_and_commit`, or
    ``None`` (with no state mutated) when processes are unavailable —
    the caller then uses the thread path.
    """
    if not pending:
        return []
    n_workers = resolve_process_workers()
    if n_workers < 1:
        return None
    try:
        pool = warm_pool()
        pool.ensure(n_workers)
        token = pool.load(ectx.a, ectx.b, ectx.options)
        states = [
            {
                "block_id": blk.block_id,
                "committed": blk.committed,
                "n_long_emitted": blk.n_long_emitted,
                "chunk_seq": blk.chunk_seq,
                "attempts": blk.attempts,
                "esc_iterations": blk.esc_iterations,
            }
            for blk in pending
        ]
        results = pool.run_esc(token, states, n_workers)
    except Exception:
        _teardown_pool()
        return None

    runs: list[OptimisticRun] = []
    for blk, res in zip(pending, results):
        final = res["final"]
        blk.committed = final["committed"]
        blk.n_long_emitted = final["n_long_emitted"]
        blk.chunk_seq = final["chunk_seq"]
        blk.done = final["done"]
        blk.attempts = final["attempts"]
        blk.esc_iterations = final["esc_iterations"]
        blk.total_cycles += final["total_cycles_delta"]
        meter = res["meter"]
        full = meter.cycles

        def on_success(worker, cycles, _full=full):
            worker.total_cycles += cycles - _full

        def on_fail(worker, rec, cycles, _full=full):
            worker.committed = rec.restore["committed"]
            worker.n_long_emitted = rec.restore["n_long_emitted"]
            worker.esc_iterations = rec.restore["esc_iterations"]
            worker.chunk_seq = rec.chunk.order_key[1]
            worker.done = False
            worker.total_cycles += cycles - _full

        runs.append(
            OptimisticRun(
                blk,
                meter,
                res["records"],
                on_success,
                on_fail,
                scratchpad=res["scratchpad"],
            )
        )
    return runs


class ProcessEngine(ParallelEngine):
    """The parallel engine with ESC rounds pinned to warm processes.

    Selecting ``engine="process"`` forces the process path even on a
    single-core host (one warm worker), which is how the tests exercise
    it everywhere; the plain parallel engine reaches the same code
    automatically on multi-core hosts.
    """

    name = "process"

    use_processes = True

"""Persistent warm worker processes for ESC rounds.

The per-block Python dispatch of an ESC round is GIL-bound — threads
cannot parallelise it — so on multi-core hosts the parallel engine ships
each round's blocks to a pool of *warm* spawn processes that stay alive
across rounds and runs.  The expensive state (the CSR operands and the
global load-balance arrays) is placed once per operand pair: the parent
exports A and B to shared memory (:class:`~repro.engine.shm.SharedCSR`),
workers map them zero-copy and re-derive the (deterministic) load
balance locally.  Per round only the tiny restart states travel to the
workers and the optimistic execution results travel back.

Workers never see the real chunk pool or row tracker.  Each block runs
against the same shadow objects the thread path uses, so the returned
``(meter, records)`` feed the identical serial replay
(:func:`repro.engine.replay.replay_and_commit`) — results, cycles and
every simulated statistic stay bit-identical to the reference engine no
matter how many workers run.

Failure policy, in two layers.  The pool itself *heals*: a worker that
dies mid-round is reaped, its pending block states are redistributed
over the survivors (respawning replacements when none survive), and a
typed :class:`~repro.resilience.errors.WorkerCrashed` escapes only once
the retry budget is spent — block execution is side-effect free until
the serial replay, so a resend computes bit-identical results.  Above
that, :func:`process_esc_runs` still treats any escaped error as
"processes unavailable": it tears the pool down and returns ``None``,
and the caller falls back to the thread path *before* mutating any
block — correctness never depends on process health.

The pool is thread-safe: the serve daemon's executor threads share it,
so every public method serialises on one reentrant lock (per-request
concurrency across the *other* pipeline stages is unaffected).
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import threading
import time
import traceback

import numpy as np

from ..core.chunks import ChunkPool
from ..core.esc import EscBlock
from ..core.load_balance import global_load_balance
from ..gpu.block import BlockContext
from ..gpu.cost import CostMeter
from ..obs.trace import current_span, current_trace, derive_span_id
from ..resilience.errors import WorkerCrashed
from .parallel import ParallelEngine, _ShadowPool, _ShadowTracker
from .replay import AllocationRecord, OptimisticRun
from .shm import SharedCSR

__all__ = [
    "ProcessEngine",
    "WarmProcessPool",
    "process_esc_runs",
    "resolve_process_workers",
    "warm_pool",
]

#: operand pairs kept exported (parent) / mapped (workers) at once
_EXPORT_CACHE = 4


def resolve_process_workers() -> int:
    """Worker count: ``REPRO_PROCESS_WORKERS`` or the core count."""
    env = os.environ.get("REPRO_PROCESS_WORKERS", "").strip()
    if env and env != "auto":
        try:
            return max(0, int(env))
        except ValueError:
            return 0
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _StubTracker:
    """The tracker surface an optimistic ESC block touches: it counts
    ``shared_rows`` growth (zero while running optimistically) and never
    reads chunk lists."""

    def __init__(self, n_rows: int):
        self.n_rows = n_rows
        self.shared_rows: list[int] = []


def _run_esc_block(a, b, glb, options, pool_proto, st: dict) -> dict:
    blk = EscBlock(
        block_id=st["block_id"],
        a=a,
        b=b,
        glb=glb,
        options=options,
        committed=st["committed"],
        n_long_emitted=st["n_long_emitted"],
        chunk_seq=st["chunk_seq"],
        done=False,
        attempts=st["attempts"],
        total_cycles=0.0,
        esc_iterations=st["esc_iterations"],
    )
    records: list[AllocationRecord] = []
    ctx = BlockContext(
        config=options.device, block_id=blk.block_id, constants=options.costs
    )
    if options.device_trace:
        ctx.meter.sort_log = []
    shadow_pool = _ShadowPool(
        pool_proto,
        records,
        lambda blk=blk: {
            "committed": blk.committed,
            "n_long_emitted": blk.n_long_emitted,
            "esc_iterations": blk.esc_iterations,
        },
        scratchpad=ctx.scratchpad,
    )
    shadow_tracker = _ShadowTracker(_StubTracker(a.rows), records)
    blk.run(ctx, shadow_pool, shadow_tracker)
    return {
        "meter": ctx.meter,
        "records": records,
        "scratchpad": ctx.scratchpad,
        "final": {
            "committed": blk.committed,
            "n_long_emitted": blk.n_long_emitted,
            "chunk_seq": blk.chunk_seq,
            "done": blk.done,
            "attempts": blk.attempts,
            "esc_iterations": blk.esc_iterations,
            "total_cycles_delta": blk.total_cycles,
        },
    }


def _drop_entry(entry) -> None:
    _, _, _, _, handles = entry
    for h in handles:
        h.close()


def worker_main(conn) -> None:
    """Entry point of one warm worker (spawn context)."""
    cache: dict[str, tuple] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            cmd = msg[0]
            if cmd == "exit":
                break
            try:
                if cmd == "load":
                    _, token, meta_a, meta_b, options = msg
                    old = cache.pop(token, None)
                    if old is not None:
                        # re-load after a parent-side re-export (healed
                        # shm_drop): close the stale handles explicitly
                        # so their __del__ never races the numpy views
                        _drop_entry(old)
                    ha = SharedCSR.attach(meta_a)
                    hb = SharedCSR.attach(meta_b)
                    a = ha.matrix()
                    b = hb.matrix()
                    scratch_meter = CostMeter(
                        config=options.device, constants=options.costs
                    )
                    glb = global_load_balance(
                        a, options.device.nnz_per_block_glb, scratch_meter
                    )
                    cache[token] = (a, b, glb, options, (ha, hb))
                    conn.send(("ok",))
                elif cmd == "esc":
                    # the optional 4th element is the request-trace
                    # hand-off pair {"trace_id", "parent_id"}; span ids
                    # derive from the block id, so the graft is
                    # deterministic no matter which worker ran a block
                    _, token, states = msg[:3]
                    spanmeta = msg[3] if len(msg) > 3 else None
                    a, b, glb, options, _ = cache[token]
                    pool_proto = ChunkPool(capacity_bytes=0)
                    results = []
                    for st in states:
                        t0 = time.perf_counter()
                        res = _run_esc_block(
                            a, b, glb, options, pool_proto, st
                        )
                        if spanmeta is not None:
                            res["span"] = {
                                "name": "esc.block",
                                "span_id": derive_span_id(
                                    spanmeta["trace_id"],
                                    spanmeta["parent_id"],
                                    "esc.block",
                                    st["block_id"],
                                ),
                                "parent_id": spanmeta["parent_id"],
                                "t_host": time.perf_counter() - t0,
                                "attrs": {
                                    "block_id": st["block_id"],
                                    "pid": os.getpid(),
                                    "esc_iterations": res["final"][
                                        "esc_iterations"
                                    ],
                                },
                            }
                        results.append(res)
                    conn.send(("esc", results))
                elif cmd == "drop":
                    # parent evicted this operand pair; no reply expected
                    entry = cache.pop(msg[1], None)
                    if entry is not None:
                        _drop_entry(entry)
                else:
                    conn.send(("err", f"unknown command {cmd!r}"))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
    finally:
        for entry in cache.values():
            _drop_entry(entry)
        conn.close()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Worker:
    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.loaded: set[str] = set()


class WarmProcessPool:
    """Parent-side handle on the persistent worker processes.

    Owns every exported shared-memory segment: segments are unlinked
    when their operand pair is evicted from the LRU and, unconditionally,
    at :meth:`shutdown` (registered via ``atexit``) — so a crashed
    worker can never leak a segment past the parent's lifetime.

    ``segment_prefix`` opts into deterministic segment naming
    (``<prefix><token16>``): a long-running owner (the serve daemon)
    can then enumerate and reclaim segments a SIGKILLed previous
    incarnation leaked, via :func:`repro.engine.shm.sweep_segments`.
    """

    #: default mid-round retry budget of :meth:`run_esc`
    DEFAULT_RETRIES = 2

    def __init__(self, *, segment_prefix: str | None = None):
        self._ctx = mp.get_context("spawn")
        self._lock = threading.RLock()
        self._workers: list[_Worker] = []
        self._exports: dict[str, tuple[SharedCSR, SharedCSR, object]] = {}
        self.segment_prefix = segment_prefix
        self.worker_deaths = 0  # workers reaped after dying mid-round
        self.workers_respawned = 0  # replacements started after a death

    # -- workers --------------------------------------------------------

    def ensure(self, n: int) -> int:
        """Grow the pool to ``n`` workers; returns the live count."""
        with self._lock:
            self._reap()
            while len(self._workers) < n:
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._workers.append(_Worker(proc, parent_conn))
            return len(self._workers)

    def _reap(self) -> None:
        dead = [w for w in self._workers if not w.proc.is_alive()]
        for w in dead:
            self._retire(w)

    def _retire(self, w: _Worker) -> None:
        """Drop one (dead or dying) worker: close its pipe, reap the
        process.  Its exported segments stay valid — the parent owns
        them — so surviving workers are unaffected."""
        if w not in self._workers:
            return
        self._workers.remove(w)
        self.worker_deaths += 1
        try:
            w.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if w.proc.is_alive():
            w.proc.kill()
        w.proc.join(timeout=2)

    def alive_count(self) -> int:
        """Live workers (reaps the dead as a side effect)."""
        with self._lock:
            self._reap()
            return len(self._workers)

    def restart_crashed(self, target: int) -> int:
        """Supervisor hook: reap the dead, respawn back to ``target``.

        Returns the number of replacement workers started.
        """
        with self._lock:
            self._reap()
            missing = max(0, target - len(self._workers))
            if missing:
                self.ensure(target)
                self.workers_respawned += missing
            return missing

    def kill_worker(self, index: int) -> bool:
        """Chaos hook: SIGKILL worker ``index`` (if it exists).

        The corpse is left in place so the death is discovered exactly
        where production would discover it — at the next send/recv.
        """
        with self._lock:
            if not 0 <= index < len(self._workers):
                return False
            self._workers[index].proc.kill()
            return True

    # -- operand placement ----------------------------------------------

    @staticmethod
    def operand_token(a, b, options) -> str:
        h = hashlib.blake2b(digest_size=16)
        for m in (a, b):
            h.update(np.int64(m.rows).tobytes())
            h.update(np.int64(m.cols).tobytes())
            for arr in (m.row_ptr, m.col_idx, m.values):
                h.update(np.ascontiguousarray(arr).data)
        h.update(options.cache_fingerprint().encode())
        return h.hexdigest()

    def exported_segment_names(self) -> set[str]:
        """Names of every segment currently owned by this pool."""
        with self._lock:
            return {
                h.name
                for sa, sb, _ in self._exports.values()
                for h in (sa, sb)
            }

    def load(self, a, b, options) -> str:
        """Export ``(a, b)`` once and return the pair's token.

        Self-healing: if a cached export's segments were unlinked
        externally (chaos ``shm_drop``, a tmpfs sweep), the pair is
        re-exported and every worker's load marker is cleared so they
        re-attach the fresh segments — already-mapped workers keep
        working off their (still valid) old mapping either way.
        """
        with self._lock:
            token = self.operand_token(a, b, options)
            entry = self._exports.get(token)
            if entry is not None and not (entry[0].exists() and entry[1].exists()):
                sa, sb, _ = self._exports.pop(token)
                for w in self._workers:
                    w.loaded.discard(token)
                sa.release()  # unlink is idempotent; drops our mapping
                sb.release()
                entry = None
            if entry is not None:
                self._exports[token] = self._exports.pop(token)  # refresh LRU
            else:
                while len(self._exports) >= _EXPORT_CACHE:
                    old = next(iter(self._exports))
                    sa, sb, _ = self._exports.pop(old)
                    for w in self._workers:
                        if old in w.loaded:
                            w.loaded.discard(old)
                            try:
                                w.conn.send(("drop", old))
                            except (BrokenPipeError, OSError):
                                pass
                    sa.release()
                    sb.release()
                name_a = name_b = None
                if self.segment_prefix:
                    name_a = f"{self.segment_prefix}{token[:16]}a"
                    name_b = f"{self.segment_prefix}{token[:16]}b"
                self._exports[token] = (
                    SharedCSR.export(a, name=name_a),
                    SharedCSR.export(b, name=name_b),
                    options,
                )
            return token

    def _ensure_worker_loaded(self, w: _Worker, token: str) -> None:
        if token in w.loaded:
            return
        sa, sb, options = self._exports[token]
        w.conn.send(("load", token, sa.meta(), sb.meta(), options))
        reply = w.conn.recv()
        if reply[0] != "ok":
            raise RuntimeError(f"worker load failed: {reply[1:]}")
        w.loaded.add(token)

    # -- dispatch -------------------------------------------------------

    def run_esc(
        self,
        token: str,
        states: list[dict],
        n_workers: int,
        *,
        retries: int | None = None,
        trace_meta: dict | None = None,
    ) -> list[dict]:
        """Fan block states over worker slices; survives worker death.

        Returns per-block result dicts in input order.  A worker that
        dies mid-round (SIGKILL, OOM, chaos ``worker_kill``) is reaped
        and its pending states are redistributed over the survivors —
        respawning replacements when none survive — for up to
        ``retries`` extra rounds.  Block execution is side-effect free
        until the serial replay, so a resent state computes the
        bit-identical result.  Only a spent retry budget raises, and it
        raises typed :class:`~repro.resilience.errors.WorkerCrashed`;
        a *deterministic* worker-side exception (a bug, a failed load)
        still raises ``RuntimeError`` immediately — retrying cannot
        help it.
        """
        if retries is None:
            retries = self.DEFAULT_RETRIES
        with self._lock:
            results: list[dict | None] = [None] * len(states)
            todo = list(range(len(states)))
            deaths = 0
            while todo:
                self._reap()
                if not self._workers:
                    self.ensure(max(1, n_workers))
                    self.workers_respawned += len(self._workers)
                live = list(self._workers)
                n = min(n_workers, len(live), len(todo))
                bounds = np.linspace(0, len(todo), n + 1).astype(int)
                tasks: list[tuple[_Worker, list[int]]] = []
                failed: list[int] = []
                for i in range(n):
                    sel = todo[int(bounds[i]) : int(bounds[i + 1])]
                    if not sel:
                        continue
                    w = live[i]
                    try:
                        self._ensure_worker_loaded(w, token)
                        w.conn.send(
                            ("esc", token, [states[j] for j in sel],
                             trace_meta)
                        )
                        tasks.append((w, sel))
                    except (BrokenPipeError, EOFError, OSError):
                        self._retire(w)
                        failed.extend(sel)
                for w, sel in tasks:
                    try:
                        reply = w.conn.recv()
                    except (EOFError, OSError):
                        self._retire(w)
                        failed.extend(sel)
                        continue
                    if reply[0] != "esc":
                        raise RuntimeError(f"worker esc failed: {reply[1:]}")
                    for j, res in zip(sel, reply[1]):
                        results[j] = res
                if failed:
                    deaths += 1
                    if deaths > retries:
                        raise WorkerCrashed(
                            f"worker died mid-round {deaths} time(s); "
                            f"retry budget ({retries}) spent with "
                            f"{len(failed)} block state(s) pending",
                            stage="ESC",
                        )
                failed.sort()
                todo = failed
            return results  # type: ignore[return-value]

    # -- teardown -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers and unlink every exported segment.

        Teardown escalates instead of waiting on fixed 2 s joins: a
        polite ``exit`` message, a short join, then ``terminate`` (the
        workers' loop exits on a closed pipe too), then ``kill`` — so a
        wedged worker can delay shutdown, never hang it.
        """
        with self._lock:
            for w in self._workers:
                try:
                    w.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
            for w in self._workers:
                w.proc.join(timeout=1)
                if w.proc.is_alive():  # pragma: no cover - slow worker
                    w.proc.terminate()
                    w.proc.join(timeout=1)
                if w.proc.is_alive():  # pragma: no cover - stuck worker
                    w.proc.kill()
                    w.proc.join(timeout=2)
                w.conn.close()
            self._workers = []
            for sa, sb, _ in self._exports.values():
                sa.release()
                sb.release()
            self._exports = {}


_POOL: WarmProcessPool | None = None


def warm_pool() -> WarmProcessPool:
    """The process-wide warm pool (created on first use)."""
    global _POOL
    if _POOL is None:
        _POOL = WarmProcessPool()
        atexit.register(_POOL.shutdown)
    return _POOL


def _teardown_pool() -> None:
    global _POOL
    if _POOL is not None:
        try:
            _POOL.shutdown()
        finally:
            _POOL = None


def process_esc_runs(engine, ectx, pending: list) -> list[OptimisticRun] | None:
    """Execute one ESC round on the warm pool.

    Returns the optimistic runs for :func:`replay_and_commit`, or
    ``None`` (with no state mutated) when processes are unavailable —
    the caller then uses the thread path.
    """
    if not pending:
        return []
    n_workers = resolve_process_workers()
    if n_workers < 1:
        return None
    # an active request trace rides the task pickle into the workers:
    # each one derives its block-span ids from this pair, and the final
    # (post-redistribution) results are grafted back under the round
    trace = current_trace()
    parent = current_span()
    round_span = None
    trace_meta = None
    if trace is not None and parent is not None:
        round_span = trace.start_span(
            "esc.process_round", parent=parent,
            blocks=len(pending), workers=n_workers,
        )
        trace_meta = {
            "trace_id": trace.trace_id,
            "parent_id": round_span.span_id,
        }
    try:
        pool = warm_pool()
        pool.ensure(n_workers)
        token = pool.load(ectx.a, ectx.b, ectx.options)
        states = [
            {
                "block_id": blk.block_id,
                "committed": blk.committed,
                "n_long_emitted": blk.n_long_emitted,
                "chunk_seq": blk.chunk_seq,
                "attempts": blk.attempts,
                "esc_iterations": blk.esc_iterations,
            }
            for blk in pending
        ]
        results = pool.run_esc(
            token, states, n_workers, trace_meta=trace_meta
        )
    except Exception as exc:
        if round_span is not None:
            trace.end_span(
                round_span, status="error", error=exc.__class__.__name__
            )
        _teardown_pool()
        return None

    if round_span is not None:
        for res in results:
            doc = res.get("span")
            if doc is not None:
                trace.attach_remote_span(round_span, doc)
        trace.end_span(round_span)

    runs: list[OptimisticRun] = []
    for blk, res in zip(pending, results):
        final = res["final"]
        blk.committed = final["committed"]
        blk.n_long_emitted = final["n_long_emitted"]
        blk.chunk_seq = final["chunk_seq"]
        blk.done = final["done"]
        blk.attempts = final["attempts"]
        blk.esc_iterations = final["esc_iterations"]
        blk.total_cycles += final["total_cycles_delta"]
        meter = res["meter"]
        full = meter.cycles

        def on_success(worker, cycles, _full=full):
            worker.total_cycles += cycles - _full

        def on_fail(worker, rec, cycles, _full=full):
            worker.committed = rec.restore["committed"]
            worker.n_long_emitted = rec.restore["n_long_emitted"]
            worker.esc_iterations = rec.restore["esc_iterations"]
            worker.chunk_seq = rec.chunk.order_key[1]
            worker.done = False
            worker.total_cycles += cycles - _full

        runs.append(
            OptimisticRun(
                blk,
                meter,
                res["records"],
                on_success,
                on_fail,
                scratchpad=res["scratchpad"],
            )
        )
    return runs


class ProcessEngine(ParallelEngine):
    """The parallel engine with ESC rounds pinned to warm processes.

    Selecting ``engine="process"`` forces the process path even on a
    single-core host (one warm worker), which is how the tests exercise
    it everywhere; the plain parallel engine reaches the same code
    automatically on multi-core hosts.
    """

    name = "process"

    use_processes = True

"""Batched vectorized execution of the block-level stages.

All ready blocks of one kernel launch are fused into flat numpy arrays
and stepped in lockstep:

* **Expansion** — the per-block work-distribution ``searchsorted`` over
  the decremented count state is replaced by one global ``searchsorted``
  over the concatenated *original* prefix sums offset per block (the two
  are provably equivalent: consumption is a contiguous window of the
  original product order).
* **Sort** — the per-block stable LSD radix sorts become a few
  composite-key ``np.argsort(kind="stable")`` calls over
  ``(local_segment_id << key_bits) | key`` packed into 16 bits, where
  numpy's stable sort is an O(n) radix sort.  Stability makes the
  permutation within each segment identical to the per-block stable
  sort, preserving the tie order that fixes floating-point accumulation.
* **Compaction** — equal-key run boundaries from one neighbour compare
  with forced segment breaks, then one ``np.add.reduceat``.  ``reduceat``
  folds each run independently of surrounding data, so per-run sums are
  bit-identical to the per-block path.

Cost fidelity: every :class:`~repro.gpu.cost.CostMeter` charge of the
reference per-block code is replayed per block from the batch's scalar
per-segment sizes, and real per-block :class:`~repro.gpu.memory.Scratchpad`
objects enforce the same on-chip layouts.  Pool allocations run through
the optimistic record / serial replay machinery (:mod:`repro.engine.replay`)
so restart behaviour, chunk offsets and shared-row attribution are
exactly the reference's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.chunks import Chunk, RowChunkTracker
from ..core.long_rows import long_row_mask
from ..core.merge import gather_row_segments
from ..gpu.cost import CostMeter
from ..gpu.memory import Scratchpad
from ..gpu.radix import bits_required, fast_stable_sort
from ..resilience.errors import SanitizerError
from ..sparse.csr import CSRMatrix
from .base import EngineContext, RoundOutcome
from .reference import ReferenceEngine
from .replay import (
    AllocationRecord,
    OptimisticRun,
    replay_and_commit,
    snapshot_counters,
)

__all__ = ["BatchedEngine"]


def _ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + lengths[i])``."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    off = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=off[1:])
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(np.asarray(starts, dtype=np.int64) - off, lengths)
    return out


def _ragged_revrange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i] + lengths[i] - 1, starts[i] - 1, -1)``."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    off = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=off[1:])
    out = np.repeat(
        np.asarray(starts, dtype=np.int64) + lengths - 1 + off, lengths
    )
    out -= np.arange(total, dtype=np.int64)
    return out


def _segmented_sort(
    keys: np.ndarray,
    seg_sizes: np.ndarray,
    seg_off: np.ndarray,
    key_bits_list: list[int],
) -> np.ndarray:
    """Stable sort permutation of ``keys`` within each segment.

    Segments are packed greedily into groups whose composite key
    ``(local_segment_id << key_bits) | key`` fits 16 bits, because
    numpy's stable argsort is an O(n) radix sort for 16-bit integers
    (it falls back to O(n log n) timsort for wider types).  Oversized
    single segments use 16-bit LSD passes instead.  Every path is a
    stable per-segment sort, so the permutation equals running the
    per-block stable sort on each segment independently.
    """
    nseg = len(key_bits_list)
    perm = np.empty(keys.shape[0], dtype=np.int64)
    seg_off_list = seg_off.tolist()
    s = 0
    while s < nseg:
        kb = key_bits_list[s]
        e = s + 1
        while e < nseg:
            nkb = key_bits_list[e] if key_bits_list[e] > kb else kb
            if bits_required(e - s) + nkb > 16:
                break
            kb = nkb
            e += 1
        lo, hi = seg_off_list[s], seg_off_list[e]
        if e - s > 1:
            comp = keys[lo:hi].astype(np.uint16)
            comp |= np.repeat(
                ((np.arange(e - s, dtype=np.int64) << kb) & 0xFFFF).astype(
                    np.uint16
                ),
                seg_sizes[s:e],
            )
            perm[lo:hi] = np.argsort(comp, kind="stable")
            perm[lo:hi] += lo
        elif kb <= 16:
            perm[lo:hi] = np.argsort(
                keys[lo:hi].astype(np.uint16, copy=False), kind="stable"
            )
            perm[lo:hi] += lo
        else:
            order = np.arange(hi - lo, dtype=np.int64)
            cur = keys[lo:hi]
            for shift in range(0, kb, 16):
                digits = (
                    (cur >> np.uint64(shift)) & np.uint64(0xFFFF)
                ).astype(np.uint16)
                if digits[0] == digits[-1] and (digits == digits[0]).all():
                    continue  # pass is the identity
                p = np.argsort(digits, kind="stable")
                order = order[p]
                cur = cur[p]
            perm[lo:hi] = order
            perm[lo:hi] += lo
        s = e
    return perm


def _segmented_compact(
    keys_s: np.ndarray,
    vals_s: np.ndarray,
    seg_off: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact equal-key runs per segment in one pass.

    Returns ``(comp_keys, comp_vals, comp_counts)`` where ``comp_counts``
    is the number of compacted entries per segment.  Runs never cross a
    segment boundary (boundaries force a run end).
    """
    n = keys_s.shape[0]
    ends = np.empty(n, dtype=bool)
    ends[-1] = True
    np.not_equal(keys_s[1:], keys_s[:-1], out=ends[:-1])
    ends[seg_off[1:] - 1] = True
    end_idx = np.nonzero(ends)[0]
    # every run start is the previous run's end + 1
    start_idx = np.empty_like(end_idx)
    start_idx[0] = 0
    np.add(end_idx[:-1], 1, out=start_idx[1:])
    comp_vals = np.add.reduceat(vals_s, start_idx)
    comp_keys = keys_s[end_idx]
    # compacted entries per segment: run-ends inside each window
    comp_counts = np.diff(np.searchsorted(end_idx, seg_off, side="left"))
    assert int(comp_counts.sum()) == comp_keys.shape[0]
    return comp_keys, comp_vals, comp_counts


# ---------------------------------------------------------------------------
# stage 2: lockstep batched AC-ESC
# ---------------------------------------------------------------------------


@dataclass
class _EscState:
    """Per-block lockstep state of one batched ESC round."""

    blk: object
    meter: CostMeter
    scratch: Scratchpad
    n: int  # A-entries of the block
    ent0: int  # offset of the block's entries in the round arrays
    g0: int  # offset of the block's prefix segment in G
    uoff: int  # offset of the block's row dictionary in the round arrays
    base: int  # products of preceding blocks (G offset)
    total: int  # total products of this block
    c: int  # products consumed so far (== wd.consumed_total)
    records: list = field(default_factory=list)
    carried_rows: np.ndarray | None = None
    carried_cols: np.ndarray | None = None
    carried_vals: np.ndarray | None = None
    taken: int = 0
    exp_pos: int = 0  # cursor into the round's expansion arrays
    new_lo: int = 0
    new_hi: int = 0


def _esc_on_success(blk, cycles: float) -> None:
    blk.total_cycles += cycles


def _esc_on_fail(blk, rec: AllocationRecord, cycles: float) -> None:
    blk.committed = rec.restore["committed"]
    blk.n_long_emitted = rec.restore["n_long_emitted"]
    blk.esc_iterations = rec.restore["esc_iterations"]
    blk.chunk_seq = rec.chunk.order_key[1]
    blk.done = False
    blk.total_cycles += cycles


#: the full scratchpad layout of one ESC block (allocated at round
#: entry, held until the state retires — the batched analogue of the
#: reference's named alloc/free pairs)
_ESC_SCRATCH_LAYOUT = frozenset(
    {"A_cols", "A_vals", "A_rows", "WDState", "ESC_keys", "ESC_vals"}
)


def _esc_finish(st: _EscState, sanitize: bool = False) -> None:
    """Block drained: same final state the reference run() sets."""
    st.blk.committed = st.c
    st.blk.done = True
    if sanitize:
        names = set(st.scratch.allocations)
        if names != _ESC_SCRATCH_LAYOUT:
            raise SanitizerError(
                f"batched ESC scratchpad layout diverged at retirement: "
                f"{sorted(names)} != {sorted(_ESC_SCRATCH_LAYOUT)}",
                stage="ESC",
                block_id=st.blk.block_id,
            )
        st.scratch.reset()








def _esc_optimistic_batch(
    ectx: EngineContext, pending: list
) -> list[OptimisticRun]:
    opts = ectx.options
    cfg = opts.device
    a, b = ectx.a, ectx.b
    glb = ectx.glb
    dtype = opts.value_dtype
    elem_bytes = opts.element_bytes
    epb = cfg.elements_per_block
    n_pending = len(pending)

    # ---- fetch A across all pending blocks (§3.2.1) -------------------
    npb = glb.nnz_per_block
    los = np.fromiter(
        (blk.block_id * npb for blk in pending), dtype=np.int64, count=n_pending
    )
    n_ent = np.minimum(a.nnz, los + npb) - los
    ent_off = np.zeros(n_pending + 1, dtype=np.int64)
    np.cumsum(n_ent, out=ent_off[1:])
    total_ent = int(ent_off[-1])
    idx = _ragged_arange(los, n_ent)
    a_cols_cat = a.col_idx[idx]
    a_rows_cat = glb.row_of_nnz[idx]
    a_vals_cat = a.values[idx].astype(dtype, copy=False)

    # local row dictionary per block, via boundary flags on the (sorted)
    # per-block row-id runs: equals np.unique(..., return_inverse=True)
    flag = np.empty(total_ent, dtype=bool)
    flag[0] = True
    np.not_equal(a_rows_cat[1:], a_rows_cat[:-1], out=flag[1:])
    flag[ent_off[:-1]] = True
    csum = np.cumsum(flag)
    local_row_cat = csum - np.repeat(csum[ent_off[:-1]], n_ent)
    uniq_pos = np.nonzero(flag)[0]
    uniq_rows_cat = a_rows_cat[uniq_pos]
    n_uniq = local_row_cat[ent_off[1:] - 1] + 1
    uniq_off = np.zeros(n_pending + 1, dtype=np.int64)
    np.cumsum(n_uniq, out=uniq_off[1:])
    fe_local_cat = uniq_pos - np.repeat(ent_off[:-1], n_uniq)

    # referenced B row lengths and the per-block product prefix sums
    b_start_cat = b.row_ptr[a_cols_cat]
    b_len_cat = b.row_ptr[a_cols_cat + 1] - b_start_cat
    counts_cat = b_len_cat.copy()
    long_mask_cat = None
    if opts.enable_long_row_handling:
        long_mask_cat = long_row_mask(b_len_cat, opts)
        counts_cat[long_mask_cat] = 0

    # G: concatenated per-block prefix sums, offset so they are globally
    # nondecreasing — one searchsorted then serves every block at once
    cs = np.cumsum(counts_cat)
    g_off = ent_off[:-1] + np.arange(n_pending, dtype=np.int64)
    G = np.empty(total_ent + n_pending, dtype=np.int64)
    pos_mask = np.ones(total_ent + n_pending, dtype=bool)
    pos_mask[g_off] = False
    G[pos_mask] = cs
    base = np.empty(n_pending, dtype=np.int64)
    base[0] = 0
    base[1:] = cs[ent_off[1:-1] - 1]
    G[g_off] = base
    totals = cs[ent_off[1:] - 1] - base

    # ---- whole-round expansion: every still-uncommitted product gets
    # its (row, column, value) up front at entry granularity; the
    # lockstep iterations then slice disjoint windows out of these
    # arrays.  Only the first entry of each block's remainder can be
    # partially consumed, so per entry the window is a clip against the
    # block's resume point --------------------------------------------
    c0s = np.fromiter((blk.committed for blk in pending), np.int64, n_pending)
    rem = totals - c0s
    exp_off = np.zeros(n_pending + 1, dtype=np.int64)
    np.cumsum(rem, out=exp_off[1:])
    prev = cs - counts_cat  # per-entry global product start
    lo = np.maximum(prev, np.repeat(base + c0s, n_ent))
    take = np.maximum(cs - lo, 0)
    exp_rows = np.repeat(local_row_cat, take)
    # products walk each referenced B row back to front, so an entry's
    # committed prefix occupies the row's tail and the remainder is the
    # first ``take`` elements, emitted in descending offset order
    b_elem = _ragged_revrange(b_start_cat, take)
    exp_cols = b.col_idx[b_elem]
    exp_vals = (
        np.repeat(a_vals_cat, take) * b.values[b_elem]
    ).astype(dtype, copy=False)
    del prev, lo, take, b_elem

    # ---- per-block setup charges, long rows, WD placement -------------
    states: list[_EscState] = []
    runs: list[OptimisticRun] = []
    empty_i = np.zeros(0, dtype=np.int64)
    empty_v = np.zeros(0, dtype=dtype)
    for k, blk in enumerate(pending):
        blk.attempts += 1
        meter = CostMeter(config=cfg, constants=opts.costs)
        if opts.device_trace:
            meter.sort_log = []
        scratch = Scratchpad.for_device(cfg)
        n = int(n_ent[k])
        ent0 = int(ent_off[k])
        meter.global_read(n, opts.col_index_bytes + dtype.itemsize)
        meter.global_read(n, 4)
        scratch.alloc_array("A_cols", n, 4)
        scratch.alloc_array("A_vals", n, dtype.itemsize)
        scratch.alloc_array("A_rows", n, 4)
        meter.alu(2 * n)  # local row dictionary
        meter.global_read(n, 8, coalesced=False)

        st = _EscState(
            blk=blk,
            meter=meter,
            scratch=scratch,
            n=n,
            ent0=ent0,
            g0=int(g_off[k]),
            uoff=int(uniq_off[k]),
            base=int(base[k]),
            total=int(totals[k]),
            c=blk.committed,
            exp_pos=int(exp_off[k]),
            carried_rows=empty_i,
            carried_cols=empty_i,
            carried_vals=empty_v,
        )
        run = OptimisticRun(
            worker=blk,
            meter=meter,
            records=st.records,
            on_success=_esc_on_success,
            on_fail=_esc_on_fail,
            scratchpad=scratch,
        )

        # Write Long Rows (§3.4): pointer chunks, in entry order
        if opts.enable_long_row_handling:
            long_entries = np.nonzero(long_mask_cat[ent0 : ent0 + n])[0]
            for j, e in enumerate(long_entries.tolist()):
                if j < blk.n_long_emitted:
                    continue  # already emitted before a restart
                row = int(a_rows_cat[ent0 + e])
                chunk = Chunk(
                    order_key=blk._next_chunk_key(),
                    kind="pointer",
                    first_row=row,
                    last_row=row,
                    b_row=int(a_cols_cat[ent0 + e]),
                    factor=float(a_vals_cat[ent0 + e]),
                    b_length=int(b_len_cat[ent0 + e]),
                )
                rec = AllocationRecord(
                    chunk=chunk,
                    nbytes=ectx.pool.data_bytes(0, 0),
                    pre_cycles=meter.cycles,
                    pre_counters=snapshot_counters(meter.counters),
                    commit=("insert", [row], [chunk.b_length]),
                    restore={
                        "committed": blk.committed,
                        "n_long_emitted": blk.n_long_emitted,
                        "esc_iterations": blk.esc_iterations,
                    },
                    pre_scratch_high=scratch.high_water,
                    pre_sort_len=len(meter.sort_log or ()),
                )
                meter.atomic(1)  # pool bump allocation
                meter.global_write(1, ectx.pool.data_bytes(0, 0))
                meter.atomic(2)  # tracker insert (one row)
                blk.n_long_emitted += 1
                st.records.append(rec)

        # LocalWorkDistribution: placement + optional restart drop
        scratch.alloc_array("WDState", n + 1, 4)
        meter.scan(n)  # place_work's inclusive prefix sum
        if blk.committed:
            meter.scratchpad(n)  # restart_from

        worst_bits = bits_required(max(0, n - 1)) + bits_required(
            max(0, b.cols - 1)
        )
        key_bytes = 4 if worst_bits <= 32 else 8
        scratch.alloc_array("ESC_keys", epb, key_bytes)
        scratch.alloc_array("ESC_vals", epb, dtype.itemsize)

        states.append(st)
        runs.append(run)

    # ---- lockstep ESC iterations --------------------------------------
    # the per-block charges below are hand-inlined CostMeter sequences:
    # each `cyc +=` mirrors one method-internal addition in call order,
    # so float accumulation is bit-identical to the reference's
    costs = opts.costs
    lanes = costs.scratchpad_lanes
    alanes = costs.alu_lanes
    bpc = costs.bytes_per_cycle
    tx_bytes = cfg.global_transaction_bytes
    rbp = costs.radix_bits_per_pass
    rpa = costs.radix_pass_alu_per_element
    rps = costs.radix_pass_scratch_per_element
    hdr_tx = -(-32 // tx_bytes)
    hdr_cyc = (hdr_tx * tx_bytes) / bpc
    ac = costs.atomic_cycles
    active = list(states)
    while active:
        runnable: list[_EscState] = []
        for st in active:
            st.taken = min(epb - st.carried_rows.shape[0], st.total - st.c)
            if st.taken == 0 and st.carried_rows.shape[0] == 0:
                _esc_finish(st, opts.sanitize)  # drained, nothing held locally
            else:
                st.blk.esc_iterations += 1
                runnable.append(st)
        if not runnable:
            break

        # precomputed expansion windows: each block's consumption is the
        # next window of the round arrays (charges are batched below)
        for st in runnable:
            t = st.taken
            if t:
                st.new_lo = st.exp_pos
                st.exp_pos += t
                st.new_hi = st.exp_pos
                st.c += t

        # assemble [carried, new] per segment (carried first: the stable
        # sort keeps accumulated values ahead of new products)
        parts_r: list[np.ndarray] = []
        parts_c: list[np.ndarray] = []
        parts_v: list[np.ndarray] = []
        seg_sizes = np.empty(len(runnable), dtype=np.int64)
        for i, st in enumerate(runnable):
            if st.carried_rows.shape[0]:
                parts_r.append(st.carried_rows)
                parts_c.append(st.carried_cols)
                parts_v.append(st.carried_vals)
            if st.taken:
                parts_r.append(exp_rows[st.new_lo : st.new_hi])
                parts_c.append(exp_cols[st.new_lo : st.new_hi])
                parts_v.append(exp_vals[st.new_lo : st.new_hi])
            seg_sizes[i] = st.carried_rows.shape[0] + st.taken
        rows_b = np.concatenate(parts_r)
        cols_b = np.concatenate(parts_c)
        vals_b = np.concatenate(parts_v)
        seg_off = np.zeros(len(runnable) + 1, dtype=np.int64)
        np.cumsum(seg_sizes, out=seg_off[1:])
        seg_starts = seg_off[:-1]

        seg_sizes_list = seg_sizes.tolist()

        # dynamic bit reduction (§3.2.3), per segment.  Row ranges come
        # free: carried runs and expansion windows are both row-sorted.
        if opts.enable_bit_reduction:
            cmin = np.minimum.reduceat(cols_b, seg_starts)
            cmax = np.maximum.reduceat(cols_b, seg_starts)
            rmin_list: list[int] = []
            rmax_list: list[int] = []
            for st in runnable:
                if st.carried_rows.shape[0]:
                    r0 = int(st.carried_rows[0])
                    r1 = int(st.carried_rows[-1])
                    if st.taken:
                        r0 = min(r0, int(exp_rows[st.new_lo]))
                        r1 = max(r1, int(exp_rows[st.new_hi - 1]))
                else:
                    r0 = int(exp_rows[st.new_lo])
                    r1 = int(exp_rows[st.new_hi - 1])
                rmin_list.append(r0)
                rmax_list.append(r1)
        else:
            cmin = np.zeros(len(runnable), dtype=np.int64)
            cmax = np.full(len(runnable), b.cols - 1, dtype=np.int64)
            rmin_list = [0] * len(runnable)
            rmax_list = [max(0, st.n - 1) for st in runnable]
        cmin_list = cmin.tolist()
        col_bits_list = [bits_required(d) for d in (cmax - cmin).tolist()]
        row_bits_list = [
            bits_required(r1 - r0) for r0, r1 in zip(rmin_list, rmax_list)
        ]
        key_bits_list = [r + c for r, c in zip(row_bits_list, col_bits_list)]

        # one shared column width for the whole iteration: each segment's
        # key stays monotone in (row, col) with identical tie structure,
        # so sort order and run equality are unchanged while both minimum
        # subtractions fold into a single scalar offset per segment.
        # Charged bit counts (key_bits_list) still use per-segment widths.
        cbmax = max(col_bits_list)
        sort_bits_list = [r + cbmax for r in row_bits_list]
        off_list = [
            (r0 << cbmax) + c0 for r0, c0 in zip(rmin_list, cmin_list)
        ]
        # (cbmax < 16 keeps every shift strictly inside the 16-bit lane)
        kdt = (
            np.uint16
            if cbmax < 16 and max(sort_bits_list) <= 16
            else np.uint64
        )
        # modular arithmetic: intermediates may wrap, the reduced key
        # fits the dtype, so the wrapped result is exact
        keys = rows_b.astype(kdt)
        keys <<= cbmax
        keys += cols_b.astype(kdt)
        if any(off_list):
            mask = int(np.iinfo(kdt).max)
            keys -= np.repeat(
                np.asarray([o & mask for o in off_list], dtype=kdt),
                seg_sizes,
            )

        perm = _segmented_sort(keys, seg_sizes, seg_off, sort_bits_list)
        keys_s = keys[perm]
        vals_s = vals_b[perm]

        comp_keys, comp_vals, comp_counts = _segmented_compact(
            keys_s, vals_s, seg_off
        )
        comp_off = np.zeros(len(runnable) + 1, dtype=np.int64)
        np.cumsum(comp_counts, out=comp_off[1:])
        comp_total = int(comp_off[-1])
        rl = comp_keys >> cbmax
        comp_rows_all = rl.astype(np.int64)
        rl <<= cbmax
        comp_cols_all = (comp_keys - rl).astype(np.int64)
        if any(rmin_list):
            comp_rows_all += np.repeat(
                np.asarray(rmin_list, dtype=np.int64), comp_counts
            )
        if any(cmin_list):
            comp_cols_all += np.repeat(cmin, comp_counts)
        # ---- the iteration's per-block charges, vectorised -------------
        # Each elementwise addition below mirrors one CostMeter-internal
        # addition in reference call order (receive, minmax scans, radix
        # sort, compaction), so per-meter float accumulation stays
        # bit-identical: IEEE-754 ops are elementwise deterministic, and
        # no meter is read between receive and the emission loop.
        nb = len(runnable)
        t_arr = np.fromiter((st.taken for st in runnable), np.int64, nb)
        n_arr = np.fromiter((st.n for st in runnable), np.int64, nb)
        cyc0 = np.fromiter(
            (st.meter.cycles for st in runnable), np.float64, nb
        )
        t2 = 2 * t_arr
        cyc_arr = cyc0 + epb / lanes  # clear(Offsets)
        cyc_arr += (2 * n_arr) / lanes  # state reads
        cyc_arr += t2 / lanes  # inclusive max scan
        cyc_arr += t2 / alanes
        cyc_arr += t2 / lanes  # layout exchange
        cyc_arr += t2 / alanes
        cyc_arr += n_arr / lanes  # state decrement
        payload = t_arr * elem_bytes
        tx = -(-payload // tx_bytes)
        cyc_arr += (tx * tx_bytes) / bpc  # read B columns/values
        cyc_arr += t2 / alanes  # flops
        took = t_arr > 0
        # receive_work is skipped entirely when nothing was taken
        cyc_arr = np.where(took, cyc_arr, cyc0)
        s2 = 2 * seg_sizes
        if opts.enable_bit_reduction:
            sc = s2 / lanes
            sa = s2 / alanes
            cyc_arr += sc  # minmax scan over columns
            cyc_arr += sa
            cyc_arr += sc  # minmax scan over rows
            cyc_arr += sa
        kb_arr = np.asarray(key_bits_list, dtype=np.int64)
        passes = np.maximum(1, -(-kb_arr // rbp))
        pe = passes * seg_sizes
        pa = (pe * rpa).astype(np.int64)
        ps = (pe * rps).astype(np.int64)
        cyc_arr += pa / alanes  # radix rank arithmetic
        cyc_arr += ps / lanes  # radix scatter round trips
        cyc_arr += s2 / alanes  # compaction neighbour compares
        cyc_arr += s2 / lanes  # Algorithm 3's single scan
        cyc_arr += s2 / alanes
        spa = ps + s2
        if opts.enable_bit_reduction:
            spa += 2 * s2
        spa += np.where(took, epb + 3 * n_arr + 4 * t_arr, 0)
        cyc_l = cyc_arr.tolist()
        spa_l = spa.tolist()
        gtx_l = tx.tolist()  # zero wherever nothing was taken
        gbr_l = payload.tolist()
        fl_l = t2.tolist()
        p_l = passes.tolist()
        trace_sorts = opts.device_trace
        for i, st in enumerate(runnable):
            st.meter.cycles = cyc_l[i]
            k = st.meter.counters
            k.scratchpad_accesses += spa_l[i]
            k.global_transactions += gtx_l[i]
            k.global_bytes_read += gbr_l[i]
            k.flops += fl_l[i]
            k.sorted_elements += seg_sizes_list[i]
            k.sort_passes += p_l[i]
            if trace_sorts:
                # mirrors CostMeter.radix_sort's log entry for the
                # reference's (n_batch, row_bits + col_bits) sort
                st.meter.sort_log.append((seg_sizes_list[i], key_bits_list[i]))

        # ---- batch the per-block emission bookkeeping ------------------
        # global row id of every compacted entry
        uoffs = np.fromiter((st.uoff for st in runnable), np.int64, len(runnable))
        glob_rows_all = uniq_rows_cat[
            comp_rows_all + np.repeat(uoffs, comp_counts)
        ]
        # per-(segment, row) runs: tracker commit lists and keep decisions
        rflag = np.empty(comp_total, dtype=bool)
        rflag[0] = True
        np.not_equal(comp_rows_all[1:], comp_rows_all[:-1], out=rflag[1:])
        rflag[comp_off[:-1]] = True
        rpos = np.nonzero(rflag)[0]
        rcnt = np.empty(rpos.shape[0], dtype=np.int64)
        np.subtract(rpos[1:], rpos[:-1], out=rcnt[:-1])
        rcnt[-1] = comp_total - rpos[-1]
        run_rows_list = glob_rows_all[rpos].tolist()
        run_cnt_list = rcnt.tolist()
        rcum = np.cumsum(rflag)
        r_lo_list = (rcum[comp_off[:-1]] - 1).tolist()
        r_hi_list = rcum[comp_off[1:] - 1].tolist()
        # keep-last-row candidate == size of each segment's last row run
        last_start = rpos[rcum[comp_off[1:] - 1] - 1]
        keep_cand_list = (comp_off[1:] - last_start).tolist()
        # commit point if the last row is kept: its first original product
        last_local = comp_rows_all[comp_off[1:] - 1]
        g0s = np.fromiter((st.g0 for st in runnable), np.int64, len(runnable))
        bases = np.fromiter((st.base for st in runnable), np.int64, len(runnable))
        orig_list = (G[g0s + fe_local_cat[uoffs + last_local]] - bases).tolist()
        comp_off_list = comp_off.tolist()

        # ---- per-block keep-last-row decision and chunk emission -------
        keep_elems = cfg.keep_elements
        enable_keep = opts.enable_keep_last_row
        itemsize = dtype.itemsize
        col_bytes = opts.col_index_bytes
        next_active: list[_EscState] = []
        for i, st in enumerate(runnable):
            lo_c, hi_c = comp_off_list[i], comp_off_list[i + 1]
            comp_n = hi_c - lo_c
            blk = st.blk
            meter = st.meter
            wd_empty = st.c == st.total
            keep_n = 0
            if not wd_empty and enable_keep and comp_n:
                keep_n = keep_cand_list[i]
                if keep_n > keep_elems:
                    keep_n = 0  # too large to hold locally: spill everything
            write_n = comp_n - keep_n

            if write_n:
                commit_point = min(st.c, orig_list[i]) if keep_n else st.c
                r_lo = r_lo_list[i]
                r_hi = r_hi_list[i] - 1 if keep_n else r_hi_list[i]
                rows_u = run_rows_list[r_lo:r_hi]
                counts_u = run_cnt_list[r_lo:r_hi]
                # slices stay views: the iteration's comp arrays are
                # never written again, so chunks can share their storage
                chunk = Chunk(
                    order_key=blk._next_chunk_key(),
                    kind="data",
                    first_row=rows_u[0],
                    last_row=rows_u[-1],
                    rows=glob_rows_all[lo_c : lo_c + write_n],
                    cols=comp_cols_all[lo_c : lo_c + write_n],
                    vals=comp_vals[lo_c : lo_c + write_n],
                )
                nbytes = ectx.pool.data_bytes(write_n, itemsize, col_bytes)
                rec = AllocationRecord(
                    chunk=chunk,
                    nbytes=nbytes,
                    pre_cycles=meter.cycles,
                    pre_counters=snapshot_counters(meter.counters),
                    commit=("insert", rows_u, counts_u),
                    restore={
                        "committed": blk.committed,
                        "n_long_emitted": blk.n_long_emitted,
                        "esc_iterations": blk.esc_iterations,
                    },
                    pre_scratch_high=st.scratch.high_water,
                    pre_sort_len=len(meter.sort_log or ()),
                )
                k = meter.counters
                w2 = 2 * write_n
                payload = write_n * elem_bytes
                tx = -(-payload // tx_bytes)
                nr2 = 2 * len(rows_u)
                cyc = meter.cycles
                cyc += 1 * ac  # pool bump allocation
                cyc += w2 / lanes  # stage the chunk in scratchpad
                cyc += (tx * tx_bytes) / bpc  # write the chunk payload
                cyc += hdr_cyc  # header
                cyc += nr2 * ac  # tracker inserts
                meter.cycles = cyc
                k.atomic_ops += 1 + nr2
                k.scratchpad_accesses += w2
                k.global_transactions += tx + hdr_tx
                k.global_bytes_written += payload + 32
                st.records.append(rec)
                blk.committed = commit_point
            elif wd_empty and comp_n == 0:
                _esc_finish(st, opts.sanitize)
                continue

            if keep_n:
                st.carried_rows = comp_rows_all[lo_c + write_n : hi_c]
                st.carried_cols = comp_cols_all[lo_c + write_n : hi_c]
                st.carried_vals = comp_vals[lo_c + write_n : hi_c]
            else:
                st.carried_rows = empty_i
                st.carried_cols = empty_i
                st.carried_vals = empty_v

            if wd_empty and st.carried_rows.shape[0] == 0:
                _esc_finish(st, opts.sanitize)
            else:
                next_active.append(st)
        active = next_active

    return runs


# ---------------------------------------------------------------------------
# stage 3: batched Multi Merge
# ---------------------------------------------------------------------------


def _multi_merge_optimistic_batch(
    ectx: EngineContext, workers: list
) -> list[OptimisticRun]:
    opts = ectx.options
    cfg = opts.device
    b = ectx.b
    dtype = opts.value_dtype
    epb = cfg.elements_per_block

    # gather every group's segments (charges the per-segment reads)
    meters: list[CostMeter] = []
    grp_rows: list[np.ndarray] = []
    grp_cols: list[np.ndarray] = []
    grp_vals: list[np.ndarray] = []
    for w in workers:
        meter = CostMeter(config=cfg, constants=opts.costs)
        if opts.device_trace:
            meter.sort_log = []
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        for rel, row in enumerate(w.rows):
            segs = gather_row_segments(row, ectx.tracker, b, opts, meter)
            for c, v in zip(segs.cols, segs.vals):
                rows_parts.append(np.full(c.shape[0], rel, dtype=np.int64))
                cols_parts.append(c)
                vals_parts.append(v)
        rows_rel = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        vals = np.concatenate(vals_parts)
        if cols.shape[0] > epb:
            raise AssertionError(
                "Multi Merge group exceeds block capacity — assignment bug"
            )
        if cols.shape[0] == 0:
            raise AssertionError("empty Multi Merge group — assignment bug")
        meters.append(meter)
        grp_rows.append(rows_rel)
        grp_cols.append(cols)
        grp_vals.append(vals)

    seg_sizes = np.fromiter((c.shape[0] for c in grp_cols), np.int64, len(workers))
    seg_off = np.zeros(len(workers) + 1, dtype=np.int64)
    np.cumsum(seg_sizes, out=seg_off[1:])
    rows_b = np.concatenate(grp_rows)
    cols_b = np.concatenate(grp_cols)
    vals_b = np.concatenate(grp_vals)

    # esc_merge_batch per group: column-only bit reduction, rows as-is
    if opts.enable_bit_reduction:
        cmin = np.minimum.reduceat(cols_b, seg_off[:-1])
        cmax = np.maximum.reduceat(cols_b, seg_off[:-1])
        for i in range(len(workers)):
            meters[i].scan(int(seg_sizes[i]))
    else:
        cmin = np.zeros(len(workers), dtype=np.int64)
        cmax = np.maximum.reduceat(cols_b, seg_off[:-1])
    col_bits = np.fromiter(
        (bits_required(max(0, int(cmax[i] - cmin[i]))) for i in range(len(workers))),
        np.int64,
        len(workers),
    )
    row_bits = np.fromiter(
        (bits_required(max(0, len(w.rows) - 1)) for w in workers),
        np.int64,
        len(workers),
    )
    key_bits = row_bits + col_bits

    keys = rows_b.astype(np.uint64)
    keys <<= np.repeat(col_bits, seg_sizes).astype(np.uint64)
    keys |= (cols_b - np.repeat(cmin, seg_sizes)).astype(np.uint64)
    perm = _segmented_sort(keys, seg_sizes, seg_off, key_bits.tolist())
    keys_s = keys[perm]
    vals_s = vals_b[perm]
    for i in range(len(workers)):
        meters[i].radix_sort(int(seg_sizes[i]), int(key_bits[i]))

    comp_keys, comp_vals, comp_counts = _segmented_compact(keys_s, vals_s, seg_off)
    comp_off = np.zeros(len(workers) + 1, dtype=np.int64)
    np.cumsum(comp_counts, out=comp_off[1:])
    rep_cb = np.repeat(col_bits, comp_counts).astype(np.uint64)
    rl = comp_keys >> rep_cb
    comp_rows_all = rl.astype(np.int64)
    rl <<= rep_cb
    comp_cols_all = (comp_keys - rl).astype(np.int64) + np.repeat(
        cmin, comp_counts
    )

    runs: list[OptimisticRun] = []
    for i, w in enumerate(workers):
        meter = meters[i]
        m = int(seg_sizes[i])
        meter.alu(2 * m)  # compaction neighbour compares
        meter.scan(m)  # Algorithm 3's single scan
        lo_c, hi_c = int(comp_off[i]), int(comp_off[i + 1])
        comp_n = hi_c - lo_c
        comp_rows = comp_rows_all[lo_c:hi_c]
        meter.alu(m - comp_n)  # the merge's re-combining additions
        rows_global = np.asarray(w.rows, dtype=np.int64)[comp_rows]
        from ..core.merge import MERGE_BLOCK_SEQ_BASE

        chunk = Chunk(
            order_key=(MERGE_BLOCK_SEQ_BASE + w.block_index, 0),
            kind="data",
            first_row=int(rows_global[0]),
            last_row=int(rows_global[-1]),
            rows=rows_global,
            cols=comp_cols_all[lo_c:hi_c],
            vals=comp_vals[lo_c:hi_c],
        )
        nbytes = ectx.pool.data_bytes(comp_n, dtype.itemsize, opts.col_index_bytes)
        counts = np.bincount(comp_rows, minlength=len(w.rows))
        rec = AllocationRecord(
            chunk=chunk,
            nbytes=nbytes,
            pre_cycles=meter.cycles,
            pre_counters=snapshot_counters(meter.counters),
            commit=("replace", list(w.rows), [int(c) for c in counts]),
            pre_sort_len=len(meter.sort_log or ()),
        )
        meter.atomic(1)  # pool bump allocation
        meter.scratchpad(2 * comp_n)
        meter.global_write(comp_n, opts.element_bytes)
        meter.global_write(1, 32)
        meter.atomic(len(w.rows))  # per-row count/list swap
        runs.append(OptimisticRun(worker=w, meter=meter, records=[rec]))
    return runs


# ---------------------------------------------------------------------------
# stage 3: batched Path/Search Merge (iterative row merges)
# ---------------------------------------------------------------------------


class _MergeCtx:
    """The slice of :class:`~repro.gpu.block.BlockContext` the threshold
    hooks consume (``.config`` and ``.meter``) — iterative merge workers
    never touch a scratchpad, so building the full context per worker
    per round would be pure allocation churn."""

    __slots__ = ("config", "meter")

    def __init__(self, config, meter):
        self.config = config
        self.meter = meter


@dataclass
class _IterMergeState:
    """Per-worker lockstep state of one batched PM/SM round."""

    w: object
    meter: CostMeter
    ctx: _MergeCtx
    records: list = field(default_factory=list)
    final_commit: object = None
    # slice of the current iteration's segment in the batch arrays
    cols: np.ndarray | None = None
    vals: np.ndarray | None = None
    take: np.ndarray | None = None


def _iter_merge_on_fail(w, rec: AllocationRecord, cycles: float) -> None:
    """Roll the worker back to the failing allocation's snapshot; its
    cursors from earlier successful iterations survive (the reference
    resumes mid-row after pool growth)."""
    w._cursors = list(rec.restore["cursors"])
    del w._produced[rec.restore["n_produced"] :]
    w._offset = rec.restore["offset"]
    w._emit_seq = rec.restore["emit_seq"]
    w.done = False


def _iterative_merge_optimistic_batch(
    ectx: EngineContext, workers: list
) -> list[OptimisticRun]:
    """Run every Path/Search Merge worker of one round in lockstep.

    Each lockstep iteration gathers every still-active worker's next
    column slice (threshold selection stays per-worker — it is sampling
    over tiny arrays — but charges land on the worker's own meter in
    reference order), then executes the sort + compaction of *all*
    slices as one segmented batch.  Keys are column-only: an iterative
    merge block handles exactly one row, so the reference's composite
    ``(row_rel << col_bits) | col`` key has a constant zero in its
    single row bit and the permutation equals sorting the column part.
    Charges still account the full ``row_bits + col_bits`` wide sort.
    """
    opts = ectx.options
    cfg = opts.device
    b = ectx.b
    dtype = opts.value_dtype
    capacity = cfg.elements_per_block
    elem_bytes = opts.element_bytes

    states: list[_IterMergeState] = []
    for w in workers:
        w.attempts += 1
        meter = CostMeter(config=cfg, constants=opts.costs)
        if opts.device_trace:
            meter.sort_log = []
        if w._cols is None:
            segs = gather_row_segments(
                w.row, ectx.tracker, b, opts, meter, materialize_cost=False
            )
            w._cols = segs.cols
            w._vals = segs.vals
            w._cursors = [0] * len(segs.cols)
        states.append(
            _IterMergeState(w=w, meter=meter, ctx=_MergeCtx(cfg, meter))
        )

    tracker = ectx.tracker
    active = states
    while active:
        batch: list[_IterMergeState] = []
        for st in active:
            w = st.w
            meter = st.meter
            remaining_cols = [
                c[cur:] for c, cur in zip(w._cols, w._cursors)
            ]
            total = sum(c.shape[0] for c in remaining_cols)
            if total == 0:
                # retire: the multi-chunk row swap is deferred to the
                # run's final_commit so the replay applies it at the
                # reference's point of the serial order — and only when
                # no allocation of this run failed
                meter.atomic(1)
                w.done = True

                def _commit(row=w.row, chunks=list(w._produced), off=w._offset):
                    tracker.replace_row(row, chunks, off)

                st.final_commit = _commit
                continue

            if total <= capacity:
                take = np.asarray(
                    [c.shape[0] for c in remaining_cols], dtype=np.int64
                )
            else:
                threshold = w._choose_threshold(st.ctx, remaining_cols, capacity)
                take = w._counts_for(remaining_cols, threshold)
                taken_total = int(take.sum())
                if taken_total == 0 or taken_total > capacity:
                    raise AssertionError(
                        "threshold selection violated the capacity contract"
                    )

            take_list = take.tolist()
            cols_parts = [
                c[:t] for c, t in zip(remaining_cols, take_list) if t
            ]
            vals_parts = [
                v[cur : cur + t]
                for v, cur, t in zip(w._vals, w._cursors, take_list)
                if t
            ]
            st.cols = (
                cols_parts[0] if len(cols_parts) == 1 else np.concatenate(cols_parts)
            )
            st.vals = (
                vals_parts[0] if len(vals_parts) == 1 else np.concatenate(vals_parts)
            )
            st.take = take
            meter.global_read(st.cols.shape[0], elem_bytes)
            batch.append(st)

        if not batch:
            break

        # ---- batched esc_merge_batch over every active segment --------
        nseg = len(batch)
        seg_sizes = np.fromiter((st.cols.shape[0] for st in batch), np.int64, nseg)
        seg_off = np.zeros(nseg + 1, dtype=np.int64)
        np.cumsum(seg_sizes, out=seg_off[1:])
        cols_b = (
            batch[0].cols if nseg == 1 else np.concatenate([st.cols for st in batch])
        )
        vals_b = (
            batch[0].vals if nseg == 1 else np.concatenate([st.vals for st in batch])
        )

        if opts.enable_bit_reduction:
            cmin = np.minimum.reduceat(cols_b, seg_off[:-1])
            cmax = np.maximum.reduceat(cols_b, seg_off[:-1])
            for i in range(nseg):
                batch[i].meter.scan(int(seg_sizes[i]))
        else:
            cmin = np.zeros(nseg, dtype=np.int64)
            cmax = np.maximum.reduceat(cols_b, seg_off[:-1])
        col_bits = np.fromiter(
            (bits_required(max(0, int(cmax[i] - cmin[i]))) for i in range(nseg)),
            np.int64,
            nseg,
        )
        # one row per block: row_bits == bits_required(0) == 1, and the
        # row part of every key is zero
        key_bits = col_bits + 1

        keys = (cols_b - np.repeat(cmin, seg_sizes)).astype(np.uint64)
        perm = _segmented_sort(keys, seg_sizes, seg_off, key_bits.tolist())
        keys_s = keys[perm]
        vals_s = vals_b[perm]
        for i in range(nseg):
            batch[i].meter.radix_sort(int(seg_sizes[i]), int(key_bits[i]))

        comp_keys, comp_vals, comp_counts = _segmented_compact(
            keys_s, vals_s, seg_off
        )
        comp_off = np.zeros(nseg + 1, dtype=np.int64)
        np.cumsum(comp_counts, out=comp_off[1:])
        comp_cols_all = comp_keys.astype(np.int64) + np.repeat(cmin, comp_counts)

        # ---- per-worker chunk emission (reference charge order) --------
        next_active: list[_IterMergeState] = []
        for i, st in enumerate(batch):
            w = st.w
            meter = st.meter
            m = int(seg_sizes[i])
            meter.alu(2 * m)  # compaction neighbour compares
            meter.scan(m)  # Algorithm 3's single scan
            lo_c, hi_c = int(comp_off[i]), int(comp_off[i + 1])
            comp_n = hi_c - lo_c
            meter.alu(m - comp_n)  # the merge's re-combining additions

            chunk = Chunk(
                order_key=w._order_key(),
                kind="data",
                first_row=w.row,
                last_row=w.row,
                rows=np.full(comp_n, w.row, dtype=np.int64),
                cols=comp_cols_all[lo_c:hi_c],
                vals=comp_vals[lo_c:hi_c],
                segment_offsets={w.row: w._offset},
            )
            nbytes = ectx.pool.data_bytes(
                comp_n, dtype.itemsize, opts.col_index_bytes
            )
            rec = AllocationRecord(
                chunk=chunk,
                nbytes=nbytes,
                pre_cycles=meter.cycles,
                pre_counters=snapshot_counters(meter.counters),
                commit=("none", (), ()),
                restore={
                    "cursors": list(w._cursors),
                    "n_produced": len(w._produced),
                    "offset": w._offset,
                    "emit_seq": w._emit_seq,
                },
                pre_sort_len=len(meter.sort_log or ()),
            )
            st.records.append(rec)
            meter.atomic(1)  # pool bump allocation
            meter.scratchpad(2 * comp_n)
            meter.global_write(comp_n, elem_bytes)
            meter.global_write(1, 32)

            # optimistic advance (rolled back by _iter_merge_on_fail)
            w._emit_seq += 1
            w._offset += comp_n
            w._produced.append(chunk)
            w._cursors = [
                cur + int(t) for cur, t in zip(w._cursors, st.take.tolist())
            ]
            st.cols = st.vals = st.take = None
            next_active.append(st)
        active = next_active

    return [
        OptimisticRun(
            worker=st.w,
            meter=st.meter,
            records=st.records,
            on_fail=_iter_merge_on_fail,
            final_commit=st.final_commit,
        )
        for st in states
    ]


# ---------------------------------------------------------------------------
# stage 4: batched chunk copy
# ---------------------------------------------------------------------------


def _copy_chunks_batched(
    ectx: EngineContext, row_ptr: np.ndarray, counter_sink: CostMeter
) -> tuple[CSRMatrix, list[float]]:
    pool, tracker, b, opts = ectx.pool, ectx.tracker, ectx.b, ectx.options
    n_rows = tracker.n_rows
    nnz = int(row_ptr[-1])
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=opts.value_dtype)
    # the element-exact double-write/coverage tracking costs several
    # full-size boolean gathers and scatters per multiply, so it runs
    # only under --sanitize; the unconditional completeness check at the
    # end (total copied count == nnz) still catches lost or duplicated
    # segments, just without naming the exact element
    check = opts.sanitize
    written = np.zeros(nnz, dtype=bool) if check else None

    chunks = list(pool.ordered_chunks())
    n_chunks = len(chunks)
    cindex = {id(ch): i for i, ch in enumerate(chunks)}

    # (chunk, row) liveness as sorted composite keys: a row belongs to a
    # chunk iff the tracker's final per-row list still references it
    okeys: list[int] = []
    for row, lst in tracker.row_lists.items():
        for ch in lst:
            okeys.append(cindex[id(ch)] * n_rows + row)
    owned_keys = np.sort(np.asarray(okeys, dtype=np.int64))
    copied_per_chunk = [0] * n_chunks

    # ---- pointer chunks: single-row slice copies ----------------------
    for ci, chunk in enumerate(chunks):
        if chunk.kind != "pointer":
            continue
        row = chunk.first_row
        key = ci * n_rows + row
        j = int(np.searchsorted(owned_keys, key))
        if j >= owned_keys.shape[0] or int(owned_keys[j]) != key:
            continue
        lo = b.row_ptr[chunk.b_row]
        m = chunk.b_length
        base = int(row_ptr[row]) + chunk.segment_offset(row)
        if base + m > int(row_ptr[row + 1]):
            raise AssertionError(f"chunk copy overflows row {row}")
        dest = slice(base, base + m)
        if check:
            if written[dest].any():
                raise AssertionError(f"double write into row {row}")
            written[dest] = True
        col_idx[dest] = b.col_idx[lo : lo + m]
        values[dest] = chunk.factor * b.values[lo : lo + m]
        copied_per_chunk[ci] = m

    # ---- data chunks: coalesced slice copies over the live runs -------
    data_ci = np.fromiter(
        (
            ci
            for ci, ch in enumerate(chunks)
            if ch.kind == "data" and ch.rows.shape[0]
        ),
        np.int64,
    )
    if data_ci.shape[0]:
        dchunks = [chunks[ci] for ci in data_ci.tolist()]
        lens = np.fromiter(
            (ch.rows.shape[0] for ch in dchunks), np.int64, len(dchunks)
        )
        off = np.zeros(len(dchunks) + 1, dtype=np.int64)
        np.cumsum(lens, out=off[1:])
        rows_cat = np.concatenate([ch.rows for ch in dchunks])
        n_tot = rows_cat.shape[0]

        # per-(chunk, row) runs via boundary flags with chunk breaks
        flag = np.empty(n_tot, dtype=bool)
        flag[0] = True
        np.not_equal(rows_cat[1:], rows_cat[:-1], out=flag[1:])
        flag[off[:-1]] = True
        pos = np.nonzero(flag)[0]
        run_cnt = np.empty(pos.shape[0], dtype=np.int64)
        np.subtract(pos[1:], pos[:-1], out=run_cnt[:-1])
        run_cnt[-1] = n_tot - pos[-1]
        run_row = rows_cat[pos]
        # pos ascends, so invert the chunk lookup (|off| ≪ |pos|)
        run_di = np.cumsum(
            np.bincount(
                np.searchsorted(pos, off[1:], side="left"),
                minlength=pos.shape[0] + 1,
            )[: pos.shape[0]]
        )
        run_key = data_ci[run_di] * n_rows + run_row
        if owned_keys.shape[0]:
            j = np.searchsorted(owned_keys, run_key)
            jc = np.minimum(j, owned_keys.shape[0] - 1)
            live = owned_keys[jc] == run_key
        else:
            live = np.zeros(pos.shape[0], dtype=bool)

        # rows split over merge-produced chunks carry explicit in-row
        # segment offsets; everything else starts at the row pointer
        seg_base = np.zeros(pos.shape[0], dtype=np.int64)
        has_off = np.fromiter(
            (ch.segment_offsets is not None for ch in dchunks),
            bool,
            len(dchunks),
        )
        special = np.nonzero(live & has_off[run_di])[0]
        for ri in special.tolist():
            ch = dchunks[int(run_di[ri])]
            seg_base[ri] = ch.segment_offsets.get(int(run_row[ri]), 0)

        rows_l = run_row[live]
        cnt_l = run_cnt[live]
        pos_l = pos[live]
        di_l = run_di[live]
        dst_base = row_ptr[rows_l] + seg_base[live]
        if np.any(dst_base + cnt_l > row_ptr[rows_l + 1]):
            raise AssertionError("chunk copy overflows a row")

        if pos_l.shape[0]:
            # adjacent live runs are almost always contiguous on both the
            # source and destination side and come from the same chunk, so
            # the element-granular gather/scatter collapses into a few
            # thousand slice copies straight out of each chunk's own
            # arrays — no cols/vals concatenation, no index vectors
            brk = np.empty(pos_l.shape[0], dtype=bool)
            brk[0] = True
            brk[1:] = (
                (pos_l[1:] != pos_l[:-1] + cnt_l[:-1])
                | (dst_base[1:] != dst_base[:-1] + cnt_l[:-1])
                | (di_l[1:] != di_l[:-1])
            )
            starts = np.nonzero(brk)[0]
            bounds = np.append(starts, pos_l.shape[0])
            cum = np.zeros(cnt_l.shape[0] + 1, dtype=np.int64)
            np.cumsum(cnt_l, out=cum[1:])
            seg_len = cum[bounds[1:]] - cum[bounds[:-1]]
            src0_list = (pos_l[starts] - off[di_l[starts]]).tolist()
            dst0_list = dst_base[starts].tolist()
            sdi_list = di_l[starts].tolist()
            for s0, d0, di, ln in zip(
                src0_list, dst0_list, sdi_list, seg_len.tolist()
            ):
                ch = dchunks[di]
                de = d0 + ln
                if check:
                    if written[d0:de].any():
                        raise AssertionError("double write during chunk copy")
                    written[d0:de] = True
                col_idx[d0:de] = ch.cols[s0 : s0 + ln]
                values[d0:de] = ch.vals[s0 : s0 + ln]

        copied_data = np.bincount(
            di_l, weights=cnt_l, minlength=len(dchunks)
        ).astype(np.int64)
        for di, cp in zip(data_ci.tolist(), copied_data.tolist()):
            copied_per_chunk[di] = cp

    # ---- per-chunk charges: cycles/counters depend only on the copied
    # count, so identical counts share one freshly charged meter --------
    elem_bytes = opts.element_bytes
    block_cycles: list[float] = []
    charge_cache: dict[int, tuple[float, int, int, int]] = {}
    sum_read = sum_written = sum_tx = 0
    for cp in copied_per_chunk:
        if not cp:
            block_cycles.append(0.0)
            continue
        ent = charge_cache.get(cp)
        if ent is None:
            meter = CostMeter(config=opts.device, constants=opts.costs)
            meter.global_read(cp, elem_bytes)
            meter.global_write(cp, elem_bytes)
            k = meter.counters
            ent = (
                meter.cycles,
                k.global_bytes_read,
                k.global_bytes_written,
                k.global_transactions,
            )
            charge_cache[cp] = ent
        block_cycles.append(ent[0])
        sum_read += ent[1]
        sum_written += ent[2]
        sum_tx += ent[3]
    sink = counter_sink.counters
    sink.global_bytes_read += sum_read
    sink.global_bytes_written += sum_written
    sink.global_transactions += sum_tx

    if check and not written.all():
        missing = int((~written).sum())
        raise AssertionError(f"{missing} output entries were never written")
    if sum(copied_per_chunk) != nnz:
        raise AssertionError(
            f"chunk copy covered {sum(copied_per_chunk)} of {nnz} entries"
        )

    c = CSRMatrix(
        rows=n_rows,
        cols=b.cols,
        row_ptr=row_ptr,
        col_idx=col_idx,
        values=values,
    )
    return c, block_cycles


# ---------------------------------------------------------------------------


class BatchedEngine(ReferenceEngine):
    """Fuse all ready blocks of each kernel launch into numpy batches.

    Every stage is batched: ESC and Multi Merge as one flat batch per
    round, Path/Search Merge as lockstep iterations whose sorts and
    compactions fuse across workers (threshold sampling stays
    per-worker — it reads tiny arrays and carries restart cursors).
    """

    name = "batched"

    def esc_round(self, ectx: EngineContext, pending: list) -> list[RoundOutcome]:
        self.count("fused_esc_launches")
        self.count("fused_esc_blocks", len(pending))
        runs = _esc_optimistic_batch(ectx, pending)
        return replay_and_commit(
            ectx.pool, ectx.tracker, runs, ectx.options.costs
        )

    def merge_round(
        self, ectx: EngineContext, stage: str, workers: list
    ) -> list[RoundOutcome]:
        if stage == "MM":
            self.count("fused_mm_launches")
            self.count("fused_mm_groups", len(workers))
            runs = _multi_merge_optimistic_batch(ectx, workers)
            return replay_and_commit(
                ectx.pool, ectx.tracker, runs, ectx.options.costs
            )
        # PM/SM: lockstep-batched iterative merges.  The threshold
        # hooks' internal sample sorts run under the single-pass
        # execution mode (same permutations, same charges).
        self.count("fused_iter_launches")
        self.count("fused_iter_workers", len(workers))
        with fast_stable_sort():
            runs = _iterative_merge_optimistic_batch(ectx, workers)
        return replay_and_commit(
            ectx.pool, ectx.tracker, runs, ectx.options.costs
        )

    def copy_output(
        self, ectx: EngineContext, row_ptr: np.ndarray, counter_sink
    ):
        self.count("fused_copy_launches")
        return _copy_chunks_batched(ectx, row_ptr, counter_sink)

"""Zero-copy CSR transport over POSIX shared memory.

A :class:`SharedCSR` places one CSR matrix's three arrays back-to-back
in a single :class:`multiprocessing.shared_memory.SharedMemory` segment
so warm worker processes can map the operands instead of receiving a
pickled copy per task (or rebuilding them from generators).  The
attached views are read-only by convention — every consumer in this
repository treats CSR arrays as immutable device buffers.

Ownership is explicit and single-sided: the process that calls
:meth:`SharedCSR.export` owns the segment and must :meth:`unlink` it
exactly once (normally in a ``finally``); attachers only :meth:`close`
their mapping.  On Linux an unlink while workers still hold mappings is
safe — the segment disappears from ``/dev/shm`` immediately and its
memory is reclaimed when the last mapping closes — which is what makes
the owner-side ``finally`` sufficient even when a worker crashes without
cleaning up.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["SharedCSR", "list_segments", "segment_exists", "sweep_segments"]

#: where POSIX shared memory surfaces as files (Linux); existence and
#: prefix listing degrade gracefully where this mount is absent
_SHM_DIR = "/dev/shm"


def segment_exists(name: str) -> bool:
    """Whether a named segment still exists (best effort).

    On hosts without a ``/dev/shm`` view the answer is unknowable
    without attaching (which would perturb the resource tracker), so
    the conservative answer is ``True``.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return True
    return os.path.exists(os.path.join(_SHM_DIR, name))


def list_segments(prefix: str) -> list[str]:
    """Names of live segments starting with ``prefix`` (sorted).

    Used by supervisors to enumerate segments a SIGKILLed previous
    owner of the same deterministic namespace may have leaked.  Returns
    ``[]`` where ``/dev/shm`` is not visible.
    """
    if not prefix:
        raise ValueError("refusing to list segments without a prefix")
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name for name in os.listdir(_SHM_DIR) if name.startswith(prefix)
    )


def sweep_segments(names) -> int:
    """Unlink every named segment that still exists; returns the count.

    The shared reclaim path for deterministic segment namespaces: the
    campaign runner sweeps the names its plan could have created, and
    the serve supervisor sweeps its prefix minus the live exports.
    Unlinking while attachments exist is safe on Linux (the memory goes
    with the last mapping).
    """
    swept = 0
    for seg in names:
        try:
            stale = shared_memory.SharedMemory(name=seg)
        except FileNotFoundError:
            continue
        stale.unlink()
        stale.close()
        swept += 1
    return swept


class SharedCSR:
    """One CSR matrix in one shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, meta: dict, *, owner: bool):
        self._shm = shm
        self._meta = meta
        self._owner = owner
        self._unlinked = False

    # -- owner side -----------------------------------------------------

    @classmethod
    def export(cls, matrix: CSRMatrix, *, name: str | None = None) -> "SharedCSR":
        """Copy ``matrix`` into a fresh segment owned by the caller.

        With an explicit ``name`` the caller opts into deterministic
        naming: a stale segment left by a SIGKILLed previous owner (a
        kill takes the whole process group, resource tracker included,
        so nobody survives to unlink) is reclaimed here — the next run
        of the same campaign is the cleanup path.
        """
        row_ptr = np.ascontiguousarray(matrix.row_ptr, dtype=np.int64)
        col_idx = np.ascontiguousarray(matrix.col_idx, dtype=np.int64)
        values = np.ascontiguousarray(matrix.values)
        sizes = (row_ptr.nbytes, col_idx.nbytes, values.nbytes)
        total = max(1, sum(sizes))
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=total, name=name
            )
        except FileExistsError:
            stale = shared_memory.SharedMemory(name=name)
            stale.unlink()
            stale.close()
            shm = shared_memory.SharedMemory(
                create=True, size=total, name=name
            )
        off = 0
        for arr in (row_ptr, col_idx, values):
            if arr.nbytes:
                shm.buf[off : off + arr.nbytes] = arr.tobytes()
            off += arr.nbytes
        meta = {
            "name": shm.name,
            "rows": matrix.rows,
            "cols": matrix.cols,
            "nnz": int(col_idx.shape[0]),
            "value_dtype": values.dtype.str,
            "sizes": sizes,
        }
        from ..obs.trace import trace_note

        trace_note("shm.export", shm.name)  # no-op outside a trace
        return cls(shm, meta, owner=True)

    def meta(self) -> dict:
        """Picklable attachment descriptor."""
        return dict(self._meta)

    # -- attacher side --------------------------------------------------

    @classmethod
    def attach(cls, meta: dict) -> "SharedCSR":
        """Map an exported segment by name (no copy).

        Attaching re-registers the name with the resource tracker, but
        spawn children share the parent's tracker process and its name
        cache is a set — the duplicate is a no-op, and the owner's
        :meth:`unlink` performs the single matching unregister.  (Do
        *not* unregister here: with a shared tracker that would delete
        the owner's registration out from under it.)
        """
        shm = shared_memory.SharedMemory(name=meta["name"])
        from ..obs.trace import trace_note

        trace_note("shm.attach", meta["name"])  # no-op outside a trace
        return cls(shm, dict(meta), owner=False)

    def matrix(self) -> CSRMatrix:
        """A zero-copy :class:`CSRMatrix` over the mapped segment.

        The returned matrix's arrays alias the mapping; keep this
        handle alive for as long as the matrix is in use.
        """
        meta = self._meta
        s_ptr, s_col, s_val = meta["sizes"]
        nnz = meta["nnz"]
        buf = self._shm.buf
        row_ptr = np.frombuffer(buf, dtype=np.int64, count=meta["rows"] + 1)
        col_idx = np.frombuffer(buf, dtype=np.int64, count=nnz, offset=s_ptr)
        values = np.frombuffer(
            buf, dtype=np.dtype(meta["value_dtype"]), count=nnz, offset=s_ptr + s_col
        )
        m = CSRMatrix(
            rows=meta["rows"],
            cols=meta["cols"],
            row_ptr=row_ptr,
            col_idx=col_idx,
            values=values,
        )
        m._validated = True  # exported from an already-validated build
        return m

    # -- lifecycle ------------------------------------------------------

    @property
    def name(self) -> str:
        """Segment name (for tests and diagnostics)."""
        return self._meta["name"]

    def exists(self) -> bool:
        """Whether the segment name is still linked (best effort).

        ``False`` means an external actor (a chaos fault, a tmpfs
        sweep) unlinked it: existing mappings stay valid, but new
        attachers will fail and the owner should re-export.
        """
        return segment_exists(self._meta["name"])

    def close(self) -> None:
        """Drop this process's mapping (owner and attacher alike).

        When numpy views over the buffer are still alive the mmap
        cannot be closed; the mapping is abandoned instead (reclaimed at
        process exit, which for the warm workers is the normal case) and
        the handle is neutered so ``SharedMemory.__del__`` does not
        retry and print an ignored ``BufferError`` at shutdown.
        """
        try:
            self._shm.close()
        except BufferError:  # views still alive: mapping dies with them
            shm = self._shm
            shm._mmap = None
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1

    def unlink(self) -> None:
        """Remove the segment (owner only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def release(self) -> None:
        """Owner teardown: unlink the name, then drop the mapping."""
        self.unlink()
        self.close()

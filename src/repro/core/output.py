"""Stage 4 — output matrix assembly and chunk copy (§3.5).

"Once all chunks have been finalized, generating the final result is
straightforward: A device-wide prefix sum over the row counts yields the
row pointer array and C's memory requirement for allocation of the
values and column id arrays.  Then, in parallel, we iterate over all
chunks and copy their data to the newly allocated C.  Each chunk uses a
complete block of threads to copy data in a coalesced fashion."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.cost import CostMeter
from ..sparse.csr import CSRMatrix
from .chunks import Chunk, ChunkPool, RowChunkTracker
from .options import AcSpgemmOptions

__all__ = ["ChunkCopyPlan", "build_row_pointer", "copy_chunks"]


@dataclass(frozen=True)
class ChunkCopyPlan:
    """Chunks to copy and which of their rows each still owns."""

    chunks: tuple[Chunk, ...]


def build_row_pointer(
    tracker: RowChunkTracker, meter: CostMeter
) -> np.ndarray:
    """Device-wide exclusive prefix sum over the (now exact) row counts."""
    n = tracker.n_rows
    meter.scan(n)
    meter.global_read(n, 4)
    meter.global_write(n + 1, 8)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(tracker.row_counts, out=row_ptr[1:])
    return row_ptr


def copy_chunks(
    pool: ChunkPool,
    tracker: RowChunkTracker,
    row_ptr: np.ndarray,
    b: CSRMatrix,
    options: AcSpgemmOptions,
    counter_sink: CostMeter,
) -> tuple[CSRMatrix, list[float]]:
    """Copy every live chunk into the output arrays.

    A chunk's row is *live* for it iff the tracker's final per-row list
    still references this chunk (rows that went through merging are
    owned by the merge-produced chunks instead).  Returns the output
    matrix and per-chunk-copy block cycle counts for the scheduler.
    """
    n_rows = tracker.n_rows
    nnz = int(row_ptr[-1])
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=options.value_dtype)
    written = np.zeros(nnz, dtype=bool)

    block_cycles: list[float] = []
    elem_bytes = options.element_bytes

    for chunk in pool.ordered_chunks():
        meter = CostMeter(config=options.device, constants=options.costs)
        copied = 0
        for row in chunk.covered_rows().tolist():
            owners = tracker.row_lists.get(row, [])
            if not any(o is chunk for o in owners):
                continue  # row was merged into replacement chunks
            seg = chunk.row_segment(row)
            cols = chunk.columns(b)[seg]
            vals = chunk.values(b)[seg]
            base = int(row_ptr[row]) + chunk.segment_offset(row)
            dest = slice(base, base + cols.shape[0])
            if dest.stop > int(row_ptr[row + 1]):
                raise AssertionError(
                    f"chunk copy overflows row {row}: "
                    f"{dest.stop - int(row_ptr[row])} > "
                    f"{int(row_ptr[row + 1]) - int(row_ptr[row])}"
                )
            if written[dest].any():
                raise AssertionError(f"double write into row {row}")
            col_idx[dest] = cols
            values[dest] = vals
            written[dest] = True
            copied += cols.shape[0]
        if copied:
            meter.global_read(copied, elem_bytes)
            meter.global_write(copied, elem_bytes)
        counter_sink.merge(meter)
        block_cycles.append(meter.cycles)

    if not written.all():
        missing = int((~written).sum())
        raise AssertionError(f"{missing} output entries were never written")

    c = CSRMatrix(
        rows=n_rows,
        cols=b.cols,
        row_ptr=row_ptr,
        col_idx=col_idx,
        values=values,
    )
    return c, block_cycles

"""AC-SpGEMM — the paper's primary contribution (systems S5–S11).

Public entry point: :func:`ac_spgemm`.
"""

from .acspgemm import AcSpgemmResult, MemoryReport, STAGE_KEYS, ac_spgemm
from .chunks import Chunk, ChunkPool, PoolExhausted, RowChunkTracker
from .compaction import (
    CompactionResult,
    ScanItem,
    compact_sorted,
    initial_state,
    scan_operator,
    sequential_compaction_scan,
)
from .esc import EscBlock, EscBlockOutcome
from .estimate_sampling import sampled_chunk_pool_bytes, sampled_output_estimate
from .load_balance import GlobalLoadBalance, global_load_balance
from .long_rows import long_row_mask
from .memory_estimate import estimate_chunk_pool_bytes, estimate_output_entries
from .merge import MergeAssignment, MultiMergeBlock, assign_merges
from .merge_path import PathMergeBlock
from .merge_search import SearchMergeBlock
from .options import AcSpgemmOptions, DEFAULT_OPTIONS
from .work_distribution import LocalWorkDistribution

__all__ = [
    "AcSpgemmOptions",
    "AcSpgemmResult",
    "Chunk",
    "ChunkPool",
    "CompactionResult",
    "DEFAULT_OPTIONS",
    "EscBlock",
    "EscBlockOutcome",
    "GlobalLoadBalance",
    "LocalWorkDistribution",
    "MemoryReport",
    "MergeAssignment",
    "MultiMergeBlock",
    "PathMergeBlock",
    "PoolExhausted",
    "RowChunkTracker",
    "STAGE_KEYS",
    "ScanItem",
    "SearchMergeBlock",
    "ac_spgemm",
    "assign_merges",
    "compact_sorted",
    "estimate_chunk_pool_bytes",
    "estimate_output_entries",
    "global_load_balance",
    "initial_state",
    "long_row_mask",
    "sampled_chunk_pool_bytes",
    "sampled_output_estimate",
    "scan_operator",
    "sequential_compaction_scan",
]

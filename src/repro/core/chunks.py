"""Chunk storage and tracking (§3.2.4, Figure 4).

A *chunk* is a partial result of C produced by one block: a run of
complete output rows plus possibly partial first/last rows.  Chunks are
bump-allocated from a global pool via an atomic counter; an array of
chunk pointers allows the pool to grow by simply adding memory regions
(the restart mechanism).

Per output row the tracker keeps a linked list of the chunks that carry
data for it.  List insertion uses an atomic exchange, so the *list*
order is scheduler-dependent — therefore every chunk also carries a
global order key (block id, per-block running chunk number) and all
consumers sort by it, which restores determinism (§3.3: "To guarantee a
deterministic merge order, we perform an initial sort of the chunks
based on their global chunk order").

Two chunk kinds exist:

* ``data`` — materialised (column, value) pairs for one or more rows.
* ``pointer`` — a long-row chunk (§3.4) referencing a row of B plus the
  scale factor from A; its data is produced on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.cost import CostMeter
from ..gpu.counters import AtomicCounter
from ..resilience.errors import ReproError
from ..sparse.csr import CSRMatrix

__all__ = [
    "CHUNK_HEADER_BYTES",
    "PoolExhausted",
    "Chunk",
    "ChunkPool",
    "RowChunkTracker",
]

#: starting row, element count, first/last-row counts, sort key, next
#: pointer of the per-row linked list (Figure 4) — 32 bytes of metadata.
CHUNK_HEADER_BYTES = 32


class PoolExhausted(ReproError, MemoryError):
    """The chunk pool cannot satisfy an allocation; the block must store
    restart information and wait for a host round trip (§3.2.4).

    Normally *recoverable*: the driver's restart loop catches the
    block-level effect, grows the pool and relaunches.  It only reaches
    callers when recovery is impossible (restart budget spent) or
    disabled.  Also a :class:`MemoryError` for backwards compatibility.
    """


@dataclass
class Chunk:
    """One partial result of C."""

    order_key: tuple[int, int]  # (block id, per-block running number)
    kind: str  # "data" | "pointer"
    first_row: int
    last_row: int
    # data chunks --------------------------------------------------------
    rows: np.ndarray | None = None  # global output row of every element
    cols: np.ndarray | None = None
    vals: np.ndarray | None = None
    # pointer chunks -------------------------------------------------------
    b_row: int = -1
    factor: float = 0.0
    b_length: int = 0
    # pool bookkeeping ----------------------------------------------------
    pool_offset: int = -1
    nbytes: int = 0
    # rows split over several merge-produced chunks record where each
    # chunk's segment starts within the output row
    segment_offsets: dict[int, int] | None = None

    def segment_offset(self, row: int) -> int:
        """Start offset of this chunk's segment within ``row``."""
        if self.segment_offsets is None:
            return 0
        return self.segment_offsets.get(row, 0)

    @property
    def count(self) -> int:
        """Stored (or referenced) element count."""
        if self.kind == "pointer":
            return self.b_length
        return int(self.cols.shape[0])

    def columns(self, b: CSRMatrix) -> np.ndarray:
        """Column ids of this chunk's elements (sorted ascending within
        each row); pointer chunks read them from B."""
        if self.kind == "pointer":
            lo = b.row_ptr[self.b_row]
            return b.col_idx[lo : lo + self.b_length]
        return self.cols

    def values(self, b: CSRMatrix) -> np.ndarray:
        """Values; pointer chunks materialise ``factor * B[b_row, :]``."""
        if self.kind == "pointer":
            lo = b.row_ptr[self.b_row]
            return self.factor * b.values[lo : lo + self.b_length]
        return self.vals

    def row_segment(self, row: int) -> slice:
        """Index range of ``row``'s elements inside a data chunk (the
        rows array is sorted, so this is a binary search)."""
        if self.kind == "pointer":
            if row != self.first_row:
                raise KeyError(f"pointer chunk does not cover row {row}")
            return slice(0, self.b_length)
        lo = int(np.searchsorted(self.rows, row, side="left"))
        hi = int(np.searchsorted(self.rows, row, side="right"))
        if lo == hi:
            raise KeyError(f"chunk {self.order_key} has no data for row {row}")
        return slice(lo, hi)

    def covered_rows(self) -> np.ndarray:
        """Distinct output rows with data in this chunk."""
        if self.kind == "pointer":
            return np.asarray([self.first_row], dtype=np.int64)
        return np.unique(self.rows)


@dataclass
class ChunkPool:
    """Bump allocator over a (growable) global memory region."""

    capacity_bytes: int
    offset: AtomicCounter = field(default_factory=AtomicCounter)
    chunks: list[Chunk] = field(default_factory=list)
    growths: int = 0
    #: fault-injection gate (``repro.resilience``): called with the
    #: requested byte count on *every* admission attempt; returning True
    #: forces the attempt to fail as if the pool were exhausted.  Both
    #: admission paths — direct allocation here and the optimistic
    #: engines' serial replay — go through :meth:`admission_ok`, so an
    #: installed hook observes the identical block-major attempt
    #: sequence on every engine.
    fault_hook: object | None = field(default=None, repr=False, compare=False)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by allocated chunks."""
        return self.offset.load()

    @property
    def free_bytes(self) -> int:
        """Remaining pool capacity."""
        return self.capacity_bytes - self.used_bytes

    def data_bytes(self, n_elements: int, value_itemsize: int, col_bytes: int = 4) -> int:
        """Pool bytes for a data chunk of ``n_elements`` entries."""
        return CHUNK_HEADER_BYTES + n_elements * (col_bytes + value_itemsize)

    def allocate(self, chunk: Chunk, nbytes: int, meter: CostMeter) -> Chunk:
        """Reserve pool space for ``chunk`` (atomic bump) and register it.

        Raises :class:`PoolExhausted` without mutating the pool when the
        space does not suffice — the caller stores restart info.
        """
        if nbytes <= 0:
            raise ValueError("chunk allocation must be positive")
        if not self.admission_ok(nbytes):
            raise PoolExhausted(
                f"chunk pool exhausted: need {nbytes} B, "
                f"{self.free_bytes} of {self.capacity_bytes} B free",
                block_id=chunk.order_key[0],
            )
        chunk.pool_offset = self.offset.fetch_add(nbytes)
        chunk.nbytes = nbytes
        meter.atomic(1)
        self.chunks.append(chunk)
        return chunk

    def admission_ok(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would be admitted.

        The single admission chokepoint: consults the fault-injection
        hook first (one *attempt* is counted whether or not the bytes
        would fit), then the capacity.  Does not mutate the pool.
        """
        if self.fault_hook is not None and self.fault_hook(nbytes):
            return False
        return self.used_bytes + nbytes <= self.capacity_bytes

    def grow(self, extra_bytes: int) -> None:
        """Add another memory region to the pool (restart path; a full
        pointer per chunk makes regions position-independent, §3.2.4)."""
        if extra_bytes <= 0:
            raise ValueError("growth must be positive")
        self.capacity_bytes += extra_bytes
        self.growths += 1

    def ordered_chunks(self) -> list[Chunk]:
        """All chunks in the deterministic global chunk order."""
        return sorted(self.chunks, key=lambda c: c.order_key)


@dataclass
class RowChunkTracker:
    """Per-row chunk lists plus the shared-rows array (Figure 4).

    ``row_counts`` accumulates, atomically, the number of (locally
    compacted) elements each chunk contributes per row; for shared rows
    this equals the remaining intermediate products to merge (§3.3).
    """

    n_rows: int
    row_lists: dict[int, list[Chunk]] = field(default_factory=dict)
    shared_rows: list[int] = field(default_factory=list)
    row_counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.row_counts = np.zeros(self.n_rows, dtype=np.int64)

    def insert(self, chunk: Chunk, row: int, count: int, meter: CostMeter) -> None:
        """Link ``chunk`` into ``row``'s list and add its element count.

        One atomic exchange on the list head plus one atomic add on the
        row count.  Appending to the shared-rows array costs another
        atomic when the second chunk arrives — that charge is *deferred*
        to the end of the block's run (:class:`~repro.core.esc.EscBlock`
        counts the new shared rows and settles them in one
        ``meter.atomic`` call), because the optimistic engines only
        learn which block inserted a row's second chunk during the
        serial replay and settle it the same way; charging it inline
        here would give the reference a different float-addition order
        and break per-block cycle bit-identity across engines.
        """
        lst = self.row_lists.setdefault(row, [])
        lst.append(chunk)
        meter.atomic(2)  # list-head exchange + row-count add
        self.row_counts[row] += count
        if len(lst) == 2:
            self.shared_rows.append(row)

    def insert_chunk(self, chunk: Chunk, b: CSRMatrix, meter: CostMeter) -> None:
        """Insert a chunk for every row it covers."""
        if chunk.kind == "pointer":
            self.insert(chunk, chunk.first_row, chunk.b_length, meter)
            return
        rows, counts = np.unique(chunk.rows, return_counts=True)
        for row, count in zip(rows.tolist(), counts.tolist()):
            self.insert(chunk, row, int(count), meter)

    def chunks_for(self, row: int) -> list[Chunk]:
        """Row's chunks in deterministic global chunk order."""
        return sorted(self.row_lists.get(row, []), key=lambda c: c.order_key)

    def is_shared(self, row: int) -> bool:
        """True when more than one chunk carries data for ``row``."""
        return len(self.row_lists.get(row, ())) > 1

    def sorted_shared_rows(self) -> np.ndarray:
        """Shared rows in ascending row order (deterministic merge
        assignment; the insertion order is scheduler-dependent)."""
        return np.asarray(sorted(self.shared_rows), dtype=np.int64)

    def replace_row(self, row: int, new_chunks: list[Chunk], new_count: int) -> None:
        """After merging, ``row`` is covered by ``new_chunks`` (ordered
        by ascending column range) and its count becomes exact."""
        self.row_lists[row] = list(new_chunks)
        self.row_counts[row] = new_count

    def helper_bytes(self) -> int:
        """list heads + shared-row tracker + row counts (Table 3 helper)."""
        return 8 * self.n_rows + 4 * self.n_rows + 4 * len(self.shared_rows)

"""Long-row policy (§3.4).

A row of B whose length exceeds the block's ESC capacity would be
loaded, sorted and written back without any compaction benefit (a sorted
row multiplied by a scalar is already an ESC result).  Such rows are
detected during Fetch A and diverted into *pointer chunks* that
reference B's data plus the scale factor from A; the products never
enter the work distribution.
"""

from __future__ import annotations

import numpy as np

from .options import AcSpgemmOptions

__all__ = ["long_row_mask"]


def long_row_mask(b_lengths: np.ndarray, options: AcSpgemmOptions) -> np.ndarray:
    """Boolean mask over a block's A-entries: True where the referenced
    B row is handled by a pointer chunk instead of local ESC."""
    if not options.enable_long_row_handling:
        return np.zeros(b_lengths.shape[0], dtype=bool)
    return b_lengths > options.effective_long_row_threshold

"""Configuration of the AC-SpGEMM pipeline.

Defaults follow §4 of the paper: 256 threads per block, 256 non-zeros of
A per block for global load balancing, 8 sort elements per thread, up to
4 kept elements per thread, a chunk-pool estimate multiplied by 1.2 with
a 100 MB lower bound.  Every design choice called out in the paper is an
explicit switch here so the ablation benches can toggle it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields, replace

import numpy as np

from ..gpu.config import DeviceConfig, TITAN_XP
from ..gpu.cost import CostConstants, DEFAULT_COSTS
from ..resilience.faults import FaultPlan

__all__ = ["AcSpgemmOptions", "DEFAULT_OPTIONS"]


@dataclass(frozen=True)
class AcSpgemmOptions:
    """Tunable parameters and ablation switches for AC-SpGEMM.

    Attributes
    ----------
    device:
        Simulated device and kernel geometry.
    value_dtype:
        float32 or float64 (the paper evaluates both).
    enable_bit_reduction:
        Dynamic sort-key bit reduction from min/max tracking (§3.2.3).
        Disabling it sorts full-width keys — the ablation shows the cost.
    enable_keep_last_row:
        Carry the last (incomplete) row between local ESC iterations
        instead of spilling it to a chunk (§3.2.3).  Disabling forces a
        chunk write per iteration, increasing merge work — the behaviour
        of prior local-ESC approaches [7].
    enable_long_row_handling:
        Emit pointer chunks for B rows longer than ``long_row_threshold``
        instead of pushing them through ESC (§3.4).
    long_row_threshold:
        Entries above which a B row is "long".  ``None`` uses the block
        capacity (a row that cannot fit one ESC iteration).
    chunk_pool_bytes:
        Explicit initial chunk pool size; ``None`` uses the paper's
        estimate (§4, reproduced in :mod:`repro.core.memory_estimate`).
    chunk_pool_lower_bound_bytes:
        The paper applies a 100 MB lower bound.  Unit tests shrink this
        to exercise restarts on small inputs.
    chunk_meta_factor:
        Multiplier on the estimate "to account for the chunk meta data
        and divergences from the average row length" (§4).
    pool_growth_factor:
        Pool growth on each restart round trip.
    max_restarts:
        Safety valve against pathological growth loops.
    multi_merge_max_chunks:
        Rows covered by at most this many chunks (and fitting one block)
        are handled by Multi Merge; the paper uses 2.
    path_merge_max_chunks:
        Rows with chunk counts in ``(multi_merge_max_chunks, this]`` use
        Path Merge ("applicable up to a predefined number of chunks");
        beyond it Search Merge ("can handle an arbitrary number").
    """

    device: DeviceConfig = TITAN_XP
    costs: CostConstants = DEFAULT_COSTS
    value_dtype: np.dtype = np.dtype(np.float64)
    enable_bit_reduction: bool = True
    enable_keep_last_row: bool = True
    enable_long_row_handling: bool = True
    long_row_threshold: int | None = None
    chunk_pool_bytes: int | None = None
    chunk_pool_lower_bound_bytes: int = 100 * 1024 * 1024
    #: chunk-pool sizing strategy: ``"uniform"`` is the paper's §4
    #: uniform-collision estimate with the 100 MB lower bound;
    #: ``"sampling"`` is the OCEAN-style sampled symbolic estimate
    #: (``repro.core.estimate_sampling``) with a 4 MB lower bound —
    #: restarts absorb the rare underestimates.  Ignored when
    #: ``chunk_pool_bytes`` pins the pool explicitly.
    estimator: str = "uniform"
    chunk_meta_factor: float = 1.2
    pool_growth_factor: float = 2.0
    max_restarts: int = 256
    multi_merge_max_chunks: int = 2
    path_merge_max_chunks: int = 8
    validate_inputs: bool = True
    col_index_bytes: int = 4  # 32-bit column ids, as in the CUDA artifact
    #: collect a per-kernel execution trace (the artifact's Debug mode);
    #: the trace is attached to the result as ``result.trace``
    collect_trace: bool = False
    #: host execution engine for the block-level stages: ``"reference"``
    #: steps one simulated block at a time, ``"batched"`` fuses all ready
    #: blocks of a launch into flat numpy batches, ``"parallel"`` runs
    #: blocks on a thread pool, ``"process"`` pins ESC rounds to warm
    #: worker processes fed via shared memory.  All engines produce
    #: bit-identical results and identical simulated cycles/counters;
    #: only host wall-clock differs (see ``repro.engine``).
    engine: str = "reference"
    #: check pipeline invariants (pool bookkeeping, chunk linkage, row
    #: coverage) at every stage boundary; violations raise
    #: ``SanitizerError`` (see ``repro.resilience.sanitize``)
    sanitize: bool = False
    #: ``"raise"`` propagates unrecoverable failures as typed
    #: ``ReproError``s; ``"fallback"`` degrades to the global-ESC
    #: baseline with a fresh conservative allocation and records the
    #: failure on the result (``result.degraded`` / ``result.failure``).
    #: Input-validation errors always raise — a bad input has no
    #: correct product to fall back to.
    on_failure: str = "raise"
    #: deterministic fault-injection plan (``repro.resilience.faults``);
    #: activated once per run, identical effects on every engine
    fault_plan: FaultPlan | None = None
    #: collect the device-level trace (``repro.obs.device``): per-block
    #: events with SM placement, scratchpad high-water and sort shapes,
    #: plus per-record counter attribution.  Byte-identical across all
    #: three engines and zero-cost when off; attached to the result as
    #: ``result.device_trace``
    device_trace: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "value_dtype", np.dtype(self.value_dtype))
        if self.value_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("value_dtype must be float32 or float64")
        if self.engine not in ("reference", "batched", "parallel", "process"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "expected 'reference', 'batched', 'parallel' or 'process'"
            )
        if self.multi_merge_max_chunks < 2:
            raise ValueError("multi_merge_max_chunks must be at least 2")
        if self.path_merge_max_chunks < self.multi_merge_max_chunks:
            raise ValueError(
                "path_merge_max_chunks must be >= multi_merge_max_chunks"
            )
        if self.estimator not in ("uniform", "sampling"):
            raise ValueError(
                f"unknown estimator {self.estimator!r}; "
                "expected 'uniform' or 'sampling'"
            )
        if self.chunk_meta_factor < 1.0:
            raise ValueError("chunk_meta_factor must be >= 1.0")
        if self.pool_growth_factor <= 1.0:
            raise ValueError("pool_growth_factor must exceed 1.0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.on_failure not in ("raise", "fallback"):
            raise ValueError(
                f"unknown on_failure policy {self.on_failure!r}; "
                "expected 'raise' or 'fallback'"
            )
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError("fault_plan must be a FaultPlan or None")

    @property
    def effective_long_row_threshold(self) -> int:
        """The configured threshold, or the block's ESC capacity."""
        if self.long_row_threshold is not None:
            return self.long_row_threshold
        return self.device.elements_per_block

    @property
    def element_bytes(self) -> int:
        """Bytes of one stored (column id, value) pair."""
        return self.col_index_bytes + self.value_dtype.itemsize

    def with_(self, **kwargs) -> "AcSpgemmOptions":
        """Copy with replaced fields (ablation helper)."""
        return replace(self, **kwargs)

    def cache_fingerprint(self) -> str:
        """Stable short digest of every option that can affect a run.

        Used by the bench result cache so runs with different options
        (engine, ablation switches, device geometry, cost constants)
        can never alias one cached cell.  Dataclass reprs are
        deterministic, so the digest is stable across processes.
        """
        import hashlib

        payload = "|".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in dc_fields(self)
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:12]


DEFAULT_OPTIONS = AcSpgemmOptions()

"""AC-SpGEMM driver: the paper's four-stage pipeline (Figure 2).

1. **Global load balancing** — static non-zero split of A (Algorithm 1).
2. **Adaptive chunk-based ESC** — per-block multi-iteration local ESC
   with chunk output and restart support.
3. **Chunk merging** — Multi / Path / Search Merge of shared rows.
4. **Output** — row-pointer prefix sum and parallel chunk copy.

The driver also owns the chunk-pool estimate and the restart loop: when
the pool is exhausted, affected blocks persist their restart state, the
host grows the pool ("expanding the chunk pool is as easy as adding
another memory region") and relaunches only the unfinished blocks.

:func:`ac_spgemm` returns the result matrix together with the full cost
accounting the evaluation section reports: per-stage simulated times
(Figure 7), memory consumption (Table 3 / Figure 8), restart count and
multiprocessor load (Table 3).

Failure handling (see ``docs/ARCHITECTURE.md`` §6) also lives here:
every engineered failure raises a typed
:class:`~repro.resilience.errors.ReproError` with stage/block/restart
context; ``options.fault_plan`` injects deterministic faults at the
driver's chokepoints (identically on every engine);
``options.sanitize`` checks pipeline invariants at stage boundaries;
and ``options.on_failure="fallback"`` degrades unrecoverable runs to
the global-ESC baseline instead of raising, recording the failure on
the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine import get_engine
from ..engine.base import EngineContext
from ..gpu.cost import CostMeter
from ..gpu.counters import TrafficCounters
from ..gpu.memory import ScratchpadOverflow
from ..gpu.scheduler import KernelTiming, partition_aborted, schedule_blocks
from ..obs.device import BlockMeta, DeviceTrace
from ..obs.span import SpanRecorder
from ..resilience.errors import ReproError, RestartBudgetExceeded, SanitizerError
from ..resilience.sanitize import check_stage_boundary
from ..sparse.csr import CSRMatrix
from ..sparse.validate import validate_csr
from .chunks import ChunkPool, PoolExhausted, RowChunkTracker
from .esc import EscBlock
from .load_balance import global_load_balance
from .memory_estimate import estimate_chunk_pool_bytes
from .merge import MultiMergeBlock, assign_merges
from .merge_path import PathMergeBlock
from .merge_search import SearchMergeBlock
from .options import AcSpgemmOptions, DEFAULT_OPTIONS
from .output import build_row_pointer

__all__ = ["MemoryReport", "AcSpgemmResult", "ac_spgemm"]

#: stage keys in Figure 7 order: global load balancing, AC-ESC, merge
#: case assignment, multi merge, path merge, search merge, chunk copy
STAGE_KEYS = ("GLB", "ESC", "MCC", "MM", "PM", "SM", "CC")


@dataclass(frozen=True)
class MemoryReport:
    """Global memory consumption (Table 3 / Figure 8)."""

    helper_bytes: int
    chunk_pool_bytes: int
    chunk_used_bytes: int
    output_bytes: int

    @property
    def used_over_output(self) -> float:
        """Chunk memory actually used relative to the output matrix
        (Table 3 column "u/o"); near 1.0 means local ESC iterations
        "essentially produce completed chunks of the output matrix"."""
        if self.output_bytes == 0:
            return 0.0
        return self.chunk_used_bytes / self.output_bytes

    @property
    def used_fraction(self) -> float:
        """Fraction of the allocated pool that was used (Table 3 "%")."""
        if self.chunk_pool_bytes == 0:
            return 0.0
        return self.chunk_used_bytes / self.chunk_pool_bytes


@dataclass
class AcSpgemmResult:
    """Output matrix plus the paper's full accounting."""

    matrix: CSRMatrix
    stage_cycles: dict[str, float]
    counters: TrafficCounters
    memory: MemoryReport
    restarts: int
    multiprocessor_load: float
    n_chunks: int
    n_blocks: int
    clock_ghz: float
    shared_rows: int = 0
    merge_stats: dict[str, int] = field(default_factory=dict)
    #: per-kernel execution trace (populated when
    #: ``options.collect_trace`` is set — the artifact's Debug mode)
    trace: object | None = None
    #: root :class:`~repro.obs.span.Span` of the pipeline span tree —
    #: always recorded; identical across engines for the same input
    spans: object | None = None
    #: host-side engine telemetry (blocks stepped, fused launches,
    #: thread-pool tasks); engine-specific by design, unlike every
    #: simulated statistic
    engine_stats: dict = field(default_factory=dict)
    #: aggregate fraction of SM-cycles busy over the block-level kernel
    #: launches (1.0 when no block-level kernel ran)
    sm_utilization: float = 1.0
    #: True when the adaptive pipeline failed and the result was
    #: recomputed by the global-ESC fallback (``on_failure="fallback"``)
    degraded: bool = False
    #: the failure that triggered degradation, as
    #: ``ReproError.context()`` (kind/stage/block_id/restarts/message)
    failure: dict | None = None
    #: device-level trace (populated when ``options.device_trace`` is
    #: set): per-block SM timelines and counter attribution, see
    #: :class:`~repro.obs.device.DeviceTrace`.  Byte-identical across
    #: engines; carries a truncation marker on degraded runs
    device_trace: object | None = None
    #: backend name this multiply was routed to, set by the adaptive
    #: selector (``repro.backends``); None for direct engine calls
    dispatched_to: str | None = None
    #: the selector's flight-recorder dispatch event (predicted vs.
    #: actual cycles, regret bound); None for direct engine calls
    routing_audit: dict | None = None

    @property
    def total_cycles(self) -> float:
        """Sum of all stage makespans."""
        return float(sum(self.stage_cycles.values()))

    @property
    def seconds(self) -> float:
        """Simulated execution time."""
        return self.total_cycles / (self.clock_ghz * 1e9)

    def stage_fractions(self) -> dict[str, float]:
        """Relative per-stage runtime (the bars of Figure 7)."""
        total = self.total_cycles
        if total == 0:
            return {k: 0.0 for k in STAGE_KEYS}
        return {k: v / total for k, v in self.stage_cycles.items()}


def _device_wide_cycles(meter: CostMeter, num_sms: int) -> float:
    """A device-wide pass parallelises perfectly over the SMs."""
    return meter.cycles / num_sms


def _worker_id(worker) -> int | None:
    """Block id of an ESC block or merge worker, for error context."""
    if worker is None:
        return None
    block_id = getattr(worker, "block_id", None)
    if block_id is None:
        block_id = getattr(worker, "block_index", None)
    return block_id


def _finish_spans(spans: SpanRecorder, owns: bool, anchor, **attrs):
    """Close the recorder we own, or unwind back to an injected anchor.

    When the caller (the adaptive selector) injected its own recorder,
    the driver must not ``close()`` the whole tree — it finishes spans
    until its own ``anchor`` span is popped, leaving the caller's root
    open for further recording.
    """
    if owns:
        return spans.close(**attrs)
    while spans.current is not anchor:
        spans.finish()
    spans.finish(**attrs)
    return anchor


def ac_spgemm(
    a: CSRMatrix,
    b: CSRMatrix,
    options: AcSpgemmOptions | None = None,
    *,
    spans: SpanRecorder | None = None,
    dtrace: DeviceTrace | None = None,
) -> AcSpgemmResult:
    """Compute ``C = A @ B`` with AC-SpGEMM on the simulated device.

    Deterministic and bit-stable: repeated calls with the same inputs
    and options produce byte-identical results.

    ``spans``/``dtrace`` allow a caller that already opened its own
    recording context — the adaptive selector in ``repro.backends`` —
    to nest this run inside it; by default the driver owns both.

    Unrecoverable execution failures raise typed
    :class:`~repro.resilience.errors.ReproError` subclasses; with
    ``options.on_failure="fallback"`` they degrade to the global-ESC
    baseline instead (input-validation errors always raise).
    """
    opts = options or DEFAULT_OPTIONS
    if a.cols != b.rows:
        raise ValueError(
            f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
        )
    owns_spans = spans is None
    if owns_spans:
        spans = SpanRecorder(clock_ghz=opts.device.clock_ghz)
    anchor = spans.start(
        "acspgemm",
        engine=opts.engine,
        rows=a.rows,
        inner=a.cols,
        cols=b.cols,
        nnz_a=a.nnz,
        nnz_b=b.nnz,
    )
    with spans.span("setup", validated=opts.validate_inputs):
        if opts.validate_inputs:
            # sanitizer mode also rejects non-finite values: a NaN/Inf
            # input poisons every product it touches, which the
            # stage-boundary checks cannot distinguish from corruption
            validate_csr(a, require_finite=opts.sanitize)
            validate_csr(b, require_finite=opts.sanitize)
    if dtrace is None and opts.device_trace:
        dtrace = DeviceTrace(
            clock_ghz=opts.device.clock_ghz, num_sms=opts.device.num_sms
        )
    try:
        return _run_pipeline(
            a, b, opts, spans, dtrace, owns_spans=owns_spans, anchor=anchor
        )
    except (PoolExhausted, RestartBudgetExceeded, ScratchpadOverflow, SanitizerError) as exc:
        if opts.on_failure != "fallback":
            raise
        return _degraded_result(
            a, b, opts, exc, spans, dtrace, owns_spans=owns_spans, anchor=anchor
        )


def _degraded_result(
    a: CSRMatrix,
    b: CSRMatrix,
    opts: AcSpgemmOptions,
    exc: ReproError,
    spans: SpanRecorder,
    dtrace: DeviceTrace | None = None,
    *,
    owns_spans: bool = True,
    anchor=None,
) -> AcSpgemmResult:
    """Recompute C with the global-ESC baseline after ``exc``.

    The fallback gets one fresh conservative allocation (sized for every
    temporary product, so it cannot fail the same way) and its C is
    bit-identical to the Gustavson reference; the triggering failure is
    recorded on the result instead of being raised.
    """
    from ..obs.trace import current_trace_attrs
    from ..resilience.degrade import conservative_pool_bytes, fallback_multiply

    spans.abort(reason=exc.one_line(), **current_trace_attrs())
    spans.event("degraded", detail=exc.one_line())
    if dtrace is not None:
        # the trace keeps every record collected before the failure; the
        # marker tells consumers the adaptive records are partial and the
        # result totals cover only the fallback
        dtrace.mark_truncated(exc.one_line())
    fb_start = spans.now
    run = fallback_multiply(a, b, opts, spans=spans)
    stage_cycles = {k: 0.0 for k in STAGE_KEYS}
    stage_cycles["FB"] = run.cycles
    if dtrace is not None:
        dtrace.record_device_wide(
            "FB",
            "fallback",
            start_cycle=fb_start,
            cycles=run.cycles,
            counters=run.counters.snapshot(),
        )
    memory = MemoryReport(
        helper_bytes=0,
        chunk_pool_bytes=conservative_pool_bytes(a, b, opts),
        chunk_used_bytes=run.extra_memory_bytes,
        output_bytes=run.matrix.nbytes(),
    )
    return AcSpgemmResult(
        matrix=run.matrix,
        stage_cycles=stage_cycles,
        counters=run.counters,
        memory=memory,
        restarts=exc.restarts or 0,
        multiprocessor_load=1.0,
        n_chunks=0,
        n_blocks=0,
        clock_ghz=opts.device.clock_ghz,
        spans=spans.close(degraded=True) if owns_spans else anchor,
        degraded=True,
        failure=exc.context(),
        device_trace=dtrace,
    )


def _run_pipeline(
    a: CSRMatrix,
    b: CSRMatrix,
    opts: AcSpgemmOptions,
    spans: SpanRecorder,
    dtrace: DeviceTrace | None = None,
    *,
    owns_spans: bool = True,
    anchor=None,
) -> AcSpgemmResult:
    """The four-stage pipeline proper (validated inputs, typed raises)."""
    cfg = opts.device
    engine = get_engine(opts.engine)
    launch = opts.costs.kernel_launch_cycles
    stage_cycles = {k: 0.0 for k in STAGE_KEYS}
    counters = TrafficCounters()
    min_mp_load = 1.0
    util_busy = 0.0
    util_cap = 0.0
    trace = None
    if opts.collect_trace:
        from ..bench.trace import TraceRecorder

        trace = TraceRecorder(clock_ghz=cfg.clock_ghz)

    def track_timing(timing: KernelTiming) -> None:
        nonlocal min_mp_load, util_busy, util_cap
        if timing.n_blocks >= cfg.num_sms:
            min_mp_load = min(min_mp_load, timing.multiprocessor_load)
        if timing.n_blocks:  # empty launches are pure overhead, not idle SMs
            util_busy += timing.total_block_cycles
            util_cap += len(timing.sm_busy_cycles) * timing.makespan_cycles

    # ---- stage 1: global load balancing --------------------------------
    glb_meter = CostMeter(config=cfg, constants=opts.costs)
    glb = global_load_balance(a, cfg.nnz_per_block_glb, glb_meter)
    stage_cycles["GLB"] = _device_wide_cycles(glb_meter, cfg.num_sms) + launch
    counters.merge(glb_meter.counters)
    counters.kernel_launches += 1
    if trace:
        trace.record_span("GLB", stage_cycles["GLB"], counters=counters)
    if dtrace is not None:
        glb_attr = glb_meter.counters.snapshot()
        glb_attr["kernel_launches"] += 1
        dtrace.record_device_wide(
            "GLB",
            "glb",
            start_cycle=spans.now,
            cycles=stage_cycles["GLB"],
            counters=glb_attr,
        )
    spans.leaf("glb", stage_cycles["GLB"], stage="GLB", blocks=glb.n_blocks)

    # ---- stage 2: AC-ESC with restart loop ------------------------------
    with spans.span("estimate", estimator=opts.estimator) as est:
        if opts.chunk_pool_bytes is not None or opts.estimator == "uniform":
            pool_bytes = estimate_chunk_pool_bytes(a, b, opts)
        else:
            # OCEAN-style sampled symbolic estimate: a real (cheap)
            # device pass, so it is charged like one — its cycles land
            # in ESC ahead of the first round and its traffic in the
            # run counters, keeping the device trace reconcilable
            from .estimate_sampling import sampled_chunk_pool_bytes

            est_meter = CostMeter(config=cfg, constants=opts.costs)
            pool_bytes = sampled_chunk_pool_bytes(a, b, opts, meter=est_meter)
            if est_meter.counters.kernel_launches:
                # the meter already charged its own launch latency;
                # keep it out of the device-wide division
                est_cycles = (
                    est_meter.cycles - launch
                ) / cfg.num_sms + launch
                stage_cycles["ESC"] += est_cycles
                counters.merge(est_meter.counters)
                if dtrace is not None:
                    dtrace.record_device_wide(
                        "ESC",
                        "estimate.sample",
                        start_cycle=spans.now,
                        cycles=est_cycles,
                        counters=est_meter.counters.snapshot(),
                    )
                spans.leaf(
                    "estimate.sample", est_cycles, stage="ESC", sampled=True
                )
        est.attrs["pool_bytes"] = pool_bytes
    pool = ChunkPool(capacity_bytes=pool_bytes)
    tracker = RowChunkTracker(n_rows=a.rows)

    injector = opts.fault_plan.activate() if opts.fault_plan is not None else None
    if injector is not None:
        pool.fault_hook = injector.pool_gate

    ectx = EngineContext(a=a, b=b, glb=glb, options=opts, pool=pool, tracker=tracker)

    def esc_row_range(block_id: int) -> tuple[int, int]:
        """A-row range covered by an ESC block's non-zero slice."""
        lo = block_id * glb.nnz_per_block
        hi = min(lo + glb.nnz_per_block, glb.row_of_nnz.shape[0])
        if hi <= lo:
            return -1, -1
        return int(glb.row_of_nnz[lo]), int(glb.row_of_nnz[hi - 1])

    def esc_meta(blk, outcome=None) -> BlockMeta:
        row_lo, row_hi = esc_row_range(blk.block_id)
        if outcome is None:  # aborted before dispatch
            return BlockMeta(
                worker_id=blk.block_id,
                row_lo=row_lo,
                row_hi=row_hi,
                esc_iterations=blk.esc_iterations,
            )
        return BlockMeta(
            worker_id=blk.block_id,
            row_lo=row_lo,
            row_hi=row_hi,
            cycles=outcome.cycles,
            done=outcome.done,
            scratch_high_water=outcome.scratch_high_water,
            esc_iterations=blk.esc_iterations,
            sort_log=outcome.sort_log,
            counters=outcome.counters.snapshot(),
        )

    def merge_meta(stage: str, w, outcome=None) -> BlockMeta:
        if stage == "MM":
            row_lo, row_hi = int(min(w.rows)), int(max(w.rows))
        else:
            row_lo = row_hi = int(w.row)
        if outcome is None:  # aborted before dispatch
            return BlockMeta(worker_id=w.block_index, row_lo=row_lo, row_hi=row_hi)
        return BlockMeta(
            worker_id=w.block_index,
            row_lo=row_lo,
            row_hi=row_hi,
            cycles=outcome.cycles,
            done=outcome.done,
            scratch_high_water=outcome.scratch_high_water,
            sort_log=outcome.sort_log,
            counters=outcome.counters.snapshot(),
        )

    def enter_round(stage: str, round_index: int, pending_list: list, restarts: int):
        """Apply driver-level injected faults at a stage-round entry.

        Returns ``(run_list, aborted)``; both fault classes applied here
        are decided before any engine work, so they are engine-identical
        by construction.  An injected overflow raises immediately.
        """
        if injector is None:
            return pending_list, []
        spec = injector.overflow_for(stage, round_index)
        if spec is not None:
            victim = (
                pending_list[min(spec.block, len(pending_list) - 1)]
                if pending_list
                else None
            )
            raise ScratchpadOverflow(
                f"injected scratchpad overflow in {stage} round {round_index}",
                stage=stage,
                block_id=_worker_id(victim),
                restarts=restarts,
            )
        return partition_aborted(pending_list, injector.aborts_for(stage, round_index))

    blocks = [
        EscBlock(block_id=i, a=a, b=b, glb=glb, options=opts)
        for i in range(glb.n_blocks)
    ]
    pending = list(blocks)
    restarts = 0
    esc_round_index = 0
    with spans.span("esc", stage="ESC"):
        while pending:
            rnd = esc_round_index
            run_list, aborted = enter_round("ESC", rnd, pending, restarts)
            esc_round_index += 1
            if aborted:
                spans.event(
                    "blocks_aborted", detail=f"{len(aborted)} blocks in round {rnd}"
                )
            outcomes = engine.esc_round(ectx, run_list) if run_list else []
            round_cycles = [o.cycles for o in outcomes]
            # re-queue in original block order: aborted blocks keep their
            # position relative to the blocks whose allocations failed
            outcome_of = dict(zip(map(id, run_list), outcomes))
            still_pending: list[EscBlock] = []
            for blk in pending:
                outcome = outcome_of.get(id(blk))
                if outcome is None:  # aborted before dispatch
                    still_pending.append(blk)
                    continue
                counters.merge(outcome.counters)
                if not outcome.done:
                    still_pending.append(blk)
            timing = schedule_blocks(
                round_cycles,
                cfg.num_sms,
                launch_overhead=launch,
                record_placements=dtrace is not None,
            )
            stage_cycles["ESC"] += timing.makespan_cycles
            counters.kernel_launches += 1
            track_timing(timing)
            if trace:
                trace.record_kernel(
                    "ESC", timing, round_cycles, pool=pool, counters=counters
                )
            if dtrace is not None:
                dtrace.record_launch(
                    "ESC",
                    round_index=rnd,
                    start_cycle=spans.now,
                    timing=timing,
                    launch_overhead=launch,
                    workers=[
                        esc_meta(blk, o) for blk, o in zip(run_list, outcomes)
                    ],
                    aborted=[esc_meta(blk) for blk in aborted],
                    counters={"kernel_launches": 1},
                    pool=pool,
                )
            spans.leaf(
                "esc.round",
                timing.makespan_cycles,
                stage="ESC",
                round=rnd,
                blocks=len(run_list),
                pending_after=len(still_pending),
            )
            if still_pending:
                restarts += 1
                if restarts > opts.max_restarts:
                    raise RestartBudgetExceeded(
                        f"chunk pool restart limit exceeded ({opts.max_restarts})",
                        stage="ESC",
                        block_id=_worker_id(still_pending[0]),
                        restarts=restarts - 1,
                    )
                growth = max(
                    int(pool.capacity_bytes * (opts.pool_growth_factor - 1.0)),
                    opts.device.elements_per_block * opts.element_bytes,
                )
                pool.grow(growth)
                stage_cycles["ESC"] += opts.costs.host_round_trip_cycles
                counters.host_round_trips += 1
                spans.event(
                    "restart",
                    detail=f"pool grown to {pool.capacity_bytes} B, "
                    f"{len(still_pending)} blocks pending",
                )
                if dtrace is not None:
                    dtrace.record_host(
                        "ESC",
                        "restart",
                        start_cycle=spans.now,
                        cycles=opts.costs.host_round_trip_cycles,
                        counters={"host_round_trips": 1},
                        pool=pool,
                    )
                spans.leaf(
                    "esc.restart",
                    opts.costs.host_round_trip_cycles,
                    stage="ESC",
                    pool_bytes=pool.capacity_bytes,
                )
                if trace:
                    trace.record_point(
                        "restart",
                        detail=f"pool grown to {pool.capacity_bytes} B, "
                        f"{len(still_pending)} blocks pending",
                    )
                    trace.record_span(
                        "ESC",
                        opts.costs.host_round_trip_cycles,
                        pool=pool,
                        counters=counters,
                    )
            pending = still_pending

    if opts.sanitize:
        check_stage_boundary(pool, tracker, stage="ESC")

    # ---- stage 3: merging ------------------------------------------------
    def run_merge_kernel(stage: str, workers) -> None:
        """Launch a merge kernel with its own restart loop."""
        nonlocal restarts
        pending_workers = list(workers)
        if not pending_workers:
            return
        round_index = 0
        with spans.span(stage.lower(), stage=stage, workers=len(pending_workers)):
            while pending_workers:
                rnd = round_index
                run_list, aborted = enter_round(stage, rnd, pending_workers, restarts)
                round_index += 1
                if aborted:
                    spans.event(
                        "blocks_aborted",
                        detail=f"{len(aborted)} blocks in round {rnd}",
                    )
                outcomes = engine.merge_round(ectx, stage, run_list) if run_list else []
                cycles = [o.cycles for o in outcomes]
                outcome_of = dict(zip(map(id, run_list), outcomes))
                still = []
                for w in pending_workers:
                    outcome = outcome_of.get(id(w))
                    if outcome is None:  # aborted before dispatch
                        still.append(w)
                        continue
                    counters.merge(outcome.counters)
                    if not outcome.done:
                        still.append(w)
                timing = schedule_blocks(
                    cycles,
                    cfg.num_sms,
                    launch_overhead=launch,
                    record_placements=dtrace is not None,
                )
                stage_cycles[stage] += timing.makespan_cycles
                counters.kernel_launches += 1
                track_timing(timing)
                if trace:
                    trace.record_kernel(
                        stage, timing, cycles, pool=pool, counters=counters
                    )
                if dtrace is not None:
                    dtrace.record_launch(
                        stage,
                        round_index=rnd,
                        start_cycle=spans.now,
                        timing=timing,
                        launch_overhead=launch,
                        workers=[
                            merge_meta(stage, w, o)
                            for w, o in zip(run_list, outcomes)
                        ],
                        aborted=[merge_meta(stage, w) for w in aborted],
                        counters={"kernel_launches": 1},
                        pool=pool,
                    )
                spans.leaf(
                    f"{stage.lower()}.round",
                    timing.makespan_cycles,
                    stage=stage,
                    round=rnd,
                    blocks=len(run_list),
                    pending_after=len(still),
                )
                if still:
                    restarts += 1
                    if restarts > opts.max_restarts:
                        raise RestartBudgetExceeded(
                            f"chunk pool restart limit exceeded ({opts.max_restarts})",
                            stage=stage,
                            block_id=_worker_id(still[0]),
                            restarts=restarts - 1,
                        )
                    pool.grow(
                        max(
                            int(pool.capacity_bytes * (opts.pool_growth_factor - 1.0)),
                            opts.device.elements_per_block * opts.element_bytes,
                        )
                    )
                    stage_cycles[stage] += opts.costs.host_round_trip_cycles
                    counters.host_round_trips += 1
                    spans.event(
                        "restart",
                        detail=f"pool grown to {pool.capacity_bytes} B, "
                        f"{len(still)} workers pending",
                    )
                    if dtrace is not None:
                        dtrace.record_host(
                            stage,
                            "restart",
                            start_cycle=spans.now,
                            cycles=opts.costs.host_round_trip_cycles,
                            counters={"host_round_trips": 1},
                            pool=pool,
                        )
                    spans.leaf(
                        f"{stage.lower()}.restart",
                        opts.costs.host_round_trip_cycles,
                        stage=stage,
                        pool_bytes=pool.capacity_bytes,
                    )
                pending_workers = still
        if opts.sanitize:
            check_stage_boundary(pool, tracker, stage=stage)

    with spans.span("merge"):
        mcc_meter = CostMeter(config=cfg, constants=opts.costs)
        assignment = assign_merges(tracker, opts, mcc_meter)
        stage_cycles["MCC"] = _device_wide_cycles(mcc_meter, cfg.num_sms)
        if assignment.n_shared_rows:
            stage_cycles["MCC"] += launch
            counters.kernel_launches += 1
        counters.merge(mcc_meter.counters)
        if trace:
            trace.record_span(
                "MCC", stage_cycles["MCC"], pool=pool, counters=counters
            )
        if dtrace is not None:
            mcc_attr = mcc_meter.counters.snapshot()
            if assignment.n_shared_rows:
                mcc_attr["kernel_launches"] += 1
            dtrace.record_device_wide(
                "MCC",
                "mcc",
                start_cycle=spans.now,
                cycles=stage_cycles["MCC"],
                counters=mcc_attr,
                pool=pool,
            )
        spans.leaf(
            "mcc",
            stage_cycles["MCC"],
            stage="MCC",
            shared_rows=assignment.n_shared_rows,
        )

        merge_stats = {
            "multi_merge_blocks": len(assignment.multi_groups),
            "path_merge_rows": len(assignment.path_rows),
            "search_merge_rows": len(assignment.search_rows),
        }

        multi_blocks = [
            MultiMergeBlock(block_index=i, rows=g)
            for i, g in enumerate(assignment.multi_groups)
        ]
        run_merge_kernel("MM", multi_blocks)

        path_blocks = [
            PathMergeBlock(block_index=i, row=r)
            for i, r in enumerate(assignment.path_rows)
        ]
        run_merge_kernel("PM", path_blocks)

        search_blocks = [
            SearchMergeBlock(block_index=i, row=r)
            for i, r in enumerate(assignment.search_rows)
        ]
        run_merge_kernel("SM", search_blocks)

    # ---- stage 4: output matrix and chunk copy ---------------------------
    with spans.span("output"):
        out_meter = CostMeter(config=cfg, constants=opts.costs)
        row_ptr = build_row_pointer(tracker, out_meter)
        c, copy_cycles = engine.copy_output(ectx, row_ptr, out_meter)
        timing = schedule_blocks(
            copy_cycles,
            cfg.num_sms,
            launch_overhead=launch,
            record_placements=dtrace is not None,
        )
        scan_cycles = _device_wide_cycles(out_meter, cfg.num_sms)
        stage_cycles["CC"] = scan_cycles + timing.makespan_cycles
        counters.merge(out_meter.counters)
        counters.kernel_launches += 2  # row-pointer scan + copy
        track_timing(timing)
        if trace:
            trace.record_span("CC", scan_cycles, pool=pool, counters=counters)
            trace.record_kernel(
                "CC", timing, copy_cycles, pool=pool, counters=counters
            )
        if dtrace is not None:
            scan_attr = out_meter.counters.snapshot()
            scan_attr["kernel_launches"] += 1
            dtrace.record_device_wide(
                "CC",
                "output.row_ptr",
                start_cycle=spans.now,
                cycles=scan_cycles,
                counters=scan_attr,
                pool=pool,
            )
        spans.leaf("output.row_ptr", scan_cycles, stage="CC")
        if dtrace is not None:
            # one copy block per chunk, in the chunk order the copy
            # walked (pool.ordered_chunks()); its traffic is already in
            # the out_meter sink, so blocks carry no counter deltas
            dtrace.record_launch(
                "CC",
                round_index=0,
                start_cycle=spans.now,
                timing=timing,
                launch_overhead=launch,
                workers=[
                    BlockMeta(
                        worker_id=i,
                        row_lo=int(ch.first_row),
                        row_hi=int(ch.last_row),
                        cycles=copy_cycles[i],
                    )
                    for i, ch in enumerate(pool.ordered_chunks())
                ],
                counters={"kernel_launches": 1},
                pool=pool,
            )
            dtrace.finalize_chunks(pool, glb.n_blocks)
        spans.leaf(
            "output.copy", timing.makespan_cycles, stage="CC", blocks=timing.n_blocks
        )

    helper_bytes = (
        glb.helper_bytes
        + tracker.helper_bytes()
        + 12 * glb.n_blocks  # per-block restart state
        + 8 * len(pool.chunks)  # chunk pointer array
    )
    memory = MemoryReport(
        helper_bytes=helper_bytes,
        chunk_pool_bytes=pool.capacity_bytes,
        chunk_used_bytes=pool.used_bytes,
        output_bytes=c.nbytes(),
    )

    return AcSpgemmResult(
        matrix=c,
        stage_cycles=stage_cycles,
        counters=counters,
        memory=memory,
        restarts=restarts,
        multiprocessor_load=min_mp_load,
        n_chunks=len(pool.chunks),
        n_blocks=glb.n_blocks,
        clock_ghz=cfg.clock_ghz,
        shared_rows=assignment.n_shared_rows,
        merge_stats=merge_stats,
        trace=trace,
        spans=_finish_spans(spans, owns_spans, anchor, restarts=restarts),
        engine_stats={k: engine.host_stats[k] for k in sorted(engine.host_stats)},
        sm_utilization=util_busy / util_cap if util_cap else 1.0,
        device_trace=dtrace,
    )

"""Shared machinery of Search Merge and Path Merge (§3.3).

Both algorithms merge one long shared row iteratively: each iteration
picks a column threshold such that all remaining elements with column id
at or below it — across *all* chunks — fit one block, runs the ESC steps
on that slice and emits a new chunk.  Taking every duplicate of each
emitted column guarantees the emitted chunks of a row have disjoint,
ascending column ranges, so no further merging is needed.

The two algorithms differ only in how the threshold is found (the
``_choose_threshold`` hook): Search Merge binary-searches the global
column range, Path Merge samples entry positions of each chunk.  Both
support restarts: the per-chunk cursors persist across pool-exhaustion
round trips, so resuming "equals sampling a reduced range".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.block import BlockContext
from ..sparse.csr import CSRMatrix
from .chunks import Chunk, ChunkPool, PoolExhausted, RowChunkTracker
from .merge import MERGE_BLOCK_SEQ_BASE, esc_merge_batch, gather_row_segments
from .options import AcSpgemmOptions

__all__ = ["IterativeRowMerge"]


@dataclass
class IterativeRowMerge:
    """Base class: restartable merge of one shared row."""

    #: disambiguates order keys between merge kinds (class constant)
    KIND_OFFSET = 0

    block_index: int
    row: int

    def __post_init__(self) -> None:
        self._cols: list[np.ndarray] | None = None
        self._vals: list[np.ndarray] | None = None
        self._cursors: list[int] = []
        self._produced: list[Chunk] = []
        self._offset = 0
        self._emit_seq = 0
        self.done = False
        self.attempts = 0

    # -- hook -----------------------------------------------------------

    def _choose_threshold(
        self,
        ctx: BlockContext,
        remaining_cols: list[np.ndarray],
        capacity: int,
    ) -> int:
        """Return a column threshold T with
        ``0 < sum_i count(cols_i <= T) <= capacity``."""
        raise NotImplementedError

    # -- common helpers ---------------------------------------------------

    @staticmethod
    def _counts_for(remaining_cols: list[np.ndarray], threshold: int) -> np.ndarray:
        return np.asarray(
            [int(np.searchsorted(c, threshold, side="right")) for c in remaining_cols],
            dtype=np.int64,
        )

    def _order_key(self) -> tuple[int, int]:
        return (
            MERGE_BLOCK_SEQ_BASE + type(self).KIND_OFFSET + self.block_index,
            self._emit_seq,
        )

    # -- driver entry ------------------------------------------------------

    def run(
        self,
        ctx: BlockContext,
        tracker: RowChunkTracker,
        pool: ChunkPool,
        b: CSRMatrix,
        options: AcSpgemmOptions,
    ) -> bool:
        """Merge until done or the pool is exhausted.

        Returns True when the row is fully merged; False requests a
        restart (pool growth) with all cursors preserved.
        """
        self.attempts += 1
        meter = ctx.meter
        capacity = options.device.elements_per_block

        if self._cols is None:
            segs = gather_row_segments(
                self.row, tracker, b, options, meter, materialize_cost=False
            )
            self._cols = segs.cols
            self._vals = segs.vals
            self._cursors = [0] * len(segs.cols)

        while True:
            remaining_cols = [
                c[cur:] for c, cur in zip(self._cols, self._cursors)
            ]
            total = sum(c.shape[0] for c in remaining_cols)
            if total == 0:
                tracker.replace_row(self.row, list(self._produced), self._offset)
                meter.atomic(1)
                self.done = True
                return True

            if total <= capacity:
                take = np.asarray(
                    [c.shape[0] for c in remaining_cols], dtype=np.int64
                )
            else:
                threshold = self._choose_threshold(ctx, remaining_cols, capacity)
                take = self._counts_for(remaining_cols, threshold)
                taken_total = int(take.sum())
                if taken_total == 0 or taken_total > capacity:
                    raise AssertionError(
                        "threshold selection violated the capacity contract"
                    )

            cols_parts = [
                c[:t] for c, t in zip(remaining_cols, take.tolist()) if t
            ]
            vals_parts = [
                v[cur : cur + t]
                for v, cur, t in zip(self._vals, self._cursors, take.tolist())
                if t
            ]
            cols = np.concatenate(cols_parts)
            vals = np.concatenate(vals_parts)
            meter.global_read(cols.shape[0], options.element_bytes)

            comp, comp_cols = esc_merge_batch(
                ctx,
                np.zeros(cols.shape[0], dtype=np.int64),
                cols,
                vals,
                options,
                1,
            )
            chunk = Chunk(
                order_key=self._order_key(),
                kind="data",
                first_row=self.row,
                last_row=self.row,
                rows=np.full(comp.n, self.row, dtype=np.int64),
                cols=comp_cols,
                vals=comp.values,
                segment_offsets={self.row: self._offset},
            )
            nbytes = pool.data_bytes(
                comp.n, options.value_dtype.itemsize, options.col_index_bytes
            )
            try:
                pool.allocate(chunk, nbytes, meter)
            except PoolExhausted:
                return False  # cursors untouched: resume after growth
            meter.scratchpad(2 * comp.n)
            meter.global_write(comp.n, options.element_bytes)
            meter.global_write(1, 32)
            self._emit_seq += 1
            self._offset += comp.n
            self._produced.append(chunk)
            self._cursors = [
                cur + int(t) for cur, t in zip(self._cursors, take.tolist())
            ]

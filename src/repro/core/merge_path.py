"""Path Merge (§3.3): bounded-chunk-count row merging.

"Path Merge avoids global memory binary search by placing samples
uniformly over the entries of every chunk.  For each sample we fetch the
column id and sort them across the entire block, while carrying the
sample number along with the sort.  Next, we perform a custom scan over
the sorted data to find the correspondences between samples from
different chunks, i.e., identify possible paths through all chunks. ...
For each path, we compute the number of temporary elements from the
combined sample locations and chunk sizes.  Choose the one that fits
into memory, we run AC-ESC.  The stored paths are again used for the
next iteration."

Sampling entry *positions* adapts to skewed column distributions (dense
clusters produce dense samples), and the block-wide sample sort replaces
per-thread global binary searches — that is the cost difference from
Search Merge modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.radix import bits_required, radix_sort_permutation
from .merge_iterative import IterativeRowMerge

__all__ = ["PathMergeBlock"]


@dataclass
class PathMergeBlock(IterativeRowMerge):
    """One Path Merge block: one shared row, few chunks."""

    KIND_OFFSET = 1 << 20

    def _choose_threshold(
        self,
        ctx: BlockContext,
        remaining_cols: list[np.ndarray],
        capacity: int,
    ) -> int:
        meter = ctx.meter
        threads = ctx.config.threads_per_block
        n_chunks = len(remaining_cols)
        per_chunk = max(1, threads // max(1, n_chunks))

        # uniform sample positions over every chunk's remaining entries
        sample_cols_parts: list[np.ndarray] = []
        sample_pos_parts: list[np.ndarray] = []
        sample_chunk_parts: list[np.ndarray] = []
        for i, c in enumerate(remaining_cols):
            if c.shape[0] == 0:
                continue
            k = min(per_chunk, c.shape[0])
            pos = np.linspace(0, c.shape[0] - 1, k).astype(np.int64)
            pos = np.unique(pos)
            sample_cols_parts.append(c[pos])
            sample_pos_parts.append(pos)
            sample_chunk_parts.append(np.full(pos.shape[0], i, dtype=np.int64))
        sample_cols = np.concatenate(sample_cols_parts)
        sample_pos = np.concatenate(sample_pos_parts)
        sample_chunk = np.concatenate(sample_chunk_parts)
        meter.global_read(sample_cols.shape[0], 4, coalesced=False)

        # block-wide sort of the samples, carrying (chunk, position)
        col_bits = bits_required(int(sample_cols.max(initial=0)))
        perm = radix_sort_permutation(meter, sample_cols.astype(np.uint64), col_bits)
        s_cols = sample_cols[perm]
        s_pos = sample_pos[perm]
        s_chunk = sample_chunk[perm]

        # the max-scan over per-chunk sample numbers: after sorting, the
        # path at sample j cuts chunk i at the latest of i's samples seen
        # so far (position+1 elements), zero if none seen yet.
        cut = np.full((s_cols.shape[0], n_chunks), -1, dtype=np.int64)
        cut[np.arange(s_cols.shape[0]), s_chunk] = s_pos
        np.maximum.accumulate(cut, axis=0, out=cut)
        meter.scan(s_cols.shape[0])

        path_counts = (cut + 1).sum(axis=1)
        viable_idx = np.nonzero((path_counts > 0) & (path_counts <= capacity))[0]
        # walk viable sampled paths from the largest down, refining each
        # to an exact column cut: every element <= the sample's column
        # must come along (duplicates of the threshold column in other
        # chunks are required for correct compaction)
        meter.scratchpad(2 * n_chunks)
        for j in viable_idx[::-1].tolist():
            candidate = int(s_cols[j])
            exact = int(self._counts_for(remaining_cols, candidate).sum())
            if 0 < exact <= capacity:
                return candidate
        # sampling too coarse (even the smallest sampled path overflows
        # after refinement): fall back to the smallest column, which has
        # at most one duplicate per chunk
        lo = min(int(c[0]) for c in remaining_cols if c.shape[0])
        count = int(self._counts_for(remaining_cols, lo).sum())
        if not 0 < count <= capacity:
            raise AssertionError(
                "Path Merge cannot cut: smallest column exceeds capacity"
            )
        return lo

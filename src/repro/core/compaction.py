"""Single-scan compaction (Algorithm 3, §3.2.3).

After the stable radix sort, AC-ESC performs compaction, per-row
counting and chunk placement in **one** block-wide prefix scan with a
packed 32-bit state:

====  =========================================================
bits  meaning
====  =========================================================
0     this element ends a *combine sequence* (last of equal key)
1-15  count of compacted elements in the prefix (chunk position)
16    this element ends a *row*
17-31 count of compacted elements in the current row (row offset)
====  =========================================================

``scan_operator`` implements the paper's operator literally (for unit
tests and documentation); :func:`compact_sorted` is the vectorised
equivalent used by the pipeline — a property test asserts the two agree
on arbitrary input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.cost import CostMeter

__all__ = [
    "ScanItem",
    "initial_state",
    "scan_operator",
    "sequential_compaction_scan",
    "CompactionResult",
    "compact_sorted",
]

_LOW_FLAG = np.uint32(0x0000_0001)
_HIGH_FLAG = np.uint32(0x0001_0000)
_LOW_ONE = np.uint32(0x0000_0002)  # +1 in the bits 1-15 counter
_HIGH_ONE = np.uint32(0x0002_0000)  # +1 in the bits 17-31 counter
_KEEP_BOTH_COUNTERS = np.uint32(0xFFFE_FFFE)
_KEEP_LOW_COUNTER = np.uint32(0x0000_FFFE)


@dataclass
class ScanItem:
    """One element of the compaction scan: sort key, value, packed state."""

    key: int
    value: float
    state: int


def initial_state(ends_combine: bool, ends_row: bool) -> int:
    """The paper's three initial states (comment block of Algorithm 3)."""
    if ends_row and not ends_combine:
        raise ValueError("a row end is always also a combine-sequence end")
    state = np.uint32(0)
    if ends_combine:
        state |= _LOW_FLAG | _LOW_ONE | _HIGH_ONE
    if ends_row:
        state |= _HIGH_FLAG
    return int(state)


def scan_operator(a: ScanItem, b: ScanItem, same_row) -> ScanItem:
    """Algorithm 3's ``CombineScanOperator``.

    ``same_row(key_a, key_b)`` compares the row-id bits of two sort keys.
    The left state keeps both counters when the rows match and drops the
    row counter otherwise; the end flags always come from the right
    element.  Values are accumulated while the full keys match.
    """
    if same_row(a.key, b.key):
        state = np.uint32(a.state) & _KEEP_BOTH_COUNTERS
    else:
        state = np.uint32(a.state) & _KEEP_LOW_COUNTER
    if a.key == b.key:
        nvalue = a.value + b.value
    else:
        nvalue = b.value
    nstate = int(state) + int(np.uint32(b.state))
    return ScanItem(key=b.key, value=nvalue, state=nstate)


def sequential_compaction_scan(
    keys: np.ndarray, values: np.ndarray, same_row
) -> list[ScanItem]:
    """Literal inclusive scan with :func:`scan_operator` (test oracle).

    Inputs must already be sorted by key.  Returns the scanned items;
    flags/counters are queried from each item's packed state.
    """
    n = keys.shape[0]
    items: list[ScanItem] = []
    for i in range(n):
        ends_combine = i == n - 1 or keys[i] != keys[i + 1]
        ends_row = i == n - 1 or not same_row(int(keys[i]), int(keys[i + 1]))
        items.append(
            ScanItem(
                key=int(keys[i]),
                value=values[i],
                state=initial_state(ends_combine, ends_combine and ends_row),
            )
        )
    out: list[ScanItem] = []
    acc: ScanItem | None = None
    for item in items:
        acc = item if acc is None else scan_operator(acc, item, same_row)
        out.append(ScanItem(acc.key, acc.value, acc.state))
    return out


@dataclass
class CompactionResult:
    """Vectorised compaction output for one sorted batch.

    Attributes
    ----------
    keys, values:
        Compacted (unique-key) entries, sorted; values are the sums of
        each equal-key run, accumulated left to right (deterministic).
    rows:
        Row-id bits of each compacted entry (still block-local ids).
    row_offsets:
        Offset of each compacted entry within its row.
    n:
        Number of compacted entries.
    """

    keys: np.ndarray
    values: np.ndarray
    rows: np.ndarray
    row_offsets: np.ndarray

    @property
    def n(self) -> int:
        """Number of compacted entries."""
        return int(self.keys.shape[0])


def compact_sorted(
    meter: CostMeter,
    keys: np.ndarray,
    values: np.ndarray,
    col_bits: int,
) -> CompactionResult:
    """Compact a key-sorted batch; the vectorised Algorithm 3.

    ``col_bits`` is the width of the column field inside the key, so the
    row id of an entry is ``key >> col_bits``.  Costs are charged as one
    block-wide scan plus the per-element neighbour comparisons.
    """
    n = keys.shape[0]
    if n == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        return CompactionResult(
            keys=np.zeros(0, dtype=np.uint64),
            values=values[:0],
            rows=empty_i,
            row_offsets=empty_i,
        )
    if values.shape[0] != n:
        raise ValueError("keys and values length mismatch")

    keys = np.asarray(keys, dtype=np.uint64)
    # neighbour comparisons (every thread compares its register elements)
    meter.alu(2 * n)
    ends_combine = np.empty(n, dtype=bool)
    ends_combine[-1] = True
    np.not_equal(keys[1:], keys[:-1], out=ends_combine[:-1])

    rows_all = (keys >> np.uint64(col_bits)).astype(np.int64)
    ends_row = np.empty(n, dtype=bool)
    ends_row[-1] = True
    np.not_equal(rows_all[1:], rows_all[:-1], out=ends_row[:-1])

    # the single block-wide scan of Algorithm 3
    meter.scan(n)

    starts = np.zeros(n, dtype=bool)
    starts[0] = True
    starts[1:] = ends_combine[:-1]
    start_idx = np.nonzero(starts)[0]
    # np.add.reduceat combines each run in a fixed pairwise order — the
    # analogue of the tree-shaped combination a block-wide parallel scan
    # performs on hardware.  The order differs from a sequential left
    # fold by at most rounding (~1 ulp) but is fully deterministic,
    # which is what bit-stability requires.
    comp_values = np.add.reduceat(values, start_idx)
    end_idx = np.nonzero(ends_combine)[0]
    comp_keys = keys[end_idx]
    comp_rows = rows_all[end_idx]

    # offset within row = position among compacted entries since row start
    row_start = np.zeros(comp_rows.shape[0], dtype=bool)
    if comp_rows.shape[0]:
        row_start[0] = True
        row_start[1:] = comp_rows[1:] != comp_rows[:-1]
    seg_id = np.cumsum(row_start) - 1
    first_of_seg = np.zeros(int(seg_id[-1]) + 1, dtype=np.int64) if comp_rows.shape[0] else np.zeros(0, dtype=np.int64)
    if comp_rows.shape[0]:
        first_of_seg[seg_id[np.nonzero(row_start)[0]]] = np.nonzero(row_start)[0]
    row_offsets = np.arange(comp_rows.shape[0], dtype=np.int64) - first_of_seg[seg_id]

    return CompactionResult(
        keys=comp_keys,
        values=comp_values,
        rows=comp_rows,
        row_offsets=row_offsets,
    )

"""Stage 2 — adaptive chunk-based ESC (§3.2).

Each thread block processes an equally sized slice of A's non-zeros and
runs *multiple* local iterations of expand-sort-compact, carrying the
(incomplete) last row between iterations, until its work distribution is
drained.  Complete row runs are written to chunks; scratchpad capacity
is never exceeded; chunk-pool exhaustion produces a restartable state
instead of failure.

Everything in this module is deterministic: expansion order is the
consumption order of the work distribution, the radix sort is stable,
and compaction folds equal-key runs left to right — so repeated
executions yield bit-identical floating point results (§3.2: "a stable
sort algorithm always yields identical floating point results").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.primitives import block_reduce_minmax
from ..gpu.radix import bits_required, radix_sort_permutation
from ..resilience.sanitize import check_scratchpad_clean
from ..sparse.csr import CSRMatrix
from .chunks import Chunk, ChunkPool, PoolExhausted, RowChunkTracker
from .compaction import compact_sorted
from .load_balance import GlobalLoadBalance
from .long_rows import long_row_mask
from .options import AcSpgemmOptions
from .work_distribution import LocalWorkDistribution

__all__ = ["EscBlock", "EscBlockOutcome"]


@dataclass(frozen=True)
class EscBlockOutcome:
    """Result of one execution attempt of an ESC block."""

    done: bool  # False => pool exhausted, restart required
    cycles: float
    chunks_written: int


@dataclass
class EscBlock:
    """Restartable state of one stage-2 thread block.

    The persistent fields (``committed``, ``n_long_emitted``,
    ``chunk_seq``) are the block's restart information in global memory
    (§3.2.4); everything else is re-derived on each launch.
    """

    block_id: int
    a: CSRMatrix
    b: CSRMatrix
    glb: GlobalLoadBalance
    options: AcSpgemmOptions
    committed: int = 0
    n_long_emitted: int = 0
    chunk_seq: int = 0
    done: bool = False
    attempts: int = 0
    total_cycles: float = field(default=0.0)
    #: expand-sort-compact iterations actually executed (Fig. 9's
    #: "ESC iterations" distribution); restart rollback rewinds this
    #: together with ``committed`` so faulted runs count like the
    #: reference execution
    esc_iterations: int = 0

    # ------------------------------------------------------------------

    def _entry_range(self) -> tuple[int, int]:
        lo = self.block_id * self.glb.nnz_per_block
        hi = min(self.a.nnz, lo + self.glb.nnz_per_block)
        return lo, hi

    def _next_chunk_key(self) -> tuple[int, int]:
        key = (self.block_id, self.chunk_seq)
        self.chunk_seq += 1
        return key

    # ------------------------------------------------------------------

    def run(
        self,
        ctx: BlockContext,
        pool: ChunkPool,
        tracker: RowChunkTracker,
    ) -> EscBlockOutcome:
        """Execute (or resume) the block; returns its outcome.

        On :class:`PoolExhausted` the block's restart info remains valid
        and ``run`` can be called again after the pool has grown.
        """
        self.attempts += 1
        opts = self.options
        cfg = opts.device
        meter = ctx.meter
        a, b = self.a, self.b
        lo, hi = self._entry_range()
        n_entries = hi - lo
        chunks_written = 0
        # shared-row atomics are settled once at every exit (see
        # RowChunkTracker.insert): one n*atomic_cycles addition, the
        # same float operation the optimistic engines' replay applies
        shared0 = len(tracker.shared_rows)

        # ---- Fetch A (§3.2.1) -----------------------------------------
        a_cols = a.col_idx[lo:hi]
        a_vals = a.values[lo:hi].astype(opts.value_dtype, copy=False)
        a_rows = self.glb.row_of_nnz[lo:hi]
        meter.global_read(n_entries, opts.col_index_bytes + opts.value_dtype.itemsize)
        meter.global_read(n_entries, 4)  # row ids via blockRowStarts walk
        ctx.scratchpad.alloc_array("A_cols", n_entries, 4)
        ctx.scratchpad.alloc_array("A_vals", n_entries, opts.value_dtype.itemsize)
        ctx.scratchpad.alloc_array("A_rows", n_entries, 4)

        # local row dictionary: row id -> index of the row's first
        # non-zero inside the block (bounds row bits by NNZ_PER_BLOCK).
        unique_rows, local_row = np.unique(a_rows, return_inverse=True)
        meter.alu(2 * n_entries)

        # referenced B row lengths (inspected "now", when B must be read
        # anyway, instead of in a costly global pre-pass — §3.2.2)
        b_start = b.row_ptr[a_cols]
        b_len = b.row_ptr[a_cols + 1] - b_start
        meter.global_read(n_entries, 8, coalesced=False)

        # ---- Write Long Rows (§3.4) -------------------------------------
        counts = b_len.copy()
        if opts.enable_long_row_handling:
            long_mask = long_row_mask(b_len, opts)
            counts[long_mask] = 0
            long_entries = np.nonzero(long_mask)[0]
            for j, e in enumerate(long_entries.tolist()):
                if j < self.n_long_emitted:
                    continue  # already emitted before a restart
                chunk = Chunk(
                    order_key=self._next_chunk_key(),
                    kind="pointer",
                    first_row=int(unique_rows[local_row[e]]),
                    last_row=int(unique_rows[local_row[e]]),
                    b_row=int(a_cols[e]),
                    factor=float(a_vals[e]),
                    b_length=int(b_len[e]),
                )
                try:
                    pool.allocate(chunk, pool.data_bytes(0, 0), meter)
                except PoolExhausted:
                    self.chunk_seq -= 1
                    self._cleanup(ctx)
                    if opts.sanitize:
                        check_scratchpad_clean(
                            ctx.scratchpad, stage="ESC", block_id=self.block_id
                        )
                    meter.atomic(len(tracker.shared_rows) - shared0)
                    self.total_cycles += meter.cycles
                    return EscBlockOutcome(False, meter.cycles, chunks_written)
                meter.global_write(1, pool.data_bytes(0, 0))
                tracker.insert_chunk(chunk, b, meter)
                self.n_long_emitted += 1
                chunks_written += 1

        # ---- Work distribution ----------------------------------------
        wd = LocalWorkDistribution(ctx, n_entries)
        wd.place_work_with_origin(counts)
        if self.committed:
            wd.restart_from(self.committed)

        elem_bytes = opts.element_bytes
        dtype = opts.value_dtype
        carried_rows = np.zeros(0, dtype=np.int64)  # block-local row ids
        carried_cols = np.zeros(0, dtype=np.int64)
        carried_vals = np.zeros(0, dtype=dtype)

        # ESC scratchpad layout: keys + values for a full iteration.  Key
        # width is 32 or 64 bit depending on the worst-case bit demand
        # (§3.2.3: 9 row bits + up to 23 column bits fit 32 bits).
        worst_bits = bits_required(max(0, n_entries - 1)) + bits_required(
            max(0, b.cols - 1)
        )
        key_bytes = 4 if worst_bits <= 32 else 8
        ctx.scratchpad.alloc_array("ESC_keys", cfg.elements_per_block, key_bytes)
        ctx.scratchpad.alloc_array("ESC_vals", cfg.elements_per_block, dtype.itemsize)

        # row index of the first entry of each local row (for the
        # restart commit point of a carried row)
        first_entry_of_row = np.searchsorted(local_row, np.arange(unique_rows.shape[0]))

        while True:
            capacity = cfg.elements_per_block - carried_rows.shape[0]
            a_res, b_res, taken = wd.receive_work(capacity)

            if taken == 0 and carried_rows.shape[0] == 0:
                break  # drained and nothing held locally
            self.esc_iterations += 1

            # ---- Expansion (§3.2.3) ------------------------------------
            if taken:
                b_elem = b_start[a_res] + b_res
                new_cols = b.col_idx[b_elem]
                new_vals = (a_vals[a_res] * b.values[b_elem]).astype(
                    dtype, copy=False
                )
                new_rows = local_row[a_res]
                meter.global_read(taken, elem_bytes)
                meter.flops(2 * taken)
            else:
                new_cols = np.zeros(0, dtype=np.int64)
                new_vals = np.zeros(0, dtype=dtype)
                new_rows = np.zeros(0, dtype=np.int64)

            # carried results first: stable sort keeps their accumulated
            # value ahead of the new products (deterministic order)
            rows_l = np.concatenate([carried_rows, new_rows])
            cols_l = np.concatenate([carried_cols, new_cols])
            vals_l = np.concatenate([carried_vals, new_vals])
            n_batch = rows_l.shape[0]

            # ---- Sort with dynamic bit reduction (§3.2.3) ----------------
            if opts.enable_bit_reduction:
                col_min, col_max = block_reduce_minmax(meter, cols_l)
                row_min, row_max = block_reduce_minmax(meter, rows_l)
            else:
                col_min, col_max = 0, b.cols - 1
                row_min, row_max = 0, max(0, n_entries - 1)
            col_bits = bits_required(col_max - col_min)
            row_bits = bits_required(row_max - row_min)
            keys = (
                ((rows_l - row_min).astype(np.uint64) << np.uint64(col_bits))
                | (cols_l - col_min).astype(np.uint64)
            )
            perm = radix_sort_permutation(meter, keys, row_bits + col_bits)
            keys_s = keys[perm]
            vals_s = vals_l[perm]

            # ---- Compaction (Algorithm 3) -------------------------------
            comp = compact_sorted(meter, keys_s, vals_s, col_bits)
            comp_rows = comp.rows + row_min  # block-local row ids
            comp_cols = (
                comp.keys & np.uint64((1 << col_bits) - 1)
            ).astype(np.int64) + col_min

            # ---- Keep-last-row decision (§3.2.3) -------------------------
            wd_empty = wd.size() == 0
            keep_n = 0
            if not wd_empty and opts.enable_keep_last_row and comp.n:
                last_row_local = int(comp_rows[-1])
                keep_n = int(
                    comp.n - np.searchsorted(comp_rows, last_row_local, "left")
                )
                if keep_n > cfg.keep_elements:
                    keep_n = 0  # too large to hold locally: spill everything
            write_n = comp.n - keep_n

            if write_n:
                commit_point = (
                    wd.committed_before_entry(
                        int(first_entry_of_row[int(comp_rows[-1])])
                    )
                    if keep_n
                    else wd.consumed_total
                )
                chunk_rows_global = unique_rows[comp_rows[:write_n]]
                chunk = Chunk(
                    order_key=self._next_chunk_key(),
                    kind="data",
                    first_row=int(chunk_rows_global[0]),
                    last_row=int(chunk_rows_global[-1]),
                    rows=chunk_rows_global,
                    cols=comp_cols[:write_n].copy(),
                    vals=comp.values[:write_n].copy(),
                )
                nbytes = pool.data_bytes(write_n, dtype.itemsize, opts.col_index_bytes)
                try:
                    pool.allocate(chunk, nbytes, meter)
                except PoolExhausted:
                    # restart info: everything up to the last successful
                    # write stays committed; this batch is re-expanded.
                    self.chunk_seq -= 1
                    self._cleanup(ctx, wd)
                    if opts.sanitize:
                        check_scratchpad_clean(
                            ctx.scratchpad, stage="ESC", block_id=self.block_id
                        )
                    meter.atomic(len(tracker.shared_rows) - shared0)
                    self.total_cycles += meter.cycles
                    return EscBlockOutcome(False, meter.cycles, chunks_written)
                # compacting round trip through scratchpad, then a
                # coalesced global write (§3.2.4)
                meter.scratchpad(2 * write_n)
                meter.global_write(write_n, elem_bytes)
                meter.global_write(1, 32)  # header
                tracker.insert_chunk(chunk, b, meter)
                chunks_written += 1
                self.committed = commit_point
            elif wd_empty and comp.n == 0:
                break

            if keep_n:
                carried_rows = comp_rows[write_n:]
                carried_cols = comp_cols[write_n:]
                carried_vals = comp.values[write_n:]
            else:
                carried_rows = carried_rows[:0]
                carried_cols = carried_cols[:0]
                carried_vals = carried_vals[:0]

            if wd_empty and carried_rows.shape[0] == 0:
                break

        self.committed = wd.consumed_total
        self.done = True
        self._cleanup(ctx, wd)
        if opts.sanitize:
            check_scratchpad_clean(
                ctx.scratchpad, stage="ESC", block_id=self.block_id
            )
        meter.atomic(len(tracker.shared_rows) - shared0)
        self.total_cycles += meter.cycles
        return EscBlockOutcome(True, meter.cycles, chunks_written)

    def _cleanup(
        self, ctx: BlockContext, wd: LocalWorkDistribution | None = None
    ) -> None:
        if wd is not None:
            wd.release()
        for name in ("A_cols", "A_vals", "A_rows", "ESC_keys", "ESC_vals"):
            if name in ctx.scratchpad.allocations:
                ctx.scratchpad.free(name)

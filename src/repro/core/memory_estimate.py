"""Chunk-pool sizing (§4).

"For the initial chunk pool, we rely on a simplistic memory estimate S
of C, using the average row length as a measure of row overlaps ...  For
A of size nA x mA, the average row length is given by a = |A| / nA, and
the estimated probability for a collision is pa = a / mA.  For the
product AB, the memory estimate is given as
S ≈ nA · b · (1 − (1 − pb)^a) / pb.  We multiply this factor by 1.2 to
account for the chunk meta data and divergences from the average row
length and apply a lower bound of 100 MB."

Note ``b / pb = mB``: the estimate is the expected number of distinct
columns hit per output row under a uniform-sparsity model, times the
number of rows.
"""

from __future__ import annotations

from ..sparse.csr import CSRMatrix
from .options import AcSpgemmOptions

__all__ = ["estimate_output_entries", "estimate_chunk_pool_bytes"]


def estimate_output_entries(a: CSRMatrix, b: CSRMatrix) -> float:
    """The paper's estimate S of nnz(C) for C = A @ B."""
    if a.rows == 0 or a.nnz == 0 or b.nnz == 0 or b.cols == 0:
        return 0.0
    avg_a = a.nnz / a.rows
    avg_b = b.nnz / b.rows
    p_b = avg_b / b.cols
    if p_b <= 0.0:
        return 0.0
    if p_b >= 1.0:
        return float(a.rows * b.cols)
    return a.rows * avg_b * (1.0 - (1.0 - p_b) ** avg_a) / p_b


def estimate_chunk_pool_bytes(
    a: CSRMatrix, b: CSRMatrix, options: AcSpgemmOptions
) -> int:
    """Initial chunk pool size: S entries (column id + value bytes),
    scaled by the meta-data factor, with the configured lower bound."""
    if options.chunk_pool_bytes is not None:
        return options.chunk_pool_bytes
    entries = estimate_output_entries(a, b)
    raw = int(entries * options.element_bytes * options.chunk_meta_factor)
    return max(raw, options.chunk_pool_lower_bound_bytes)

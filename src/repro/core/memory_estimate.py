"""Chunk-pool sizing (§4).

"For the initial chunk pool, we rely on a simplistic memory estimate S
of C, using the average row length as a measure of row overlaps ...  For
A of size nA x mA, the average row length is given by a = |A| / nA, and
the estimated probability for a collision is pa = a / mA.  For the
product AB, the memory estimate is given as
S ≈ nA · b · (1 − (1 − pb)^a) / pb.  We multiply this factor by 1.2 to
account for the chunk meta data and divergences from the average row
length and apply a lower bound of 100 MB."

Note ``b / pb = mB``: the estimate is the expected number of distinct
columns hit per output row under a uniform-sparsity model, times the
number of rows.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from .options import AcSpgemmOptions

__all__ = ["estimate_output_entries", "estimate_chunk_pool_bytes"]

# A row counts as "heavy" once it exceeds this multiple of the average
# row length; the uniform model underestimates such rows badly (§4's
# 1.2x meta factor assumes mild "divergences from the average").
_HEAVY_ROW_FACTOR = 8.0


def estimate_output_entries(a: CSRMatrix, b: CSRMatrix) -> float:
    """The paper's estimate S of nnz(C) for C = A @ B."""
    if a.rows == 0 or a.nnz == 0 or b.nnz == 0 or b.cols == 0:
        return 0.0
    avg_a = a.nnz / a.rows
    avg_b = b.nnz / b.rows
    p_b = avg_b / b.cols
    if p_b <= 0.0:
        return 0.0
    if p_b >= 1.0:
        return float(a.rows * b.cols)
    return a.rows * avg_b * (1.0 - (1.0 - p_b) ** avg_a) / p_b


def _skew_extra_entries(a: CSRMatrix, b: CSRMatrix) -> float:
    """Correction for skewed (e.g. RMAT / power-law) row distributions.

    The paper's S models every row of A as having the average length.
    For heavy rows (> ``_HEAVY_ROW_FACTOR`` x average) that assumption
    collapses — a row with 100x the average nnz hits far more distinct
    columns of B than the average row — and the undersized pool forces
    a restart cascade.  Add, for each heavy row of length ``l``, the
    difference between its own collision-model expectation
    ``mB * (1 - (1 - pb)^l)`` and the average-row expectation already
    counted in S.  Uniform inputs have no heavy rows: the correction is
    exactly zero and the published estimate is untouched.
    """
    if a.rows == 0 or a.nnz == 0 or b.nnz == 0 or b.cols == 0:
        return 0.0
    avg_a = a.nnz / a.rows
    p_b = (b.nnz / b.rows) / b.cols
    if p_b <= 0.0 or p_b >= 1.0:
        return 0.0  # degenerate / saturated: S already maximal
    row_len = np.diff(a.row_ptr)
    heavy = row_len[row_len > _HEAVY_ROW_FACTOR * max(avg_a, 1.0)]
    if heavy.size == 0:
        return 0.0
    per_avg = b.cols * (1.0 - (1.0 - p_b) ** avg_a)
    per_heavy = b.cols * (1.0 - (1.0 - p_b) ** heavy.astype(np.float64))
    return float(np.sum(per_heavy - per_avg))


def _longest_row_entries(a: CSRMatrix, b: CSRMatrix) -> float:
    """Expected output entries of the single longest row of A — the pool
    must at least accommodate it, or that row can never complete."""
    if a.rows == 0 or a.nnz == 0 or b.nnz == 0 or b.cols == 0:
        return 0.0
    p_b = (b.nnz / b.rows) / b.cols
    if p_b <= 0.0:
        return 0.0
    max_len = int(np.max(np.diff(a.row_ptr)))
    if p_b >= 1.0:
        return float(b.cols)
    return b.cols * (1.0 - (1.0 - p_b) ** max_len)


def estimate_chunk_pool_bytes(
    a: CSRMatrix, b: CSRMatrix, options: AcSpgemmOptions
) -> int:
    """Initial chunk pool size: S entries (column id + value bytes),
    scaled by the meta-data factor, with the configured lower bound.

    S itself is the paper's published formula; on top of it the pool
    sizing adds a skew correction for heavy rows and clamps from below
    at the single-longest-row expectation, so RMAT-like inputs do not
    start with a pool the restart loop must grow many times over.
    """
    if options.chunk_pool_bytes is not None:
        return options.chunk_pool_bytes
    entries = estimate_output_entries(a, b) + _skew_extra_entries(a, b)
    entries = max(entries, _longest_row_entries(a, b))
    raw = int(entries * options.element_bytes * options.chunk_meta_factor)
    return max(raw, options.chunk_pool_lower_bound_bytes)

"""Stage 3 — chunk merging: assignment and Multi Merge (§3.3).

Rows whose data is spread over multiple chunks (typically two, when
global load balancing split the row across blocks) are re-compacted
here.  Three block-level algorithms exist:

* **Multi Merge** (this module): several small shared rows packed into
  one block via a prefix scan over their remaining-product counts.
* **Path Merge** (:mod:`repro.core.merge_path`): one row, a bounded
  number of chunks, per-chunk entry sampling.
* **Search Merge** (:mod:`repro.core.merge_search`): one row, arbitrary
  chunk count, binary-search sampling over the column range.

Merging re-runs the ESC machinery on the gathered elements; chunk order
(the global order key) fixes the accumulation order, so results remain
bit-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.block import BlockContext
from ..gpu.cost import CostMeter
from ..gpu.primitives import block_reduce_minmax
from ..gpu.radix import bits_required, radix_sort_permutation
from ..sparse.csr import CSRMatrix
from .chunks import Chunk, ChunkPool, RowChunkTracker
from .compaction import compact_sorted
from .options import AcSpgemmOptions

__all__ = [
    "MergeAssignment",
    "assign_merges",
    "RowSegments",
    "gather_row_segments",
    "esc_merge_batch",
    "MultiMergeBlock",
    "MERGE_BLOCK_SEQ_BASE",
]

#: Merge-produced chunks get block ids above any ESC block id so their
#: order keys never collide; ESC block counts are bounded by nnz(A).
MERGE_BLOCK_SEQ_BASE = 1 << 40


@dataclass(frozen=True)
class MergeAssignment:
    """Which merge algorithm handles which shared rows.

    Produced by one device-wide scan over the shared-rows array using
    the per-row remaining-product counts accumulated during AC-ESC
    ("Merge Assignment", the MCC slice of Figure 7).
    """

    multi_groups: tuple[tuple[int, ...], ...]
    path_rows: tuple[int, ...]
    search_rows: tuple[int, ...]

    @property
    def n_shared_rows(self) -> int:
        """Shared rows across all merge kinds."""
        return (
            sum(len(g) for g in self.multi_groups)
            + len(self.path_rows)
            + len(self.search_rows)
        )


def assign_merges(
    tracker: RowChunkTracker,
    options: AcSpgemmOptions,
    meter: CostMeter,
) -> MergeAssignment:
    """Classify shared rows and pack Multi Merge groups.

    A shared row goes to Multi Merge when its chunk count is at most
    ``multi_merge_max_chunks`` *and* its remaining products fit one
    block; consecutive such rows are packed greedily while their sum
    fits ("combine row range identifiers if the sum of their respective
    elements does not overflow the number of elements we can handle in
    one block", §3.3).  Larger chunk counts go to Path Merge up to
    ``path_merge_max_chunks`` and to Search Merge beyond.
    """
    capacity = options.device.elements_per_block
    shared = tracker.sorted_shared_rows()
    meter.scan(shared.shape[0])
    meter.global_read(shared.shape[0], 8)

    multi_groups: list[tuple[int, ...]] = []
    path_rows: list[int] = []
    search_rows: list[int] = []

    group: list[int] = []
    group_sum = 0
    for row in shared.tolist():
        n_chunks = len(tracker.row_lists[row])
        remaining = int(tracker.row_counts[row])
        if n_chunks <= options.multi_merge_max_chunks and remaining <= capacity:
            if group and group_sum + remaining > capacity:
                multi_groups.append(tuple(group))
                group, group_sum = [], 0
            group.append(row)
            group_sum += remaining
        elif n_chunks <= options.path_merge_max_chunks:
            path_rows.append(row)
        else:
            search_rows.append(row)
    if group:
        multi_groups.append(tuple(group))

    return MergeAssignment(
        multi_groups=tuple(multi_groups),
        path_rows=tuple(path_rows),
        search_rows=tuple(search_rows),
    )


@dataclass
class RowSegments:
    """The per-chunk column/value runs of one shared row, in the
    deterministic global chunk order."""

    row: int
    cols: list[np.ndarray] = field(default_factory=list)
    vals: list[np.ndarray] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Elements across all of the row's segments."""
        return sum(c.shape[0] for c in self.cols)


def gather_row_segments(
    row: int,
    tracker: RowChunkTracker,
    b: CSRMatrix,
    options: AcSpgemmOptions,
    meter: CostMeter,
    *,
    materialize_cost: bool = True,
) -> RowSegments:
    """Collect the row's segments from its chunks (ordered, lazily
    charging the global reads)."""
    segs = RowSegments(row=row)
    for chunk in tracker.chunks_for(row):
        sl = chunk.row_segment(row)
        cols = chunk.columns(b)[sl]
        vals = chunk.values(b)[sl]
        segs.cols.append(np.asarray(cols, dtype=np.int64))
        segs.vals.append(np.asarray(vals, dtype=options.value_dtype))
        if materialize_cost:
            meter.global_read(cols.shape[0], options.element_bytes)
    return segs


def esc_merge_batch(
    ctx: BlockContext,
    rows_rel: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    options: AcSpgemmOptions,
    n_rows: int,
):
    """Sort + compact one merge batch (the "remaining steps of our
    AC-ESC", §3.3).  ``rows_rel`` are block-local row indices."""
    meter = ctx.meter
    if options.enable_bit_reduction and cols.shape[0]:
        col_min, col_max = block_reduce_minmax(meter, cols)
    else:
        col_min, col_max = 0, int(cols.max(initial=0))
    col_bits = bits_required(max(0, col_max - col_min))
    row_bits = bits_required(max(0, n_rows - 1))
    keys = (
        rows_rel.astype(np.uint64) << np.uint64(col_bits)
    ) | (cols - col_min).astype(np.uint64)
    perm = radix_sort_permutation(meter, keys, row_bits + col_bits)
    comp = compact_sorted(meter, keys[perm], vals[perm], col_bits)
    comp_cols = (comp.keys & np.uint64((1 << col_bits) - 1)).astype(np.int64) + col_min
    # the merge's additions re-combine already-counted products, so they
    # are charged as ALU work without inflating the FLOP counter
    meter.alu(cols.shape[0] - comp.n)
    return comp, comp_cols


@dataclass
class MultiMergeBlock:
    """One Multi Merge thread block handling a packed group of rows."""

    block_index: int
    rows: tuple[int, ...]

    def run(
        self,
        ctx: BlockContext,
        tracker: RowChunkTracker,
        pool: ChunkPool,
        b: CSRMatrix,
        options: AcSpgemmOptions,
    ) -> Chunk:
        """Gather, ESC and write one chunk covering all packed rows.

        Raises :class:`~repro.core.chunks.PoolExhausted` on allocation
        failure; a Multi Merge restart "simply starts from scratch"
        (§3.3) — re-calling :meth:`run` is exactly that.
        """
        meter = ctx.meter
        rows_rel_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        for rel, row in enumerate(self.rows):
            segs = gather_row_segments(row, tracker, b, options, meter)
            for c, v in zip(segs.cols, segs.vals):
                rows_rel_parts.append(np.full(c.shape[0], rel, dtype=np.int64))
                cols_parts.append(c)
                vals_parts.append(v)
        rows_rel = np.concatenate(rows_rel_parts)
        cols = np.concatenate(cols_parts)
        vals = np.concatenate(vals_parts)
        if cols.shape[0] > options.device.elements_per_block:
            raise AssertionError(
                "Multi Merge group exceeds block capacity — assignment bug"
            )

        comp, comp_cols = esc_merge_batch(
            ctx, rows_rel, cols, vals, options, len(self.rows)
        )
        rows_global = np.asarray(self.rows, dtype=np.int64)[comp.rows]

        chunk = Chunk(
            order_key=(MERGE_BLOCK_SEQ_BASE + self.block_index, 0),
            kind="data",
            first_row=int(rows_global[0]),
            last_row=int(rows_global[-1]),
            rows=rows_global,
            cols=comp_cols,
            vals=comp.values,
        )
        nbytes = pool.data_bytes(
            comp.n, options.value_dtype.itemsize, options.col_index_bytes
        )
        pool.allocate(chunk, nbytes, meter)
        meter.scratchpad(2 * comp.n)
        meter.global_write(comp.n, options.element_bytes)
        meter.global_write(1, 32)

        # set exact counts and swap the rows over to the merged chunk
        counts = np.bincount(comp.rows, minlength=len(self.rows))
        for rel, row in enumerate(self.rows):
            tracker.replace_row(row, [chunk], int(counts[rel]))
            meter.atomic(1)
        return chunk

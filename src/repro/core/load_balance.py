"""Stage 1 — global load balancing (Algorithm 1, §3.1).

The non-zeros of A are split uniformly: block *k* processes entries
``[k * NNZ_PER_BLOCK, (k+1) * NNZ_PER_BLOCK)``.  The only preparation
needed is, for every block, the row containing its first entry
(``blockRowStarts``), so stage 2 can associate each fetched entry of A
with its row without reading the full row pointer.

Algorithm 1 computes this with one thread per row: the row covering
non-zeros ``[a, b)`` writes its id to every block whose first element
falls inside ``[a, b)``.  That is exactly
``blockRowStarts[k] = searchsorted(row_ptr, k * NNZ_PER_BLOCK, 'right') - 1``
for non-empty rows, which is the vectorised form used here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.cost import CostMeter
from ..sparse.csr import CSRMatrix

__all__ = ["GlobalLoadBalance", "global_load_balance"]


@dataclass(frozen=True)
class GlobalLoadBalance:
    """Result of stage 1.

    Attributes
    ----------
    n_blocks:
        Thread blocks launched for stage 2.
    nnz_per_block:
        Entries of A per block (constant; the last block may be short).
    block_row_starts:
        For each block, the row containing its first entry of A.
    row_of_nnz:
        Row id of every non-zero of A (the expansion of the CSR row
        pointer; stage 2 slices this per block instead of re-deriving
        row ids from ``row_ptr`` — the "dictionary" of §3.2.1 remaps
        these to block-local ids).
    helper_bytes:
        Global helper memory consumed by this stage (Table 3 "helper").
    """

    n_blocks: int
    nnz_per_block: int
    block_row_starts: np.ndarray
    row_of_nnz: np.ndarray
    helper_bytes: int


def global_load_balance(
    a: CSRMatrix, nnz_per_block: int, meter: CostMeter
) -> GlobalLoadBalance:
    """Run Algorithm 1 over A's row pointer.

    The cost is one parallel sweep over ``row_ptr`` plus one write per
    block — negligible compared to enumerating temporary products, which
    is the point of the scheme (§3.1: inspection-based balancing can
    consume up to 30% of total runtime on very sparse matrices).
    """
    if nnz_per_block <= 0:
        raise ValueError("nnz_per_block must be positive")
    nnz = a.nnz
    n_blocks = -(-nnz // nnz_per_block) if nnz else 0

    block_starts = np.arange(n_blocks, dtype=np.int64) * nnz_per_block
    # row containing each block's first non-zero (empty rows skipped by
    # 'right' search semantics, matching Algorithm 1's overwrite order).
    block_row_starts = (
        np.searchsorted(a.row_ptr, block_starts, side="right") - 1
    ).astype(np.int64)

    row_of_nnz = np.repeat(
        np.arange(a.rows, dtype=np.int64), np.diff(a.row_ptr)
    )

    # cost: each row's thread reads two row-pointer entries and writes
    # its covered block slots.
    meter.global_read(a.rows + 1, 8)
    meter.global_write(n_blocks, 4)
    meter.alu(2 * a.rows)

    helper_bytes = 4 * n_blocks  # blockRowStarts as 32-bit ids
    return GlobalLoadBalance(
        n_blocks=n_blocks,
        nnz_per_block=nnz_per_block,
        block_row_starts=block_row_starts,
        row_of_nnz=row_of_nnz,
        helper_bytes=helper_bytes,
    )

"""Sampling-based chunk-pool estimate (§5 future work).

The paper's conclusion names "reducing the overallocation of chunk
memory" as an obvious improvement: the simplistic uniform estimate plus
the 100 MB lower bound leaves most of the pool unused (Table 3 reports
single-digit utilisation for many matrices).

This module implements the natural refinement: estimate nnz(C) by
running the *exact symbolic product for a row sample* — a cheap
device-wide kernel that expands and counts distinct columns for ``k``
sampled rows of A — and extrapolate.  Winning property: the sample is
unbiased under row-permutation, so the estimate concentrates around the
true nnz(C) instead of the uniform-collision model, letting the pool
shrink by an order of magnitude with restarts as the safety net.
"""

from __future__ import annotations

import numpy as np

from ..gpu.cost import CostMeter
from ..matrices.generators import SeedLike, as_generator
from ..sparse.csr import CSRMatrix
from .options import AcSpgemmOptions

__all__ = ["sampled_output_estimate", "sampled_chunk_pool_bytes"]


def sampled_output_estimate(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    sample_rows: int = 64,
    seed: SeedLike = 0,
    safety_factor: float = 1.3,
    meter: CostMeter | None = None,
) -> float:
    """Estimate nnz(C) from an exact symbolic pass over sampled rows.

    ``seed`` follows the ``SeedLike`` protocol (int or
    ``np.random.Generator``): an int resolves through ``as_generator``
    so the byte stream is identical across processes, and a Generator —
    e.g. one spawned by ``derive_seed`` in the campaign runner — is
    consumed in place.  The cost (charged to ``meter`` when given) is
    the symbolic expansion of the sampled rows only — for a 64-row
    sample this is orders of magnitude below a full inspection pass.
    """
    if a.rows == 0 or a.nnz == 0 or b.nnz == 0:
        return 0.0
    rng = as_generator(seed)
    k = min(sample_rows, a.rows)
    rows = rng.choice(a.rows, size=k, replace=False)
    rows.sort()

    sampled_nnz = 0
    sampled_products = 0
    for r in rows.tolist():
        lo, hi = a.row_ptr[r], a.row_ptr[r + 1]
        if hi == lo:
            continue
        cols_parts = []
        for kcol in a.col_idx[lo:hi].tolist():
            blo, bhi = b.row_ptr[kcol], b.row_ptr[kcol + 1]
            cols_parts.append(b.col_idx[blo:bhi])
        if cols_parts:
            merged = np.concatenate(cols_parts)
            sampled_products += merged.shape[0]
            sampled_nnz += np.unique(merged).shape[0]
    if meter is not None:
        meter.global_read(sampled_products, 4)
        meter.hash_probe(sampled_products, in_scratchpad=True)
        meter.kernel_launch()
    return safety_factor * sampled_nnz * (a.rows / k)


def sampled_chunk_pool_bytes(
    a: CSRMatrix,
    b: CSRMatrix,
    options: AcSpgemmOptions,
    *,
    sample_rows: int = 64,
    seed: SeedLike = 0,
    lower_bound_bytes: int = 4 * 1024 * 1024,
    meter: CostMeter | None = None,
) -> int:
    """Pool size from the sampled estimate — the drop-in alternative to
    :func:`repro.core.memory_estimate.estimate_chunk_pool_bytes`.

    The lower bound shrinks from the paper's 100 MB to 4 MB because the
    sampled estimate tracks the actual output; restarts absorb the
    (rare) underestimates.
    """
    entries = sampled_output_estimate(
        a, b, sample_rows=sample_rows, seed=seed, meter=meter
    )
    raw = int(entries * options.element_bytes * options.chunk_meta_factor)
    return max(raw, lower_bound_bytes)
